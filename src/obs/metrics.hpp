// Low-overhead metrics registry for the fabric hot loop.
//
// Design contract (docs/OBSERVABILITY.md):
//   * Handles are resolved ONCE (by name, O(log n)) at attach time; after
//     that every update is a single bounds-unchecked array operation on a
//     dense value vector — the fabric step loop pays one add per counter.
//   * The registry is deliberately concurrency-free: the simulator is
//     single-threaded per fabric, so no atomics, no locks, no false
//     sharing.  Sharded fabrics get one registry each and merge offline.
//   * Compiling with -DCGRA_OBS_OFF turns every update into an empty
//     inline function: the escape hatch for overhead-critical sweeps,
//     benchmarked by bench_simulator_micro.  Registration and readout keep
//     working so harness code needs no #ifdefs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cgra::obs {

/// Pre-resolved index into the registry's dense counter storage.
struct CounterHandle {
  std::int32_t index = -1;
  [[nodiscard]] bool valid() const noexcept { return index >= 0; }
};

/// Pre-resolved index into the dense gauge storage.
struct GaugeHandle {
  std::int32_t index = -1;
  [[nodiscard]] bool valid() const noexcept { return index >= 0; }
};

/// Pre-resolved index into the histogram storage.
struct HistogramHandle {
  std::int32_t index = -1;
  [[nodiscard]] bool valid() const noexcept { return index >= 0; }
};

/// Readout of one histogram: counts[i] holds observations v with
/// v <= bounds[i] (and > bounds[i-1]); counts.back() is the overflow
/// bucket for v > bounds.back().
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;       ///< Ascending upper bounds.
  std::vector<std::int64_t> counts; ///< bounds.size() + 1 entries.
  std::int64_t total = 0;           ///< Total observations.
  double sum = 0.0;                 ///< Sum of observed values.
};

/// One metric in a snapshot dump (counters and gauges).
struct MetricSample {
  std::string name;
  bool is_counter = true;
  double value = 0.0;
};

/// Registry of counters, gauges and fixed-bucket histograms.
class MetricsRegistry {
 public:
  /// Find-or-create by name.  Call once, keep the handle.
  CounterHandle counter(std::string_view name);
  GaugeHandle gauge(std::string_view name);
  /// `upper_bounds` must be non-empty and strictly ascending; an implicit
  /// overflow bucket is appended.  Re-registering an existing name returns
  /// the existing handle (the bounds of the first registration win).
  HistogramHandle histogram(std::string_view name,
                            std::vector<double> upper_bounds);

  // --- hot path: one array op each, compiled out under CGRA_OBS_OFF ---

  void add(CounterHandle h, std::int64_t delta = 1) noexcept {
#ifndef CGRA_OBS_OFF
    counters_[static_cast<std::size_t>(h.index)] += delta;
#else
    (void)h;
    (void)delta;
#endif
  }

  void set(GaugeHandle h, double value) noexcept {
#ifndef CGRA_OBS_OFF
    gauges_[static_cast<std::size_t>(h.index)] = value;
#else
    (void)h;
    (void)value;
#endif
  }

  void observe(HistogramHandle h, double value) noexcept {
#ifndef CGRA_OBS_OFF
    observe_slow(h, value);
#else
    (void)h;
    (void)value;
#endif
  }

  // --- readout ---

  [[nodiscard]] std::int64_t counter_value(CounterHandle h) const;
  [[nodiscard]] double gauge_value(GaugeHandle h) const;
  [[nodiscard]] HistogramSnapshot histogram_snapshot(HistogramHandle h) const;

  /// Lookup by name; 0 / empty when the metric does not exist.
  [[nodiscard]] std::int64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// All counters and gauges, in registration order.
  [[nodiscard]] std::vector<MetricSample> samples() const;
  /// All histograms, in registration order.
  [[nodiscard]] std::vector<HistogramSnapshot> histograms() const;

  [[nodiscard]] std::size_t metric_count() const noexcept {
    return counter_names_.size() + gauge_names_.size() + hists_.size();
  }

  /// Zero all values; definitions and handles stay valid.
  void reset_values();

  // --- exporters ---

  /// {"counters":{...},"gauges":{...},"histograms":[...]}
  [[nodiscard]] std::string to_json() const;
  /// kind,name,value rows (histograms flattened to one row per bucket).
  [[nodiscard]] std::string to_csv() const;
  /// Aligned table via common/table for terminal output.
  [[nodiscard]] std::string to_table() const;

 private:
  struct Histogram {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::int64_t> counts;  ///< bounds.size() + 1.
    std::int64_t total = 0;
    double sum = 0.0;
  };

  void observe_slow(HistogramHandle h, double value) noexcept;
  static std::int32_t find(const std::vector<std::string>& names,
                           std::string_view name);

  std::vector<std::string> counter_names_;
  std::vector<std::int64_t> counters_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauges_;
  std::vector<Histogram> hists_;
};

/// Quantile estimate (q in [0,1]) from a histogram snapshot by linear
/// interpolation within the winning bucket.  The overflow bucket clamps
/// to bounds.back().  Returns 0 for an empty histogram.  Feeds the
/// p50/p90/p99 gauges the server appends to kStatsResult frames.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& snap,
                                        double q);

}  // namespace cgra::obs

#include "obs/bench_report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace cgra::obs {

namespace {
std::string& engine_label_storage() {
  static std::string label = "interp";
  return label;
}
}  // namespace

void set_bench_engine_label(std::string label) {
  engine_label_storage() = std::move(label);
}

const std::string& bench_engine_label() { return engine_label_storage(); }

void BenchReport::add(std::string metric, double value, std::string unit,
                      std::vector<std::pair<std::string, std::string>> params) {
  Metric m;
  m.name = std::move(metric);
  m.value = value;
  m.unit = std::move(unit);
  m.params = std::move(params);
  metrics_.push_back(std::move(m));
}

void BenchReport::add_table(std::string table_name, const TextTable& table) {
  Table t;
  t.name = std::move(table_name);
  t.header = table.header();
  t.rows = table.rows();
  tables_.push_back(std::move(t));
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\"bench\":\"" << json_escape(name_) << "\",\"engine\":\""
     << json_escape(engine_) << "\",\"metrics\":[";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    if (i != 0) os << ',';
    os << "{\"name\":\"" << json_escape(m.name)
       << "\",\"value\":" << json_number(m.value) << ",\"unit\":\""
       << json_escape(m.unit) << '"';
    if (!m.params.empty()) {
      os << ",\"params\":{";
      for (std::size_t p = 0; p < m.params.size(); ++p) {
        if (p != 0) os << ',';
        os << '"' << json_escape(m.params[p].first) << "\":\""
           << json_escape(m.params[p].second) << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"tables\":[";
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    const Table& t = tables_[i];
    if (i != 0) os << ',';
    os << "{\"name\":\"" << json_escape(t.name) << "\",\"header\":[";
    for (std::size_t c = 0; c < t.header.size(); ++c) {
      if (c != 0) os << ',';
      os << '"' << json_escape(t.header[c]) << '"';
    }
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      if (r != 0) os << ',';
      os << '[';
      for (std::size_t c = 0; c < t.rows[r].size(); ++c) {
        if (c != 0) os << ',';
        os << '"' << json_escape(t.rows[r][c]) << '"';
      }
      os << ']';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

bool BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << to_json() << '\n';
  out.close();
  std::printf("wrote %s\n", path.c_str());
  return out.good();
}

}  // namespace cgra::obs

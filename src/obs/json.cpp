#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cgra::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Strict recursive-descent parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status parse(JsonValue* out) {
    skip_ws();
    Status s = value(out);
    if (!s.ok()) return s;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON value");
    }
    return {};
  }

 private:
  Status fail(const char* what) const {
    return Status::errorf("JSON parse error at byte %zu: %s", pos_, what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at(char c) const {
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool consume(char c) {
    if (!at(c)) return false;
    ++pos_;
    return true;
  }

  Status value(JsonValue* out) {
    if (++depth_ > 64) return fail("nesting too deep");
    Status s = value_inner(out);
    --depth_;
    return s;
  }

  Status value_inner(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return string(&out->str);
      case 't':
      case 'f': return boolean(out);
      case 'n': return null(out);
      default: return number(out);
    }
  }

  Status object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return {};
    for (;;) {
      skip_ws();
      if (!at('"')) return fail("expected object key string");
      std::string key;
      if (Status s = string(&key); !s.ok()) return s;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue v;
      if (Status s = value(&v); !s.ok()) return s;
      out->object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return {};
      return fail("expected ',' or '}' in object");
    }
  }

  Status array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return {};
    for (;;) {
      skip_ws();
      JsonValue v;
      if (Status s = value(&v); !s.ok()) return s;
      out->array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return {};
      return fail("expected ',' or ']' in array");
    }
  }

  Status string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return {};
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point (no surrogate pairs).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape character");
        }
      } else {
        *out += c;
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  Status boolean(JsonValue* out) {
    out->type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out->boolean = true;
      pos_ += 4;
      return {};
    }
    if (text_.substr(pos_, 5) == "false") {
      out->boolean = false;
      pos_ += 5;
      return {};
    }
    return fail("expected 'true' or 'false'");
  }

  Status null(JsonValue* out) {
    out->type = JsonValue::Type::kNull;
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return {};
    }
    return fail("expected 'null'");
  }

  Status number(JsonValue* out) {
    out->type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("expected digit");
    }
    // Leading zero must not be followed by more digits.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      return fail("leading zero in number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected digit after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (at('e') || at('E')) {
      ++pos_;
      if (at('+') || at('-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("expected digit in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->number = std::strtod(token.c_str(), nullptr);
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Status parse_json(std::string_view text, JsonValue* out) {
  return Parser(text).parse(out);
}

}  // namespace cgra::obs

// Minimal JSON writer / parser for the observability exporters.
//
// The exporters (Chrome trace, metrics, profiles, bench reports) emit JSON
// and the tests round-trip it, so both directions live here.  The parser is
// a strict recursive-descent implementation of RFC 8259 minus surrogate
// pairs in \u escapes — enough to validate everything this library writes
// and to reject malformed output loudly in tests.  No external dependency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace cgra::obs {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Format a double the way JSON requires: no NaN/Inf (clamped to 0 with a
/// large sentinel magnitude preserved), integral values without a trailing
/// ".0" explosion, full round-trip precision otherwise.
std::string json_number(double v);

/// A parsed JSON value.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< Insertion order.

  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }

  /// Member lookup on objects; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parse `text` into `out`.  On failure returns an error Status naming the
/// byte offset and what was expected; `out` is left unspecified.
Status parse_json(std::string_view text, JsonValue* out);

}  // namespace cgra::obs

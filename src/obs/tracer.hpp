// Request-scoped wire tracing and an always-on flight recorder.
//
// A TraceContext is a 128-bit client-generated identity (trace id +
// parent span id) that rides protocol v3 job payloads end to end.  Every
// layer that touches the request — client call, server connection,
// service queue wait, epoch fusion, fabric epoch — records a host-clock
// span tagged with the trace id on its own track of a shared Tracer, so
// one Chrome/Perfetto export shows the request crossing the whole stack.
// These tracks are host time (trace_clock_ns), deliberately separate
// from the simulated-clock tile tracks in fabric timelines.
//
// The flight recorder is a fixed-size lock-free ring of compact events
// (enqueue, lease, batch-attach, chaos fire, retry, deadline check):
// ~one atomic RMW per event on the hot path, compiled out entirely
// under -DCGRA_OBS_OFF.  When a job ends abnormally (deadline exceeded,
// crash-resume, breaker open) or lands in the slowest-p99 reservoir,
// the ring is snapshotted into an AnomalyRecord and annotated into the
// trace — tail-latency exemplars for free.  docs/OBSERVABILITY.md has
// the Perfetto walkthrough.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "obs/span.hpp"

namespace cgra::obs {

/// Host-clock nanoseconds since a process-wide epoch (first use).  All
/// layers stamp trace spans with this clock so merged exports line up.
[[nodiscard]] Nanoseconds trace_clock_ns() noexcept;

/// Propagated 128-bit trace identity.  trace_id == 0 means "untraced";
/// such requests cost one branch per instrumentation point.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

// Track ("tid") assignments inside a Tracer's timeline.  Distinct from
// the fabric timeline tracks (span.hpp): a Tracer owns its own
// SpanTimeline, so the numbering spaces never collide.
inline constexpr int kTraceTrackClient = 0;      ///< Client call spans.
inline constexpr int kTraceTrackConnection = 1;  ///< Server connection.
inline constexpr int kTraceTrackQueue = 2;       ///< Service queue wait.
inline constexpr int kTraceTrackFusion = 3;      ///< Epoch-fusion batches.
inline constexpr int kTraceTrackFabric = 4;      ///< Fabric epoch compute.
inline constexpr int kTraceTrackAnomaly = 5;     ///< Flight-recorder dumps.

/// Compact event kinds recorded by the flight ring.
enum class FlightEventKind : std::uint8_t {
  kEnqueue = 0,        ///< Job admitted to a queue (arg = depth).
  kDequeue = 1,        ///< Job claimed by a worker.
  kLease = 2,          ///< Fabric lease acquired (code = rows<<8|cols).
  kBatchAttach = 3,    ///< Job fused into a batch (arg = batch size).
  kChaosFire = 4,      ///< Chaos rule fired (code = hook, arg = action).
  kRetry = 5,          ///< Retry / re-lease / requeue (arg = attempt).
  kDeadlineCheck = 6,  ///< Deadline evaluated (code: 0 ok, 1 expired).
  kComplete = 7,       ///< Job finished (code = StatusCode).
  kAnomaly = 8,        ///< Anomaly noted (code = AnomalyReason).
};

[[nodiscard]] const char* flight_event_kind_name(FlightEventKind kind);

/// One decoded flight-recorder event.
struct FlightEvent {
  std::uint64_t trace_id = 0;
  std::uint64_t t_ns = 0;  ///< trace_clock_ns at record time.
  FlightEventKind kind = FlightEventKind::kEnqueue;
  std::uint16_t code = 0;
  std::uint32_t arg = 0;
};

/// Why a job's flight events were dumped.
enum class AnomalyReason : std::uint8_t {
  kDeadlineExceeded = 0,
  kCrashResume = 1,
  kBreakerOpen = 2,
  kError = 3,
  kSlowTail = 4,  ///< Landed in the slowest-p99 reservoir.
};

[[nodiscard]] const char* anomaly_reason_name(AnomalyReason reason);

/// One dumped anomaly: the reason plus the ring events that mention the
/// trace (and any chaos firings in the window), oldest first.
struct AnomalyRecord {
  std::uint64_t trace_id = 0;
  AnomalyReason reason = AnomalyReason::kError;
  std::uint64_t t_ns = 0;
  std::string detail;
  std::vector<FlightEvent> events;
};

/// Fixed-size lock-free ring of flight events.  Writers pay one relaxed
/// fetch_add plus plain (relaxed) field stores; a per-slot sequence word
/// lets snapshot() discard slots that were mid-overwrite, so concurrent
/// readers never see torn events.  Under CGRA_OBS_OFF record() is an
/// empty inline function and the ring stores nothing.
class FlightRing {
 public:
  /// `capacity` is rounded up to a power of two (min 8).
  explicit FlightRing(std::size_t capacity = 1024);

  void record(std::uint64_t trace_id, FlightEventKind kind, std::uint16_t code,
              std::uint32_t arg, Nanoseconds t_ns) noexcept {
#ifndef CGRA_OBS_OFF
    const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[i & mask_];
    s.seq.store(0, std::memory_order_release);  // mark in-flight
    s.trace_id.store(trace_id, std::memory_order_relaxed);
    s.t_ns.store(t_ns <= 0.0 ? 0 : static_cast<std::uint64_t>(t_ns),
                 std::memory_order_relaxed);
    s.packed.store((static_cast<std::uint64_t>(kind) << 56) |
                       (static_cast<std::uint64_t>(code) << 40) |
                       static_cast<std::uint64_t>(arg),
                   std::memory_order_relaxed);
    s.seq.store(i + 1, std::memory_order_release);
#else
    (void)trace_id;
    (void)kind;
    (void)code;
    (void)arg;
    (void)t_ns;
#endif
  }

  /// Committed events still resident, oldest first.  Slots being
  /// overwritten during the scan are skipped, not mis-read.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Total events ever recorded / overwritten before being snapshotted.
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = empty/in-flight, else i+1.
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint64_t> packed{0};  ///< kind<<56 | code<<40 | arg.
  };

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
};

struct TracerOptions {
  std::size_t ring_capacity = 1024;  ///< Flight-ring slots.
  std::size_t max_anomalies = 32;    ///< Retained AnomalyRecords (FIFO).
  std::size_t tail_window = 256;     ///< Completions in the p99 reservoir.
  std::uint64_t seed = 0x7261636572ULL;  ///< For make_context ids.
};

/// Thread-safe owner of one trace timeline + flight ring.  Shared by
/// Server/Service/Client instrumentation via raw pointer (the owner —
/// e.g. serve_demo or a test rig — must outlive them).
class Tracer {
 public:
  explicit Tracer(TracerOptions opt = {});

  /// New client-generated trace identity (deterministic per seed).
  [[nodiscard]] TraceContext make_context();

  /// Record a completed host-clock span tagged with the trace id.
  void span(int track, std::string name, const TraceContext& ctx,
            Nanoseconds start_ns, Nanoseconds dur_ns,
            std::vector<SpanArg> extra_args = {});

  /// Record an instant marker tagged with the trace id.
  void instant(int track, std::string name, const TraceContext& ctx,
               Nanoseconds at_ns, std::vector<SpanArg> extra_args = {});

  /// Hot path: one flight-ring event.  Nothing under CGRA_OBS_OFF.
  void event(const TraceContext& ctx, FlightEventKind kind,
             std::uint16_t code = 0, std::uint32_t arg = 0) noexcept {
#ifndef CGRA_OBS_OFF
    ring_.record(ctx.trace_id, kind, code, arg, trace_clock_ns());
#else
    (void)ctx;
    (void)kind;
    (void)code;
    (void)arg;
#endif
  }

  /// Feed the slowest-p99 reservoir; a completion slower than the
  /// current p99 of the window dumps the ring as a kSlowTail anomaly.
  void note_complete(const TraceContext& ctx, Nanoseconds dur_ns);

  /// Dump the flight ring for this trace as an AnomalyRecord and
  /// annotate the anomaly track with the reconstructed event sequence.
  void note_anomaly(const TraceContext& ctx, AnomalyReason reason,
                    std::string detail);

  // --- readout ---

  [[nodiscard]] std::vector<AnomalyRecord> anomalies() const;
  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::uint64_t events_recorded() const noexcept {
    return ring_.recorded();
  }
  [[nodiscard]] std::uint64_t events_dropped() const noexcept {
    return ring_.dropped();
  }

  /// Chrome trace-event JSON of every span recorded (and merged) so far.
  [[nodiscard]] std::string to_chrome_json(
      const std::string& process_name = "cgra.trace") const;

  /// Append spans parsed from another tracer's export (trace merging:
  /// the client pulls the server dump and grafts it into its timeline).
  void merge_spans(const std::vector<Span>& spans);

  /// Lower-case hex (16 digits) of a trace id — the span "trace" arg.
  [[nodiscard]] static std::string trace_hex(std::uint64_t id);

 private:
  void annotate_anomaly_locked(const AnomalyRecord& rec);

  TracerOptions opt_;
  FlightRing ring_;
  mutable std::mutex mu_;
  SpanTimeline timeline_;
  std::deque<AnomalyRecord> anomalies_;
  std::deque<Nanoseconds> window_;  ///< Recent completion durations.
  std::uint64_t id_state_;          ///< SplitMix64 state for contexts.
};

}  // namespace cgra::obs

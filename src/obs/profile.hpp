// Profiling reports: per-tile utilization, per-link traffic, ICAP
// occupancy, and model-vs-executed drift.
//
// The structures here are plain data plus renderers (table / JSON / CSV);
// they carry no simulator dependencies so any layer can build one.  The
// canonical builder for a Fabric + Timeline pair is
// config::build_profile() (src/config/profiler.hpp), which fills the
// counters from TileStats and TransitionReports and guarantees the
// reconciliation invariant checked by reconcile().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/timing.hpp"

namespace cgra::obs {

/// Cycle breakdown of one tile over a run.  Invariant (reconcile()):
/// retired + stalled + idle == total fabric cycles.
struct TileProfile {
  int tile = 0;
  std::int64_t retired = 0;  ///< Cycles an instruction retired.
  std::int64_t stalled = 0;  ///< Cycles stalled for reconfiguration.
  std::int64_t idle = 0;     ///< Cycles halted (incl. faulted).
  std::int64_t remote_writes = 0;
  bool faulted = false;

  [[nodiscard]] std::int64_t total() const noexcept {
    return retired + stalled + idle;
  }
  [[nodiscard]] double utilization() const noexcept {
    const std::int64_t t = total();
    return t > 0 ? static_cast<double>(retired) / static_cast<double>(t)
                 : 0.0;
  }
};

/// Traffic out of one tile's link driver.
struct LinkProfile {
  int src_tile = 0;
  int dst_tile = -1;            ///< Final epoch's target; -1 if none.
  std::int64_t words = 0;       ///< Remote writes committed.
  double occupancy = 0.0;       ///< words / total cycles (1 word per cycle max).
  double bandwidth_mb_s = 0.0;  ///< Sustained 48-bit-word bandwidth.
};

/// Serial ICAP channel accounting over the run.
struct IcapProfile {
  int transitions = 0;
  std::int64_t busy_cycles = 0;
  double busy_fraction = 0.0;   ///< busy_cycles / total cycles.
  Nanoseconds link_ns = 0.0;
  Nanoseconds inst_reload_ns = 0.0;
  Nanoseconds data_reload_ns = 0.0;
  Nanoseconds verify_ns = 0.0;
  Nanoseconds retry_ns = 0.0;
  int retries = 0;
};

/// One model-vs-executed comparison row.
struct DriftRow {
  std::string name;
  Nanoseconds predicted_ns = 0.0;
  Nanoseconds measured_ns = 0.0;
  bool has_measured = true;  ///< false: the run cannot observe this term.
  std::string note;

  /// Signed drift of the execution against the model, in percent.
  [[nodiscard]] double drift_pct() const noexcept {
    return predicted_ns != 0.0
               ? (measured_ns - predicted_ns) / predicted_ns * 100.0
               : 0.0;
  }
};

/// Model-vs-executed drift report (e.g. the FFT tau equations).
struct DriftReport {
  std::string model;
  std::vector<DriftRow> rows;

  void add(std::string name, Nanoseconds predicted, Nanoseconds measured,
           std::string note = {});
  void add_unmeasured(std::string name, Nanoseconds predicted,
                      std::string note = {});

  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string to_json() const;
};

/// The full profiling report of one run.
struct ProfileReport {
  std::int64_t total_cycles = 0;
  Nanoseconds total_ns = 0.0;       ///< == Timeline::total_ns of the run.
  Nanoseconds reconfig_ns = 0.0;    ///< Analytic Eq.-1 term B.
  std::vector<TileProfile> tiles;
  std::vector<LinkProfile> links;
  IcapProfile icap;
  DriftReport drift;                ///< Empty unless a model was compared.

  /// Aggregate utilization: retired cycles / (tiles * total cycles).
  [[nodiscard]] double fabric_utilization() const;

  /// Check the accounting invariants: every tile's cycle breakdown sums to
  /// total_cycles and total_ns equals total_cycles on the fabric clock.
  [[nodiscard]] Status reconcile() const;

  /// Per-tile utilization + link + ICAP tables for terminal output.
  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string to_json() const;
  /// One row per tile: tile,retired,stalled,idle,total,utilization,...
  [[nodiscard]] std::string to_csv() const;
};

}  // namespace cgra::obs

// Machine-readable benchmark output: BENCH_<name>.json.
//
// Every bench binary emits one of these next to its stdout table so the
// performance trajectory is diffable across PRs (plot scripts and CI read
// the JSON; humans read the table).  Schema:
//
//   { "bench": "<name>",
//     "engine": "interp" | "threaded" | "batch:<W>",
//     "metrics": [ {"name": ..., "value": ..., "unit": ...,
//                   "params": {"k": "v", ...}}, ... ],
//     "tables":  [ {"name": ..., "header": [...], "rows": [[...], ...]} ] }
//
// The engine field records which execution engine produced the numbers;
// scripts/perf_compare.py refuses to compare reports across engines.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace cgra {
class TextTable;
}  // namespace cgra

namespace cgra::obs {

/// Process-wide label for the execution engine benchmarks run on; stamped
/// into every BenchReport at construction.  engine::use_process_engine
/// keeps it in sync with the --engine flag; the default is "interp".
void set_bench_engine_label(std::string label);
[[nodiscard]] const std::string& bench_engine_label();

/// Collects metrics and tables; write() emits BENCH_<name>.json.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), engine_(bench_engine_label()) {}

  /// One scalar result with its unit and identifying parameters.
  void add(std::string metric, double value, std::string unit,
           std::vector<std::pair<std::string, std::string>> params = {});

  /// Embed a rendered table verbatim (header + string cells).
  void add_table(std::string table_name, const TextTable& table);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Override the engine stamp (defaults to bench_engine_label()).
  void set_engine(std::string engine) { engine_ = std::move(engine); }
  [[nodiscard]] const std::string& engine() const noexcept { return engine_; }
  [[nodiscard]] std::string to_json() const;

  /// Write BENCH_<name>.json into `dir` (default: the working directory)
  /// and print a one-line note to stdout.  Returns false on I/O failure.
  bool write(const std::string& dir = ".") const;

 private:
  struct Metric {
    std::string name;
    double value = 0.0;
    std::string unit;
    std::vector<std::pair<std::string, std::string>> params;
  };
  struct Table {
    std::string name;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::string engine_;
  std::vector<Metric> metrics_;
  std::vector<Table> tables_;
};

}  // namespace cgra::obs

#include "obs/profile.hpp"

#include <cmath>
#include <sstream>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace cgra::obs {

void DriftReport::add(std::string name, Nanoseconds predicted,
                      Nanoseconds measured, std::string note) {
  DriftRow row;
  row.name = std::move(name);
  row.predicted_ns = predicted;
  row.measured_ns = measured;
  row.note = std::move(note);
  rows.push_back(std::move(row));
}

void DriftReport::add_unmeasured(std::string name, Nanoseconds predicted,
                                 std::string note) {
  DriftRow row;
  row.name = std::move(name);
  row.predicted_ns = predicted;
  row.has_measured = false;
  row.note = std::move(note);
  rows.push_back(std::move(row));
}

std::string DriftReport::render() const {
  TextTable table({"term", "model(ns)", "executed(ns)", "drift", "note"});
  for (const DriftRow& r : rows) {
    table.add_row({r.name, TextTable::num(r.predicted_ns, 1),
                   r.has_measured ? TextTable::num(r.measured_ns, 1) : "-",
                   r.has_measured && r.predicted_ns != 0.0
                       ? TextTable::num(r.drift_pct(), 1) + "%"
                       : "-",
                   r.note});
  }
  return table.render();
}

std::string DriftReport::to_json() const {
  std::ostringstream os;
  os << "{\"model\":\"" << json_escape(model) << "\",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DriftRow& r = rows[i];
    if (i != 0) os << ',';
    os << "{\"name\":\"" << json_escape(r.name)
       << "\",\"predicted_ns\":" << json_number(r.predicted_ns);
    if (r.has_measured) {
      os << ",\"measured_ns\":" << json_number(r.measured_ns)
         << ",\"drift_pct\":" << json_number(r.drift_pct());
    }
    if (!r.note.empty()) os << ",\"note\":\"" << json_escape(r.note) << '"';
    os << '}';
  }
  os << "]}";
  return os.str();
}

double ProfileReport::fabric_utilization() const {
  if (tiles.empty() || total_cycles <= 0) return 0.0;
  std::int64_t retired = 0;
  for (const TileProfile& t : tiles) retired += t.retired;
  return static_cast<double>(retired) /
         (static_cast<double>(total_cycles) *
          static_cast<double>(tiles.size()));
}

Status ProfileReport::reconcile() const {
  for (const TileProfile& t : tiles) {
    if (t.total() != total_cycles) {
      return Status::errorf(
          "tile %d cycle breakdown %lld (retired %lld + stalled %lld + "
          "idle %lld) != total cycles %lld",
          t.tile, static_cast<long long>(t.total()),
          static_cast<long long>(t.retired),
          static_cast<long long>(t.stalled),
          static_cast<long long>(t.idle),
          static_cast<long long>(total_cycles));
    }
  }
  if (total_ns != cycles_to_ns(total_cycles)) {
    return Status::errorf(
        "total_ns %.3f != %lld cycles on the fabric clock (%.3f ns)",
        total_ns, static_cast<long long>(total_cycles),
        cycles_to_ns(total_cycles));
  }
  return {};
}

std::string ProfileReport::render() const {
  std::ostringstream os;
  {
    TextTable table({"tile", "retired", "stalled", "idle", "total",
                     "util", "remote wr", "state"});
    for (const TileProfile& t : tiles) {
      table.add_row({TextTable::integer(t.tile),
                     TextTable::integer(t.retired),
                     TextTable::integer(t.stalled),
                     TextTable::integer(t.idle),
                     TextTable::integer(t.total()),
                     TextTable::num(t.utilization() * 100.0, 1) + "%",
                     TextTable::integer(t.remote_writes),
                     t.faulted ? "FAULTED" : "ok"});
    }
    os << table.render();
  }
  os << "\nfabric: " << TextTable::integer(total_cycles) << " cycles = "
     << TextTable::num(total_ns, 1) << " ns, utilization "
     << TextTable::num(fabric_utilization() * 100.0, 1)
     << "%, reconfiguration (Eq.1 term B) "
     << TextTable::num(reconfig_ns, 1) << " ns\n";

  bool any_traffic = false;
  for (const LinkProfile& l : links) any_traffic = any_traffic || l.words > 0;
  if (any_traffic) {
    TextTable table({"src tile", "dst tile", "words", "occupancy",
                     "bandwidth(MB/s)"});
    for (const LinkProfile& l : links) {
      if (l.words == 0) continue;
      table.add_row({TextTable::integer(l.src_tile),
                     l.dst_tile >= 0 ? TextTable::integer(l.dst_tile) : "-",
                     TextTable::integer(l.words),
                     TextTable::num(l.occupancy * 100.0, 2) + "%",
                     TextTable::num(l.bandwidth_mb_s, 1)});
    }
    os << '\n' << table.render();
  }

  os << "\nICAP: " << icap.transitions << " transition(s), busy "
     << TextTable::integer(icap.busy_cycles) << " cycle(s) ("
     << TextTable::num(icap.busy_fraction * 100.0, 2) << "% of the run), "
     << "links " << TextTable::num(icap.link_ns, 1) << " ns, inst "
     << TextTable::num(icap.inst_reload_ns, 1) << " ns, data "
     << TextTable::num(icap.data_reload_ns, 1) << " ns, verify "
     << TextTable::num(icap.verify_ns, 1) << " ns, retry "
     << TextTable::num(icap.retry_ns, 1) << " ns (" << icap.retries
     << " retries)\n";

  if (!drift.rows.empty()) {
    os << "\nmodel-vs-executed drift (" << drift.model << "):\n"
       << drift.render();
  }
  return os.str();
}

std::string ProfileReport::to_json() const {
  std::ostringstream os;
  os << "{\"total_cycles\":" << total_cycles
     << ",\"total_ns\":" << json_number(total_ns)
     << ",\"reconfig_ns\":" << json_number(reconfig_ns)
     << ",\"fabric_utilization\":" << json_number(fabric_utilization())
     << ",\"tiles\":[";
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const TileProfile& t = tiles[i];
    if (i != 0) os << ',';
    os << "{\"tile\":" << t.tile << ",\"retired\":" << t.retired
       << ",\"stalled\":" << t.stalled << ",\"idle\":" << t.idle
       << ",\"utilization\":" << json_number(t.utilization())
       << ",\"remote_writes\":" << t.remote_writes
       << ",\"faulted\":" << (t.faulted ? "true" : "false") << '}';
  }
  os << "],\"links\":[";
  bool first = true;
  for (const LinkProfile& l : links) {
    if (l.words == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"src_tile\":" << l.src_tile << ",\"dst_tile\":" << l.dst_tile
       << ",\"words\":" << l.words
       << ",\"occupancy\":" << json_number(l.occupancy)
       << ",\"bandwidth_mb_s\":" << json_number(l.bandwidth_mb_s) << '}';
  }
  os << "],\"icap\":{\"transitions\":" << icap.transitions
     << ",\"busy_cycles\":" << icap.busy_cycles
     << ",\"busy_fraction\":" << json_number(icap.busy_fraction)
     << ",\"link_ns\":" << json_number(icap.link_ns)
     << ",\"inst_reload_ns\":" << json_number(icap.inst_reload_ns)
     << ",\"data_reload_ns\":" << json_number(icap.data_reload_ns)
     << ",\"verify_ns\":" << json_number(icap.verify_ns)
     << ",\"retry_ns\":" << json_number(icap.retry_ns)
     << ",\"retries\":" << icap.retries << '}';
  if (!drift.rows.empty()) {
    os << ",\"drift\":" << drift.to_json();
  }
  os << '}';
  return os.str();
}

std::string ProfileReport::to_csv() const {
  std::ostringstream os;
  os << "tile,retired,stalled,idle,total,utilization,remote_writes,"
        "faulted\n";
  for (const TileProfile& t : tiles) {
    os << t.tile << ',' << t.retired << ',' << t.stalled << ',' << t.idle
       << ',' << t.total() << ',' << json_number(t.utilization()) << ','
       << t.remote_writes << ',' << (t.faulted ? 1 : 0) << '\n';
  }
  return os.str();
}

}  // namespace cgra::obs

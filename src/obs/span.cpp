#include "obs/span.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "obs/json.hpp"

namespace cgra::obs {

SpanTimeline::SpanId SpanTimeline::begin(std::string name,
                                         std::string category, int track,
                                         Nanoseconds start_ns) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.track = track;
  s.start_ns = start_ns;
  s.open = true;
  spans_.push_back(std::move(s));
  ++open_;
  return spans_.size() - 1;
}

void SpanTimeline::end(SpanId id, Nanoseconds end_ns) {
  if (id >= spans_.size() || !spans_[id].open) return;
  Span& s = spans_[id];
  s.dur_ns = end_ns > s.start_ns ? end_ns - s.start_ns : 0.0;
  s.open = false;
  --open_;
}

void SpanTimeline::complete(std::string name, std::string category, int track,
                            Nanoseconds start_ns, Nanoseconds dur_ns,
                            std::vector<SpanArg> args) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.track = track;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns < 0.0 ? 0.0 : dur_ns;
  s.args = std::move(args);
  spans_.push_back(std::move(s));
}

void SpanTimeline::instant(std::string name, std::string category, int track,
                           Nanoseconds at_ns, std::vector<SpanArg> args) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.track = track;
  s.start_ns = at_ns;
  s.instant = true;
  s.args = std::move(args);
  spans_.push_back(std::move(s));
}

void SpanTimeline::set_track_name(int track, std::string name) {
  for (auto& [t, n] : track_names_) {
    if (t == track) {
      n = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::move(name));
}

Nanoseconds SpanTimeline::total_in_category(std::string_view category) const {
  Nanoseconds total = 0.0;
  for (const Span& s : spans_) {
    if (!s.instant && s.category == category) total += s.dur_ns;
  }
  return total;
}

Nanoseconds SpanTimeline::total_with_prefix(std::string_view prefix) const {
  Nanoseconds total = 0.0;
  for (const Span& s : spans_) {
    if (!s.instant && s.name.size() >= prefix.size() &&
        std::string_view(s.name).substr(0, prefix.size()) == prefix) {
      total += s.dur_ns;
    }
  }
  return total;
}

void SpanTimeline::clear() {
  spans_.clear();
  track_names_.clear();
  open_ = 0;
}

namespace {

void write_args(std::ostringstream& os, const std::vector<SpanArg>& args) {
  os << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << json_escape(args[i].key) << "\":";
    if (args[i].numeric) {
      os << args[i].value;
    } else {
      os << '"' << json_escape(args[i].value) << '"';
    }
  }
  os << '}';
}

}  // namespace

std::string SpanTimeline::to_chrome_json(
    const std::string& process_name) const {
  // Sort by start time (stable: recording order breaks ties) so viewers
  // nest contained spans correctly.
  std::vector<std::size_t> order(spans_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return spans_[a].start_ns < spans_[b].start_ns;
                   });

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  sep();
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\""
     << json_escape(process_name) << "\"}}";
  for (const auto& [track, name] : track_names_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << track
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(name) << "\"}}";
  }

  for (const std::size_t i : order) {
    const Span& s = spans_[i];
    sep();
    os << "{\"ph\":\"" << (s.instant ? 'i' : 'X') << "\",\"pid\":1,\"tid\":"
       << s.track << ",\"name\":\"" << json_escape(s.name)
       << "\",\"cat\":\"" << json_escape(s.category)
       << "\",\"ts\":" << json_number(s.start_ns / 1000.0);
    if (s.instant) {
      os << ",\"s\":\"t\"";
    } else {
      os << ",\"dur\":" << json_number(s.dur_ns / 1000.0);
    }
    if (!s.args.empty()) {
      os << ',';
      write_args(os, s.args);
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

namespace {

Status check_event(const JsonValue& ev, std::size_t index) {
  const auto fail = [index](const char* what) {
    return Status::errorf("traceEvents[%zu]: %s", index, what);
  };
  if (!ev.is_object()) return fail("event is not an object");
  const JsonValue* ph = ev.find("ph");
  if (ph == nullptr || !ph->is_string() || ph->str.size() != 1) {
    return fail("missing or malformed \"ph\"");
  }
  const JsonValue* name = ev.find("name");
  if (name == nullptr || !name->is_string()) {
    return fail("missing \"name\"");
  }
  const JsonValue* pid = ev.find("pid");
  const JsonValue* tid = ev.find("tid");
  if (pid == nullptr || !pid->is_number() || tid == nullptr ||
      !tid->is_number()) {
    return fail("missing numeric \"pid\"/\"tid\"");
  }
  switch (ph->str[0]) {
    case 'X': {
      const JsonValue* ts = ev.find("ts");
      const JsonValue* dur = ev.find("dur");
      if (ts == nullptr || !ts->is_number()) return fail("X without \"ts\"");
      if (dur == nullptr || !dur->is_number()) {
        return fail("X without \"dur\"");
      }
      if (dur->number < 0) return fail("negative \"dur\"");
      break;
    }
    case 'i': {
      const JsonValue* ts = ev.find("ts");
      if (ts == nullptr || !ts->is_number()) return fail("i without \"ts\"");
      const JsonValue* scope = ev.find("s");
      if (scope == nullptr || !scope->is_string()) {
        return fail("i without scope \"s\"");
      }
      break;
    }
    case 'M': {
      if (ev.find("args") == nullptr) return fail("M without \"args\"");
      break;
    }
    default:
      return fail("unsupported phase (this library emits X, i, M)");
  }
  return {};
}

}  // namespace

Status validate_chrome_trace(std::string_view json) {
  JsonValue root;
  if (Status s = parse_json(json, &root); !s.ok()) return s;
  if (!root.is_object()) {
    return Status::error("trace root is not a JSON object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::error("missing \"traceEvents\" array");
  }
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    if (Status s = check_event(events->array[i], i); !s.ok()) return s;
  }
  return {};
}

Status parse_chrome_trace(std::string_view json, std::vector<Span>* out) {
  if (Status s = validate_chrome_trace(json); !s.ok()) return s;
  JsonValue root;
  if (Status s = parse_json(json, &root); !s.ok()) return s;
  out->clear();
  for (const JsonValue& ev : root.find("traceEvents")->array) {
    const std::string& ph = ev.find("ph")->str;
    if (ph == "M") continue;
    Span s;
    s.name = ev.find("name")->str;
    if (const JsonValue* cat = ev.find("cat"); cat != nullptr) {
      s.category = cat->str;
    }
    s.track = static_cast<int>(ev.find("tid")->number);
    s.start_ns = ev.find("ts")->number * 1000.0;
    if (ph == "X") {
      s.dur_ns = ev.find("dur")->number * 1000.0;
    } else {
      s.instant = true;
    }
    if (const JsonValue* args = ev.find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [k, v] : args->object) {
        SpanArg arg;
        arg.key = k;
        if (v.is_number()) {
          arg.numeric = true;
          arg.value = json_number(v.number);
        } else if (v.is_string()) {
          arg.value = v.str;
        }
        s.args.push_back(std::move(arg));
      }
    }
    out->push_back(std::move(s));
  }
  return {};
}

}  // namespace cgra::obs

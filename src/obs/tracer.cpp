#include "obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace cgra::obs {
namespace {

/// SplitMix64 step on explicit state (common/prng.hpp hides its state).
std::uint64_t mix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Nanoseconds trace_clock_ns() noexcept {
  // One process-wide epoch so spans from different objects (client,
  // server, service) land on a common axis in the merged export.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<Nanoseconds>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kEnqueue:
      return "enqueue";
    case FlightEventKind::kDequeue:
      return "dequeue";
    case FlightEventKind::kLease:
      return "lease";
    case FlightEventKind::kBatchAttach:
      return "batch-attach";
    case FlightEventKind::kChaosFire:
      return "chaos-fire";
    case FlightEventKind::kRetry:
      return "retry";
    case FlightEventKind::kDeadlineCheck:
      return "deadline-check";
    case FlightEventKind::kComplete:
      return "complete";
    case FlightEventKind::kAnomaly:
      return "anomaly";
  }
  return "unknown";
}

const char* anomaly_reason_name(AnomalyReason reason) {
  switch (reason) {
    case AnomalyReason::kDeadlineExceeded:
      return "deadline-exceeded";
    case AnomalyReason::kCrashResume:
      return "crash-resume";
    case AnomalyReason::kBreakerOpen:
      return "breaker-open";
    case AnomalyReason::kError:
      return "error";
    case AnomalyReason::kSlowTail:
      return "slow-tail";
  }
  return "unknown";
}

FlightRing::FlightRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

std::vector<FlightEvent> FlightRing::snapshot() const {
  struct Keyed {
    std::uint64_t seq;
    FlightEvent ev;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(slots_.size());
  for (const Slot& s : slots_) {
    const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;  // Empty or mid-overwrite.
    FlightEvent ev;
    ev.trace_id = s.trace_id.load(std::memory_order_relaxed);
    ev.t_ns = s.t_ns.load(std::memory_order_relaxed);
    const std::uint64_t packed = s.packed.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != seq) continue;  // Torn.
    ev.kind = static_cast<FlightEventKind>((packed >> 56) & 0xFF);
    ev.code = static_cast<std::uint16_t>((packed >> 40) & 0xFFFF);
    ev.arg = static_cast<std::uint32_t>(packed & 0xFFFFFFFFULL);
    keyed.push_back({seq, ev});
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const Keyed& a, const Keyed& b) { return a.seq < b.seq; });
  std::vector<FlightEvent> out;
  out.reserve(keyed.size());
  for (Keyed& k : keyed) out.push_back(k.ev);
  return out;
}

std::uint64_t FlightRing::recorded() const noexcept {
  return next_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRing::dropped() const noexcept {
  const std::uint64_t total = recorded();
  return total > slots_.size() ? total - slots_.size() : 0;
}

Tracer::Tracer(TracerOptions opt)
    : opt_(opt), ring_(opt.ring_capacity), id_state_(opt.seed) {
  timeline_.set_track_name(kTraceTrackClient, "client");
  timeline_.set_track_name(kTraceTrackConnection, "server connection");
  timeline_.set_track_name(kTraceTrackQueue, "service queue");
  timeline_.set_track_name(kTraceTrackFusion, "epoch fusion");
  timeline_.set_track_name(kTraceTrackFabric, "fabric epoch");
  timeline_.set_track_name(kTraceTrackAnomaly, "flight recorder");
}

TraceContext Tracer::make_context() {
  std::lock_guard<std::mutex> lock(mu_);
  TraceContext ctx;
  do {
    ctx.trace_id = mix64(&id_state_);
  } while (ctx.trace_id == 0);
  ctx.parent_span_id = mix64(&id_state_);
  return ctx;
}

std::string Tracer::trace_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

void Tracer::span(int track, std::string name, const TraceContext& ctx,
                  Nanoseconds start_ns, Nanoseconds dur_ns,
                  std::vector<SpanArg> extra_args) {
  if (!ctx.valid()) return;
  std::vector<SpanArg> args;
  args.reserve(extra_args.size() + 2);
  args.push_back({"trace", trace_hex(ctx.trace_id), false});
  if (ctx.parent_span_id != 0) {
    args.push_back({"parent", trace_hex(ctx.parent_span_id), false});
  }
  for (SpanArg& a : extra_args) args.push_back(std::move(a));
  std::lock_guard<std::mutex> lock(mu_);
  timeline_.complete(std::move(name), "trace", track, start_ns, dur_ns,
                     std::move(args));
}

void Tracer::instant(int track, std::string name, const TraceContext& ctx,
                     Nanoseconds at_ns, std::vector<SpanArg> extra_args) {
  if (!ctx.valid()) return;
  std::vector<SpanArg> args;
  args.reserve(extra_args.size() + 1);
  args.push_back({"trace", trace_hex(ctx.trace_id), false});
  for (SpanArg& a : extra_args) args.push_back(std::move(a));
  std::lock_guard<std::mutex> lock(mu_);
  timeline_.instant(std::move(name), "trace", track, at_ns, std::move(args));
}

void Tracer::note_complete(const TraceContext& ctx, Nanoseconds dur_ns) {
  if (!ctx.valid()) return;
  bool slow = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_.push_back(dur_ns);
    while (window_.size() > opt_.tail_window) window_.pop_front();
    // Only flag once the reservoir has enough history to call a p99,
    // and only strictly-slower-than-p99 so uniform workloads stay quiet.
    if (window_.size() >= 64) {
      std::vector<Nanoseconds> sorted(window_.begin(), window_.end());
      const std::size_t idx = (sorted.size() * 99) / 100;
      std::nth_element(sorted.begin(),
                       sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                       sorted.end());
      slow = dur_ns > sorted[idx];
    }
  }
  event(ctx, FlightEventKind::kComplete, 0,
        static_cast<std::uint32_t>(dur_ns / 1e6));
  if (slow) {
    char detail[64];
    std::snprintf(detail, sizeof detail, "p99 exemplar: %.3f ms",
                  dur_ns / 1e6);
    note_anomaly(ctx, AnomalyReason::kSlowTail, detail);
  }
}

void Tracer::note_anomaly(const TraceContext& ctx, AnomalyReason reason,
                          std::string detail) {
  if (!ctx.valid()) return;
  event(ctx, FlightEventKind::kAnomaly,
        static_cast<std::uint16_t>(reason), 0);
  AnomalyRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.reason = reason;
  rec.t_ns = static_cast<std::uint64_t>(trace_clock_ns());
  rec.detail = std::move(detail);
  // Snapshot outside the lock (the ring is lock-free); keep this trace's
  // events plus any chaos firings that landed in the same window.
  std::vector<FlightEvent> all = ring_.snapshot();
  for (const FlightEvent& ev : all) {
    if (ev.trace_id == ctx.trace_id ||
        ev.kind == FlightEventKind::kChaosFire) {
      rec.events.push_back(ev);
    }
  }
  constexpr std::size_t kMaxDumpEvents = 64;
  if (rec.events.size() > kMaxDumpEvents) {
    rec.events.erase(rec.events.begin(),
                     rec.events.end() - kMaxDumpEvents);
  }
  std::lock_guard<std::mutex> lock(mu_);
  annotate_anomaly_locked(rec);
  anomalies_.push_back(std::move(rec));
  while (anomalies_.size() > opt_.max_anomalies) anomalies_.pop_front();
}

void Tracer::annotate_anomaly_locked(const AnomalyRecord& rec) {
  std::vector<SpanArg> args;
  args.push_back({"trace", trace_hex(rec.trace_id), false});
  args.push_back({"detail", rec.detail, false});
  args.push_back({"events", std::to_string(rec.events.size()), true});
  timeline_.instant(std::string("anomaly: ") + anomaly_reason_name(rec.reason),
                    "flight", kTraceTrackAnomaly,
                    static_cast<Nanoseconds>(rec.t_ns), std::move(args));
  for (const FlightEvent& ev : rec.events) {
    std::vector<SpanArg> ev_args;
    ev_args.push_back({"trace", trace_hex(ev.trace_id), false});
    ev_args.push_back({"code", std::to_string(ev.code), true});
    ev_args.push_back({"arg", std::to_string(ev.arg), true});
    timeline_.instant(flight_event_kind_name(ev.kind), "flight",
                      kTraceTrackAnomaly, static_cast<Nanoseconds>(ev.t_ns),
                      std::move(ev_args));
  }
}

std::vector<AnomalyRecord> Tracer::anomalies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AnomalyRecord>(anomalies_.begin(), anomalies_.end());
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeline_.spans().size();
}

std::string Tracer::to_chrome_json(const std::string& process_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeline_.to_chrome_json(process_name);
}

void Tracer::merge_spans(const std::vector<Span>& spans) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& s : spans) {
    if (s.instant) {
      timeline_.instant(s.name, s.category, s.track, s.start_ns, s.args);
    } else {
      timeline_.complete(s.name, s.category, s.track, s.start_ns, s.dur_ns,
                         s.args);
    }
  }
}

}  // namespace cgra::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace cgra::obs {

std::int32_t MetricsRegistry::find(const std::vector<std::string>& names,
                                   std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::int32_t>(i);
  }
  return -1;
}

CounterHandle MetricsRegistry::counter(std::string_view name) {
  if (const std::int32_t i = find(counter_names_, name); i >= 0) {
    return CounterHandle{i};
  }
  counter_names_.emplace_back(name);
  counters_.push_back(0);
  return CounterHandle{static_cast<std::int32_t>(counters_.size() - 1)};
}

GaugeHandle MetricsRegistry::gauge(std::string_view name) {
  if (const std::int32_t i = find(gauge_names_, name); i >= 0) {
    return GaugeHandle{i};
  }
  gauge_names_.emplace_back(name);
  gauges_.push_back(0.0);
  return GaugeHandle{static_cast<std::int32_t>(gauges_.size() - 1)};
}

HistogramHandle MetricsRegistry::histogram(std::string_view name,
                                           std::vector<double> upper_bounds) {
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    if (hists_[i].name == name) {
      return HistogramHandle{static_cast<std::int32_t>(i)};
    }
  }
  if (upper_bounds.empty() ||
      !std::is_sorted(upper_bounds.begin(), upper_bounds.end()) ||
      std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) !=
          upper_bounds.end()) {
    return HistogramHandle{};  // invalid: bounds must be strictly ascending
  }
  Histogram h;
  h.name = std::string(name);
  h.counts.assign(upper_bounds.size() + 1, 0);
  h.bounds = std::move(upper_bounds);
  hists_.push_back(std::move(h));
  return HistogramHandle{static_cast<std::int32_t>(hists_.size() - 1)};
}

void MetricsRegistry::observe_slow(HistogramHandle h, double value) noexcept {
  if (!h.valid()) return;
  Histogram& hist = hists_[static_cast<std::size_t>(h.index)];
  const auto it =
      std::lower_bound(hist.bounds.begin(), hist.bounds.end(), value);
  hist.counts[static_cast<std::size_t>(it - hist.bounds.begin())] += 1;
  hist.total += 1;
  hist.sum += value;
}

std::int64_t MetricsRegistry::counter_value(CounterHandle h) const {
  return h.valid() ? counters_[static_cast<std::size_t>(h.index)] : 0;
}

double MetricsRegistry::gauge_value(GaugeHandle h) const {
  return h.valid() ? gauges_[static_cast<std::size_t>(h.index)] : 0.0;
}

HistogramSnapshot MetricsRegistry::histogram_snapshot(
    HistogramHandle h) const {
  HistogramSnapshot snap;
  if (!h.valid()) return snap;
  const Histogram& hist = hists_[static_cast<std::size_t>(h.index)];
  snap.name = hist.name;
  snap.bounds = hist.bounds;
  snap.counts = hist.counts;
  snap.total = hist.total;
  snap.sum = hist.sum;
  return snap;
}

std::int64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::int32_t i = find(counter_names_, name);
  return i >= 0 ? counters_[static_cast<std::size_t>(i)] : 0;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const std::int32_t i = find(gauge_names_, name);
  return i >= 0 ? gauges_[static_cast<std::size_t>(i)] : 0.0;
}

std::vector<MetricSample> MetricsRegistry::samples() const {
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out.push_back(MetricSample{counter_names_[i], true,
                               static_cast<double>(counters_[i])});
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    out.push_back(MetricSample{gauge_names_[i], false, gauges_[i]});
  }
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::histograms() const {
  std::vector<HistogramSnapshot> out;
  out.reserve(hists_.size());
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    out.push_back(histogram_snapshot(
        HistogramHandle{static_cast<std::int32_t>(i)}));
  }
  return out;
}

void MetricsRegistry::reset_values() {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
  for (Histogram& h : hists_) {
    std::fill(h.counts.begin(), h.counts.end(), 0);
    h.total = 0;
    h.sum = 0.0;
  }
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << json_escape(counter_names_[i]) << "\":" << counters_[i];
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << json_escape(gauge_names_[i])
       << "\":" << json_number(gauges_[i]);
  }
  os << "},\"histograms\":[";
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    const Histogram& h = hists_[i];
    if (i != 0) os << ',';
    os << "{\"name\":\"" << json_escape(h.name) << "\",\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b != 0) os << ',';
      os << json_number(h.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) os << ',';
      os << h.counts[b];
    }
    os << "],\"total\":" << h.total << ",\"sum\":" << json_number(h.sum)
       << '}';
  }
  os << "]}";
  return os.str();
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream os;
  os << "kind,name,value\n";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << "counter," << counter_names_[i] << ',' << counters_[i] << '\n';
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    os << "gauge," << gauge_names_[i] << ',' << json_number(gauges_[i])
       << '\n';
  }
  for (const Histogram& h : hists_) {
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << "histogram," << h.name << "_le_";
      if (b < h.bounds.size()) {
        os << json_number(h.bounds[b]);
      } else {
        os << "inf";
      }
      os << ',' << h.counts[b] << '\n';
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_table() const {
  TextTable table({"metric", "kind", "value"});
  for (const MetricSample& s : samples()) {
    table.add_row({s.name, s.is_counter ? "counter" : "gauge",
                   s.is_counter
                       ? TextTable::integer(static_cast<long long>(s.value))
                       : TextTable::num(s.value)});
  }
  for (const Histogram& h : hists_) {
    table.add_row({h.name, "histogram",
                   TextTable::integer(h.total) + " obs, sum " +
                       TextTable::num(h.sum)});
  }
  return table.render();
}

double histogram_quantile(const HistogramSnapshot& snap, double q) {
  if (snap.total <= 0 || snap.counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(snap.total);
  double cum = 0.0;
  for (std::size_t b = 0; b < snap.counts.size(); ++b) {
    const double prev = cum;
    cum += static_cast<double>(snap.counts[b]);
    if (cum < rank || snap.counts[b] == 0) continue;
    // Overflow bucket has no upper bound: clamp to the last finite one.
    if (b >= snap.bounds.size()) return snap.bounds.back();
    const double lo = b == 0 ? 0.0 : snap.bounds[b - 1];
    const double hi = snap.bounds[b];
    const double frac =
        (rank - prev) / static_cast<double>(snap.counts[b]);
    return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
  }
  return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

}  // namespace cgra::obs

// Span-based timeline tracing exported as Chrome trace-event JSON.
//
// Orchestration layers (epoch runners, the reconfiguration controller, the
// recovery manager) record begin/end spans on named tracks — one track per
// tile plus dedicated tracks for epochs, the serial ICAP channel and link
// rewiring.  The export is the Chrome trace-event format ("traceEvents"
// with "X" complete events), loadable directly in Perfetto or
// chrome://tracing; docs/OBSERVABILITY.md walks through opening one.
//
// Timestamps are simulated nanoseconds on the fabric clock (NOT host
// time); the exporter converts to the format's microsecond unit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/timing.hpp"

namespace cgra::obs {

// Track (Chrome "tid") assignments.  Tiles get their own tracks so
// per-tile stalls and recovery actions line up under each other.
inline constexpr int kTrackEpochs = 0;  ///< Global epoch compute spans.
inline constexpr int kTrackIcap = 1;    ///< Serial ICAP occupancy.
inline constexpr int kTrackLinks = 2;   ///< Link rewiring.
inline constexpr int kTrackTileBase = 16;
[[nodiscard]] constexpr int tile_track(int tile) noexcept {
  return kTrackTileBase + tile;
}

/// One key=value annotation on a span ("args" in the trace format).
struct SpanArg {
  std::string key;
  std::string value;
  bool numeric = false;  ///< Emit unquoted (the value must parse as JSON).
};

/// One recorded span (or instant marker when `instant`).
struct Span {
  std::string name;
  std::string category;
  int track = kTrackEpochs;
  Nanoseconds start_ns = 0.0;
  Nanoseconds dur_ns = 0.0;
  bool instant = false;
  bool open = false;  ///< begin() recorded, end() still pending.
  std::vector<SpanArg> args;
};

/// Records spans; export with to_chrome_json().
class SpanTimeline {
 public:
  using SpanId = std::size_t;

  /// Open a span; pair with end().  Unclosed spans export with zero
  /// duration and are countable via open_spans() (the nesting tests use
  /// this to catch unbalanced instrumentation).
  SpanId begin(std::string name, std::string category, int track,
               Nanoseconds start_ns);
  void end(SpanId id, Nanoseconds end_ns);

  /// Record a complete span in one call (duration already known — the
  /// common case for analytically-costed phases like ICAP streams).
  void complete(std::string name, std::string category, int track,
                Nanoseconds start_ns, Nanoseconds dur_ns,
                std::vector<SpanArg> args = {});

  /// Record a zero-duration marker (e.g. a recovery decision).
  void instant(std::string name, std::string category, int track,
               Nanoseconds at_ns, std::vector<SpanArg> args = {});

  /// Label a track in the exported trace ("thread_name" metadata).
  void set_track_name(int track, std::string name);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::size_t open_spans() const noexcept { return open_; }

  /// Total duration of non-instant spans whose category is `category`.
  [[nodiscard]] Nanoseconds total_in_category(std::string_view category) const;
  /// Total duration of non-instant spans whose name starts with `prefix`.
  [[nodiscard]] Nanoseconds total_with_prefix(std::string_view prefix) const;

  void clear();

  /// Export as Chrome trace-event JSON (complete "X" events sorted by
  /// start time, instant "i" events, and thread_name metadata).
  [[nodiscard]] std::string to_chrome_json(
      const std::string& process_name = "cgra") const;

 private:
  std::vector<Span> spans_;
  std::vector<std::pair<int, std::string>> track_names_;
  std::size_t open_ = 0;
};

/// Validate that `json` parses and conforms to the trace-event schema this
/// library emits: a top-level object with a "traceEvents" array whose
/// entries carry the mandatory fields per phase type ("X" needs name/ts/dur,
/// "i" needs name/ts/s, "M" needs name/args).  Returns the first violation.
Status validate_chrome_trace(std::string_view json);

/// Parse a Chrome trace back into spans (round-trip testing).  Metadata
/// events are dropped; instants come back with instant=true.  Returns an
/// error and leaves `out` unspecified if validation fails.
Status parse_chrome_trace(std::string_view json, std::vector<Span>* out);

}  // namespace cgra::obs

// Bindings of processes to tiles, and their pipeline cost model.
//
// A binding assigns every process of a network to a tile *group*; a group
// may be replicated n times ("instantiating a tile n times for a heavy
// process", Fig. 15), in which case consecutive pipeline items round-robin
// over the replicas and the group's effective time divides by n.
//
// Cost model (matches Sec. 3.4/3.5 and Table 4):
//   * A tile hosting a single process runs it resident: no per-item
//     reconfiguration.
//   * A tile hosting k > 1 processes context-switches between them every
//     item: each activation reloads the process's data3 words (33.33 ns
//     each) and, unless the process's instructions are pinned "(f)", its
//     instruction words (50 ns each).  Pinning is selective: processes are
//     pinned largest-first while the tile's 512-word instruction memory
//     allows.
//   * Initiation interval II = max over groups of busy/replication;
//     throughput = 1 / II; per-tile utilisation = (busy/replication) / II.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/timing.hpp"
#include "procnet/network.hpp"

namespace cgra::mapping {

/// One tile group: a set of processes sharing a tile, possibly replicated.
struct TileGroup {
  std::vector<int> procs;  ///< Process ids, in pipeline order.
  int replication = 1;     ///< Number of physical tiles instantiated.
};

/// A complete assignment of processes to tile groups.
struct Binding {
  std::vector<TileGroup> groups;

  /// Number of physical tiles used.
  [[nodiscard]] int tile_count() const noexcept {
    int n = 0;
    for (const auto& g : groups) n += g.replication;
    return n;
  }

  /// Every process of `net` appears in exactly one group.
  [[nodiscard]] Status validate(const procnet::ProcessNetwork& net) const;

  /// "T0: p2-4(x2)  T1: p5" style rendering for tables and logs.
  [[nodiscard]] std::string describe(
      const procnet::ProcessNetwork& net) const;
};

/// Cost-model parameters.
struct CostParams {
  IcapModel icap;
  int imem_words = kInstMemWords;   ///< Pinning capacity per tile.
  int dmem_words = kDataMemWords;   ///< Residency check per process.
  /// Ablation switch: with pinning disabled, a context-switching tile
  /// reloads every process's instructions on every activation (Table 4's
  /// "(f)" annotations become impossible).
  bool allow_pinning = true;
};

/// Evaluation of one group.
struct GroupEval {
  Nanoseconds work_ns = 0.0;      ///< Pure compute per pipeline item.
  Nanoseconds reconfig_ns = 0.0;  ///< Context-switch ICAP cost per item.
  int pinned_insts = 0;           ///< Instruction words kept resident.
  int total_insts = 0;
  bool all_pinned = true;         ///< Table 4's "(f)" for every process.
  bool data_fits = true;          ///< Heaviest process fits the data memory.

  [[nodiscard]] Nanoseconds busy_ns() const noexcept {
    return work_ns + reconfig_ns;
  }
};

/// Evaluation of a whole binding.
struct BindingEval {
  std::vector<GroupEval> groups;
  Nanoseconds ii_ns = 0.0;          ///< Initiation interval per item.
  double items_per_sec = 0.0;       ///< 1e9 / ii_ns.
  double avg_utilization = 0.0;     ///< Mean over physical tiles.
  bool needs_reconfig = false;      ///< Any multi-process tile.
  bool needs_relink = false;        ///< Any replicated group.
  int tile_count = 0;

  /// Time to process `items` pipeline items (steady-state, ns).
  [[nodiscard]] Nanoseconds time_for_items(std::int64_t items) const noexcept {
    return ii_ns * static_cast<double>(items);
  }
};

/// Per-item busy time of a hypothetical tile hosting exactly `procs`.
Nanoseconds group_busy_ns(const procnet::ProcessNetwork& net,
                          const std::vector<int>& procs,
                          const CostParams& params);

/// Evaluate a binding against a network.
BindingEval evaluate(const procnet::ProcessNetwork& net, const Binding& binding,
                     const CostParams& params);

/// Group index hosting each process: owner[p] = g, or -1 for a process the
/// binding does not mention (validate() rejects those, but partial bindings
/// occur mid-search).
std::vector<int> owner_of_processes(const procnet::ProcessNetwork& net,
                                    const Binding& binding);

/// Convenience: single-tile binding hosting the whole network.
Binding all_on_one_tile(const procnet::ProcessNetwork& net);

}  // namespace cgra::mapping

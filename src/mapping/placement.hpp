// Physical placement of a binding onto the mesh, and Equation 1's term C.
//
// A Binding says *which* processes share a tile; a Placement says *where*
// those tiles sit in the R x C mesh.  "Careful placement of the p's to the
// P's can help in reducing the overall runtime" (Sec. 2): every network
// edge whose producer and consumer tiles are not neighbours pays routed
// copy cost per pipeline item.  This module provides placement strategies,
// the copy-cost evaluation, and a local-search improver.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "interconnect/routing.hpp"
#include "mapping/binding.hpp"

namespace cgra::mapping {

/// Physical placement: for each group g and replica r of a binding,
/// tile_of[g][r] is a linear mesh index.  All indices are distinct.
struct Placement {
  int mesh_rows = 0;
  int mesh_cols = 0;
  std::vector<std::vector<int>> tile_of;

  [[nodiscard]] interconnect::LinkConfig mesh() const {
    return interconnect::LinkConfig(mesh_rows, mesh_cols);
  }
  /// Every replica placed exactly once on a valid, distinct tile.
  [[nodiscard]] Status validate(const Binding& binding) const;
};

/// Placement strategies.
enum class PlacementStrategy {
  kSnake,     ///< Groups laid out along a boustrophedon path: consecutive
              ///< pipeline groups are always mesh neighbours.
  kRowMajor,  ///< Naive row-major order (wraps break adjacency).
  kScatter,   ///< Deterministic worst-ish case: groups spread far apart.
};

const char* placement_strategy_name(PlacementStrategy s) noexcept;

/// Place `binding` on an R x C mesh (throws if it does not fit).
Placement place(const Binding& binding, int mesh_rows, int mesh_cols,
                PlacementStrategy strategy);

/// Place `binding` like place() but never on a tile in `excluded` — the
/// fault-evacuation path remaps work onto the surviving tiles this way.
/// Throws if the survivors cannot host the binding.
Placement place_avoiding(const Binding& binding, int mesh_rows, int mesh_cols,
                         PlacementStrategy strategy,
                         std::span<const int> excluded);

/// Copy-cost evaluation (term C of Eq. 1).
struct PlacementEval {
  Nanoseconds copy_ns_per_item = 0.0;  ///< Routed transfer cost per item.
  int total_hops = 0;                  ///< Extra hops beyond adjacency.
  int non_neighbor_edges = 0;          ///< Edges needing routed copies.
};

/// Evaluate the routed copy cost of every network edge under a placement.
/// Replicated groups charge the worst replica of each edge endpoint (the
/// pipeline must wait for the slowest path).
PlacementEval evaluate_placement(const procnet::ProcessNetwork& net,
                                 const Binding& binding,
                                 const Placement& placement,
                                 const interconnect::CopyCostModel& copy);

/// Greedy pairwise-swap local search: repeatedly swap two tile positions
/// while the copy cost improves.  Returns the improved placement.
Placement improve_placement(const procnet::ProcessNetwork& net,
                            const Binding& binding, Placement placement,
                            const interconnect::CopyCostModel& copy,
                            int max_iterations = 200);

/// Throughput evaluation including term C: the per-item initiation interval
/// grows by the copy cost that cannot be hidden.
BindingEval evaluate_with_placement(const procnet::ProcessNetwork& net,
                                    const Binding& binding,
                                    const Placement& placement,
                                    const CostParams& params,
                                    const interconnect::CopyCostModel& copy);

}  // namespace cgra::mapping

#include "mapping/rebalance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cgra::mapping {

using procnet::ProcessNetwork;

const char* rebalance_name(RebalanceAlgorithm a) noexcept {
  switch (a) {
    case RebalanceAlgorithm::kOne: return "reBalanceOne";
    case RebalanceAlgorithm::kTwo: return "reBalanceTwo";
    case RebalanceAlgorithm::kOpt: return "reBalanceOPT";
  }
  return "?";
}

namespace {

/// Effective per-item time of a group (busy time divided by replication):
/// this is what the group contributes to the initiation interval, so it is
/// what "heaviest" means during rebalancing.
Nanoseconds effective_ns(const ProcessNetwork& net, const TileGroup& g,
                         const CostParams& params) {
  return group_busy_ns(net, g.procs, params) /
         static_cast<double>(g.replication);
}

/// Index of the heaviest group if it can still be improved: a multi-process
/// group can be split, a single-process replicable group can gain a replica.
/// Returns -1 when the bottleneck group cannot be improved — adding tiles
/// anywhere else cannot reduce the initiation interval, so the incremental
/// allocation stops (Algorithm 1's termination).
int heaviest_improvable(const ProcessNetwork& net,
                        const std::vector<TileGroup>& groups,
                        const CostParams& params) {
  int best = -1;
  Nanoseconds best_time = -1.0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const Nanoseconds t = effective_ns(net, groups[i], params);
    if (t > best_time) {
      best_time = t;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return -1;
  const auto& g = groups[static_cast<std::size_t>(best)];
  const bool improvable =
      g.procs.size() > 1 ||
      (g.procs.size() == 1 && net.process(g.procs[0]).replicable);
  return improvable ? best : -1;
}

/// Algorithm 1's split of one multi-process group into two contiguous
/// groups: move processes from the back group to the front one while the
/// imbalance |Time(T2) - Time(T1)| keeps decreasing.
std::pair<TileGroup, TileGroup> split_group(const ProcessNetwork& net,
                                            const TileGroup& g,
                                            const CostParams& params) {
  const auto& procs = g.procs;
  auto imbalance = [&](std::size_t k) {
    const std::vector<int> front(procs.begin(),
                                 procs.begin() + static_cast<std::ptrdiff_t>(k));
    const std::vector<int> back(procs.begin() + static_cast<std::ptrdiff_t>(k),
                                procs.end());
    const Nanoseconds t1 = front.empty() ? 0.0 : group_busy_ns(net, front, params);
    const Nanoseconds t2 = group_busy_ns(net, back, params);
    return std::abs(t2 - t1);
  };
  std::size_t k = 1;  // both halves must be nonempty
  Nanoseconds best = imbalance(k);
  while (k + 1 < procs.size()) {
    const Nanoseconds next = imbalance(k + 1);
    if (next >= best) break;
    best = next;
    ++k;
  }
  TileGroup front;
  front.procs.assign(procs.begin(), procs.begin() + static_cast<std::ptrdiff_t>(k));
  TileGroup back;
  back.procs.assign(procs.begin() + static_cast<std::ptrdiff_t>(k), procs.end());
  return {front, back};
}

/// The "surrounding set" of the heaviest group (Sec. 3.5): the maximal run
/// of single-replication groups containing it, bounded by replicated groups
/// or the ends of the circuit.  Returns [first, last] group indices.
std::pair<int, int> surrounding_set(const std::vector<TileGroup>& groups,
                                    int heavy) {
  int first = heavy;
  while (first > 0 && groups[static_cast<std::size_t>(first - 1)].replication == 1) {
    --first;
  }
  int last = heavy;
  while (last + 1 < static_cast<int>(groups.size()) &&
         groups[static_cast<std::size_t>(last + 1)].replication == 1) {
    ++last;
  }
  return {first, last};
}

/// Algorithm 2's redistribution: spread `procs` over `parts` contiguous
/// groups so each lands near the average time.  A process joins the current
/// group while doing so moves the group closer to the average (and enough
/// processes remain for the later groups).
std::vector<std::vector<int>> average_partition(const ProcessNetwork& net,
                                                const std::vector<int>& procs,
                                                int parts,
                                                const CostParams& params) {
  const int n = static_cast<int>(procs.size());
  std::vector<std::vector<int>> out(static_cast<std::size_t>(parts));
  const Nanoseconds total = group_busy_ns(net, procs, params);
  const Nanoseconds avg = total / parts;

  int j = 0;  // next process
  for (int i = 0; i < parts; ++i) {
    auto& group = out[static_cast<std::size_t>(i)];
    const int groups_left = parts - i - 1;
    // Every later group must still get at least one process.
    while (j < n && (n - j) > groups_left) {
      if (group.empty()) {
        group.push_back(procs[static_cast<std::size_t>(j++)]);
        continue;
      }
      const Nanoseconds cur = group_busy_ns(net, group, params);
      std::vector<int> with = group;
      with.push_back(procs[static_cast<std::size_t>(j)]);
      const Nanoseconds ext = group_busy_ns(net, with, params);
      // Accept if the extended time is closer to the average.
      if (std::abs(ext - avg) <= std::abs(cur - avg)) {
        group = std::move(with);
        ++j;
      } else {
        break;
      }
    }
    if (group.empty() && j < n) {
      group.push_back(procs[static_cast<std::size_t>(j++)]);
    }
  }
  // Any leftover processes go to the last group.
  while (j < n) {
    out.back().push_back(procs[static_cast<std::size_t>(j++)]);
  }
  return out;
}

/// Makespan of a candidate partition.
Nanoseconds partition_makespan(const ProcessNetwork& net,
                               const std::vector<std::vector<int>>& parts,
                               const CostParams& params) {
  Nanoseconds worst = 0.0;
  for (const auto& g : parts) {
    if (!g.empty()) worst = std::max(worst, group_busy_ns(net, g, params));
  }
  return worst;
}

/// Redistribute the surrounding set of the heaviest tile; `optimal` selects
/// the DP (reBalanceOPT) over the average heuristic (reBalanceTwo).
void refine(const ProcessNetwork& net, std::vector<TileGroup>& groups,
            bool optimal, const CostParams& params) {
  for (int iter = 0; iter < 32; ++iter) {
    // Heaviest group overall (replicated groups bound the set but may still
    // be heaviest; refinement then has nothing to redistribute).
    int heavy = -1;
    Nanoseconds heavy_t = -1.0;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const Nanoseconds t = effective_ns(net, groups[i], params);
      if (t > heavy_t) {
        heavy_t = t;
        heavy = static_cast<int>(i);
      }
    }
    if (heavy < 0 || groups[static_cast<std::size_t>(heavy)].replication != 1) {
      return;
    }
    const auto [first, last] = surrounding_set(groups, heavy);
    const int m = last - first + 1;
    if (m <= 1) return;

    std::vector<int> procs;
    for (int i = first; i <= last; ++i) {
      const auto& g = groups[static_cast<std::size_t>(i)].procs;
      procs.insert(procs.end(), g.begin(), g.end());
    }
    if (static_cast<int>(procs.size()) < m) return;

    const auto parts = optimal ? optimal_partition(net, procs, m, params)
                               : average_partition(net, procs, m, params);

    // Accept only if the set's makespan does not get worse.
    std::vector<std::vector<int>> old_parts;
    for (int i = first; i <= last; ++i) {
      old_parts.push_back(groups[static_cast<std::size_t>(i)].procs);
    }
    if (partition_makespan(net, parts, params) >=
        partition_makespan(net, old_parts, params)) {
      return;
    }
    bool changed = false;
    for (int i = 0; i < m; ++i) {
      auto& g = groups[static_cast<std::size_t>(first + i)];
      if (g.procs != parts[static_cast<std::size_t>(i)]) {
        g.procs = parts[static_cast<std::size_t>(i)];
        changed = true;
      }
    }
    if (!changed) return;
  }
}

}  // namespace

std::vector<std::vector<int>> optimal_partition(const ProcessNetwork& net,
                                                const std::vector<int>& procs,
                                                int parts,
                                                const CostParams& params) {
  const int n = static_cast<int>(procs.size());
  parts = std::min(parts, n);
  // cost[i][j] = busy time of procs[i..j] as one group (group costs are not
  // additive because of pinning, so precompute all ranges).
  std::vector<std::vector<Nanoseconds>> cost(
      static_cast<std::size_t>(n),
      std::vector<Nanoseconds>(static_cast<std::size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const std::vector<int> range(procs.begin() + i, procs.begin() + j + 1);
      cost[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          group_busy_ns(net, range, params);
    }
  }
  constexpr Nanoseconds kInf = std::numeric_limits<double>::infinity();
  // dp[k][j] = min makespan of the first j processes split into k groups.
  std::vector<std::vector<Nanoseconds>> dp(
      static_cast<std::size_t>(parts + 1),
      std::vector<Nanoseconds>(static_cast<std::size_t>(n + 1), kInf));
  std::vector<std::vector<int>> cut(
      static_cast<std::size_t>(parts + 1),
      std::vector<int>(static_cast<std::size_t>(n + 1), 0));
  dp[0][0] = 0.0;
  for (int k = 1; k <= parts; ++k) {
    for (int j = k; j <= n; ++j) {
      for (int i = k - 1; i < j; ++i) {
        const Nanoseconds cand =
            std::max(dp[static_cast<std::size_t>(k - 1)]
                       [static_cast<std::size_t>(i)],
                     cost[static_cast<std::size_t>(i)]
                         [static_cast<std::size_t>(j - 1)]);
        if (cand < dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]) {
          dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] = cand;
          cut[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] = i;
        }
      }
    }
  }
  std::vector<std::vector<int>> out(static_cast<std::size_t>(parts));
  int j = n;
  for (int k = parts; k >= 1; --k) {
    const int i = cut[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(k - 1)]
        .assign(procs.begin() + i, procs.begin() + j);
    j = i;
  }
  return out;
}

Binding rebalance(const ProcessNetwork& net, int max_tiles,
                  RebalanceAlgorithm algo, const CostParams& params) {
  Binding binding = all_on_one_tile(net);
  while (binding.tile_count() < max_tiles) {
    auto& groups = binding.groups;
    const int h = heaviest_improvable(net, groups, params);
    if (h < 0) break;  // nothing can be improved further
    auto& heavy = groups[static_cast<std::size_t>(h)];
    if (heavy.procs.size() == 1) {
      // "make T2 as a copy of T1": one more pipelined instantiation.
      heavy.replication += 1;
    } else {
      auto [front, back] = split_group(net, heavy, params);
      heavy = front;
      groups.insert(groups.begin() + h + 1, back);
    }
    if (algo != RebalanceAlgorithm::kOne) {
      refine(net, groups, algo == RebalanceAlgorithm::kOpt, params);
    }
  }
  return binding;
}

std::vector<SweepPoint> sweep(const ProcessNetwork& net, int max_tiles,
                              RebalanceAlgorithm algo,
                              const CostParams& params) {
  std::vector<SweepPoint> points;
  points.reserve(static_cast<std::size_t>(max_tiles));
  for (int n = 1; n <= max_tiles; ++n) {
    SweepPoint pt;
    pt.tiles = n;
    pt.binding = rebalance(net, n, algo, params);
    pt.eval = evaluate(net, pt.binding, params);
    points.push_back(std::move(pt));
  }
  return points;
}

}  // namespace cgra::mapping

#include "mapping/binding.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

namespace cgra::mapping {

using procnet::Process;
using procnet::ProcessNetwork;

Status Binding::validate(const ProcessNetwork& net) const {
  std::vector<int> seen(static_cast<std::size_t>(net.size()), 0);
  for (const auto& g : groups) {
    if (g.replication < 1) return Status::error("replication < 1");
    if (g.procs.empty()) return Status::error("empty tile group");
    for (int p : g.procs) {
      if (p < 0 || p >= net.size()) {
        return Status::error("group references unknown process");
      }
      if (++seen[static_cast<std::size_t>(p)] > 1) {
        return Status::errorf("process '%s' bound twice",
                              net.process(p).name.c_str());
      }
    }
    if (g.replication > 1) {
      for (int p : g.procs) {
        if (!net.process(p).replicable) {
          return Status::errorf("process '%s' is not replicable",
                                net.process(p).name.c_str());
        }
      }
    }
  }
  for (int i = 0; i < net.size(); ++i) {
    if (seen[static_cast<std::size_t>(i)] == 0) {
      return Status::errorf("process '%s' unbound",
                            net.process(i).name.c_str());
    }
  }
  return Status{};
}

std::string Binding::describe(const ProcessNetwork& net) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (i != 0) os << "  ";
    os << "T" << i << ":";
    for (int p : groups[i].procs) os << ' ' << net.process(p).name;
    if (groups[i].replication > 1) os << " (x" << groups[i].replication << ")";
  }
  return os.str();
}

namespace {

/// Pinning decision for one group: pin processes largest-first while the
/// instruction memory allows.  Returns pinned flags aligned with `procs`.
std::vector<bool> pin_selection(const ProcessNetwork& net,
                                const std::vector<int>& procs,
                                int imem_words) {
  std::vector<std::size_t> order(procs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return net.process(procs[a]).insts > net.process(procs[b]).insts;
  });
  std::vector<bool> pinned(procs.size(), false);
  int used = 0;
  for (std::size_t idx : order) {
    const int insts = net.process(procs[idx]).insts;
    if (used + insts <= imem_words) {
      pinned[idx] = true;
      used += insts;
    }
  }
  return pinned;
}

GroupEval evaluate_group(const ProcessNetwork& net,
                         const std::vector<int>& procs,
                         const CostParams& params) {
  GroupEval eval;
  for (int p : procs) {
    const Process& proc = net.process(p);
    eval.work_ns += cycles_to_ns(proc.work_cycles_per_item());
    eval.total_insts += proc.insts;
    if (proc.data_words() > params.dmem_words) eval.data_fits = false;
  }
  if (procs.size() <= 1) {
    // Resident single process: no per-item context switching.
    eval.pinned_insts = eval.total_insts;
    eval.all_pinned = eval.total_insts <= params.imem_words;
    return eval;
  }
  const std::vector<bool> pinned =
      params.allow_pinning ? pin_selection(net, procs, params.imem_words)
                           : std::vector<bool>(procs.size(), false);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const Process& proc = net.process(procs[i]);
    const double activations = proc.invocations_per_item;
    eval.reconfig_ns +=
        activations * params.icap.data_reload_ns(proc.data3);
    if (pinned[i]) {
      eval.pinned_insts += proc.insts;
    } else {
      eval.all_pinned = false;
      eval.reconfig_ns += activations * params.icap.inst_reload_ns(proc.insts);
    }
  }
  return eval;
}

}  // namespace

Nanoseconds group_busy_ns(const ProcessNetwork& net,
                          const std::vector<int>& procs,
                          const CostParams& params) {
  return evaluate_group(net, procs, params).busy_ns();
}

BindingEval evaluate(const ProcessNetwork& net, const Binding& binding,
                     const CostParams& params) {
  BindingEval out;
  out.tile_count = binding.tile_count();
  for (const auto& g : binding.groups) {
    GroupEval ge = evaluate_group(net, g.procs, params);
    if (g.procs.size() > 1) out.needs_reconfig = true;
    if (g.replication > 1) out.needs_relink = true;
    const Nanoseconds effective =
        ge.busy_ns() / static_cast<double>(g.replication);
    out.ii_ns = std::max(out.ii_ns, effective);
    out.groups.push_back(std::move(ge));
  }
  if (out.ii_ns > 0.0) {
    out.items_per_sec = 1e9 / out.ii_ns;
    double util_sum = 0.0;
    for (std::size_t i = 0; i < binding.groups.size(); ++i) {
      const auto& g = binding.groups[i];
      const Nanoseconds effective =
          out.groups[i].busy_ns() / static_cast<double>(g.replication);
      util_sum += static_cast<double>(g.replication) * (effective / out.ii_ns);
    }
    out.avg_utilization =
        out.tile_count > 0 ? util_sum / out.tile_count : 0.0;
  }
  return out;
}

std::vector<int> owner_of_processes(const ProcessNetwork& net,
                                    const Binding& binding) {
  std::vector<int> owner(static_cast<std::size_t>(net.size()), -1);
  for (std::size_t g = 0; g < binding.groups.size(); ++g) {
    for (const int p : binding.groups[g].procs) {
      owner[static_cast<std::size_t>(p)] = static_cast<int>(g);
    }
  }
  return owner;
}

Binding all_on_one_tile(const ProcessNetwork& net) {
  Binding b;
  TileGroup g;
  g.procs.resize(static_cast<std::size_t>(net.size()));
  std::iota(g.procs.begin(), g.procs.end(), 0);
  b.groups.push_back(std::move(g));
  return b;
}

}  // namespace cgra::mapping

// Compiles a mapped process network into an executable epoch schedule.
//
// The paper's flow stops at the analytic cost model; its stated future work
// is "a formal process network formulation for performing an automated
// mapping, placement and dynamic routing".  This module closes that loop
// for pipelines whose processes have real tile programs: given a Binding
// (who shares a tile), a Placement (where the tiles sit) and a program
// library (the implementation of each process), it emits the EpochConfig
// sequence that pushes one pipeline item through the fabric —
//
//   * one epoch per process activation, in dataflow (topological) order —
//     context switches on shared tiles become instruction reloads through
//     the ICAP, exactly as costed,
//   * routed transfer epochs for every cross-tile edge: each hop of the
//     shortest mesh route gets a link reconfiguration plus a cp copy-loop
//     program, with intermediate tiles relaying through a reserved transit
//     region.  Groups need not be contiguous pipeline segments: the
//     automatic mapper (src/mapper/) may co-locate non-adjacent stages,
//
// and run_schedule() executes it cycle-accurately.
#pragma once

#include <map>

#include "config/reconfig.hpp"
#include "mapping/placement.hpp"

namespace cgra::mapping {

/// Implementation of one process.
struct CompiledProcess {
  isa::Program program;                   ///< The tile code.
  std::vector<isa::DataPatch> constants;  ///< Tables (DCT basis, recips...).
  int in_base = 0;    ///< Where the process expects its input block.
  int out_base = 0;   ///< Where it leaves its output block.
  int words = 64;     ///< Block size in words.
};

/// Process id -> implementation.
using ProgramLibrary = std::map<int, CompiledProcess>;

/// Compiler knobs.
struct CompileOptions {
  /// Reserved relay region in every tile's data memory (multi-hop routes
  /// stage data here so they never clobber a host group's layout).
  int transit_base = 256;
  /// Tiles routes must never enter (hard-failed hardware being evacuated).
  /// Placement tiles are the caller's responsibility (place_avoiding).
  std::vector<int> avoid_tiles;
};

/// Provenance of one emitted epoch, parallel to `epochs`.  The recovery
/// layer uses it to checkpoint at process boundaries and to find where to
/// resume after remapping onto surviving tiles.
struct EpochMeta {
  int process = -1;  ///< Process id for run epochs; -1 for route hops.
  int tile = -1;     ///< The tile this epoch reprograms.
  /// Analytic compute estimate of the epoch in fabric cycles — the base of
  /// the epoch watchdog's hang budget.
  std::int64_t predicted_cycles = 0;
};

/// A compiled schedule: run it with config::run_schedule.
struct CompiledSchedule {
  std::vector<config::EpochConfig> epochs;
  std::vector<EpochMeta> meta;  ///< One entry per epoch.
  Status status;  ///< Compilation diagnostics; epochs valid only if ok.

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// Executed cycles attributed to one process of the network.
struct ProcessCycles {
  int process = -1;  ///< Process id; -1 collects the routed transfer hops.
  std::int64_t cycles = 0;            ///< Executed (Timeline::epoch_cycles).
  std::int64_t predicted_cycles = 0;  ///< Analytic (EpochMeta) estimate.
  int epochs = 0;                     ///< Epoch activations attributed.
};

/// Bucket a run's executed cycles by owning process.
///
/// Pairs `timeline.epoch_cycles[i]` (filled by config::run_schedule or the
/// recovery manager) with `sched.meta[i].process`; route-hop epochs land in
/// the process == -1 bucket.  Replayed epochs (recovery) add to their
/// process again — attribution is of executed time, not of useful work.
/// Rows come back sorted by process id, routing first.
std::vector<ProcessCycles> attribute_process_cycles(
    const CompiledSchedule& sched, const config::Timeline& timeline);

/// Compile the flow of ONE pipeline item through `binding` as placed by
/// `placement`.  Replicated groups execute on their first replica (the
/// steady-state round-robin is the cost model's concern, correctness is
/// identical per replica).  Fails with a diagnostic if:
///   * a process lacks a library entry or its program overflows the tile,
///   * an edge's producer and consumer share a tile but disagree on the
///     block location, or an edge closes a cycle,
///   * any region (including transit on route tiles) exceeds data memory.
CompiledSchedule compile_item_schedule(const procnet::ProcessNetwork& net,
                                       const Binding& binding,
                                       const Placement& placement,
                                       const ProgramLibrary& library,
                                       const CompileOptions& options = {});

}  // namespace cgra::mapping

#include "mapping/schedule_compiler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "interconnect/routing.hpp"
#include "isa/assembler.hpp"

namespace cgra::mapping {

using config::EpochConfig;
using config::TileUpdate;
using interconnect::Direction;
using interconnect::LinkConfig;

namespace {

/// A copy-loop program: `words` words from src_base to the neighbour's
/// dst_base (remote) with pointers in the transit control slots.
isa::Program copy_program(int words, int src_base, int dst_base,
                          int ctrl_base) {
  std::ostringstream os;
  os << ".equ ps, " << ctrl_base << "\n"
     << ".equ pd, " << ctrl_base + 1 << "\n"
     << ".equ cnt, " << ctrl_base + 2 << "\n"
     << "  movi ps, #" << src_base << "\n"
     << "  movi pd, #" << dst_base << "\n"
     << "  movi cnt, #" << words << "\n"
     << "loop:\n"
     << "  mov !pd*, ps*\n"
     << "  add ps, ps, #1\n"
     << "  add pd, pd, #1\n"
     << "  sub cnt, cnt, #1\n"
     << "  bnez cnt, loop\n"
     << "  halt\n";
  auto result = isa::assemble(os.str());
  if (!result.ok()) {
    // Generated internally: a failure is a compiler bug, not user input.
    std::fprintf(stderr, "schedule compiler produced bad assembly: %s\n",
                 result.status.message().c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace

CompiledSchedule compile_item_schedule(const procnet::ProcessNetwork& net,
                                       const Binding& binding,
                                       const Placement& placement,
                                       const ProgramLibrary& library,
                                       const CompileOptions& options) {
  CompiledSchedule out;
  if (const Status s = binding.validate(net); !s.ok()) {
    out.status = s;
    return out;
  }
  if (const Status s = placement.validate(binding); !s.ok()) {
    out.status = s;
    return out;
  }
  const LinkConfig mesh = placement.mesh();
  const LinkConfig idle_links(placement.mesh_rows, placement.mesh_cols);
  // The transit control slots live right after the transit block.
  const int transit_ctrl = options.transit_base + 64;
  if (transit_ctrl + 3 > kDataMemWords) {
    out.status = Status::error("transit region exceeds data memory");
    return out;
  }

  auto fail = [&](Status why) {
    out.status = std::move(why);
    out.epochs.clear();
    out.meta.clear();
    return out;
  };

  for (std::size_t g = 0; g < binding.groups.size(); ++g) {
    const auto& group = binding.groups[g];
    const int tile = placement.tile_of[g].front();

    // --- one epoch per process activation on this tile ---
    const CompiledProcess* prev = nullptr;
    for (const int pid : group.procs) {
      const auto it = library.find(pid);
      if (it == library.end()) {
        return fail(Status::errorf("no program for process '%s'",
                                   net.process(pid).name.c_str()));
      }
      const CompiledProcess& impl = it->second;
      if (impl.program.inst_words() > kInstMemWords) {
        return fail(Status::errorf(
            "program too large for process '%s': %d words > %d",
            net.process(pid).name.c_str(), impl.program.inst_words(),
            kInstMemWords));
      }
      if (impl.in_base + impl.words > kDataMemWords ||
          impl.out_base + impl.words > kDataMemWords) {
        return fail(Status::errorf("block region out of range for '%s'",
                                   net.process(pid).name.c_str()));
      }
      if (prev != nullptr && prev->out_base != impl.in_base) {
        return fail(Status::errorf(
            "in-tile chain mismatch: '%s' expects its input where the "
            "previous process did not leave it",
            net.process(pid).name.c_str()));
      }
      EpochConfig epoch;
      epoch.name = "run-" + net.process(pid).name;
      epoch.links = idle_links;
      TileUpdate update;
      update.program = impl.program;
      update.reload_program = true;
      update.patches = impl.constants;
      epoch.tiles[tile] = std::move(update);
      out.epochs.push_back(std::move(epoch));
      out.meta.push_back(
          {pid, tile, net.process(pid).work_cycles_per_item()});
      prev = &impl;
    }

    // --- routed transfer to the next group ---
    if (g + 1 >= binding.groups.size()) break;
    const int next_tile = placement.tile_of[g + 1].front();
    const int last_pid = group.procs.back();
    const int first_next_pid = binding.groups[g + 1].procs.front();
    const CompiledProcess& producer = library.at(last_pid);
    const auto next_it = library.find(first_next_pid);
    if (next_it == library.end()) {
      return fail(Status::errorf("no program for process '%s'",
                                 net.process(first_next_pid).name.c_str()));
    }
    const CompiledProcess& consumer = next_it->second;
    if (producer.words != consumer.words) {
      return fail(Status::errorf(
          "block size mismatch between groups: %d words out, %d words in",
          producer.words, consumer.words));
    }

    const auto route =
        options.avoid_tiles.empty()
            ? interconnect::shortest_route(mesh, tile, next_tile)
            : interconnect::shortest_route_avoiding(mesh, tile, next_tile,
                                                    options.avoid_tiles);
    if (!route || route->length() == 0) {
      return fail(Status::errorf(
          "no route from tile %d to tile %d (same tile, off the mesh, or "
          "blocked by failed tiles)",
          tile, next_tile));
    }
    int hop_from = tile;
    for (int h = 0; h < route->length(); ++h) {
      const Direction dir = route->hops[static_cast<std::size_t>(h)];
      const bool first = h == 0;
      const bool last = h + 1 == route->length();
      const int src_base = first ? producer.out_base : options.transit_base;
      const int dst_base = last ? consumer.in_base : options.transit_base;
      EpochConfig hop;
      hop.name = "route-" + net.process(last_pid).name + "-h" +
                 std::to_string(h);
      hop.links = idle_links;
      if (!hop.links.set_output(hop_from, dir)) {
        return fail(Status::errorf("route leaves the mesh at tile %d",
                                   hop_from));
      }
      TileUpdate update;
      update.program =
          copy_program(producer.words, src_base, dst_base, transit_ctrl);
      update.reload_program = true;
      hop.tiles[hop_from] = std::move(update);
      out.epochs.push_back(std::move(hop));
      // The cp loop retires 5 instructions per word plus setup/halt.
      out.meta.push_back({-1, hop_from, 5 * producer.words + 16});
      hop_from = *mesh.neighbor(hop_from, dir);
    }
  }
  return out;
}

std::vector<ProcessCycles> attribute_process_cycles(
    const CompiledSchedule& sched, const config::Timeline& timeline) {
  std::map<int, ProcessCycles> buckets;
  const std::size_t n =
      std::min(sched.meta.size(), timeline.epoch_cycles.size());
  for (std::size_t i = 0; i < n; ++i) {
    const EpochMeta& m = sched.meta[i];
    ProcessCycles& b = buckets[m.process];
    b.process = m.process;
    b.cycles += timeline.epoch_cycles[i];
    b.predicted_cycles += m.predicted_cycles;
    b.epochs += 1;
  }
  std::vector<ProcessCycles> rows;
  rows.reserve(buckets.size());
  for (auto& [pid, bucket] : buckets) rows.push_back(bucket);
  return rows;
}

}  // namespace cgra::mapping

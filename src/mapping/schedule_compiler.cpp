#include "mapping/schedule_compiler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "interconnect/routing.hpp"
#include "isa/assembler.hpp"

namespace cgra::mapping {

using config::EpochConfig;
using config::TileUpdate;
using interconnect::Direction;
using interconnect::LinkConfig;

namespace {

/// A copy-loop program: `words` words from src_base to the neighbour's
/// dst_base (remote) with pointers in the transit control slots.
isa::Program copy_program(int words, int src_base, int dst_base,
                          int ctrl_base) {
  std::ostringstream os;
  os << ".equ ps, " << ctrl_base << "\n"
     << ".equ pd, " << ctrl_base + 1 << "\n"
     << ".equ cnt, " << ctrl_base + 2 << "\n"
     << "  movi ps, #" << src_base << "\n"
     << "  movi pd, #" << dst_base << "\n"
     << "  movi cnt, #" << words << "\n"
     << "loop:\n"
     << "  mov !pd*, ps*\n"
     << "  add ps, ps, #1\n"
     << "  add pd, pd, #1\n"
     << "  sub cnt, cnt, #1\n"
     << "  bnez cnt, loop\n"
     << "  halt\n";
  auto result = isa::assemble(os.str());
  if (!result.ok()) {
    // Generated internally: a failure is a compiler bug, not user input.
    std::fprintf(stderr, "schedule compiler produced bad assembly: %s\n",
                 result.status.message().c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace

CompiledSchedule compile_item_schedule(const procnet::ProcessNetwork& net,
                                       const Binding& binding,
                                       const Placement& placement,
                                       const ProgramLibrary& library,
                                       const CompileOptions& options) {
  CompiledSchedule out;
  if (const Status s = binding.validate(net); !s.ok()) {
    out.status = s;
    return out;
  }
  if (const Status s = placement.validate(binding); !s.ok()) {
    out.status = s;
    return out;
  }
  const LinkConfig mesh = placement.mesh();
  const LinkConfig idle_links(placement.mesh_rows, placement.mesh_cols);
  // The transit control slots live right after the transit block.
  const int transit_ctrl = options.transit_base + 64;
  if (transit_ctrl + 3 > kDataMemWords) {
    out.status = Status::error("transit region exceeds data memory");
    return out;
  }

  auto fail = [&](Status why) {
    out.status = std::move(why);
    out.epochs.clear();
    out.meta.clear();
    return out;
  };

  // Dataflow-driven emission: processes run in topological order, and every
  // cross-tile edge gets its own routed transfer right before its consumer
  // runs.  For a contiguous pipeline binding this degenerates to the classic
  // group-then-transfer chain, but it is also correct for the bindings the
  // automatic mapper emits (src/mapper/), where a group may host
  // non-adjacent pipeline stages (e.g. {shift, quantize, zigzag} on one
  // tile with the replicated DCT split out).
  const std::vector<int> owner = owner_of_processes(net, binding);
  const std::vector<int> order = procnet::topological_order(net);
  std::vector<bool> ran(static_cast<std::size_t>(net.size()), false);
  for (const int pid : order) {
    const auto it = library.find(pid);
    if (it == library.end()) {
      return fail(Status::errorf("no program for process '%s'",
                                 net.process(pid).name.c_str()));
    }
    const CompiledProcess& impl = it->second;
    if (impl.program.inst_words() > kInstMemWords) {
      return fail(Status::errorf(
          "program too large for process '%s': %d words > %d",
          net.process(pid).name.c_str(), impl.program.inst_words(),
          kInstMemWords));
    }
    if (impl.in_base + impl.words > kDataMemWords ||
        impl.out_base + impl.words > kDataMemWords) {
      return fail(Status::errorf("block region out of range for '%s'",
                                 net.process(pid).name.c_str()));
    }
    const int tile =
        placement.tile_of[static_cast<std::size_t>(owner[
            static_cast<std::size_t>(pid)])].front();

    // --- routed transfer for every inbound cross-tile edge ---
    for (const auto& e : net.edges()) {
      if (e.to != pid) continue;
      if (!ran[static_cast<std::size_t>(e.from)]) {
        return fail(Status::errorf(
            "edge '%s' -> '%s' closes a cycle: one pipeline item cannot "
            "flow through it",
            net.process(e.from).name.c_str(), net.process(pid).name.c_str()));
      }
      // The producer ran, so its library entry already passed the checks.
      const CompiledProcess& producer = library.at(e.from);
      const int from_tile =
          placement.tile_of[static_cast<std::size_t>(owner[
              static_cast<std::size_t>(e.from)])].front();
      if (from_tile == tile) {
        if (producer.out_base != impl.in_base) {
          return fail(Status::errorf(
              "in-tile chain mismatch: '%s' expects its input where '%s' "
              "did not leave it",
              net.process(pid).name.c_str(),
              net.process(e.from).name.c_str()));
        }
        continue;
      }
      if (producer.words != impl.words) {
        return fail(Status::errorf(
            "block size mismatch between groups: %d words out, %d words in",
            producer.words, impl.words));
      }

      const auto route =
          options.avoid_tiles.empty()
              ? interconnect::shortest_route(mesh, from_tile, tile)
              : interconnect::shortest_route_avoiding(mesh, from_tile, tile,
                                                      options.avoid_tiles);
      if (!route || route->length() == 0) {
        return fail(Status::errorf(
            "no route from tile %d to tile %d (same tile, off the mesh, or "
            "blocked by failed tiles)",
            from_tile, tile));
      }
      int hop_from = from_tile;
      for (int h = 0; h < route->length(); ++h) {
        const Direction dir = route->hops[static_cast<std::size_t>(h)];
        const bool first = h == 0;
        const bool last = h + 1 == route->length();
        const int src_base = first ? producer.out_base : options.transit_base;
        const int dst_base = last ? impl.in_base : options.transit_base;
        EpochConfig hop;
        hop.name = "route-" + net.process(e.from).name + "-h" +
                   std::to_string(h);
        hop.links = idle_links;
        if (!hop.links.set_output(hop_from, dir)) {
          return fail(Status::errorf("route leaves the mesh at tile %d",
                                     hop_from));
        }
        TileUpdate update;
        update.program =
            copy_program(producer.words, src_base, dst_base, transit_ctrl);
        update.reload_program = true;
        hop.tiles[hop_from] = std::move(update);
        out.epochs.push_back(std::move(hop));
        // The cp loop retires 5 instructions per word plus setup/halt.
        out.meta.push_back({-1, hop_from, 5 * producer.words + 16});
        hop_from = *mesh.neighbor(hop_from, dir);
      }
    }

    // --- one epoch for the process activation itself ---
    EpochConfig epoch;
    epoch.name = "run-" + net.process(pid).name;
    epoch.links = idle_links;
    TileUpdate update;
    update.program = impl.program;
    update.reload_program = true;
    update.patches = impl.constants;
    epoch.tiles[tile] = std::move(update);
    out.epochs.push_back(std::move(epoch));
    out.meta.push_back({pid, tile, net.process(pid).work_cycles_per_item()});
    ran[static_cast<std::size_t>(pid)] = true;
  }
  return out;
}

std::vector<ProcessCycles> attribute_process_cycles(
    const CompiledSchedule& sched, const config::Timeline& timeline) {
  std::map<int, ProcessCycles> buckets;
  const std::size_t n =
      std::min(sched.meta.size(), timeline.epoch_cycles.size());
  for (std::size_t i = 0; i < n; ++i) {
    const EpochMeta& m = sched.meta[i];
    ProcessCycles& b = buckets[m.process];
    b.process = m.process;
    b.cycles += timeline.epoch_cycles[i];
    b.predicted_cycles += m.predicted_cycles;
    b.epochs += 1;
  }
  std::vector<ProcessCycles> rows;
  rows.reserve(buckets.size());
  for (auto& [pid, bucket] : buckets) rows.push_back(bucket);
  return rows;
}

}  // namespace cgra::mapping

// The paper's rebalancing algorithms (Sec. 3.5, Algorithms 1 and 2).
//
// All three follow the same incremental scheme: start with one tile holding
// the whole pipeline and add tiles one at a time up to the budget, each time
// relieving the heaviest tile — by splitting it if it hosts several
// processes, or by instantiating another copy (replication) if it hosts one.
// They differ in how processes are redistributed after each step:
//
//   reBalanceOne  — Algorithm 1 only: greedy bisection of the heaviest tile.
//   reBalanceTwo  — after each step, Algorithm 2 redistributes the processes
//                   of the set "surrounding" the heaviest tile so that each
//                   tile lands near the set's average execution time.
//   reBalanceOPT  — same surrounding set, but the redistribution is the
//                   optimal contiguous partition (min-makespan DP).
//
// The pipeline order of processes is preserved throughout (the algorithms
// move processes only between neighbouring tiles).
#pragma once

#include <vector>

#include "mapping/binding.hpp"

namespace cgra::mapping {

/// Which rebalancer to run.
enum class RebalanceAlgorithm { kOne, kTwo, kOpt };

/// Short display name ("reBalanceOne", ...).
const char* rebalance_name(RebalanceAlgorithm a) noexcept;

/// Run the chosen rebalancer on the pipeline `net` with a budget of
/// `max_tiles` physical tiles.  The returned binding uses at most
/// `max_tiles` tiles (fewer if no step can improve further).
Binding rebalance(const procnet::ProcessNetwork& net, int max_tiles,
                  RebalanceAlgorithm algo, const CostParams& params);

/// One point of a tile-count sweep (Figures 16/17).
struct SweepPoint {
  int tiles = 0;
  Binding binding;
  BindingEval eval;
};

/// Evaluate the rebalancer for every tile budget in [1, max_tiles].
std::vector<SweepPoint> sweep(const procnet::ProcessNetwork& net,
                              int max_tiles, RebalanceAlgorithm algo,
                              const CostParams& params);

/// Optimal contiguous partition of `procs` into `parts` groups minimising
/// the maximum per-group busy time (exposed for reBalanceOPT and tests).
std::vector<std::vector<int>> optimal_partition(
    const procnet::ProcessNetwork& net, const std::vector<int>& procs,
    int parts, const CostParams& params);

}  // namespace cgra::mapping

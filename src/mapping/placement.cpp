#include "mapping/placement.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace cgra::mapping {

using interconnect::CopyCostModel;
using interconnect::LinkConfig;

Status Placement::validate(const Binding& binding) const {
  if (tile_of.size() != binding.groups.size()) {
    return Status::error("placement group count mismatch");
  }
  std::set<int> used;
  const int n = mesh_rows * mesh_cols;
  for (std::size_t g = 0; g < tile_of.size(); ++g) {
    if (static_cast<int>(tile_of[g].size()) !=
        binding.groups[g].replication) {
      return Status::error("placement replica count mismatch");
    }
    for (const int t : tile_of[g]) {
      if (t < 0 || t >= n) return Status::error("tile index out of mesh");
      if (!used.insert(t).second) {
        return Status::error("tile placed twice");
      }
    }
  }
  return Status{};
}

const char* placement_strategy_name(PlacementStrategy s) noexcept {
  switch (s) {
    case PlacementStrategy::kSnake: return "snake";
    case PlacementStrategy::kRowMajor: return "row-major";
    case PlacementStrategy::kScatter: return "scatter";
  }
  return "?";
}

namespace {

/// Boustrophedon enumeration of mesh tiles: every consecutive pair is a
/// mesh neighbour.
std::vector<int> snake_order(int rows, int cols) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    if (r % 2 == 0) {
      for (int c = 0; c < cols; ++c) order.push_back(r * cols + c);
    } else {
      for (int c = cols - 1; c >= 0; --c) order.push_back(r * cols + c);
    }
  }
  return order;
}

/// Deterministic spreading: stride through the tile list coprime-ish to
/// its length so pipeline neighbours land far apart.
std::vector<int> scatter_order(int rows, int cols) {
  const int n = rows * cols;
  int stride = std::max(2, n / 2 - 1);
  while (std::gcd(stride, n) != 1) ++stride;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  int cur = 0;
  for (int i = 0; i < n; ++i) {
    order.push_back(cur);
    cur = (cur + stride) % n;
  }
  return order;
}

}  // namespace

Placement place(const Binding& binding, int mesh_rows, int mesh_cols,
                PlacementStrategy strategy) {
  return place_avoiding(binding, mesh_rows, mesh_cols, strategy, {});
}

Placement place_avoiding(const Binding& binding, int mesh_rows, int mesh_cols,
                         PlacementStrategy strategy,
                         std::span<const int> excluded) {
  std::set<int> banned(excluded.begin(), excluded.end());
  const int usable = mesh_rows * mesh_cols - static_cast<int>(banned.size());
  const int needed = binding.tile_count();
  if (needed > usable) {
    throw std::invalid_argument("binding does not fit the surviving tiles");
  }
  std::vector<int> order;
  switch (strategy) {
    case PlacementStrategy::kSnake:
      order = snake_order(mesh_rows, mesh_cols);
      break;
    case PlacementStrategy::kRowMajor:
      order.resize(static_cast<std::size_t>(mesh_rows * mesh_cols));
      for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
      }
      break;
    case PlacementStrategy::kScatter:
      order = scatter_order(mesh_rows, mesh_cols);
      break;
  }
  if (!banned.empty()) {
    std::erase_if(order, [&](int t) { return banned.count(t) != 0; });
  }

  Placement p;
  p.mesh_rows = mesh_rows;
  p.mesh_cols = mesh_cols;
  std::size_t next = 0;
  for (const auto& g : binding.groups) {
    std::vector<int> replicas;
    replicas.reserve(static_cast<std::size_t>(g.replication));
    for (int r = 0; r < g.replication; ++r) {
      replicas.push_back(order.at(next++));
    }
    p.tile_of.push_back(std::move(replicas));
  }
  return p;
}

PlacementEval evaluate_placement(const procnet::ProcessNetwork& net,
                                 const Binding& binding,
                                 const Placement& placement,
                                 const CopyCostModel& copy) {
  PlacementEval eval;
  const LinkConfig mesh = placement.mesh();
  const auto owner = owner_of_processes(net, binding);
  for (const auto& edge : net.edges()) {
    const int ga = owner[static_cast<std::size_t>(edge.from)];
    const int gb = owner[static_cast<std::size_t>(edge.to)];
    if (ga < 0 || gb < 0 || ga == gb) continue;  // in-tile communication
    // Worst replica pair: the pipeline is gated by its slowest path.
    int worst = 0;
    for (const int ta : placement.tile_of[static_cast<std::size_t>(ga)]) {
      for (const int tb : placement.tile_of[static_cast<std::size_t>(gb)]) {
        worst = std::max(worst, interconnect::manhattan_distance(mesh, ta, tb));
      }
    }
    if (worst > 1) {
      eval.non_neighbor_edges += 1;
      eval.total_hops += worst - 1;
    }
    // A neighbour edge (1 hop) is the free semi-systolic transfer; routed
    // edges pay every hop beyond it.
    eval.copy_ns_per_item += copy.transfer_ns(edge.words, worst - 1);
  }
  return eval;
}

Placement improve_placement(const procnet::ProcessNetwork& net,
                            const Binding& binding, Placement placement,
                            const CopyCostModel& copy, int max_iterations) {
  auto cost = [&](const Placement& p) {
    return evaluate_placement(net, binding, p, copy).copy_ns_per_item;
  };
  double best = cost(placement);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool improved = false;
    for (std::size_t g1 = 0; g1 < placement.tile_of.size() && !improved; ++g1) {
      for (std::size_t r1 = 0; r1 < placement.tile_of[g1].size() && !improved;
           ++r1) {
        for (std::size_t g2 = g1; g2 < placement.tile_of.size() && !improved;
             ++g2) {
          for (std::size_t r2 = (g2 == g1 ? r1 + 1 : 0);
               r2 < placement.tile_of[g2].size(); ++r2) {
            std::swap(placement.tile_of[g1][r1], placement.tile_of[g2][r2]);
            const double candidate = cost(placement);
            if (candidate < best - 1e-12) {
              best = candidate;
              improved = true;
              break;
            }
            std::swap(placement.tile_of[g1][r1], placement.tile_of[g2][r2]);
          }
        }
      }
    }
    if (!improved) break;
  }
  return placement;
}

BindingEval evaluate_with_placement(const procnet::ProcessNetwork& net,
                                    const Binding& binding,
                                    const Placement& placement,
                                    const CostParams& params,
                                    const CopyCostModel& copy) {
  BindingEval eval = evaluate(net, binding, params);
  const PlacementEval pe = evaluate_placement(net, binding, placement, copy);
  eval.ii_ns += pe.copy_ns_per_item;
  if (eval.ii_ns > 0.0) {
    eval.items_per_sec = 1e9 / eval.ii_ns;
    // Utilisation: the copy epochs keep tiles waiting, lowering everyone.
    double util_sum = 0.0;
    for (std::size_t i = 0; i < binding.groups.size(); ++i) {
      const auto& g = binding.groups[i];
      const Nanoseconds effective =
          eval.groups[i].busy_ns() / static_cast<double>(g.replication);
      util_sum += static_cast<double>(g.replication) * (effective / eval.ii_ns);
    }
    eval.avg_utilization =
        eval.tile_count > 0 ? util_sum / eval.tile_count : 0.0;
  }
  return eval;
}

}  // namespace cgra::mapping

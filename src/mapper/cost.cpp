#include "mapper/cost.hpp"

#include <algorithm>
#include <numeric>

#include "mapping/rebalance.hpp"

namespace cgra::mapper {

using interconnect::LinkConfig;
using mapping::Binding;
using mapping::Placement;
using procnet::ProcessNetwork;

namespace {

/// Worst replica pair of an inter-group edge: the pipeline is gated by its
/// slowest path, so that pair is the one routed and costed (the same rule
/// mapping::evaluate_placement applies).  Deterministic: the first pair of
/// maximal distance in replica order wins.
void worst_pair(const LinkConfig& mesh, const std::vector<int>& from_tiles,
                const std::vector<int>& to_tiles, int* from, int* to) {
  int best = -1;
  for (const int ta : from_tiles) {
    for (const int tb : to_tiles) {
      const int d = interconnect::manhattan_distance(mesh, ta, tb);
      if (d > best) {
        best = d;
        *from = ta;
        *to = tb;
      }
    }
  }
}

}  // namespace

LinkPlan plan_links(const ProcessNetwork& net, const Binding& binding,
                    const Placement& placement, const CostModel& cost) {
  LinkPlan plan;
  const LinkConfig mesh = placement.mesh();
  plan.steady = mesh;  // all links initially unassigned
  const std::vector<int> owner = mapping::owner_of_processes(net, binding);

  // Hottest edge first: per-item word volume is the bandwidth proxy (every
  // edge moves words * 6 bytes per pipeline item).
  std::vector<int> order;
  for (int e = 0; e < static_cast<int>(net.edges().size()); ++e) {
    const auto& edge = net.edges()[static_cast<std::size_t>(e)];
    const int ga = owner[static_cast<std::size_t>(edge.from)];
    const int gb = owner[static_cast<std::size_t>(edge.to)];
    if (ga < 0 || gb < 0 || ga == gb) continue;  // in-tile communication
    order.push_back(e);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return net.edges()[static_cast<std::size_t>(a)].words >
           net.edges()[static_cast<std::size_t>(b)].words;
  });

  for (const int e : order) {
    const auto& edge = net.edges()[static_cast<std::size_t>(e)];
    const int ga = owner[static_cast<std::size_t>(edge.from)];
    const int gb = owner[static_cast<std::size_t>(edge.to)];
    RoutedEdge r;
    r.edge = e;
    r.words = edge.words;
    worst_pair(mesh, placement.tile_of[static_cast<std::size_t>(ga)],
               placement.tile_of[static_cast<std::size_t>(gb)], &r.from_tile,
               &r.to_tile);
    const auto route =
        interconnect::shortest_route(mesh, r.from_tile, r.to_tile);
    if (!route.has_value()) continue;  // unreachable on a valid mesh
    int cur = r.from_tile;
    r.path.push_back(cur);
    for (const auto dir : route->hops) {
      const auto claimed = plan.steady.output(cur);
      if (!claimed.has_value()) {
        // This edge wins the tile's 48-wire link: free steady transfer.
        plan.steady.set_output(cur, dir);
        ++r.owned_links;
      } else if (*claimed == dir) {
        ++r.owned_links;  // shares the already-won wire direction
      } else {
        ++r.switched_links;  // must flip a busier edge's link every item
      }
      cur = *mesh.neighbor(cur, dir);
      r.path.push_back(cur);
    }
    const int hops = route->length();
    r.copy_ns = cost.copy.transfer_ns(edge.words, hops - 1);
    r.link_ns = cost.link.links_ns(r.switched_links);
    plan.copy_ns += r.copy_ns;
    plan.link_ns += r.link_ns;
    plan.routes.push_back(std::move(r));
  }
  return plan;
}

MappedCost score_mapping(const ProcessNetwork& net, const Binding& binding,
                         const Placement& placement, const CostModel& cost) {
  MappedCost out;
  out.ii_ns = mapping::evaluate(net, binding, cost.params).ii_ns;
  const LinkPlan plan = plan_links(net, binding, placement, cost);
  out.copy_ns = plan.copy_ns;
  out.link_ns = plan.link_ns;
  return out;
}

std::vector<int> topological_order(const ProcessNetwork& net) {
  return procnet::topological_order(net);
}

int water_fill_replicas(const ProcessNetwork& net, Binding& binding, int extra,
                        const mapping::CostParams& params) {
  std::vector<Nanoseconds> busy(binding.groups.size());
  for (std::size_t g = 0; g < binding.groups.size(); ++g) {
    busy[g] = mapping::group_busy_ns(net, binding.groups[g].procs, params);
  }
  int added = 0;
  for (int k = 0; k < extra; ++k) {
    std::size_t heaviest = 0;
    double worst = -1.0;
    for (std::size_t g = 0; g < binding.groups.size(); ++g) {
      const double eff =
          busy[g] / static_cast<double>(binding.groups[g].replication);
      if (eff > worst) {
        worst = eff;
        heaviest = g;
      }
    }
    auto& grp = binding.groups[heaviest];
    // Only replicating the bottleneck can lower II; if it cannot be
    // replicated, further replicas anywhere just add placement cost.
    if (grp.procs.size() != 1 ||
        !net.process(grp.procs.front()).replicable) {
      break;
    }
    ++grp.replication;
    ++added;
  }
  return added;
}

std::vector<Binding> seed_bindings(const ProcessNetwork& net, int budget,
                                   const mapping::CostParams& params) {
  std::vector<Binding> out;
  const std::vector<int> order = procnet::topological_order(net);
  const int max_groups = std::min(budget, net.size());
  for (int g = 1; g <= max_groups; ++g) {
    Binding b;
    for (auto& part : mapping::optimal_partition(net, order, g, params)) {
      b.groups.push_back({std::move(part), 1});
    }
    // Replication lifts compute-bound shapes and sinks copy-bound ones
    // (every replica pair pays placement cost), so offer the caller both
    // the plain partition and the water-filled variant.
    Binding filled = b;
    out.push_back(std::move(b));
    if (water_fill_replicas(net, filled, budget - g, params) > 0) {
      out.push_back(std::move(filled));
    }
  }
  return out;
}

}  // namespace cgra::mapper

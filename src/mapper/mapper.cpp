#include "mapper/mapper.hpp"

namespace cgra::mapper {

const char* solver_kind_name(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::kAuto: return "auto";
    case SolverKind::kExact: return "exact";
    case SolverKind::kAnneal: return "anneal";
  }
  return "?";
}

Status validate_map_inputs(const procnet::ProcessNetwork& net, int mesh_rows,
                           int mesh_cols, const MapperOptions& options) {
  if (mesh_rows < 1 || mesh_cols < 1) {
    return Status::errorf("mesh %dx%d is empty", mesh_rows, mesh_cols);
  }
  if (Status s = net.validate(); !s.ok()) return s;
  const auto& params = options.cost.params;
  for (int i = 0; i < net.size(); ++i) {
    const auto& p = net.process(i);
    if (p.data_words() > params.dmem_words) {
      return Status::errorf("process '%s' needs %d data words (tile has %d)",
                            p.name.c_str(), p.data_words(), params.dmem_words);
    }
    if (p.insts > params.imem_words) {
      return Status::errorf(
          "process '%s' needs %d instruction words (tile has %d)",
          p.name.c_str(), p.insts, params.imem_words);
    }
    if (p.runtime_cycles < 0 || p.invocations_per_item < 1) {
      return Status::errorf("process '%s' has invalid runtime annotations",
                            p.name.c_str());
    }
  }
  if (options.max_tiles < 0) {
    return Status::errorf("max_tiles %d is negative", options.max_tiles);
  }
  return Status{};
}

std::unique_ptr<Mapper> make_mapper(SolverKind kind) {
  if (kind == SolverKind::kAnneal) return std::make_unique<AnnealMapper>();
  return std::make_unique<ExactMapper>();  // kExact and kAuto's small-mesh arm
}

MappedNetwork map_network(const procnet::ProcessNetwork& net, int mesh_rows,
                          int mesh_cols, const MapperOptions& options) {
  SolverKind kind = options.solver;
  if (kind == SolverKind::kAuto) {
    const bool small = mesh_rows * mesh_cols <= 16 && net.size() <= 12;
    kind = small ? SolverKind::kExact : SolverKind::kAnneal;
  }
  MapperOptions resolved = options;
  resolved.solver = kind;
  return make_mapper(kind)->map(net, mesh_rows, mesh_cols, resolved);
}

MappedNetwork score_manual(const procnet::ProcessNetwork& net,
                           const mapping::Binding& binding, int mesh_rows,
                           int mesh_cols, const MapperOptions& options) {
  MappedNetwork out;
  out.solver = "manual";
  out.status = validate_map_inputs(net, mesh_rows, mesh_cols, options);
  if (!out.status.ok()) return out;
  out.status = binding.validate(net);
  if (!out.status.ok()) return out;
  if (binding.tile_count() > mesh_rows * mesh_cols) {
    out.status = Status::errorf("manual binding needs %d tiles, mesh has %d",
                                binding.tile_count(), mesh_rows * mesh_cols);
    return out;
  }
  out.binding = binding;
  out.placement = mapping::improve_placement(
      net, binding,
      mapping::place(binding, mesh_rows, mesh_cols,
                     mapping::PlacementStrategy::kSnake),
      options.cost.copy);
  out.links = plan_links(net, out.binding, out.placement, options.cost);
  out.eval = mapping::evaluate(net, out.binding, options.cost.params);
  out.cost = score_mapping(net, out.binding, out.placement, options.cost);
  return out;
}

mapping::CompiledSchedule compile_mapped_schedule(
    const procnet::ProcessNetwork& net, const MappedNetwork& mapped,
    const mapping::ProgramLibrary& library,
    const mapping::CompileOptions& compile_options) {
  if (!mapped.ok()) {
    mapping::CompiledSchedule sched;
    sched.status = Status::error("cannot compile a failed mapping: " +
                                 std::string(mapped.status.message()));
    return sched;
  }
  return mapping::compile_item_schedule(net, mapped.binding, mapped.placement,
                                        library, compile_options);
}

}  // namespace cgra::mapper

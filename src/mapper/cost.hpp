// Shared cost model of the automatic mapper.
//
// Both solvers (mapper::ExactMapper, mapper::AnnealMapper) minimise the same
// per-item makespan:
//
//   total = II(binding)              epoch makespan from mapping::evaluate
//         + copy_ns                  mesh distance x byte-rate (Eq. 1 term C)
//         + link_ns                  per-item link flips for edges that lost
//                                    the bandwidth race for a 48-wire link
//
// The link term is the BandMap policy (PAPERS.md): inter-process edges are
// sorted hottest-first by their per-item word volume, and each tile's single
// steady output link is granted to the first edge that asks for it.  Colder
// edges crossing the same tile must flip the link every pipeline item and
// are charged the swept per-link reconfiguration cost L for every such hop.
#pragma once

#include <vector>

#include "interconnect/routing.hpp"
#include "mapping/placement.hpp"

namespace cgra::mapper {

/// The three cost-model ingredients every mapper call shares.
struct CostModel {
  mapping::CostParams params{};          ///< II / pinning / ICAP model.
  interconnect::CopyCostModel copy{};    ///< Routed copy cost per word-hop.
  /// Per-link reconfiguration cost L.  Nonzero by default (the paper sweeps
  /// L; 50 ns matches the executed-schedule benches) so bandwidth-aware
  /// link allocation actually differentiates placements.
  interconnect::LinkCostModel link{50.0};
};

/// One inter-group edge after routing and link allocation.
struct RoutedEdge {
  int edge = -1;       ///< Index into net.edges().
  int from_tile = -1;  ///< Costed (worst) producer replica.
  int to_tile = -1;    ///< Costed (worst) consumer replica.
  int words = 0;       ///< 48-bit words per pipeline item.
  std::vector<int> path;   ///< Tile indices from producer to consumer.
  int owned_links = 0;     ///< Hops riding a steady 48-wire link for free.
  int switched_links = 0;  ///< Hops flipping a busier tile's link per item.
  Nanoseconds copy_ns = 0.0;  ///< Relay copies beyond the adjacent hop.
  Nanoseconds link_ns = 0.0;  ///< Per-item link reconfiguration charge.

  [[nodiscard]] Nanoseconds ns_per_item() const noexcept {
    return copy_ns + link_ns;
  }
};

/// Bandwidth-aware link assignment for a placed binding.
struct LinkPlan {
  interconnect::LinkConfig steady;  ///< Who owns each tile's output link.
  std::vector<RoutedEdge> routes;   ///< Inter-group edges, hottest first.
  Nanoseconds copy_ns = 0.0;        ///< Sum of per-edge relay copies.
  Nanoseconds link_ns = 0.0;        ///< Sum of per-edge link flips.
};

/// Per-item cost of a complete mapping.
struct MappedCost {
  Nanoseconds ii_ns = 0.0;    ///< Binding epoch makespan (mapping::evaluate).
  Nanoseconds copy_ns = 0.0;  ///< Routed copy cost of the placement.
  Nanoseconds link_ns = 0.0;  ///< Link flips for edges without a steady wire.
  [[nodiscard]] Nanoseconds total_ns() const noexcept {
    return ii_ns + copy_ns + link_ns;
  }
};

/// Route every inter-group edge (worst replica pair, matching the placement
/// cost model) and allocate steady links hottest-edge-first.
LinkPlan plan_links(const procnet::ProcessNetwork& net,
                    const mapping::Binding& binding,
                    const mapping::Placement& placement,
                    const CostModel& cost);

/// Score a complete mapping under the shared cost model.
MappedCost score_mapping(const procnet::ProcessNetwork& net,
                         const mapping::Binding& binding,
                         const mapping::Placement& placement,
                         const CostModel& cost);

/// Deterministic topological order (procnet::topological_order, re-exported
/// here because both solvers seed from it).
std::vector<int> topological_order(const procnet::ProcessNetwork& net);

/// List-scheduling seed: min-makespan contiguous partition of the
/// topological order into g groups for every g <= budget, returned both
/// plain and (when the leftover budget adds any) water-filled with replicas
/// — replication lifts compute-bound shapes and sinks copy-bound ones, so
/// the caller scores both.  Never empty for a valid network and budget >= 1.
std::vector<mapping::Binding> seed_bindings(const procnet::ProcessNetwork& net,
                                            int budget,
                                            const mapping::CostParams& params);

/// Grow `binding` by `extra` replicas, one at a time, always replicating the
/// group with the highest effective busy time.  Stops early when that group
/// is not a replicable singleton.  Returns how many replicas were added.
int water_fill_replicas(const procnet::ProcessNetwork& net,
                        mapping::Binding& binding, int extra,
                        const mapping::CostParams& params);

}  // namespace cgra::mapper

// Exact mapper: branch-and-bound over set partitions composed with a
// placement branch-and-bound, both under admissible lower bounds.
//
// Candidate space (documented in docs/MAPPING.md):
//   * bindings: every set partition of the processes into at most
//     `budget` groups (canonical enumeration in topological order, each
//     partition generated exactly once), crossed with every replication
//     vector that is minimal for its makespan level — a replica that does
//     not lower II can only add placement cost, so non-minimal vectors are
//     dominated and skipped;
//   * placements: every injective assignment of group replicas to mesh
//     tiles, searched with an incremental worst-replica-pair copy-cost
//     bound (the link term is evaluated at leaves; it is nonnegative, so
//     the bound stays admissible).
//
// Candidates are placement-searched in order of rising II and the search
// stops as soon as the next candidate's II cannot beat the best total —
// II is a lower bound on any placement's total.  `optimal` reports whether
// that proof ran to completion inside the node budgets.
#include <algorithm>
#include <cmath>

#include "mapper/mapper.hpp"

namespace cgra::mapper {

namespace {

using mapping::Binding;
using mapping::Placement;
using procnet::ProcessNetwork;

struct Candidate {
  Binding binding;
  Nanoseconds ii_ns = 0.0;
  int tiles = 0;
};

/// Inter-group edge of one candidate binding.
struct GroupEdge {
  int a = 0;  ///< Producer group.
  int b = 0;  ///< Consumer group.
  int words = 0;
};

/// Replication vectors minimal for their makespan level: r_i(t) =
/// ceil(busy_i / t) over replicable singletons, one vector per candidate
/// level t drawn from {busy_i / k}.  Returns deduplicated vectors (always
/// including all-ones) whose tile sum fits the budget.
std::vector<std::vector<int>> minimal_replications(
    const ProcessNetwork& net, const std::vector<std::vector<int>>& groups,
    int budget, const mapping::CostParams& params) {
  const int g = static_cast<int>(groups.size());
  std::vector<Nanoseconds> busy(groups.size());
  std::vector<bool> replicable(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    busy[i] = mapping::group_busy_ns(net, groups[i], params);
    replicable[i] = groups[i].size() == 1 &&
                    net.process(groups[i].front()).replicable;
  }
  std::vector<std::vector<int>> out;
  auto add_level = [&](double t) {
    if (t <= 0.0) return;
    std::vector<int> r(groups.size(), 1);
    int total = 0;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (replicable[i] && busy[i] > t) {
        r[i] = static_cast<int>(std::ceil(busy[i] / t - 1e-9));
      }
      total += r[i];
    }
    if (total > budget) return;
    if (std::find(out.begin(), out.end(), r) == out.end()) {
      out.push_back(std::move(r));
    }
  };
  add_level(*std::max_element(busy.begin(), busy.end()));  // all ones
  // Every group's busy/k is a candidate level, k = 1 included: a slow
  // non-replicable (or unsplit) group sets the makespan floor the OTHER
  // groups replicate down to, so its k = 1 level demands a vector of its
  // own (e.g. the diamond: join's floor asks left and right for 2 replicas
  // each even though join itself never replicates).
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const int k_max = replicable[i] ? budget - g + 1 : 1;
    for (int k = 1; k <= k_max; ++k) {
      add_level(busy[i] / static_cast<double>(k));
    }
  }
  return out;
}

/// Placement branch-and-bound for one candidate binding.
class PlacementSearch {
 public:
  PlacementSearch(const ProcessNetwork& net, const Candidate& cand,
                  const CostModel& cost, int mesh_rows, int mesh_cols,
                  std::int64_t* nodes_left)
      : net_(net),
        cand_(cand),
        cost_(cost),
        mesh_rows_(mesh_rows),
        mesh_cols_(mesh_cols),
        mesh_(mesh_rows, mesh_cols),
        nodes_left_(nodes_left) {
    const int n = mesh_.tile_count();
    dist_.assign(static_cast<std::size_t>(n * n), 0);
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        dist_[static_cast<std::size_t>(a * n + b)] =
            interconnect::manhattan_distance(mesh_, a, b);
      }
    }
    const auto owner = mapping::owner_of_processes(net, cand.binding);
    for (int e = 0; e < static_cast<int>(net.edges().size()); ++e) {
      const auto& edge = net.edges()[static_cast<std::size_t>(e)];
      const int ga = owner[static_cast<std::size_t>(edge.from)];
      const int gb = owner[static_cast<std::size_t>(edge.to)];
      if (ga == gb) continue;
      edges_.push_back({ga, gb, edge.words});
    }
    for (int g = 0; g < static_cast<int>(cand.binding.groups.size()); ++g) {
      edges_of_group_.emplace_back();
      for (int e = 0; e < static_cast<int>(edges_.size()); ++e) {
        if (edges_[static_cast<std::size_t>(e)].a == g ||
            edges_[static_cast<std::size_t>(e)].b == g) {
          edges_of_group_.back().push_back(e);
        }
      }
      for (int r = 0; r < cand.binding.groups[static_cast<std::size_t>(g)]
                              .replication;
           ++r) {
        units_.push_back(g);
      }
    }
    worst_.assign(edges_.size(), -1);
    placed_.assign(cand.binding.groups.size(), {});
  }

  /// Search; updates *best_total/*best_placement on improvement.  Returns
  /// false if the node budget ran out (proof incomplete).
  bool run(Nanoseconds* best_total, Placement* best_placement) {
    best_total_ = best_total;
    best_placement_ = best_placement;
    complete_ = true;
    descend(0, 0u, 0.0);
    return complete_;
  }

 private:
  [[nodiscard]] Nanoseconds edge_cost(int words, int d) const {
    return cost_.copy.transfer_ns(words, d - 1);
  }

  void descend(std::size_t unit, std::uint32_t used, Nanoseconds partial) {
    if (*nodes_left_ <= 0) {
      complete_ = false;
      return;
    }
    --*nodes_left_;
    if (unit == units_.size()) {
      leaf(partial);
      return;
    }
    const int g = units_[unit];
    // Replicas of one group are interchangeable: force ascending tile
    // indices within the group to break the r! symmetry.
    const int floor_tile =
        (unit > 0 && units_[unit - 1] == g)
            ? placed_[static_cast<std::size_t>(g)].back() + 1
            : 0;
    const int n = mesh_.tile_count();
    for (int t = floor_tile; t < n; ++t) {
      if ((used >> t) & 1u) continue;
      // Incrementally lift each touched edge's worst placed replica pair.
      // The undo log is per level: recursion below reuses the shared
      // worst_ array, so each frame must restore exactly its own writes.
      Nanoseconds delta = 0.0;
      std::vector<std::pair<int, int>> undo;
      for (const int e : edges_of_group_[static_cast<std::size_t>(g)]) {
        const auto& ge = edges_[static_cast<std::size_t>(e)];
        const int other = ge.a == g ? ge.b : ge.a;
        int far = worst_[static_cast<std::size_t>(e)];
        for (const int t2 : placed_[static_cast<std::size_t>(other)]) {
          far = std::max(far, dist_[static_cast<std::size_t>(
                                  t * n + t2)]);
        }
        // The same-group placed replicas never pair with t (an edge always
        // crosses groups), so `far` only reflects cross-group pairs.
        if (far != worst_[static_cast<std::size_t>(e)]) {
          const int old = worst_[static_cast<std::size_t>(e)];
          delta += edge_cost(ge.words, far) -
                   (old < 0 ? 0.0 : edge_cost(ge.words, old));
          undo.emplace_back(e, old);
          worst_[static_cast<std::size_t>(e)] = far;
        }
      }
      const Nanoseconds bound = cand_.ii_ns + partial + delta;
      if (bound < *best_total_) {
        placed_[static_cast<std::size_t>(g)].push_back(t);
        descend(unit + 1, used | (1u << t), partial + delta);
        placed_[static_cast<std::size_t>(g)].pop_back();
      }
      for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        worst_[static_cast<std::size_t>(it->first)] = it->second;
      }
      if (!complete_) return;
    }
  }

  void leaf(Nanoseconds partial) {
    Placement p;
    p.mesh_rows = mesh_rows_;
    p.mesh_cols = mesh_cols_;
    p.tile_of = placed_;
    const LinkPlan plan = plan_links(net_, cand_.binding, p, cost_);
    const Nanoseconds total = cand_.ii_ns + partial + plan.link_ns;
    if (total < *best_total_) {
      *best_total_ = total;
      *best_placement_ = std::move(p);
    }
  }

  const ProcessNetwork& net_;
  const Candidate& cand_;
  const CostModel& cost_;
  int mesh_rows_;
  int mesh_cols_;
  interconnect::LinkConfig mesh_;
  std::int64_t* nodes_left_;
  std::vector<int> dist_;
  std::vector<GroupEdge> edges_;
  std::vector<std::vector<int>> edges_of_group_;
  std::vector<int> units_;                  ///< Group id per placed replica.
  std::vector<int> worst_;                  ///< Per-edge worst placed pair.
  std::vector<std::vector<int>> placed_;    ///< Tiles per group so far.
  Nanoseconds* best_total_ = nullptr;
  Placement* best_placement_ = nullptr;
  bool complete_ = true;
};

/// Canonical set-partition enumeration with busy-time lower bounds.
class PartitionSearch {
 public:
  PartitionSearch(const ProcessNetwork& net, int budget,
                  const mapping::CostParams& params,
                  std::int64_t* nodes_left)
      : net_(net), budget_(budget), params_(params), nodes_left_(nodes_left) {
    order_ = procnet::topological_order(net);
  }

  /// Enumerate partitions whose II lower bound stays below `prune_above`,
  /// emitting every (partition x minimal replication) candidate.  Returns
  /// false if the node budget ran out.
  bool run(Nanoseconds prune_above, std::vector<Candidate>* out) {
    prune_above_ = prune_above;
    out_ = out;
    complete_ = true;
    assign(0);
    return complete_;
  }

 private:
  void assign(std::size_t idx) {
    if (*nodes_left_ <= 0) {
      complete_ = false;
      return;
    }
    --*nodes_left_;
    if (idx == order_.size()) {
      emit();
      return;
    }
    const int p = order_[idx];
    const int g = static_cast<int>(groups_.size());
    for (int target = 0; target <= g && complete_; ++target) {
      if (target == g && g >= budget_) break;
      if (target == g) {
        groups_.emplace_back(1, p);
        busy_.push_back(mapping::group_busy_ns(net_, groups_.back(), params_));
      } else {
        groups_[static_cast<std::size_t>(target)].push_back(p);
        busy_[static_cast<std::size_t>(target)] = mapping::group_busy_ns(
            net_, groups_[static_cast<std::size_t>(target)], params_);
      }
      if (lower_bound() < prune_above_) assign(idx + 1);
      if (target == g) {
        groups_.pop_back();
        busy_.pop_back();
      } else {
        groups_[static_cast<std::size_t>(target)].pop_back();
        busy_[static_cast<std::size_t>(target)] = mapping::group_busy_ns(
            net_, groups_[static_cast<std::size_t>(target)], params_);
      }
    }
  }

  /// Admissible II bound of any completion of the partial partition: a
  /// multi-process group can never replicate; a singleton may replicate up
  /// to the tiles no other group needs.
  [[nodiscard]] Nanoseconds lower_bound() const {
    const int g = static_cast<int>(groups_.size());
    const int cap = std::max(1, budget_ - g + 1);
    Nanoseconds lb = 0.0;
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      const bool can_replicate =
          groups_[i].size() == 1 && net_.process(groups_[i].front()).replicable;
      lb = std::max(lb, can_replicate ? busy_[i] / cap : busy_[i]);
    }
    return lb;
  }

  void emit() {
    for (auto& r : minimal_replications(net_, groups_, budget_, params_)) {
      Candidate c;
      for (std::size_t i = 0; i < groups_.size(); ++i) {
        c.binding.groups.push_back({groups_[i], r[i]});
      }
      c.ii_ns = mapping::evaluate(net_, c.binding, params_).ii_ns;
      c.tiles = c.binding.tile_count();
      if (c.ii_ns < prune_above_) out_->push_back(std::move(c));
    }
  }

  const ProcessNetwork& net_;
  int budget_;
  const mapping::CostParams& params_;
  std::int64_t* nodes_left_;
  std::vector<int> order_;
  std::vector<std::vector<int>> groups_;
  std::vector<Nanoseconds> busy_;
  Nanoseconds prune_above_ = 0.0;
  std::vector<Candidate>* out_ = nullptr;
  bool complete_ = true;
};

}  // namespace

MappedNetwork ExactMapper::map(const ProcessNetwork& net, int mesh_rows,
                               int mesh_cols,
                               const MapperOptions& options) const {
  MappedNetwork out;
  out.solver = name();
  out.status = validate_map_inputs(net, mesh_rows, mesh_cols, options);
  if (!out.status.ok()) return out;
  const int mesh_tiles = mesh_rows * mesh_cols;
  if (mesh_tiles > 16 || net.size() > 12) {
    out.status = Status::errorf(
        "exact mapper handles meshes of <= 16 tiles and <= 12 processes "
        "(got %dx%d, %d processes); use the annealing solver",
        mesh_rows, mesh_cols, net.size());
    return out;
  }
  const int budget =
      options.max_tiles > 0 ? std::min(options.max_tiles, mesh_tiles)
                            : mesh_tiles;
  const CostModel& cost = options.cost;

  // Greedy seed: best list-scheduling binding under snake + local search —
  // a finite incumbent that makes the bounds bite from the first node.
  Nanoseconds best_total = 0.0;
  bool have_best = false;
  Binding best_binding;
  Placement best_placement;
  for (const auto& seed : seed_bindings(net, budget, cost.params)) {
    Placement p = mapping::improve_placement(
        net, seed,
        mapping::place(seed, mesh_rows, mesh_cols,
                       mapping::PlacementStrategy::kSnake),
        cost.copy);
    const Nanoseconds total = score_mapping(net, seed, p, cost).total_ns();
    if (!have_best || total < best_total) {
      have_best = true;
      best_total = total;
      best_binding = seed;
      best_placement = std::move(p);
    }
  }

  std::int64_t nodes_left = options.node_budget;
  std::vector<Candidate> candidates;
  PartitionSearch partitions(net, budget, cost.params, &nodes_left);
  bool proof = partitions.run(best_total, &candidates);

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.ii_ns != b.ii_ns) return a.ii_ns < b.ii_ns;
                     return a.tiles < b.tiles;
                   });

  int searched = 0;
  for (const auto& cand : candidates) {
    if (cand.ii_ns >= best_total) break;  // II bounds any placement's total
    if (searched >= options.binding_budget || nodes_left <= 0) {
      proof = false;
      break;
    }
    ++searched;
    Nanoseconds before = best_total;
    PlacementSearch search(net, cand, cost, mesh_rows, mesh_cols,
                           &nodes_left);
    Placement found;
    if (!search.run(&best_total, &found)) proof = false;
    if (best_total < before) {
      best_binding = cand.binding;
      best_placement = std::move(found);
    }
  }

  out.binding = std::move(best_binding);
  out.placement = std::move(best_placement);
  out.links = plan_links(net, out.binding, out.placement, cost);
  out.eval = mapping::evaluate(net, out.binding, cost.params);
  out.cost = score_mapping(net, out.binding, out.placement, cost);
  out.optimal = proof;
  out.nodes_explored = options.node_budget - nodes_left;
  return out;
}

}  // namespace cgra::mapper

// Automatic process-network mapper (ROADMAP item 3).
//
// Takes any procnet::Network annotated with per-process cycle counts and
// per-edge word volumes and emits the complete recipe the rest of the stack
// consumes: a Binding (who shares a tile, with replication), a Placement
// (where on the R x C mesh), a bandwidth-aware LinkPlan (hot edges win the
// 48-wire links first, per BandMap) and the scored per-item cost.  The
// result feeds mapping::compile_item_schedule unchanged (see
// compile_mapped_schedule) and rides through cgra::Service as a MapJob.
//
// Two solvers behind one interface:
//
//   * ExactMapper — branch-and-bound over set partitions of the processes
//     (ILP-style: admissible lower bounds, canonical enumeration, water-
//     filled replication) composed with a placement branch-and-bound.
//     Optimal by construction over its candidate space on meshes of up to
//     16 tiles; `optimal` reports whether the proof completed inside the
//     node budget.  This is the oracle the annealer is validated against.
//
//   * AnnealMapper — deterministic seeded simulated annealing over
//     (binding, placement) moves, list-scheduling seeded.  Scales to
//     meshes the exact search cannot enumerate.
//
// map_network() picks the exact solver whenever it can prove optimality
// cheaply (small mesh, small network) and falls back to annealing.
#pragma once

#include <memory>
#include <string>

#include "mapper/cost.hpp"
#include "mapping/schedule_compiler.hpp"

namespace cgra::mapper {

/// Which solver to run.
enum class SolverKind { kAuto, kExact, kAnneal };

const char* solver_kind_name(SolverKind kind) noexcept;

/// Everything a mapper call can be tuned with.  The defaults are what the
/// CI oracle suite runs.
struct MapperOptions {
  SolverKind solver = SolverKind::kAuto;
  /// Tile budget; 0 means the whole mesh.  The mapper may use fewer tiles
  /// when that costs no throughput (extra tiles only add placement cost).
  int max_tiles = 0;
  CostModel cost{};
  /// Annealer determinism: every random choice flows from this seed.
  std::uint64_t seed = 1;
  int anneal_iterations = 6000;
  int anneal_restarts = 3;
  /// Exact-search safety valve: placement/partition nodes explored before
  /// the solver returns its best-so-far with optimal = false.
  std::int64_t node_budget = 4'000'000;
  /// Exact search: placement-search at most this many candidate bindings
  /// (ordered by rising II) before declaring the proof incomplete.
  int binding_budget = 4'096;
};

/// A mapped process network: everything downstream consumers need.
struct MappedNetwork {
  Status status;  ///< Mapping diagnostics; fields below valid only if ok.
  std::string solver;           ///< "exact" or "anneal".
  mapping::Binding binding;     ///< Tile groups + replication.
  mapping::Placement placement; ///< Mesh coordinates per group replica.
  LinkPlan links;               ///< Steady link ownership + routed edges.
  mapping::BindingEval eval;    ///< Binding-level throughput/utilisation.
  MappedCost cost;              ///< Per-item makespan decomposition.
  bool optimal = false;  ///< Exact proof completed within the budgets.
  std::int64_t nodes_explored = 0;  ///< Search effort (nodes / evaluations).

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// The solver interface.  Implementations are deterministic: the same
/// (network, mesh, options) always returns the same mapping.
class Mapper {
 public:
  virtual ~Mapper() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual MappedNetwork map(
      const procnet::ProcessNetwork& net, int mesh_rows, int mesh_cols,
      const MapperOptions& options) const = 0;
};

/// Exact branch-and-bound search (meshes up to 16 tiles, <= 12 processes).
class ExactMapper final : public Mapper {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "exact"; }
  [[nodiscard]] MappedNetwork map(const procnet::ProcessNetwork& net,
                                  int mesh_rows, int mesh_cols,
                                  const MapperOptions& options) const override;
};

/// Simulated annealing + list scheduling (any mesh).
class AnnealMapper final : public Mapper {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "anneal"; }
  [[nodiscard]] MappedNetwork map(const procnet::ProcessNetwork& net,
                                  int mesh_rows, int mesh_cols,
                                  const MapperOptions& options) const override;
};

/// Instantiate a solver; kAuto defers the choice to map-time (mesh size).
std::unique_ptr<Mapper> make_mapper(SolverKind kind);

/// Map `net` onto a mesh_rows x mesh_cols mesh.  kAuto picks the exact
/// solver for meshes of <= 16 tiles with <= 12 processes, else annealing.
MappedNetwork map_network(const procnet::ProcessNetwork& net, int mesh_rows,
                          int mesh_cols, const MapperOptions& options = {});

/// Structural/feasibility checks shared by both solvers: valid network,
/// every process fits a tile's memories, the mesh can host one group.
Status validate_map_inputs(const procnet::ProcessNetwork& net, int mesh_rows,
                           int mesh_cols, const MapperOptions& options);

/// Score an externally supplied mapping (e.g. the paper's manual Table-4
/// bindings) under the mapper's cost model, with the placement improved the
/// same way the solvers improve theirs — the fair baseline for
/// "re-derive or beat" comparisons.  The returned MappedNetwork carries
/// solver = "manual".
MappedNetwork score_manual(const procnet::ProcessNetwork& net,
                           const mapping::Binding& binding, int mesh_rows,
                           int mesh_cols, const MapperOptions& options = {});

/// Compile one pipeline item of a mapped network into an executable epoch
/// schedule (mapping::compile_item_schedule with the mapped binding and
/// placement).  The mapping must be ok().
mapping::CompiledSchedule compile_mapped_schedule(
    const procnet::ProcessNetwork& net, const MappedNetwork& mapped,
    const mapping::ProgramLibrary& library,
    const mapping::CompileOptions& compile_options = {});

}  // namespace cgra::mapper

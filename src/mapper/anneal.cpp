// Annealing mapper: deterministic seeded simulated annealing over joint
// (binding, placement) states, list-scheduling seeded.
//
// The move set covers the whole search space the exact solver enumerates:
//   * move a process to another (or a fresh) group,
//   * replicate / dereplicate a replicable singleton group,
//   * relocate a replica to a free tile or swap two replicas' tiles.
// Every proposal is scored with the shared cost model and accepted under
// the Metropolis rule with geometric cooling; restarts walk the different
// list-scheduling seeds.  All randomness flows from options.seed through
// SplitMix64, so the same call always returns the same mapping, and the
// result is never worse than the best seed.
#include <algorithm>
#include <cmath>

#include "common/prng.hpp"
#include "mapper/mapper.hpp"

namespace cgra::mapper {

namespace {

using mapping::Binding;
using mapping::Placement;
using procnet::ProcessNetwork;

/// One annealing state: a legal binding and a placement row per group.
struct State {
  Binding binding;
  Placement placement;
};

std::vector<int> free_tiles(const State& s, int mesh_tiles) {
  std::vector<bool> used(static_cast<std::size_t>(mesh_tiles), false);
  for (const auto& row : s.placement.tile_of) {
    for (const int t : row) used[static_cast<std::size_t>(t)] = true;
  }
  std::vector<int> out;
  for (int t = 0; t < mesh_tiles; ++t) {
    if (!used[static_cast<std::size_t>(t)]) out.push_back(t);
  }
  return out;
}

/// Move a random process to another (possibly new) group.  Returns false if
/// the sampled move is not applicable to `s`.
bool move_process(State& s, const ProcessNetwork& net, int budget,
                  SplitMix64& rng) {
  const std::size_t groups = s.binding.groups.size();
  const std::size_t gs = static_cast<std::size_t>(rng.next_below(groups));
  const std::size_t pi = static_cast<std::size_t>(
      rng.next_below(s.binding.groups[gs].procs.size()));
  // Destination `groups` means "open a fresh group".
  const std::size_t gd = static_cast<std::size_t>(rng.next_below(groups + 1));
  if (gd == gs) return false;
  const int proc = s.binding.groups[gs].procs[pi];
  if (gd == groups) {
    if (static_cast<int>(groups) >= budget) return false;
    const auto free = free_tiles(s, s.placement.mesh_rows *
                                        s.placement.mesh_cols);
    if (free.empty() || s.binding.tile_count() >= budget) return false;
    s.binding.groups.push_back({{proc}, 1});
    s.placement.tile_of.push_back(
        {free[static_cast<std::size_t>(rng.next_below(free.size()))]});
  } else {
    auto& dst = s.binding.groups[gd];
    if (dst.replication > 1) {
      // A multi-process group cannot replicate: collapse to one replica.
      dst.replication = 1;
      s.placement.tile_of[gd].resize(1);
    }
    dst.procs.push_back(proc);
    std::sort(dst.procs.begin(), dst.procs.end());
  }
  auto& src = s.binding.groups[gs];  // push_back above may reallocate
  src.procs.erase(src.procs.begin() + static_cast<std::ptrdiff_t>(pi));
  if (src.procs.empty()) {
    s.binding.groups.erase(s.binding.groups.begin() +
                           static_cast<std::ptrdiff_t>(gs));
    s.placement.tile_of.erase(s.placement.tile_of.begin() +
                              static_cast<std::ptrdiff_t>(gs));
  }
  (void)net;
  return true;
}

bool replicate(State& s, const ProcessNetwork& net, int budget,
               SplitMix64& rng) {
  const std::size_t g =
      static_cast<std::size_t>(rng.next_below(s.binding.groups.size()));
  auto& grp = s.binding.groups[g];
  if (grp.procs.size() != 1 || !net.process(grp.procs.front()).replicable) {
    return false;
  }
  if (s.binding.tile_count() >= budget) return false;
  const auto free =
      free_tiles(s, s.placement.mesh_rows * s.placement.mesh_cols);
  if (free.empty()) return false;
  ++grp.replication;
  s.placement.tile_of[g].push_back(
      free[static_cast<std::size_t>(rng.next_below(free.size()))]);
  return true;
}

bool dereplicate(State& s, SplitMix64& rng) {
  const std::size_t g =
      static_cast<std::size_t>(rng.next_below(s.binding.groups.size()));
  auto& grp = s.binding.groups[g];
  if (grp.replication <= 1) return false;
  --grp.replication;
  auto& row = s.placement.tile_of[g];
  row.erase(row.begin() + static_cast<std::ptrdiff_t>(
                              rng.next_below(row.size())));
  return true;
}

/// Relocate one replica to a random tile: to a free tile directly, or by
/// swapping with whichever replica currently sits there.
bool relocate(State& s, SplitMix64& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> units;
  for (std::size_t g = 0; g < s.placement.tile_of.size(); ++g) {
    for (std::size_t r = 0; r < s.placement.tile_of[g].size(); ++r) {
      units.emplace_back(g, r);
    }
  }
  const auto [g, r] =
      units[static_cast<std::size_t>(rng.next_below(units.size()))];
  const int mesh_tiles = s.placement.mesh_rows * s.placement.mesh_cols;
  const int target = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(mesh_tiles)));
  int& mine = s.placement.tile_of[g][r];
  if (target == mine) return false;
  for (auto& row : s.placement.tile_of) {
    for (int& t : row) {
      if (t == target) {
        std::swap(t, mine);
        return true;
      }
    }
  }
  mine = target;  // target tile was free
  return true;
}

}  // namespace

MappedNetwork AnnealMapper::map(const ProcessNetwork& net, int mesh_rows,
                                int mesh_cols,
                                const MapperOptions& options) const {
  MappedNetwork out;
  out.solver = name();
  out.status = validate_map_inputs(net, mesh_rows, mesh_cols, options);
  if (!out.status.ok()) return out;
  const int mesh_tiles = mesh_rows * mesh_cols;
  const int budget =
      options.max_tiles > 0 ? std::min(options.max_tiles, mesh_tiles)
                            : mesh_tiles;
  const CostModel& cost = options.cost;

  auto score = [&](const State& s) {
    return score_mapping(net, s.binding, s.placement, cost).total_ns();
  };

  // List-scheduling seeds, placed and locally improved.
  std::vector<State> seeds;
  for (auto& b : seed_bindings(net, budget, cost.params)) {
    State s;
    s.placement = mapping::improve_placement(
        net, b,
        mapping::place(b, mesh_rows, mesh_cols,
                       mapping::PlacementStrategy::kSnake),
        cost.copy);
    s.binding = std::move(b);
    seeds.push_back(std::move(s));
  }
  State best = seeds.front();
  Nanoseconds best_score = score(best);
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    const Nanoseconds sc = score(seeds[i]);
    if (sc < best_score) {
      best_score = sc;
      best = seeds[i];
    }
  }

  std::int64_t evaluations = static_cast<std::int64_t>(seeds.size());
  const int restarts = std::max(1, options.anneal_restarts);
  const int iterations = std::max(1, options.anneal_iterations);
  for (int restart = 0; restart < restarts; ++restart) {
    State cur = seeds[static_cast<std::size_t>(restart) % seeds.size()];
    Nanoseconds cur_score = score(cur);
    SplitMix64 rng(options.seed + 0x9E3779B97F4A7C15ULL *
                                      static_cast<std::uint64_t>(restart + 1));
    const double t0 = std::max(1.0, 0.15 * cur_score);
    const double t_end = std::max(1e-6, 1e-4 * cur_score);
    const double alpha = std::pow(t_end / t0, 1.0 / iterations);
    double temp = t0;
    for (int it = 0; it < iterations; ++it, temp *= alpha) {
      State next = cur;
      const std::uint64_t kind = rng.next_below(6);
      bool changed = false;
      switch (kind) {
        case 0:
          changed = move_process(next, net, budget, rng);
          break;
        case 1:
          changed = replicate(next, net, budget, rng);
          break;
        case 2:
          changed = dereplicate(next, rng);
          break;
        default:
          changed = relocate(next, rng);  // placement moves weighted 3/6
          break;
      }
      if (!changed) continue;
      const Nanoseconds next_score = score(next);
      ++evaluations;
      const double delta = next_score - cur_score;
      if (delta <= 0.0 || rng.next_double() < std::exp(-delta / temp)) {
        cur = std::move(next);
        cur_score = next_score;
        if (cur_score < best_score) {
          best_score = cur_score;
          best = cur;
        }
      }
    }
  }

  out.binding = std::move(best.binding);
  out.placement = std::move(best.placement);
  out.links = plan_links(net, out.binding, out.placement, cost);
  out.eval = mapping::evaluate(net, out.binding, cost.params);
  out.cost = score_mapping(net, out.binding, out.placement, cost);
  out.optimal = false;
  out.nodes_explored = evaluations;
  return out;
}

}  // namespace cgra::mapper

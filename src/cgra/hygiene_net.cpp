// Standalone-compile check for the cgra/net.hpp umbrella header: it must
// build as the only include of a TU (no hidden include-order deps).
#include "cgra/net.hpp"

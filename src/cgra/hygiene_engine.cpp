// Header-hygiene check: cgra/engine.hpp must compile standalone.
#include "cgra/engine.hpp"

// cgra/net.hpp — the public face of the TCP serving layer.
//
// The outermost layer of the stack: cgra::net::Server exposes a
// cgra::service::Service over a versioned length-prefixed binary
// protocol (JPEG block/image, FFT and DSE-sweep jobs plus ping, stats
// and cancel), and cgra::net::Client is the matching blocking client
// with reconnect-and-retry.  Loopback-only by default.
//
// Includes the service facade (and transitively apps + the simulation
// core), so this single header is enough to build a network client or
// stand up a server — see examples/serve_demo.cpp for the quickstart.
#pragma once

#include "cgra/service.hpp"

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"

// cgra/chaos.hpp — the public face of deterministic chaos injection.
//
// A ChaosPlan scripts failures (connection resets, frame corruption,
// worker crashes, pool-lease failures, tile kills) against named hook
// points compiled into the serving stack; a ChaosInjector replays the
// plan deterministically from its seed.  Wire one injector into
// ServerOptions / ClientOptions / ServiceOptions to harden-test a
// deployment, or leave the pointers null for zero-cost production
// builds (-DCGRA_CHAOS_OFF removes even the null test).
//
// See tests/test_chaos.cpp for per-hook examples and
// bench/bench_chaos_serving.cpp for a full chaos experiment asserting
// zero lost replies under a seeded kill schedule.
#pragma once

#include "chaos/chaos.hpp"

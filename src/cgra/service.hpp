// cgra/service.hpp — the public face of the job-service runtime.
//
// The highest layer of the stack: cgra::service::Service accepts
// JPEG-encode, FFT and DSE-sweep jobs through one asynchronous API
// (submit() -> JobHandle, wait(), cancel(), deadlines, backpressure) and
// runs them on a bounded pool of pre-warmed fabrics with epoch-schedule
// batching and a content-addressed artifact cache.
//
// Includes the apps facade (and transitively the simulation core), so
// this single header is enough to build a complete client — see
// examples/service_demo.cpp for the quickstart.
#pragma once

#include "cgra/apps.hpp"

#include "service/artifact_cache.hpp"
#include "service/fabric_pool.hpp"
#include "service/job.hpp"
#include "service/service.hpp"

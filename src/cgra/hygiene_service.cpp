// Header-hygiene check: cgra/service.hpp must compile standalone.
#include "cgra/service.hpp"

// cgra/mapper.hpp — the public face of the automatic process-network
// mapper.
//
// cgra::mapper::map_network takes any annotated procnet::ProcessNetwork
// and a mesh shape and returns a complete MappedNetwork: a Binding (who
// shares a tile, with replication), a Placement (where on the mesh), a
// bandwidth-aware LinkPlan (hot edges win the 48-wire links first) and the
// scored per-item cost.  Two solvers sit behind the one interface: an
// exact branch-and-bound (the small-mesh oracle) and a deterministic
// seeded annealer for everything larger.  The result feeds
// compile_mapped_schedule and rides through cgra::Service as a MapJob —
// see docs/MAPPING.md and examples/map_and_run.cpp.
#pragma once

#include "mapper/cost.hpp"
#include "mapper/mapper.hpp"

// Header-hygiene check: cgra/mapper.hpp must compile standalone.
#include "cgra/mapper.hpp"

// cgra/engine.hpp — the pluggable execution-engine facade.
//
// One include for selecting and driving execution engines:
//
//   * engine/engine.hpp — EngineKind/EngineOptions, spec parsing, the
//                 ExecutionEngine hierarchy (interpreter, threaded
//                 superinstruction dispatch, lockstep SoA batch) and the
//                 process-wide default installation.
//   * engine/cli.hpp — the shared --engine flag parser every executable
//                 entry point uses.
//   * isa/blocks.hpp — basic-block segmentation, the unit of the threaded
//                 engine's specialization (exposed for tooling/tests).
//
// Layered on cgra/fabric.hpp: a fabric::Fabric runs unchanged on any
// engine, and every engine is bit-identical to the interpreter.
#pragma once

#include "cgra/fabric.hpp"

#include "engine/cli.hpp"
#include "engine/engine.hpp"
#include "isa/blocks.hpp"

// cgra/fabric.hpp — the public face of the simulation core.
//
// One include for everything needed to build, program and run a fabric:
//
//   * common/   — Word fixed-point arithmetic, Status/Fault, timing
//                 constants (400 MHz clock, ICAP throughput), text tables.
//   * isa/      — the reMORPH-style tile ISA: assembler, disassembler,
//                 Program/DataPatch containers.
//   * fabric/   — Tile and Fabric (the cycle-level R x C mesh simulator)
//                 plus the execution tracer.
//   * interconnect/ — near-neighbour link configuration, routing and the
//                 link reconfiguration cost model.
//   * config/   — EpochConfig partial-reconfiguration units, the ICAP-
//                 modelled ReconfigController, Timeline (Eq. 1) and the
//                 post-run profiler.
//   * obs/      — observability the core hooks into: metrics registry,
//                 span timelines (Chrome trace export), profiling
//                 reports, bench JSON.
//
// The apps facade (cgra/apps.hpp) and the job-service facade
// (cgra/service.hpp) layer on top; include the most specific one you
// need.  Fine-grained headers stay available for targeted includes, but
// examples and external consumers should start here.
#pragma once

#include "common/fixed_complex.hpp"
#include "common/prng.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "common/word.hpp"

#include "isa/assembler.hpp"
#include "isa/decoded.hpp"
#include "isa/disassembler.hpp"
#include "isa/instruction.hpp"
#include "isa/program.hpp"

#include "fabric/fabric.hpp"
#include "fabric/tile.hpp"
#include "fabric/trace.hpp"

#include "interconnect/link.hpp"
#include "interconnect/routing.hpp"

#include "config/epoch.hpp"
#include "config/profiler.hpp"
#include "config/reconfig.hpp"

#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"

// cgra/apps.hpp — the public face of the application layer.
//
// Everything above the simulation core that turns the fabric into the
// paper's two workloads and their tooling:
//
//   * apps/jpeg/ — the host JPEG codec (encoder/decoder/color), the
//                  fabric kernels for shift/DCT/quantize/zigzag and the
//                  Huffman tile, warm-pipeline artifacts (BlockPipeline),
//                  the resilient (fault-recovered) block path, and the
//                  Table-3 process annotations.
//   * apps/fft/  — the reference FFT, radix-2 partitioning (Sec. 3.1),
//                  tile kernel sources, twiddle schedules, and the
//                  end-to-end fabric FFT with Eq.-1 accounting.
//   * procnet/   — process networks with cycle/word annotations.
//   * mapping/   — binding cost model, reBalance algorithms, placement,
//                  and the epoch schedule compiler.
//   * dse/       — the FFT analytic performance model, drift validation
//                  and the deterministic parallel sweep driver.
//   * faults/    — fault plans, the injector, detection and the
//                  checkpoint/rollback/rebalance RecoveryManager.
//
// Includes cgra/fabric.hpp; see cgra/service.hpp for the job runtime.
#pragma once

#include "cgra/fabric.hpp"

#include "apps/jpeg/bitio.hpp"
#include "apps/jpeg/color.hpp"
#include "apps/jpeg/dct.hpp"
#include "apps/jpeg/decoder.hpp"
#include "apps/jpeg/encoder.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "apps/jpeg/process_table.hpp"
#include "apps/jpeg/tables.hpp"

#include "apps/fft/fabric_fft.hpp"
#include "apps/fft/partition.hpp"
#include "apps/fft/programs.hpp"
#include "apps/fft/reference.hpp"
#include "apps/fft/twiddle.hpp"

#include "procnet/network.hpp"
#include "procnet/process.hpp"

#include "mapping/binding.hpp"
#include "mapping/placement.hpp"
#include "mapping/rebalance.hpp"
#include "mapping/schedule_compiler.hpp"

#include "dse/fft_drift.hpp"
#include "dse/fft_perf_model.hpp"
#include "dse/sweep.hpp"

#include "faults/detector.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "faults/recovery.hpp"

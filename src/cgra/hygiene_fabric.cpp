// Header-hygiene check: cgra/fabric.hpp must compile standalone.
#include "cgra/fabric.hpp"

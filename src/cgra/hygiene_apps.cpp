// Header-hygiene check: cgra/apps.hpp must compile standalone.
#include "cgra/apps.hpp"

// Standalone-compile check for the cgra/chaos.hpp umbrella header: it
// must build as the only include of a TU (no hidden include-order deps).
#include "cgra/chaos.hpp"

#include "chaos/chaos.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/tracer.hpp"

namespace cgra::chaos {

const char* hook_name(Hook hook) noexcept {
  switch (hook) {
    case Hook::kAccept: return "accept";
    case Hook::kServerRead: return "server_read";
    case Hook::kServerWrite: return "server_write";
    case Hook::kClientConnect: return "client_connect";
    case Hook::kClientRecv: return "client_recv";
    case Hook::kServerFrame: return "server_frame";
    case Hook::kClientFrame: return "client_frame";
    case Hook::kWorkerCrash: return "worker_crash";
    case Hook::kPoolLease: return "pool_lease";
    case Hook::kCachePoison: return "cache_poison";
    case Hook::kQueueStall: return "queue_stall";
    case Hook::kFabricPoison: return "fabric_poison";
  }
  return "?";
}

const char* action_name(Action action) noexcept {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kFail: return "fail";
    case Action::kReset: return "reset";
    case Action::kDelay: return "delay";
    case Action::kCorruptByte: return "corrupt_byte";
    case Action::kTruncate: return "truncate";
    case Action::kPartialWrite: return "partial_write";
    case Action::kCrash: return "crash";
    case Action::kKillTile: return "kill_tile";
  }
  return "?";
}

ChaosPlan& ChaosPlan::add(Rule rule) {
  rule.first = std::max<std::int64_t>(1, rule.first);
  rule.count = std::max(1, rule.count);
  rule.every = std::max<std::int64_t>(0, rule.every);
  rules.push_back(rule);
  return *this;
}

ChaosPlan& ChaosPlan::fail(Hook hook, std::int64_t first, int count,
                           std::int64_t every) {
  return add({hook, Action::kFail, first, every, count, 0, 0});
}

ChaosPlan& ChaosPlan::reset(Hook hook, std::int64_t first, int count,
                            std::int64_t every) {
  return add({hook, Action::kReset, first, every, count, 0, 0});
}

ChaosPlan& ChaosPlan::delay_ms(Hook hook, std::int64_t ms, std::int64_t first,
                               int count, std::int64_t every) {
  return add({hook, Action::kDelay, first, every, count, ms, 0});
}

ChaosPlan& ChaosPlan::corrupt_byte(Hook hook, std::int64_t index,
                                   std::int64_t mask, std::int64_t first,
                                   int count, std::int64_t every) {
  return add({hook, Action::kCorruptByte, first, every, count, index, mask});
}

ChaosPlan& ChaosPlan::truncate(Hook hook, std::int64_t keep,
                               std::int64_t first, int count,
                               std::int64_t every) {
  return add({hook, Action::kTruncate, first, every, count, keep, 0});
}

ChaosPlan& ChaosPlan::partial_write(std::int64_t bytes, std::int64_t first,
                                    int count, std::int64_t every) {
  return add({Hook::kServerWrite, Action::kPartialWrite, first, every, count,
              bytes, 0});
}

ChaosPlan& ChaosPlan::crash_worker(std::int64_t first, int count,
                                   std::int64_t every) {
  return add({Hook::kWorkerCrash, Action::kCrash, first, every, count, 0, 0});
}

ChaosPlan& ChaosPlan::kill_tile(std::int64_t tile, std::int64_t cycle,
                                std::int64_t first, int count,
                                std::int64_t every) {
  return add({Hook::kFabricPoison, Action::kKillTile, first, every, count,
              tile, cycle});
}

ChaosInjector::ChaosInjector(ChaosPlan plan) : plan_(std::move(plan)) {
  fired_per_rule_.assign(plan_.rules.size(), 0);
  rule_rng_.reserve(plan_.rules.size());
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    // Independent stream per rule: firings stay deterministic no matter
    // how concurrent hook invocations interleave across rules.
    rule_rng_.emplace_back(plan_.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
  }
}

void ChaosInjector::attach_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  for (int h = 0; h < kHookCount; ++h) {
    fired_counters_[static_cast<std::size_t>(h)] = metrics_->counter(
        std::string("chaos.fired.") + hook_name(static_cast<Hook>(h)));
  }
}

void ChaosInjector::attach_tracer(obs::Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mu_);
  tracer_ = tracer;
}

Decision ChaosInjector::decide(Hook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto h = static_cast<std::size_t>(hook);
  const std::int64_t n = ++invocations_[h];
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const Rule& rule = plan_.rules[i];
    if (rule.hook != hook || rule.action == Action::kNone) continue;
    int& used = fired_per_rule_[i];
    if (used >= rule.count) continue;
    // Firing schedule: first, then first + every, first + 2*every, ...
    // (every == 0 fires on consecutive invocations).
    const std::int64_t due = rule.first + used * std::max<std::int64_t>(
                                              1, rule.every);
    if (n != due && !(rule.every == 0 && n >= rule.first)) continue;
    if (n < due) continue;
    ++used;
    ++fired_[h];
    if (metrics_ != nullptr && fired_counters_[h].valid()) {
      metrics_->add(fired_counters_[h]);
    }
    if (tracer_ != nullptr) {
      // Trace id 0: a firing belongs to no single request, but anomaly
      // dumps include chaos-fire events alongside the trace's own.
      tracer_->event(obs::TraceContext{}, obs::FlightEventKind::kChaosFire,
                     static_cast<std::uint16_t>(hook),
                     static_cast<std::uint32_t>(rule.action));
    }
    Decision d;
    d.action = rule.action;
    d.a = rule.a;
    d.b = rule.b;
    d.salt = rule_rng_[i].next();
    return d;
  }
  return {};
}

std::int64_t ChaosInjector::invocations(Hook hook) const {
  std::lock_guard<std::mutex> lock(mu_);
  return invocations_[static_cast<std::size_t>(hook)];
}

std::int64_t ChaosInjector::fired(Hook hook) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_[static_cast<std::size_t>(hook)];
}

std::int64_t ChaosInjector::fired_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto v : fired_) total += v;
  return total;
}

bool mutate_frame(const Decision& decision, std::vector<std::uint8_t>* bytes) {
  if (bytes == nullptr || bytes->empty()) return false;
  SplitMix64 rng(decision.salt);
  switch (decision.action) {
    case Action::kCorruptByte: {
      const std::size_t index =
          decision.a >= 0 &&
                  decision.a < static_cast<std::int64_t>(bytes->size())
              ? static_cast<std::size_t>(decision.a)
              : static_cast<std::size_t>(rng.next_below(bytes->size()));
      const auto mask = static_cast<std::uint8_t>(
          decision.b != 0 ? decision.b : 1 + rng.next_below(255));
      (*bytes)[index] ^= mask;
      return true;
    }
    case Action::kTruncate: {
      const std::size_t keep =
          decision.a >= 0 &&
                  decision.a < static_cast<std::int64_t>(bytes->size())
              ? static_cast<std::size_t>(decision.a)
              : static_cast<std::size_t>(rng.next_below(bytes->size()));
      bytes->resize(keep);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace cgra::chaos

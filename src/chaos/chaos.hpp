// Deterministic chaos injection for the serving stack.
//
// The faults layer (src/faults/) scripts *hardware* failure against a
// fabric; this layer generalises the same idea — a seeded, replayable
// plan of failures — to the net/service boundary.  A ChaosPlan is a list
// of rules, each naming a Hook (a failure point compiled into the
// server, client, service and pool), the invocation on which it first
// fires, how often it repeats, and what it does (reset a connection,
// corrupt a frame byte, crash a worker thread, fail a pool lease, ...).
//
// Determinism contract: every random choice (which byte, which bit,
// which tile) flows from the plan seed through per-rule SplitMix64
// streams, so a plan replays the same faults at the same hook
// invocations run after run.  Under concurrency the *assignment* of a
// firing to a caller depends on thread interleaving, but the invariants
// the chaos tests assert (zero lost replies, bit-identical results) are
// interleaving-independent.
//
// Zero cost when disabled: every hook site calls chaos::decide(inj, h)
// which is a single null-pointer test when no injector is wired, and
// compiles to nothing under -DCGRA_CHAOS_OFF (the same escape hatch
// pattern as CGRA_OBS_OFF in obs/metrics.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "obs/metrics.hpp"

namespace cgra::obs {
class Tracer;
}  // namespace cgra::obs

namespace cgra::chaos {

/// Named failure points.  Each is compiled into exactly one layer:
/// socket-level hooks live in net/server + net/client, frame-level hooks
/// on the send paths, service-level hooks in service/service +
/// service/fabric_pool.
enum class Hook : std::uint8_t {
  // --- socket level (net) ---
  kAccept = 0,     ///< Server accept: kFail closes the fresh connection.
  kServerRead,     ///< Before the reader waits for a frame: kReset /
                   ///< kDelay (read stall).
  kServerWrite,    ///< Before the writer sends a reply: kReset, kDelay,
                   ///< kPartialWrite (n bytes then reset).
  kClientConnect,  ///< Client connect attempt: kFail refuses it.
  kClientRecv,     ///< Before the client reads a reply: kReset.
  // --- frame level (wire bytes on the send path) ---
  kServerFrame,    ///< Outbound reply frame: kCorruptByte / kTruncate /
                   ///< kDelay.
  kClientFrame,    ///< Outbound request frame: kCorruptByte / kTruncate /
                   ///< kDelay.
  // --- service level ---
  kWorkerCrash,    ///< Worker thread dies before executing its batch
                   ///< (kCrash); the service must resume the jobs.
  kPoolLease,      ///< FabricPool::acquire: kFail yields an invalid lease.
  kCachePoison,    ///< ArtifactCache lookup: kFail evicts the entry first
                   ///< (forces a rebuild — poison that must not change
                   ///< results).
  kQueueStall,     ///< Batch dequeue: kDelay stalls the worker.
  kFabricPoison,   ///< Leased fabric before a job runs: kKillTile.
};

inline constexpr int kHookCount = static_cast<int>(Hook::kFabricPoison) + 1;

[[nodiscard]] const char* hook_name(Hook hook) noexcept;

/// What a firing rule does at its hook point.
enum class Action : std::uint8_t {
  kNone = 0,
  kFail,          ///< Fail the operation (close/refuse/evict).
  kReset,         ///< Tear the connection down immediately.
  kDelay,         ///< Stall for `a` milliseconds, then proceed.
  kCorruptByte,   ///< XOR byte `a` of the frame with mask `b` (-1/0 =
                  ///< seeded random position / nonzero mask).
  kTruncate,      ///< Keep only the first `a` frame bytes (-1 = seeded
                  ///< random proper prefix).
  kPartialWrite,  ///< Write `a` bytes of the frame, then reset.
  kCrash,         ///< Kill the worker thread.
  kKillTile,      ///< Hard-fail tile `a` (-1 = seeded random tile).
};

[[nodiscard]] const char* action_name(Action action) noexcept;

/// The outcome of consulting a hook: no-op unless `action != kNone`.
/// `salt` seeds any random choice the action defers to apply time (e.g.
/// which byte of a frame whose length decide() cannot know).
struct Decision {
  Action action = Action::kNone;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::uint64_t salt = 0;

  [[nodiscard]] explicit operator bool() const noexcept {
    return action != Action::kNone;
  }
};

/// One scripted failure: at invocation `first` of `hook` (1-based,
/// counted per hook across all threads), perform `action`; repeat every
/// `every` further invocations, `count` times total.
struct Rule {
  Hook hook = Hook::kAccept;
  Action action = Action::kNone;
  std::int64_t first = 1;
  std::int64_t every = 0;  ///< 0 with count > 1 means consecutive.
  int count = 1;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// A deterministic chaos script (builder helpers chain).
struct ChaosPlan {
  std::uint64_t seed = 0xC4A05u;
  std::vector<Rule> rules;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }

  ChaosPlan& add(Rule rule);
  ChaosPlan& fail(Hook hook, std::int64_t first, int count = 1,
                  std::int64_t every = 0);
  ChaosPlan& reset(Hook hook, std::int64_t first, int count = 1,
                   std::int64_t every = 0);
  ChaosPlan& delay_ms(Hook hook, std::int64_t ms, std::int64_t first,
                      int count = 1, std::int64_t every = 0);
  ChaosPlan& corrupt_byte(Hook hook, std::int64_t index, std::int64_t mask,
                          std::int64_t first, int count = 1,
                          std::int64_t every = 0);
  ChaosPlan& truncate(Hook hook, std::int64_t keep, std::int64_t first,
                      int count = 1, std::int64_t every = 0);
  ChaosPlan& partial_write(std::int64_t bytes, std::int64_t first,
                           int count = 1, std::int64_t every = 0);
  ChaosPlan& crash_worker(std::int64_t first, int count = 1,
                          std::int64_t every = 0);
  /// Kill tile `tile` (-1 = seeded random) of the leased fabric; on the
  /// resilient path `cycle` schedules the death mid-epoch through the
  /// job's own fault plan.
  ChaosPlan& kill_tile(std::int64_t tile, std::int64_t cycle,
                       std::int64_t first, int count = 1,
                       std::int64_t every = 0);
};

/// Replays a ChaosPlan.  Thread-safe: hook sites in every server/client/
/// worker thread funnel through decide(), which counts the invocation,
/// matches rules and burns one draw of the rule's private PRNG stream per
/// firing.  Wire one injector per experiment; it is not owned by the
/// components it is handed to and must outlive them.
class ChaosInjector {
 public:
  explicit ChaosInjector(ChaosPlan plan);

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Count one invocation of `hook` and return the rule decision due at
  /// this invocation (kNone almost always).
  [[nodiscard]] Decision decide(Hook hook);

  /// Route chaos.invoked.* / chaos.fired.* counters into `metrics` (not
  /// owned; call before the first decide()).
  void attach_metrics(obs::MetricsRegistry* metrics);

  /// Record every firing as a kChaosFire flight event (code = hook,
  /// arg = action) on `tracer`'s ring, so anomaly dumps show the chaos
  /// that explains them.  Not owned; call before the first decide().
  void attach_tracer(obs::Tracer* tracer);

  [[nodiscard]] std::int64_t invocations(Hook hook) const;
  [[nodiscard]] std::int64_t fired(Hook hook) const;
  [[nodiscard]] std::int64_t fired_total() const;
  [[nodiscard]] const ChaosPlan& plan() const noexcept { return plan_; }

 private:
  const ChaosPlan plan_;
  mutable std::mutex mu_;
  std::array<std::int64_t, kHookCount> invocations_{};
  std::array<std::int64_t, kHookCount> fired_{};
  std::vector<int> fired_per_rule_;   ///< Firings consumed per rule.
  std::vector<SplitMix64> rule_rng_;  ///< Per-rule deterministic stream.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::array<obs::CounterHandle, kHookCount> fired_counters_{};
};

/// The hook entry point every call site uses.  One predictable branch
/// when chaos is wired off (`inj == nullptr`), nothing at all under
/// -DCGRA_CHAOS_OFF.
[[nodiscard]] inline Decision decide(ChaosInjector* inj, Hook hook) {
#ifdef CGRA_CHAOS_OFF
  (void)inj;
  (void)hook;
  return {};
#else
  if (inj == nullptr) return {};
  return inj->decide(hook);
#endif
}

/// Apply a frame-level decision (kCorruptByte / kTruncate) to wire
/// bytes, resolving -1 params from the decision salt.  Never touches
/// buffers for other actions; returns true when bytes changed.
bool mutate_frame(const Decision& decision, std::vector<std::uint8_t>* bytes);

}  // namespace cgra::chaos

#include "fabric/fabric.hpp"

namespace cgra::fabric {

Fabric::Fabric(int rows, int cols)
    : links_(rows, cols),
      tiles_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)),
      failed_links_(tiles_.size(), 0) {}

int Fabric::step() {
  int retired = 0;
  remote_buffer_.clear();
  for (int i = 0; i < tile_count(); ++i) {
    auto& tile = tiles_[static_cast<std::size_t>(i)];
    const LinkState link =
        !links_.target(i).has_value() ? LinkState::kNone
        : failed_links_[static_cast<std::size_t>(i)] != 0 ? LinkState::kDown
                                                          : LinkState::kUp;
    const int pc_before = tile.pc();
    const bool was_faulted = tile.faulted();
    if (tile.step(i, cycle_, link, remote_buffer_)) {
      ++retired;
      if (tracer_ != nullptr) {
        const isa::Instruction* in = tile.instruction_at(pc_before);
        TraceEvent ev;
        ev.cycle = cycle_;
        ev.tile = i;
        ev.pc = pc_before;
        if (in != nullptr) ev.opcode = in->opcode;
        ev.kind = (in != nullptr && in->opcode == isa::Opcode::kHalt)
                      ? TraceEventKind::kHalt
                      : TraceEventKind::kRetire;
        tracer_->record(ev);
      }
    } else if (!was_faulted && tile.faulted()) {
      // The cycle a fault is raised mid-step would otherwise be missing
      // from the tile's cycle accounting (TileStats invariant).
      tile.count_fault_cycle();
      if (metrics_ != nullptr) metrics_->add(m_faults_);
      if (tracer_ != nullptr) {
        TraceEvent ev;
        ev.cycle = cycle_;
        ev.kind = TraceEventKind::kFault;
        ev.tile = i;
        ev.pc = pc_before;
        const isa::Instruction* in = tile.instruction_at(pc_before);
        if (in != nullptr) ev.opcode = in->opcode;
        tracer_->record(ev);
      }
    }
  }
  // Commit remote writes synchronously at end of cycle, in tile order
  // (deterministic: lower tile index wins ties on the same destination word
  // last, i.e. the higher index's value persists — documented semantics).
  int committed = 0;
  for (const auto& w : remote_buffer_) {
    const auto dst = links_.target(w.src_tile);
    if (dst) {
      tiles_[static_cast<std::size_t>(*dst)].set_dmem(w.addr, w.value);
      ++committed;
      if (tracer_ != nullptr) {
        TraceEvent ev;
        ev.cycle = cycle_;
        ev.kind = TraceEventKind::kRemoteWrite;
        ev.tile = w.src_tile;
        ev.dst_tile = *dst;
        ev.addr = w.addr;
        ev.value = w.value;
        tracer_->record(ev);
      }
    }
  }
  ++cycle_;
  if (metrics_ != nullptr) {
    metrics_->add(m_cycles_);
    metrics_->add(m_retired_, retired);
    metrics_->add(m_remote_writes_, committed);
  }
  return retired;
}

void Fabric::attach_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    m_cycles_ = metrics_->counter("fabric.cycles");
    m_retired_ = metrics_->counter("fabric.retired");
    m_remote_writes_ = metrics_->counter("fabric.remote_writes");
    m_faults_ = metrics_->counter("fabric.faults");
  } else {
    m_cycles_ = m_retired_ = m_remote_writes_ = m_faults_ = {};
  }
}

RunResult Fabric::run(std::int64_t max_cycles) {
  RunResult result;
  for (std::int64_t i = 0; i < max_cycles; ++i) {
    if (all_halted()) break;
    step();
    ++result.cycles;
  }
  result.all_halted = all_halted();
  result.faults = faults();
  return result;
}

bool Fabric::all_halted() const {
  for (const auto& t : tiles_) {
    if (!t.halted()) return false;
  }
  return true;
}

std::vector<Fault> Fabric::faults() const {
  std::vector<Fault> out;
  for (const auto& t : tiles_) {
    if (t.faulted()) out.push_back(t.fault());
  }
  return out;
}

std::vector<int> Fabric::dead_tiles() const {
  std::vector<int> out;
  for (int i = 0; i < tile_count(); ++i) {
    if (tiles_[static_cast<std::size_t>(i)].dead()) out.push_back(i);
  }
  return out;
}

}  // namespace cgra::fabric

#include "fabric/fabric.hpp"

#include <algorithm>
#include <atomic>

#include "fabric/exec_access.hpp"

namespace cgra::fabric {

namespace {
// Installed once at startup (CLI flag / build default static initializer),
// before any thread runs a fabric; atomic so concurrent fabric creation in
// worker pools reads it without a race.
std::atomic<EngineFactory> g_engine_factory{nullptr};
}  // namespace

void set_default_engine_factory(EngineFactory factory) noexcept {
  g_engine_factory.store(factory, std::memory_order_release);
}

EngineFactory default_engine_factory() noexcept {
  return g_engine_factory.load(std::memory_order_acquire);
}

Fabric::Fabric(int rows, int cols)
    : links_(rows, cols),
      tiles_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)),
      failed_links_(tiles_.size(), 0),
      class_(tiles_.size(), TileClass::kHalted),
      in_active_(tiles_.size(), 0),
      halted_count_(static_cast<int>(tiles_.size())),
      settled_(tiles_.size(), 0),
      link_state_(tiles_.size(), LinkState::kNone),
      link_target_(tiles_.size(), -1) {
  for (int i = 0; i < tile_count(); ++i) {
    tiles_[static_cast<std::size_t>(i)].bind_scheduler(this, i);
  }
}

Fabric::Fabric(Fabric&& other) noexcept { *this = std::move(other); }

Fabric& Fabric::operator=(Fabric&& other) noexcept {
  if (this == &other) return *this;
  links_ = std::move(other.links_);
  tiles_ = std::move(other.tiles_);
  remote_buffer_ = std::move(other.remote_buffer_);
  owned_engine_ = std::move(other.owned_engine_);
  engine_ = other.engine_;
  engine_resolved_ = other.engine_resolved_;
  other.engine_ = nullptr;
  failed_links_ = std::move(other.failed_links_);
  cycle_ = other.cycle_;
  tracer_ = other.tracer_;
  metrics_ = other.metrics_;
  m_cycles_ = other.m_cycles_;
  m_retired_ = other.m_retired_;
  m_remote_writes_ = other.m_remote_writes_;
  m_faults_ = other.m_faults_;
  class_ = std::move(other.class_);
  active_ = std::move(other.active_);
  in_active_ = std::move(other.in_active_);
  wake_ = std::move(other.wake_);
  halted_count_ = other.halted_count_;
  settled_ = std::move(other.settled_);
  link_state_ = std::move(other.link_state_);
  link_target_ = std::move(other.link_target_);
  stepping_ = other.stepping_;
  active_dirty_ = other.active_dirty_;
  // Tiles carry a back-pointer to their scheduler: point them here.
  for (int i = 0; i < static_cast<int>(tiles_.size()); ++i) {
    tiles_[static_cast<std::size_t>(i)].bind_scheduler(this, i);
  }
  return *this;
}

void Fabric::reset() {
  links_ = interconnect::LinkConfig(rows(), cols());
  remote_buffer_.clear();
  std::fill(failed_links_.begin(), failed_links_.end(), 0);
  cycle_ = 0;
  for (auto& t : tiles_) t.reset();
  // The per-tile notifications above ran against stale scheduler state;
  // rebuild it wholesale to the construction-time invariant.
  std::fill(class_.begin(), class_.end(), TileClass::kHalted);
  active_.clear();
  std::fill(in_active_.begin(), in_active_.end(), 0);
  wake_ = {};
  halted_count_ = tile_count();
  std::fill(settled_.begin(), settled_.end(), 0);
  std::fill(link_state_.begin(), link_state_.end(), LinkState::kNone);
  std::fill(link_target_.begin(), link_target_.end(), -1);
  stepping_ = false;
  active_dirty_ = false;
}

void Fabric::refresh_link_cache() {
  for (int i = 0; i < tile_count(); ++i) {
    const auto dst = links_.target(i);
    const auto k = static_cast<std::size_t>(i);
    link_target_[k] = dst.has_value() ? *dst : -1;
    link_state_[k] = !dst.has_value() ? LinkState::kNone
                     : failed_links_[k] != 0 ? LinkState::kDown
                                             : LinkState::kUp;
  }
}

void Fabric::settle_tile(int tile, std::int64_t boundary) {
  const auto k = static_cast<std::size_t>(tile);
  const std::int64_t pending = boundary - settled_[k];
  if (pending <= 0) return;
  switch (class_[k]) {
    case TileClass::kStalled:
      tiles_[k].account_idle_cycles(pending, 0);
      break;
    case TileClass::kHalted:
      tiles_[k].account_idle_cycles(0, pending);
      break;
    case TileClass::kActive:
      // Stepped every cycle while active: stats are already exact.
      break;
  }
  settled_[k] = boundary;
}

void Fabric::settle_all() {
  for (int i = 0; i < tile_count(); ++i) {
    if (class_[static_cast<std::size_t>(i)] != TileClass::kActive) {
      settle_tile(i, cycle_);
    }
  }
}

void Fabric::insert_active(int tile) {
  const auto k = static_cast<std::size_t>(tile);
  if (in_active_[k] != 0) return;
  active_.insert(std::lower_bound(active_.begin(), active_.end(), tile), tile);
  in_active_[k] = 1;
}

void Fabric::remove_active(int tile) {
  const auto k = static_cast<std::size_t>(tile);
  if (in_active_[k] == 0) return;
  const auto it = std::lower_bound(active_.begin(), active_.end(), tile);
  if (it != active_.end() && *it == tile) active_.erase(it);
  in_active_[k] = 0;
}

void Fabric::compact_active() {
  std::size_t w = 0;
  for (const int t : active_) {
    if (class_[static_cast<std::size_t>(t)] == TileClass::kActive) {
      active_[w++] = t;
    } else {
      in_active_[static_cast<std::size_t>(t)] = 0;
    }
  }
  active_.resize(w);
  active_dirty_ = false;
}

void Fabric::tile_state_changed(int tile) {
  const auto k = static_cast<std::size_t>(tile);
  const Tile& t = tiles_[k];
  const TileClass nc = t.halted()                  ? TileClass::kHalted
                       : t.stalled_until() > cycle_ ? TileClass::kStalled
                                                     : TileClass::kActive;
  const TileClass oc = class_[k];
  if (nc == oc) {
    // Same class, but a stalled tile's deadline may have moved: keep the
    // wake queue's always-one-valid-entry invariant.
    if (nc == TileClass::kStalled) wake_.emplace(t.stalled_until(), tile);
    return;
  }
  // While a cycle sweep is in flight the step machinery has already
  // accounted the current cycle (retired or count_fault_cycle), so the
  // settlement boundary moves past it; between cycles it is cycle_ itself.
  const std::int64_t boundary = cycle_ + (stepping_ ? 1 : 0);
  settle_tile(tile, boundary);  // settles under the *old* class
  class_[k] = nc;
  settled_[k] = boundary;
  if (oc == TileClass::kHalted) --halted_count_;
  if (nc == TileClass::kHalted) ++halted_count_;
  if (oc == TileClass::kActive) {
    if (stepping_) {
      active_dirty_ = true;  // compacted right after the sweep
    } else {
      remove_active(tile);
    }
  }
  if (nc == TileClass::kActive) insert_active(tile);
  if (nc == TileClass::kStalled) wake_.emplace(t.stalled_until(), tile);
}

void Fabric::process_wakes() {
  while (!wake_.empty() && wake_.top().first <= cycle_) {
    const auto [wc, t] = wake_.top();
    wake_.pop();
    const auto k = static_cast<std::size_t>(t);
    if (class_[k] != TileClass::kStalled) continue;       // stale entry
    if (tiles_[k].stalled_until() > cycle_) continue;     // superseded
    settle_tile(t, cycle_);  // close out the stalled interval
    class_[k] = TileClass::kActive;
    insert_active(t);
  }
}

std::int64_t Fabric::next_wake_cycle() {
  while (!wake_.empty()) {
    const auto [wc, t] = wake_.top();
    const auto k = static_cast<std::size_t>(t);
    // Lazy deletion: drop entries whose tile left the stalled class or
    // whose deadline was superseded by a later stall_until().
    if (class_[k] != TileClass::kStalled || tiles_[k].stalled_until() != wc) {
      wake_.pop();
      continue;
    }
    return wc;
  }
  return -1;
}

int Fabric::step_cycle() {
  // The per-cycle sweep (trace events, fault accounting, remote-write
  // commit order, cycle/metrics bumps) is shared with the pluggable
  // execution engines via ExecAccess::run_cycle; only the per-tile
  // dispatch below is interpreter-specific.
  return ExecAccess::run_cycle(*this, [this](Tile& tile, int i, int) {
    return tile.step(i, cycle_, link_state_[static_cast<std::size_t>(i)],
                     remote_buffer_);
  });
}

void Fabric::resolve_engine() {
  engine_resolved_ = true;
  if (const EngineFactory factory = default_engine_factory()) {
    owned_engine_ = factory();
    engine_ = owned_engine_.get();
  }
}

int Fabric::step() {
  if (!engine_resolved_) resolve_engine();
  if (engine_ != nullptr) return engine_->step(*this);
  return step_interpreter();
}

int Fabric::step_interpreter() {
  ExecAccess::begin(*this);
  process_wakes();
  const int retired = step_cycle();
  settle_all();  // public boundary: idle tiles' stats catch up to cycle_
  return retired;
}

void Fabric::attach_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    m_cycles_ = metrics_->counter("fabric.cycles");
    m_retired_ = metrics_->counter("fabric.retired");
    m_remote_writes_ = metrics_->counter("fabric.remote_writes");
    m_faults_ = metrics_->counter("fabric.faults");
  } else {
    m_cycles_ = m_retired_ = m_remote_writes_ = m_faults_ = {};
  }
}

RunResult Fabric::run(std::int64_t max_cycles) {
  if (!engine_resolved_) resolve_engine();
  if (engine_ != nullptr) return engine_->run(*this, max_cycles);
  return run_interpreter(max_cycles);
}

RunResult Fabric::run_interpreter(std::int64_t max_cycles) {
  RunResult result;
  ExecAccess::begin(*this);
  while (result.cycles < max_cycles) {
    if (all_halted()) break;
    process_wakes();
    if (active_.empty()) {
      // Only stalled tiles remain: fast-forward to the next wake event
      // (bounded by the cycle budget).  The skipped cycles are real
      // simulated time — they count into the result, the cycle counter and
      // the cycle metric; the stalled tiles' stats settle lazily.
      const std::int64_t next = next_wake_cycle();
      if (next < 0) break;  // unreachable: stalled tiles imply a wake entry
      const std::int64_t skip =
          std::min(next - cycle_, max_cycles - result.cycles);
      cycle_ += skip;
      result.cycles += skip;
      if (metrics_ != nullptr) metrics_->add(m_cycles_, skip);
      continue;
    }
    step_cycle();
    ++result.cycles;
  }
  settle_all();
  result.all_halted = all_halted();
  result.faults = faults();
  return result;
}

std::vector<Fault> Fabric::faults() const {
  std::vector<Fault> out;
  for (const auto& t : tiles_) {
    if (t.faulted()) out.push_back(t.fault());
  }
  return out;
}

std::vector<int> Fabric::dead_tiles() const {
  std::vector<int> out;
  for (int i = 0; i < tile_count(); ++i) {
    if (tiles_[static_cast<std::size_t>(i)].dead()) out.push_back(i);
  }
  return out;
}

}  // namespace cgra::fabric

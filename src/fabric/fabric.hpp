// The tile array: an R x C mesh of Tiles plus the malleable interconnect.
//
// Execution is globally synchronous: every cycle each running tile retires
// one instruction; remote writes are buffered and committed at the end of
// the cycle into the destination tile's data memory (the semi-systolic
// shared-memory transfer of the paper).  MIMD: each tile runs its own
// program.
//
// Fast execution engine (docs/ARCHITECTURE.md, "Execution engine"): the
// fabric schedules only ACTIVE tiles.  Halted, faulted, dead and stalled
// tiles cost nothing per cycle — their TileStats idle buckets are settled
// in batches at state transitions and at every public API boundary, so the
// cycle-accounting invariant (retired + stalled + halted == fabric cycles)
// holds bit-identically to the one-step-per-tile reference engine.  Stall
// deadlines live in a wake queue; when no tile is runnable, run()
// fast-forwards the cycle counter to the next wake event.  Tiles are
// stepped in ascending index order, so remote-write commit order (and with
// it the same-destination tie-break) is unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "fabric/tile.hpp"
#include "fabric/trace.hpp"
#include "interconnect/link.hpp"
#include "obs/metrics.hpp"

namespace cgra::fabric {

/// Result of running the fabric.
struct RunResult {
  std::int64_t cycles = 0;       ///< Cycles executed by this run() call.
  bool all_halted = false;       ///< Every tile halted cleanly.
  std::vector<Fault> faults;     ///< All faults raised during the run.

  [[nodiscard]] bool ok() const noexcept {
    return all_halted && faults.empty();
  }
  [[nodiscard]] Nanoseconds elapsed_ns() const noexcept {
    return cycles_to_ns(cycles);
  }
};

class Fabric;

/// Pluggable execution strategy driving a Fabric (implementations live in
/// src/engine; see docs/ARCHITECTURE.md "Execution engines").  A fabric
/// with an attached hook delegates run()/step() to it; engines reach the
/// scheduler internals through fabric::ExecAccess and MUST be bit-identical
/// to the built-in interpreter — same cycle counts, stats, traces and
/// remote-write commit order (tests/test_engine.cpp enforces it).
class ExecutionHook {
 public:
  virtual ~ExecutionHook() = default;
  /// Same contract as Fabric::run().
  virtual RunResult run(Fabric& fabric, std::int64_t max_cycles) = 0;
  /// Same contract as Fabric::step().
  virtual int step(Fabric& fabric) = 0;
};

/// Process-wide default-engine factory, consulted lazily the first time a
/// fabric without an attached engine runs.  Returning nullptr keeps the
/// built-in interpreter.  Installed once at startup (engine CLI flag /
/// build default) before any threads run fabrics.
using EngineFactory = std::unique_ptr<ExecutionHook> (*)();
void set_default_engine_factory(EngineFactory factory) noexcept;
[[nodiscard]] EngineFactory default_engine_factory() noexcept;

/// The mesh of tiles.
class Fabric : private TileScheduler {
 public:
  Fabric(int rows, int cols);

  // Tiles hold a back-pointer to their fabric's scheduler, so copying
  // would leave the copy's tiles notifying the original; moves re-bind.
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  Fabric(Fabric&& other) noexcept;
  Fabric& operator=(Fabric&& other) noexcept;

  [[nodiscard]] int rows() const noexcept { return links_.rows(); }
  [[nodiscard]] int cols() const noexcept { return links_.cols(); }
  [[nodiscard]] int tile_count() const noexcept { return links_.tile_count(); }

  [[nodiscard]] Tile& tile(int index) { return tiles_.at(static_cast<std::size_t>(index)); }
  [[nodiscard]] const Tile& tile(int index) const {
    return tiles_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] Tile& tile(interconnect::TileCoord c) {
    return tile(links_.index(c));
  }

  /// Current link configuration (mutable: epochs rewire it).  The fabric
  /// re-reads it at every run()/step() entry; rewiring while run() is on
  /// the stack is not supported (and never happens: transitions are applied
  /// between runs by the reconfiguration controller).
  [[nodiscard]] interconnect::LinkConfig& links() noexcept { return links_; }
  [[nodiscard]] const interconnect::LinkConfig& links() const noexcept {
    return links_;
  }

  // --- fault injection: permanent hardware failures ---
  // Failure state lives on the Fabric, not in LinkConfig: epochs overwrite
  // the link *configuration* wholesale, but broken wires stay broken.

  /// Permanently fail the outgoing link driver of `tile`.  Remote writes
  /// from it raise kLinkDown from then on, whatever the epoch configures.
  void fail_link(int tile) {
    failed_links_.at(static_cast<std::size_t>(tile)) = 1;
    if (link_state_[static_cast<std::size_t>(tile)] == LinkState::kUp) {
      link_state_[static_cast<std::size_t>(tile)] = LinkState::kDown;
    }
  }
  [[nodiscard]] bool link_failed(int tile) const {
    return failed_links_.at(static_cast<std::size_t>(tile)) != 0;
  }

  /// Hard-fail a whole tile at the current cycle (see Tile::hard_fail).
  void kill_tile(int tile) { this->tile(tile).hard_fail(tile, cycle_); }

  /// Linear indices of all dead tiles.
  [[nodiscard]] std::vector<int> dead_tiles() const;

  /// Global cycle counter (monotonic across run() calls).
  [[nodiscard]] std::int64_t now() const noexcept { return cycle_; }

  /// Restore construction state: every tile reset (dmem/imem/stats, dead
  /// tiles revived), links cleared, failed link drivers repaired, cycle
  /// counter zeroed, scheduler state (active list, wake heap, settlement
  /// boundaries) rebuilt.  A reset fabric behaves bit-identically to a
  /// freshly constructed one — the contract the fabric pool's reset-and-
  /// reuse depends on (property-tested cycle-for-cycle).  External
  /// attachments (tracer, metrics registry) are harness wiring, not fabric
  /// state, and are deliberately kept; detach them explicitly if unwanted.
  void reset();

  /// Execute one cycle: step every runnable tile, then commit remote
  /// writes.  Returns the number of tiles that retired an instruction.
  /// Idle tiles' cycle accounting is settled before this returns, so the
  /// observable TileStats match the reference one-step-per-tile engine.
  /// Delegates to the attached execution engine when one is installed.
  int step();

  /// Run until every tile is halted, a fault occurs, or `max_cycles`
  /// elapse.  When only stalled tiles remain, the cycle counter
  /// fast-forwards to the next wake event (run-until-event; the skipped
  /// cycles still count against `max_cycles` and into the result).
  /// Delegates to the attached execution engine when one is installed.
  RunResult run(std::int64_t max_cycles);

  /// The built-in interpreter: the reference implementation run()/step()
  /// use when no engine is attached.  Engines and the conformance suite
  /// call these directly to compare against the reference.
  RunResult run_interpreter(std::int64_t max_cycles);
  int step_interpreter();

  // --- pluggable execution engines ---
  // Like the tracer/metrics attachments, an engine is harness wiring, not
  // fabric state: reset() keeps it.  When neither attach nor adopt was
  // called, the first run()/step() consults the process-wide default
  // factory once (set_default_engine_factory); attach_engine(nullptr)
  // pins the built-in interpreter explicitly.

  /// Attach a non-owning engine (must outlive the fabric), or nullptr to
  /// pin the built-in interpreter.
  void attach_engine(ExecutionHook* engine) noexcept {
    owned_engine_.reset();
    engine_ = engine;
    engine_resolved_ = true;
  }
  /// Attach an engine the fabric owns.
  void adopt_engine(std::unique_ptr<ExecutionHook> engine) noexcept {
    owned_engine_ = std::move(engine);
    engine_ = owned_engine_.get();
    engine_resolved_ = true;
  }
  /// The engine run()/step() currently delegate to (null = interpreter,
  /// or default not resolved yet).
  [[nodiscard]] ExecutionHook* engine() const noexcept { return engine_; }

  /// True if every tile is halted (cleanly or by fault).  O(1): the
  /// scheduler maintains the halted-tile count across all transitions.
  [[nodiscard]] bool all_halted() const noexcept {
    return halted_count_ == tile_count();
  }

  /// Cycle of the earliest pending stall-wake event, or -1 when no tile is
  /// stalled (exposed for schedulers and tests).
  [[nodiscard]] std::int64_t next_wake_cycle();

  /// Collect faults currently latched in the tiles.
  [[nodiscard]] std::vector<Fault> faults() const;

  /// Attach (or detach with nullptr) an event tracer; the fabric does not
  /// own it.  Tracing costs one branch per tile-step when detached.
  void attach_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }

  /// Attach (or detach with nullptr) a metrics registry; the fabric does
  /// not own it.  Handles are resolved once here so the hot loop pays one
  /// branch plus array increments per cycle (and nothing per tile).  The
  /// published counters: fabric.cycles, fabric.retired,
  /// fabric.remote_writes, fabric.faults.
  void attach_metrics(obs::MetricsRegistry* metrics);
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

 private:
  /// Execution engines (src/engine) reach the scheduler internals through
  /// this single audited backdoor (fabric/exec_access.hpp).
  friend struct ExecAccess;

  /// Scheduling class of a tile.  Exactly one applies at any cycle; it is
  /// also the TileStats bucket its skipped cycles settle into.
  enum class TileClass : std::uint8_t { kActive, kStalled, kHalted };

  /// TileScheduler: a tile's run state (or instruction image) changed.
  void tile_state_changed(int tile) override;

  /// Add the pending idle cycles of a non-active tile to its stats bucket.
  void settle_tile(int tile, std::int64_t boundary);
  /// Settle every tile up to the current cycle (public API boundary).
  void settle_all();
  /// Move tiles whose stall deadline has passed onto the active list.
  void process_wakes();
  /// Execute one cycle over the active list and commit remote writes.
  int step_cycle();
  /// Drop active-list entries invalidated during a sweep.
  void compact_active();
  void insert_active(int tile);
  void remove_active(int tile);
  /// Re-derive per-tile link state/target from links_ and failed_links_.
  void refresh_link_cache();

  /// Resolve the lazy process-default engine (first run()/step()).
  void resolve_engine();

  interconnect::LinkConfig links_;
  std::vector<Tile> tiles_;
  std::vector<RemoteWrite> remote_buffer_;
  ExecutionHook* engine_ = nullptr;  ///< Delegation target; see engine().
  std::unique_ptr<ExecutionHook> owned_engine_;
  bool engine_resolved_ = false;  ///< Default-factory lookup done.
  std::vector<std::uint8_t> failed_links_;  ///< 1 = output driver broken.
  std::int64_t cycle_ = 0;
  Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::CounterHandle m_cycles_;
  obs::CounterHandle m_retired_;
  obs::CounterHandle m_remote_writes_;
  obs::CounterHandle m_faults_;

  // --- active-tile scheduler state ---
  std::vector<TileClass> class_;         ///< Current class per tile.
  std::vector<int> active_;              ///< Runnable tiles, ascending index.
  std::vector<std::uint8_t> in_active_;  ///< Membership in active_ (incl. stale).
  /// Pending (wake_cycle, tile) events, earliest first.  Entries are lazy:
  /// superseded deadlines and dead classes are dropped on inspection; every
  /// stalled tile always has one entry matching its true deadline.
  std::priority_queue<std::pair<std::int64_t, int>,
                      std::vector<std::pair<std::int64_t, int>>,
                      std::greater<>>
      wake_;
  int halted_count_ = 0;                 ///< Tiles in class kHalted.
  /// Cycle up to which each non-active tile's idle buckets are settled.
  std::vector<std::int64_t> settled_;
  /// Cached per-tile output-link state/target, refreshed at run()/step()
  /// entry (links cannot change while the fabric is stepping).
  std::vector<LinkState> link_state_;
  std::vector<int> link_target_;
  bool stepping_ = false;       ///< Inside a sweep: transitions settle at cycle_+1.
  bool active_dirty_ = false;   ///< Stale entries in active_ need compaction.
};

}  // namespace cgra::fabric

// The tile array: an R x C mesh of Tiles plus the malleable interconnect.
//
// Execution is globally synchronous: every cycle each running tile retires
// one instruction; remote writes are buffered and committed at the end of
// the cycle into the destination tile's data memory (the semi-systolic
// shared-memory transfer of the paper).  MIMD: each tile runs its own
// program.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "fabric/tile.hpp"
#include "fabric/trace.hpp"
#include "interconnect/link.hpp"
#include "obs/metrics.hpp"

namespace cgra::fabric {

/// Result of running the fabric.
struct RunResult {
  std::int64_t cycles = 0;       ///< Cycles executed by this run() call.
  bool all_halted = false;       ///< Every tile halted cleanly.
  std::vector<Fault> faults;     ///< All faults raised during the run.

  [[nodiscard]] bool ok() const noexcept {
    return all_halted && faults.empty();
  }
  [[nodiscard]] Nanoseconds elapsed_ns() const noexcept {
    return cycles_to_ns(cycles);
  }
};

/// The mesh of tiles.
class Fabric {
 public:
  Fabric(int rows, int cols);

  [[nodiscard]] int rows() const noexcept { return links_.rows(); }
  [[nodiscard]] int cols() const noexcept { return links_.cols(); }
  [[nodiscard]] int tile_count() const noexcept { return links_.tile_count(); }

  [[nodiscard]] Tile& tile(int index) { return tiles_.at(static_cast<std::size_t>(index)); }
  [[nodiscard]] const Tile& tile(int index) const {
    return tiles_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] Tile& tile(interconnect::TileCoord c) {
    return tile(links_.index(c));
  }

  /// Current link configuration (mutable: epochs rewire it).
  [[nodiscard]] interconnect::LinkConfig& links() noexcept { return links_; }
  [[nodiscard]] const interconnect::LinkConfig& links() const noexcept {
    return links_;
  }

  // --- fault injection: permanent hardware failures ---
  // Failure state lives on the Fabric, not in LinkConfig: epochs overwrite
  // the link *configuration* wholesale, but broken wires stay broken.

  /// Permanently fail the outgoing link driver of `tile`.  Remote writes
  /// from it raise kLinkDown from then on, whatever the epoch configures.
  void fail_link(int tile) {
    failed_links_.at(static_cast<std::size_t>(tile)) = 1;
  }
  [[nodiscard]] bool link_failed(int tile) const {
    return failed_links_.at(static_cast<std::size_t>(tile)) != 0;
  }

  /// Hard-fail a whole tile at the current cycle (see Tile::hard_fail).
  void kill_tile(int tile) { this->tile(tile).hard_fail(tile, cycle_); }

  /// Linear indices of all dead tiles.
  [[nodiscard]] std::vector<int> dead_tiles() const;

  /// Global cycle counter (monotonic across run() calls).
  [[nodiscard]] std::int64_t now() const noexcept { return cycle_; }

  /// Execute one cycle: step every tile, then commit remote writes.
  /// Returns the number of tiles that retired an instruction.
  int step();

  /// Run until every tile is halted, a fault occurs, or `max_cycles` elapse.
  RunResult run(std::int64_t max_cycles);

  /// True if every tile is halted (cleanly or by fault).
  [[nodiscard]] bool all_halted() const;

  /// Collect faults currently latched in the tiles.
  [[nodiscard]] std::vector<Fault> faults() const;

  /// Attach (or detach with nullptr) an event tracer; the fabric does not
  /// own it.  Tracing costs one branch per tile-step when detached.
  void attach_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }

  /// Attach (or detach with nullptr) a metrics registry; the fabric does
  /// not own it.  Handles are resolved once here so the hot loop pays one
  /// branch plus array increments per cycle (and nothing per tile).  The
  /// published counters: fabric.cycles, fabric.retired,
  /// fabric.remote_writes, fabric.faults.
  void attach_metrics(obs::MetricsRegistry* metrics);
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

 private:
  interconnect::LinkConfig links_;
  std::vector<Tile> tiles_;
  std::vector<RemoteWrite> remote_buffer_;
  std::vector<std::uint8_t> failed_links_;  ///< 1 = output driver broken.
  std::int64_t cycle_ = 0;
  Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::CounterHandle m_cycles_;
  obs::CounterHandle m_retired_;
  obs::CounterHandle m_remote_writes_;
  obs::CounterHandle m_faults_;
};

}  // namespace cgra::fabric

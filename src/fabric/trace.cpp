#include "fabric/trace.hpp"

#include <sstream>

namespace cgra::fabric {

const char* trace_event_kind_name(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::kRetire: return "retire";
    case TraceEventKind::kRemoteWrite: return "remote";
    case TraceEventKind::kHalt: return "halt";
    case TraceEventKind::kFault: return "fault";
    case TraceEventKind::kRecovery: return "recovery";
  }
  return "?";
}

const char* recovery_action_name(RecoveryAction a) noexcept {
  switch (a) {
    case RecoveryAction::kIcapRetry: return "icap-retry";
    case RecoveryAction::kRollback: return "rollback";
    case RecoveryAction::kRebalance: return "rebalance";
    case RecoveryAction::kGiveUp: return "give-up";
  }
  return "?";
}

void Tracer::record(const TraceEvent& ev) {
  if (ev.kind == TraceEventKind::kRetire ||
      ev.kind == TraceEventKind::kHalt) {
    if (ev.tile >= static_cast<int>(histogram_.size())) {
      histogram_.resize(static_cast<std::size_t>(ev.tile) + 1, {});
    }
    histogram_[static_cast<std::size_t>(ev.tile)]
              [static_cast<std::size_t>(ev.opcode)] += 1;
  }
  if (events_.size() >= capacity_) {
    events_.erase(events_.begin());
    ++dropped_;
  }
  events_.push_back(ev);
}

std::int64_t Tracer::opcode_count(int tile, isa::Opcode op) const {
  if (tile < 0 || tile >= static_cast<int>(histogram_.size())) return 0;
  return histogram_[static_cast<std::size_t>(tile)]
                   [static_cast<std::size_t>(op)];
}

std::int64_t Tracer::tile_retirements(int tile) const {
  if (tile < 0 || tile >= static_cast<int>(histogram_.size())) return 0;
  std::int64_t total = 0;
  for (const auto count : histogram_[static_cast<std::size_t>(tile)]) {
    total += count;
  }
  return total;
}

void Tracer::clear() {
  events_.clear();
  histogram_.clear();
  dropped_ = 0;
}

std::string Tracer::dump(std::size_t max_lines) const {
  std::ostringstream os;
  const std::size_t start =
      events_.size() > max_lines ? events_.size() - max_lines : 0;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const auto& ev = events_[i];
    os << "[" << ev.cycle << "] t" << ev.tile << " "
       << trace_event_kind_name(ev.kind);
    switch (ev.kind) {
      case TraceEventKind::kRetire:
      case TraceEventKind::kHalt:
      case TraceEventKind::kFault:
        os << " pc=" << ev.pc << " " << isa::mnemonic(ev.opcode);
        break;
      case TraceEventKind::kRemoteWrite:
        os << " -> t" << ev.dst_tile << "[" << ev.addr
           << "] = " << word_to_hex(ev.value);
        break;
      case TraceEventKind::kRecovery:
        os << " " << recovery_action_name(ev.action) << " attempt "
           << ev.attempt;
        break;
    }
    os << '\n';
  }
  if (dropped_ > 0) {
    os << "(" << dropped_ << " earlier events dropped)\n";
  }
  return os.str();
}

}  // namespace cgra::fabric

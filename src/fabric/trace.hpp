// Execution tracing for the fabric simulator.
//
// A Tracer attached to a Fabric records per-cycle events — instruction
// retirements, remote writes, halts and faults — into a bounded ring
// buffer, plus per-tile per-opcode histograms that never drop.  Used by
// the debugging workflow (examples/remorph_asm --trace) and by tests that
// assert on execution order rather than only on final memory state.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "isa/instruction.hpp"

namespace cgra::fabric {

/// What happened.
enum class TraceEventKind : std::uint8_t {
  kRetire,       ///< An instruction retired.
  kRemoteWrite,  ///< A value crossed a link (recorded at commit).
  kHalt,         ///< The tile executed halt.
  kFault,        ///< The tile faulted.
  kRecovery,     ///< The recovery layer acted (retry, rollback, rebalance).
};

const char* trace_event_kind_name(TraceEventKind k) noexcept;

/// Recovery actions recorded as kRecovery events.
enum class RecoveryAction : std::uint8_t {
  kIcapRetry,     ///< Corrupted ICAP transfer scrubbed and re-streamed.
  kRollback,      ///< Data memories rolled back to an epoch checkpoint.
  kRebalance,     ///< Work remapped onto the surviving tiles.
  kGiveUp,        ///< Recovery exhausted its budget; fault stands.
};

const char* recovery_action_name(RecoveryAction a) noexcept;

/// One recorded event.
struct TraceEvent {
  std::int64_t cycle = 0;
  TraceEventKind kind = TraceEventKind::kRetire;
  int tile = 0;
  int pc = 0;                     ///< Retire/halt/fault: the instruction PC.
  isa::Opcode opcode = isa::Opcode::kNop;
  int dst_tile = -1;              ///< Remote writes: destination tile.
  int addr = -1;                  ///< Remote writes: destination address.
  Word value = 0;                 ///< Remote writes: the value.
  RecoveryAction action = RecoveryAction::kIcapRetry;  ///< kRecovery only.
  int attempt = 0;                ///< kRecovery: retry attempt number.
};

/// Bounded event recorder with unbounded counters.
class Tracer {
 public:
  /// Keep at most `capacity` events (oldest dropped first).
  explicit Tracer(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(const TraceEvent& ev);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  /// Events discarded because the buffer was full.
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }

  /// Total retirements of `op` on `tile` (never dropped).
  [[nodiscard]] std::int64_t opcode_count(int tile, isa::Opcode op) const;
  /// Total retirements on `tile`.
  [[nodiscard]] std::int64_t tile_retirements(int tile) const;

  void clear();

  /// Human-readable dump of the most recent `max_lines` events.
  [[nodiscard]] std::string dump(std::size_t max_lines = 64) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::int64_t dropped_ = 0;
  /// histogram_[tile][opcode]; grown on demand.
  std::vector<std::array<std::int64_t,
                         static_cast<std::size_t>(isa::Opcode::kOpcodeCount)>>
      histogram_;
};

}  // namespace cgra::fabric

#include "fabric/tile.hpp"

#include <algorithm>

#include "fabric/step_core.hpp"
#include "isa/instruction.hpp"

namespace cgra::fabric {

using isa::DecodedInstr;
using isa::Opcode;

Tile& Tile::operator=(const Tile& other) {
  if (this == &other) return *this;
  dmem_ = other.dmem_;
  code_ = other.code_;
  decoded_ = other.decoded_;
  acc_ = other.acc_;
  pc_ = other.pc_;
  halted_ = other.halted_;
  dead_ = other.dead_;
  fault_ = other.fault_;
  stats_ = other.stats_;
  stalled_until_ = other.stalled_until_;
  // The assigned-over instruction image changed as far as any engine cache
  // keyed on this slot is concerned, whatever version the source carried.
  ++code_version_;
  // sched_ / sched_index_ deliberately untouched: the binding names a slot
  // in the owning fabric, not a property of the tile's value.
  return *this;
}

bool Tile::load_program(const isa::Program& prog) {
  if (dead_) return false;
  if (prog.inst_words() > kInstMemWords) return false;
  for (const auto& patch : prog.data) {
    if (patch.addr < 0 || patch.addr >= kDataMemWords) return false;
  }
  code_ = prog.code;
  decoded_ = isa::predecode_all(code_);
  for (const auto& patch : prog.data) {
    dmem_[static_cast<std::size_t>(patch.addr)] = truncate_word(patch.value);
  }
  pc_ = 0;
  halted_ = true;  // a loaded tile awaits restart()
  fault_ = Fault{};
  ++code_version_;
  notify_scheduler();
  return true;
}

bool Tile::patch_data(std::span<const isa::DataPatch> patches) {
  if (dead_) return false;
  for (const auto& patch : patches) {
    if (patch.addr < 0 || patch.addr >= kDataMemWords) return false;
  }
  for (const auto& patch : patches) {
    dmem_[static_cast<std::size_t>(patch.addr)] = truncate_word(patch.value);
  }
  return true;
}

void Tile::restart(int pc) {
  if (dead_) return;
  pc_ = pc;
  halted_ = code_.empty();
  fault_ = Fault{};
  notify_scheduler();
}

void Tile::reset() {
  dmem_.fill(0);
  code_.clear();
  decoded_.clear();
  acc_ = 0;
  pc_ = 0;
  halted_ = true;
  dead_ = false;
  fault_ = Fault{};
  stats_ = TileStats{};
  stalled_until_ = 0;
  ++code_version_;
  notify_scheduler();
}

bool Tile::restore_dmem(std::span<const Word> image) {
  if (dead_ || image.size() != dmem_.size()) return false;
  std::copy(image.begin(), image.end(), dmem_.begin());
  return true;
}

bool Tile::flip_dmem_bit(int addr, int bit) {
  if (addr < 0 || addr >= kDataMemWords) return false;
  auto& word = dmem_[static_cast<std::size_t>(addr)];
  word = truncate_word(word ^ (std::uint64_t{1} << (bit % kWordBits)));
  return true;
}

bool Tile::flip_inst_bit(int index, int bit) {
  if (index < 0 || index >= code_size()) return false;
  isa::EncodedInstr raw = isa::encode(code_[static_cast<std::size_t>(index)]);
  bit %= kInstWordBits;
  if (bit < 64) {
    raw.lo ^= std::uint64_t{1} << bit;
  } else {
    raw.hi ^= static_cast<std::uint8_t>(1u << (bit - 64));
  }
  const auto decoded = isa::decode(raw);
  // An upset that lands in the opcode field may leave an undefined opcode;
  // poison the slot so executing it raises kIllegalOpcode.
  code_[static_cast<std::size_t>(index)] =
      decoded.value_or(isa::Instruction{isa::Opcode::kOpcodeCount, 0, 0, 0,
                                        0, 0});
  // Keep the flattened image in lockstep with the poked slot.
  decoded_[static_cast<std::size_t>(index)] =
      isa::predecode(code_[static_cast<std::size_t>(index)]);
  ++code_version_;
  return true;
}

void Tile::inject_fault(FaultKind kind, int tile_index, std::int64_t cycle) {
  // A dead tile keeps its latched kTileDead fault; later injections
  // (e.g. ICAP corruption of a payload aimed at it) must not mask it.
  if (dead_) return;
  raise(kind, tile_index, cycle);
}

void Tile::hard_fail(int tile_index, std::int64_t cycle) {
  raise(FaultKind::kTileDead, tile_index, cycle);
  dead_ = true;
}

void Tile::raise(FaultKind kind, int tile_index, std::int64_t cycle) {
  fault_.kind = kind;
  fault_.tile = tile_index;
  fault_.pc = pc_;
  fault_.cycle = cycle;
  halted_ = true;
  notify_scheduler();
}

bool Tile::step(int tile_index, std::int64_t cycle, LinkState link,
                std::vector<RemoteWrite>& remote_out) {
  if (halted_ || fault_.is_fault()) {
    ++stats_.cycles_halted;
    return false;
  }
  if (cycle < stalled_until_) {
    ++stats_.cycles_stalled;
    return false;
  }
  if (pc_ < 0 || pc_ >= static_cast<int>(decoded_.size())) {
    raise(FaultKind::kPcOutOfRange, tile_index, cycle);
    return false;
  }
  // The semantics live in the shared step core (step_core.hpp) so every
  // execution engine — this interpreter, the threaded superinstructions,
  // the batch SoA stepper — runs the same body.
  const DecodedInstr& in = decoded_[static_cast<std::size_t>(pc_)];
  TileView view(*this, tile_index, cycle, remote_out);
  return core::exec_instr<core::DynTraits>(view, in, link);
}

}  // namespace cgra::fabric

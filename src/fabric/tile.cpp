#include "fabric/tile.hpp"

#include <algorithm>

#include "isa/instruction.hpp"

namespace cgra::fabric {

using isa::DecodedInstr;
using isa::Opcode;

Tile& Tile::operator=(const Tile& other) {
  if (this == &other) return *this;
  dmem_ = other.dmem_;
  code_ = other.code_;
  decoded_ = other.decoded_;
  acc_ = other.acc_;
  pc_ = other.pc_;
  halted_ = other.halted_;
  dead_ = other.dead_;
  fault_ = other.fault_;
  stats_ = other.stats_;
  stalled_until_ = other.stalled_until_;
  // sched_ / sched_index_ deliberately untouched: the binding names a slot
  // in the owning fabric, not a property of the tile's value.
  return *this;
}

bool Tile::load_program(const isa::Program& prog) {
  if (dead_) return false;
  if (prog.inst_words() > kInstMemWords) return false;
  for (const auto& patch : prog.data) {
    if (patch.addr < 0 || patch.addr >= kDataMemWords) return false;
  }
  code_ = prog.code;
  decoded_ = isa::predecode_all(code_);
  for (const auto& patch : prog.data) {
    dmem_[static_cast<std::size_t>(patch.addr)] = truncate_word(patch.value);
  }
  pc_ = 0;
  halted_ = true;  // a loaded tile awaits restart()
  fault_ = Fault{};
  notify_scheduler();
  return true;
}

bool Tile::patch_data(std::span<const isa::DataPatch> patches) {
  if (dead_) return false;
  for (const auto& patch : patches) {
    if (patch.addr < 0 || patch.addr >= kDataMemWords) return false;
  }
  for (const auto& patch : patches) {
    dmem_[static_cast<std::size_t>(patch.addr)] = truncate_word(patch.value);
  }
  return true;
}

void Tile::restart(int pc) {
  if (dead_) return;
  pc_ = pc;
  halted_ = code_.empty();
  fault_ = Fault{};
  notify_scheduler();
}

void Tile::reset() {
  dmem_.fill(0);
  code_.clear();
  decoded_.clear();
  acc_ = 0;
  pc_ = 0;
  halted_ = true;
  dead_ = false;
  fault_ = Fault{};
  stats_ = TileStats{};
  stalled_until_ = 0;
  notify_scheduler();
}

bool Tile::restore_dmem(std::span<const Word> image) {
  if (dead_ || image.size() != dmem_.size()) return false;
  std::copy(image.begin(), image.end(), dmem_.begin());
  return true;
}

bool Tile::flip_dmem_bit(int addr, int bit) {
  if (addr < 0 || addr >= kDataMemWords) return false;
  auto& word = dmem_[static_cast<std::size_t>(addr)];
  word = truncate_word(word ^ (std::uint64_t{1} << (bit % kWordBits)));
  return true;
}

bool Tile::flip_inst_bit(int index, int bit) {
  if (index < 0 || index >= code_size()) return false;
  isa::EncodedInstr raw = isa::encode(code_[static_cast<std::size_t>(index)]);
  bit %= kInstWordBits;
  if (bit < 64) {
    raw.lo ^= std::uint64_t{1} << bit;
  } else {
    raw.hi ^= static_cast<std::uint8_t>(1u << (bit - 64));
  }
  const auto decoded = isa::decode(raw);
  // An upset that lands in the opcode field may leave an undefined opcode;
  // poison the slot so executing it raises kIllegalOpcode.
  code_[static_cast<std::size_t>(index)] =
      decoded.value_or(isa::Instruction{isa::Opcode::kOpcodeCount, 0, 0, 0,
                                        0, 0});
  // Keep the flattened image in lockstep with the poked slot.
  decoded_[static_cast<std::size_t>(index)] =
      isa::predecode(code_[static_cast<std::size_t>(index)]);
  return true;
}

void Tile::inject_fault(FaultKind kind, int tile_index, std::int64_t cycle) {
  // A dead tile keeps its latched kTileDead fault; later injections
  // (e.g. ICAP corruption of a payload aimed at it) must not mask it.
  if (dead_) return;
  raise(kind, tile_index, cycle);
}

void Tile::hard_fail(int tile_index, std::int64_t cycle) {
  raise(FaultKind::kTileDead, tile_index, cycle);
  dead_ = true;
}

void Tile::raise(FaultKind kind, int tile_index, std::int64_t cycle) {
  fault_.kind = kind;
  fault_.tile = tile_index;
  fault_.pc = pc_;
  fault_.cycle = cycle;
  halted_ = true;
  notify_scheduler();
}

int Tile::effective_addr(std::uint16_t field, bool indirect, int tile_index,
                         std::int64_t cycle) {
  int addr = field;
  if (indirect) {
    if (addr >= kDataMemWords) {
      raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
      return -1;
    }
    addr = static_cast<int>(
        to_signed(dmem_[static_cast<std::size_t>(addr)]));
  }
  if (addr < 0 || addr >= kDataMemWords) {
    raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
    return -1;
  }
  return addr;
}

bool Tile::step(int tile_index, std::int64_t cycle, LinkState link,
                std::vector<RemoteWrite>& remote_out) {
  if (halted_ || fault_.is_fault()) {
    ++stats_.cycles_halted;
    return false;
  }
  if (cycle < stalled_until_) {
    ++stats_.cycles_stalled;
    return false;
  }
  if (pc_ < 0 || pc_ >= static_cast<int>(decoded_.size())) {
    raise(FaultKind::kPcOutOfRange, tile_index, cycle);
    return false;
  }
  const DecodedInstr& in = decoded_[static_cast<std::size_t>(pc_)];
  if (in.illegal) {
    raise(FaultKind::kIllegalOpcode, tile_index, cycle);
    return false;
  }

  // --- operand fetch ---
  Word a = 0;
  if (in.reads_srca) {
    int ea = in.srca;
    if (in.srca_oob) {
      raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
      return false;
    }
    if (in.srca_indirect) {
      ea = effective_addr(in.srca, true, tile_index, cycle);
      if (ea < 0) return false;
    }
    a = dmem_[static_cast<std::size_t>(ea)];
  }
  Word b = 0;
  if (in.reads_srcb) {
    if (in.use_imm) {
      b = in.imm_word;
    } else {
      int eb = in.srcb;
      if (in.srcb_oob) {
        raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
        return false;
      }
      if (in.srcb_indirect) {
        eb = effective_addr(in.srcb, true, tile_index, cycle);
        if (eb < 0) return false;
      }
      b = dmem_[static_cast<std::size_t>(eb)];
    }
  }

  // --- execute ---
  Word result = 0;
  int next_pc = pc_ + 1;
  bool halt_after = false;
  switch (in.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halt_after = true;
      break;
    case Opcode::kMov:
      result = a;
      break;
    case Opcode::kMovi:
      result = in.imm_word;
      break;
    case Opcode::kAdd:
      result = word_add(a, b);
      break;
    case Opcode::kSub:
      result = word_sub(a, b);
      break;
    case Opcode::kMul:
      result = word_mul(a, b);
      break;
    case Opcode::kAnd:
      result = a & b;
      break;
    case Opcode::kOrr:
      result = a | b;
      break;
    case Opcode::kXor:
      result = a ^ b;
      break;
    case Opcode::kShl:
      result = truncate_word(a << (to_signed(b) & 63));
      break;
    case Opcode::kShr:
      result = truncate_word((a & kWordMask) >>
                             static_cast<unsigned>(to_signed(b) & 63));
      break;
    case Opcode::kSra:
      result = from_signed(to_signed(a) >>
                           static_cast<unsigned>(to_signed(b) & 63));
      break;
    case Opcode::kCadd:
      result = word_cadd(a, b);
      break;
    case Opcode::kCsub:
      result = word_csub(a, b);
      break;
    case Opcode::kCmul:
      result = word_cmul(a, b);
      break;
    case Opcode::kBeqz:
      if (to_signed(a) == 0) next_pc = in.imm;
      break;
    case Opcode::kBnez:
      if (to_signed(a) != 0) next_pc = in.imm;
      break;
    case Opcode::kBltz:
      if (to_signed(a) < 0) next_pc = in.imm;
      break;
    case Opcode::kJmp:
      next_pc = in.imm;
      break;
    case Opcode::kMacz:
      acc_ = to_signed(a) * to_signed(b);
      break;
    case Opcode::kMac:
      acc_ += to_signed(a) * to_signed(b);
      break;
    case Opcode::kMacr:
      result = from_signed(acc_);
      break;
    case Opcode::kOpcodeCount:
      // Unreachable: predecode marks these slots `illegal`.
      raise(FaultKind::kIllegalOpcode, tile_index, cycle);
      return false;
  }

  // --- write back ---
  if (in.writes_dst) {
    const bool remote = in.dst_remote;
    if (remote) {
      if (link != LinkState::kUp) {
        raise(link == LinkState::kDown ? FaultKind::kLinkDown
                                       : FaultKind::kNoActiveLink,
              tile_index, cycle);
        return false;
      }
      // Remote effective address is resolved with *local* indirection
      // (pointer lives in this tile) but addresses the neighbour's memory;
      // range is validated here, the fabric routes the value.
      int addr = in.dst;
      if (in.dst_indirect) {
        const int ea = effective_addr(in.dst, true, tile_index, cycle);
        if (ea < 0) return false;
        addr = ea;
      } else if (in.dst_oob) {
        raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
        return false;
      }
      remote_out.push_back(RemoteWrite{tile_index, addr, result});
      ++stats_.remote_writes;
    } else {
      int ed = in.dst;
      if (in.dst_oob) {
        raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
        return false;
      }
      if (in.dst_indirect) {
        ed = effective_addr(in.dst, true, tile_index, cycle);
        if (ed < 0) return false;
      }
      dmem_[static_cast<std::size_t>(ed)] = truncate_word(result);
    }
  }

  pc_ = next_pc;
  ++stats_.instructions;
  if (halt_after) {
    halted_ = true;
    notify_scheduler();
  }
  return true;
}

}  // namespace cgra::fabric

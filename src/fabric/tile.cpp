#include "fabric/tile.hpp"

#include <algorithm>

#include "isa/instruction.hpp"

namespace cgra::fabric {

using isa::Instruction;
using isa::Opcode;

bool Tile::load_program(const isa::Program& prog) {
  if (dead_) return false;
  if (prog.inst_words() > kInstMemWords) return false;
  for (const auto& patch : prog.data) {
    if (patch.addr < 0 || patch.addr >= kDataMemWords) return false;
  }
  code_ = prog.code;
  for (const auto& patch : prog.data) {
    dmem_[static_cast<std::size_t>(patch.addr)] = truncate_word(patch.value);
  }
  pc_ = 0;
  halted_ = true;  // a loaded tile awaits restart()
  fault_ = Fault{};
  return true;
}

bool Tile::patch_data(std::span<const isa::DataPatch> patches) {
  if (dead_) return false;
  for (const auto& patch : patches) {
    if (patch.addr < 0 || patch.addr >= kDataMemWords) return false;
  }
  for (const auto& patch : patches) {
    dmem_[static_cast<std::size_t>(patch.addr)] = truncate_word(patch.value);
  }
  return true;
}

void Tile::restart(int pc) {
  if (dead_) return;
  pc_ = pc;
  halted_ = code_.empty();
  fault_ = Fault{};
}

bool Tile::restore_dmem(std::span<const Word> image) {
  if (dead_ || image.size() != dmem_.size()) return false;
  std::copy(image.begin(), image.end(), dmem_.begin());
  return true;
}

void Tile::flip_dmem_bit(int addr, int bit) {
  auto& word = dmem_.at(static_cast<std::size_t>(addr));
  word = truncate_word(word ^ (std::uint64_t{1} << (bit % kWordBits)));
}

bool Tile::flip_inst_bit(int index, int bit) {
  if (index < 0 || index >= code_size()) return false;
  isa::EncodedInstr raw = isa::encode(code_[static_cast<std::size_t>(index)]);
  bit %= kInstWordBits;
  if (bit < 64) {
    raw.lo ^= std::uint64_t{1} << bit;
  } else {
    raw.hi ^= static_cast<std::uint8_t>(1u << (bit - 64));
  }
  const auto decoded = isa::decode(raw);
  // An upset that lands in the opcode field may leave an undefined opcode;
  // poison the slot so executing it raises kIllegalOpcode.
  code_[static_cast<std::size_t>(index)] =
      decoded.value_or(isa::Instruction{isa::Opcode::kOpcodeCount, 0, 0, 0,
                                        0, 0});
  return true;
}

void Tile::inject_fault(FaultKind kind, int tile_index, std::int64_t cycle) {
  // A dead tile keeps its latched kTileDead fault; later injections
  // (e.g. ICAP corruption of a payload aimed at it) must not mask it.
  if (dead_) return;
  raise(kind, tile_index, cycle);
}

void Tile::hard_fail(int tile_index, std::int64_t cycle) {
  raise(FaultKind::kTileDead, tile_index, cycle);
  dead_ = true;
}

void Tile::raise(FaultKind kind, int tile_index, std::int64_t cycle) {
  fault_.kind = kind;
  fault_.tile = tile_index;
  fault_.pc = pc_;
  fault_.cycle = cycle;
  halted_ = true;
}

int Tile::effective_addr(std::uint16_t field, bool indirect, int tile_index,
                         std::int64_t cycle) {
  int addr = field;
  if (indirect) {
    if (addr >= kDataMemWords) {
      raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
      return -1;
    }
    addr = static_cast<int>(
        to_signed(dmem_[static_cast<std::size_t>(addr)]));
  }
  if (addr < 0 || addr >= kDataMemWords) {
    raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
    return -1;
  }
  return addr;
}

bool Tile::step(int tile_index, std::int64_t cycle, LinkState link,
                std::vector<RemoteWrite>& remote_out) {
  if (halted_ || fault_.is_fault()) {
    ++stats_.cycles_halted;
    return false;
  }
  if (cycle < stalled_until_) {
    ++stats_.cycles_stalled;
    return false;
  }
  if (pc_ < 0 || pc_ >= static_cast<int>(code_.size())) {
    raise(FaultKind::kPcOutOfRange, tile_index, cycle);
    return false;
  }
  const Instruction& in = code_[static_cast<std::size_t>(pc_)];

  // --- operand fetch ---
  Word a = 0;
  if (isa::reads_srca(in.opcode)) {
    const int ea = effective_addr(in.srca, in.has_flag(isa::kFlagSrcAIndirect),
                                  tile_index, cycle);
    if (ea < 0) return false;
    a = dmem_[static_cast<std::size_t>(ea)];
  }
  Word b = 0;
  if (isa::reads_srcb(in.opcode)) {
    if (in.has_flag(isa::kFlagUseImm)) {
      b = from_signed(in.imm);
    } else {
      const int eb = effective_addr(
          in.srcb, in.has_flag(isa::kFlagSrcBIndirect), tile_index, cycle);
      if (eb < 0) return false;
      b = dmem_[static_cast<std::size_t>(eb)];
    }
  }

  // --- execute ---
  Word result = 0;
  int next_pc = pc_ + 1;
  bool halt_after = false;
  switch (in.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halt_after = true;
      break;
    case Opcode::kMov:
      result = a;
      break;
    case Opcode::kMovi:
      result = from_signed(in.imm);
      break;
    case Opcode::kAdd:
      result = word_add(a, b);
      break;
    case Opcode::kSub:
      result = word_sub(a, b);
      break;
    case Opcode::kMul:
      result = word_mul(a, b);
      break;
    case Opcode::kAnd:
      result = a & b;
      break;
    case Opcode::kOrr:
      result = a | b;
      break;
    case Opcode::kXor:
      result = a ^ b;
      break;
    case Opcode::kShl:
      result = truncate_word(a << (to_signed(b) & 63));
      break;
    case Opcode::kShr:
      result = truncate_word((a & kWordMask) >>
                             static_cast<unsigned>(to_signed(b) & 63));
      break;
    case Opcode::kSra:
      result = from_signed(to_signed(a) >>
                           static_cast<unsigned>(to_signed(b) & 63));
      break;
    case Opcode::kCadd:
      result = word_cadd(a, b);
      break;
    case Opcode::kCsub:
      result = word_csub(a, b);
      break;
    case Opcode::kCmul:
      result = word_cmul(a, b);
      break;
    case Opcode::kBeqz:
      if (to_signed(a) == 0) next_pc = in.imm;
      break;
    case Opcode::kBnez:
      if (to_signed(a) != 0) next_pc = in.imm;
      break;
    case Opcode::kBltz:
      if (to_signed(a) < 0) next_pc = in.imm;
      break;
    case Opcode::kJmp:
      next_pc = in.imm;
      break;
    case Opcode::kMacz:
      acc_ = to_signed(a) * to_signed(b);
      break;
    case Opcode::kMac:
      acc_ += to_signed(a) * to_signed(b);
      break;
    case Opcode::kMacr:
      result = from_signed(acc_);
      break;
    case Opcode::kOpcodeCount:
      raise(FaultKind::kIllegalOpcode, tile_index, cycle);
      return false;
  }

  // --- write back ---
  if (isa::writes_dst(in.opcode)) {
    const bool remote = in.has_flag(isa::kFlagDstRemote);
    if (remote) {
      if (link != LinkState::kUp) {
        raise(link == LinkState::kDown ? FaultKind::kLinkDown
                                       : FaultKind::kNoActiveLink,
              tile_index, cycle);
        return false;
      }
      // Remote effective address is resolved with *local* indirection
      // (pointer lives in this tile) but addresses the neighbour's memory;
      // range is validated here, the fabric routes the value.
      int addr = in.dst;
      if (in.has_flag(isa::kFlagDstIndirect)) {
        const int ea = effective_addr(in.dst, true, tile_index, cycle);
        if (ea < 0) return false;
        addr = ea;
      } else if (addr >= kDataMemWords) {
        raise(FaultKind::kAddressOutOfRange, tile_index, cycle);
        return false;
      }
      remote_out.push_back(RemoteWrite{tile_index, addr, result});
      ++stats_.remote_writes;
    } else {
      const int ed = effective_addr(in.dst, in.has_flag(isa::kFlagDstIndirect),
                                    tile_index, cycle);
      if (ed < 0) return false;
      dmem_[static_cast<std::size_t>(ed)] = truncate_word(result);
    }
  }

  pc_ = next_pc;
  halted_ = halt_after;
  ++stats_.instructions;
  return true;
}

}  // namespace cgra::fabric

// One coarse-grain processing element (tile / grain / CGRM).
//
// Geometry and timing follow the paper: 512 x 48-bit data memory with two
// reads + one write per cycle, 512 x 72-bit instruction memory, one
// instruction per 2.5 ns cycle.  A tile reads only its own data memory but
// can write either its own memory or — via the active output link — the
// data memory of the connected neighbour.
//
// Fast path: load_program() predecodes the instruction image into flat
// isa::DecodedInstr records (flags pre-split, immediates pre-converted,
// operand roles resolved), so step() dispatches on plain fields.  The
// encoded isa::Instruction image is kept alongside for readback-verify,
// tracing and fault injection; flip_inst_bit re-predecodes the poked slot
// so the two images never diverge.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/fixed_complex.hpp"
#include "common/status.hpp"
#include "common/timing.hpp"
#include "common/word.hpp"
#include "isa/decoded.hpp"
#include "isa/program.hpp"

namespace cgra::fabric {

/// State of a tile's outgoing link as seen by the interpreter.
enum class LinkState : std::uint8_t {
  kNone,  ///< No output link configured this epoch.
  kUp,    ///< Link configured and healthy.
  kDown,  ///< Link configured but physically failed (fault injection).
};

/// A remote write emitted during a cycle; the Fabric commits it at cycle end
/// (synchronous semi-systolic transfer).
struct RemoteWrite {
  int src_tile = 0;
  int addr = 0;   ///< Destination address in the *neighbour's* data memory.
  Word value = 0;
};

/// Per-tile execution counters.
///
/// Cycle accounting invariant (the basis of obs::ProfileReport): every
/// fabric cycle a tile is stepped lands in exactly one of `instructions`
/// (retired), `cycles_stalled` (reconfiguration stall) or `cycles_halted`
/// (halted / faulted / the one cycle a fault is raised), so the three sum
/// to the fabric's global cycle counter.  The active-tile scheduler settles
/// the stalled/halted buckets of tiles it skips in batches, preserving the
/// invariant at every Fabric API boundary.
struct TileStats {
  std::int64_t instructions = 0;  ///< Instructions retired.
  std::int64_t remote_writes = 0;
  std::int64_t cycles_stalled = 0;  ///< Cycles spent stalled for reconfig.
  std::int64_t cycles_halted = 0;   ///< Cycles halted or faulted.
};

/// Observer of tile run-state transitions (halted / stalled / runnable).
///
/// The Fabric implements this to keep its active list, stall wake-queue and
/// halted counter exact even when external layers (reconfiguration
/// controller, fault injector, recovery) mutate tiles directly.  Transitions
/// are rare — configuration events, faults, halts — so the virtual call is
/// never on the per-cycle path.
class TileScheduler {
 public:
  /// `tile` (the bound linear index) may have changed halted/stalled state
  /// or its instruction image.
  virtual void tile_state_changed(int tile) = 0;

 protected:
  ~TileScheduler() = default;
};

class TileView;
struct TileExec;

/// One processing element.
class Tile {
 public:
  Tile() { dmem_.fill(0); }

  // A copied tile is a standalone value: the scheduler binding names a slot
  // in the source fabric and must not travel with the copy.
  Tile(const Tile& other) { *this = other; }
  Tile& operator=(const Tile& other);
  Tile(Tile&&) noexcept = default;
  Tile& operator=(Tile&&) noexcept = default;

  /// Load a program: replaces the instruction image, applies data patches
  /// and resets the PC.  The tile stays halted until restart() — mirroring
  /// the runtime system configuring a partition before releasing it.
  /// Returns false (and loads nothing) if the program exceeds the memories
  /// or the tile is dead.
  bool load_program(const isa::Program& prog);

  /// Apply data patches only (e.g. reloading twiddle factors or copy-process
  /// variables during partial reconfiguration).
  bool patch_data(std::span<const isa::DataPatch> patches);

  /// Restart execution at `pc` (default 0) and clear the halted flag.
  /// A dead tile ignores the restart and stays faulted.
  void restart(int pc = 0);

  /// Restore construction state: zeroed data memory, empty instruction
  /// image, cleared accumulator/PC/stats/fault, halted.  Unlike every
  /// in-mission path this also revives a dead tile — reset models taking
  /// the hardware out of service and re-provisioning the slot (fabric-pool
  /// reuse), not repair under fire.  The scheduler binding survives and is
  /// notified like any other state transition.
  void reset();

  /// Data memory access for harness / test code.
  [[nodiscard]] Word dmem(int addr) const { return dmem_.at(static_cast<std::size_t>(addr)); }
  void set_dmem(int addr, Word v) { dmem_.at(static_cast<std::size_t>(addr)) = v; }

  /// Checkpoint support: copy-out / copy-in the whole data memory.
  [[nodiscard]] std::vector<Word> snapshot_dmem() const {
    return {dmem_.begin(), dmem_.end()};
  }
  /// Restores a snapshot taken with snapshot_dmem(); returns false (and
  /// restores nothing) on size mismatch or a dead tile.
  bool restore_dmem(std::span<const Word> image);

  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] const Fault& fault() const noexcept { return fault_; }
  [[nodiscard]] bool faulted() const noexcept { return fault_.is_fault(); }
  [[nodiscard]] bool dead() const noexcept { return dead_; }
  [[nodiscard]] int pc() const noexcept { return pc_; }
  [[nodiscard]] const TileStats& stats() const noexcept { return stats_; }

  /// Attribute the cycle a fault was raised mid-step to the halted bucket
  /// (the fabric calls this on the fault transition, keeping the TileStats
  /// cycle-accounting invariant exact).
  void count_fault_cycle() noexcept { ++stats_.cycles_halted; }
  /// Batch-settle cycles the scheduler skipped for this tile.
  void account_idle_cycles(std::int64_t stalled, std::int64_t halted) noexcept {
    stats_.cycles_stalled += stalled;
    stats_.cycles_halted += halted;
  }
  [[nodiscard]] int code_size() const noexcept {
    return static_cast<int>(code_.size());
  }
  /// Monotonic counter bumped whenever the instruction image may have
  /// changed (load_program, flip_inst_bit, reset, copy-assign).  Execution
  /// engines key per-tile specialization caches on it and re-specialize
  /// when it moves — the "re-specialized on imem pokes" contract.
  [[nodiscard]] std::uint64_t code_version() const noexcept {
    return code_version_;
  }
  /// Instruction at `pc`, or nullptr when out of range (used by tracing and
  /// by the readback-verify pass of the reconfiguration controller).
  [[nodiscard]] const isa::Instruction* instruction_at(int pc) const noexcept {
    return pc >= 0 && pc < code_size()
               ? &code_[static_cast<std::size_t>(pc)]
               : nullptr;
  }

  // --- fault injection (SEU model) ---

  /// Flip one bit of a data-memory word (single-event upset).  Returns
  /// false if `addr` is outside the data memory (same bounds-checked
  /// contract as flip_inst_bit).
  bool flip_dmem_bit(int addr, int bit);

  /// Flip one bit of the 72-bit encoded form of instruction `index` and
  /// decode it back.  If the flipped word no longer decodes, the slot is
  /// poisoned so executing it raises kIllegalOpcode — exactly how a real
  /// configuration upset surfaces.  Returns false if `index` is out of
  /// range.
  bool flip_inst_bit(int index, int bit);

  /// Latch an externally detected fault (e.g. ICAP readback mismatch) and
  /// halt the tile.
  void inject_fault(FaultKind kind, int tile_index, std::int64_t cycle);

  /// Clear a latched fault after external recovery (scrub / rollback); the
  /// tile stays halted until reloaded.  Dead tiles keep kTileDead latched.
  void clear_fault() noexcept {
    if (!dead_) fault_ = Fault{};
  }

  /// Hard permanent failure: latches kTileDead and makes every subsequent
  /// load / patch / restart a no-op.  There is no way back.
  void hard_fail(int tile_index, std::int64_t cycle);

  /// Stall handling: the tile does nothing until the fabric cycle counter
  /// reaches `until_cycle` (used by the reconfiguration controller).
  void stall_until(std::int64_t until_cycle) noexcept {
    stalled_until_ = until_cycle;
    notify_scheduler();
  }
  [[nodiscard]] std::int64_t stalled_until() const noexcept {
    return stalled_until_;
  }

  /// Bind this tile to its owning scheduler (the Fabric).  Run-state
  /// transitions are reported through the interface from then on.
  void bind_scheduler(TileScheduler* sched, int index) noexcept {
    sched_ = sched;
    sched_index_ = index;
  }

  /// Execute one cycle.
  ///
  /// `tile_index` and `cycle` are used for fault reporting and stall checks.
  /// `link` is the state of the tile's output link this cycle; a remote
  /// write is appended to `remote_out` for the fabric to commit at end of
  /// cycle (or raises kNoActiveLink / kLinkDown).  Returns true if an
  /// instruction retired.
  bool step(int tile_index, std::int64_t cycle, LinkState link,
            std::vector<RemoteWrite>& remote_out);

 private:
  // The shared step core (step_core.hpp) reaches architectural state
  // through these views; everything else goes through the public API.
  friend class TileView;
  friend struct TileExec;

  void raise(FaultKind kind, int tile_index, std::int64_t cycle);
  void notify_scheduler() {
    if (sched_ != nullptr) sched_->tile_state_changed(sched_index_);
  }

  std::array<Word, kDataMemWords> dmem_{};
  std::vector<isa::Instruction> code_;
  /// Flattened image of `code_`, kept in lockstep (see file comment).
  std::vector<isa::DecodedInstr> decoded_;
  /// The DSP-macro accumulator (macz/mac/macr); 64-bit internally, results
  /// truncate to 48 bits when read back with macr.
  std::int64_t acc_ = 0;
  int pc_ = 0;
  bool halted_ = true;  ///< A fresh tile has no program: halted.
  bool dead_ = false;   ///< Hard-failed: permanently out of service.
  Fault fault_;
  TileStats stats_;
  std::int64_t stalled_until_ = 0;
  std::uint64_t code_version_ = 0;  ///< See code_version().
  TileScheduler* sched_ = nullptr;  ///< Not owned; null for standalone tiles.
  int sched_index_ = -1;
};

}  // namespace cgra::fabric

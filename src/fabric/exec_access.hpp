// ExecAccess: the single audited backdoor execution engines (src/engine)
// use to drive a Fabric's scheduler machinery.
//
// Everything an engine may touch is enumerated here — active list, wake
// queue, remote-write buffer, cycle counter, link cache, metrics flush —
// so the bit-identity contract has one reviewable surface instead of ad
// hoc friendships.  The interpreter itself routes through begin() and
// run_cycle(), so the per-cycle sweep (trace events, fault accounting,
// remote-write commit order) exists exactly once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fabric/fabric.hpp"

namespace cgra::fabric {

struct ExecAccess {
  /// Shared engine entry: every run()/step() implementation — the
  /// interpreter and every pluggable engine — calls this first.  It is the
  /// ONE place the per-tile output-link cache is re-derived from the live
  /// LinkConfig, so rewiring between calls is picked up identically by all
  /// engines (tests/test_engine.cpp, RewiringBetweenSteps).
  static void begin(Fabric& f) { f.refresh_link_cache(); }

  static void process_wakes(Fabric& f) { f.process_wakes(); }
  static void settle_all(Fabric& f) { f.settle_all(); }

  [[nodiscard]] static std::int64_t& cycle(Fabric& f) noexcept {
    return f.cycle_;
  }
  [[nodiscard]] static const std::vector<int>& active(
      const Fabric& f) noexcept {
    return f.active_;
  }
  [[nodiscard]] static std::vector<RemoteWrite>& remote_buffer(
      Fabric& f) noexcept {
    return f.remote_buffer_;
  }
  [[nodiscard]] static LinkState link_state(const Fabric& f, int tile) {
    return f.link_state_[static_cast<std::size_t>(tile)];
  }
  [[nodiscard]] static int link_target(const Fabric& f, int tile) {
    return f.link_target_[static_cast<std::size_t>(tile)];
  }

  /// Mark a sweep in flight: tile state transitions settle at cycle_+1 and
  /// active-list removals are deferred to finish_sweep().
  static void set_stepping(Fabric& f, bool on) noexcept { f.stepping_ = on; }
  static void finish_sweep(Fabric& f) {
    f.stepping_ = false;
    if (f.active_dirty_) f.compact_active();
  }

  // --- metrics (no-ops when no registry is attached / CGRA_OBS_OFF) ---
  static void add_skipped_cycles(Fabric& f, std::int64_t n) {
    if (f.metrics_ != nullptr) f.metrics_->add(f.m_cycles_, n);
  }
  static void count_fault(Fabric& f) {
    if (f.metrics_ != nullptr) f.metrics_->add(f.m_faults_);
  }
  /// Batched equivalent of the per-cycle counter bumps the interpreter
  /// does; engines that execute many cycles between scheduler visits flush
  /// the totals once (counter end states are identical).
  static void flush_cycle_metrics(Fabric& f, std::int64_t cycles,
                                  std::int64_t retired, std::int64_t remote,
                                  std::int64_t faults = 0) {
    if (f.metrics_ == nullptr) return;
    f.metrics_->add(f.m_cycles_, cycles);
    f.metrics_->add(f.m_retired_, retired);
    f.metrics_->add(f.m_remote_writes_, remote);
    if (faults != 0) f.metrics_->add(f.m_faults_, faults);
  }

  /// One synchronous cycle over the active list with a pluggable per-tile
  /// dispatcher: `step_tile(tile, index, pc_before)` executes the tile's
  /// instruction for this cycle (true = retired, false + tile.faulted() =
  /// the raising transition).  Everything around the dispatch — sweep
  /// order, trace events, fault-cycle accounting, end-of-cycle remote
  /// commit in ascending source order, cycle/metrics bumps — is THIS
  /// function for every engine, so those observables cannot diverge.
  /// Exactly the former Fabric::step_cycle with the dispatch abstracted.
  template <class StepTile>
  static int run_cycle(Fabric& f, StepTile&& step_tile) {
    f.remote_buffer_.clear();
    int retired = 0;
    f.stepping_ = true;
    // Snapshot the active list: a sweep never grows it (transitions during
    // a sweep only mark entries stale), but the compiler cannot see that
    // through the dispatch call, and reloading size() per tile costs.
    const int* const act = f.active_.data();
    const std::size_t n_active = f.active_.size();
    for (std::size_t idx = 0; idx < n_active; ++idx) {
      const int i = act[idx];
      if (f.class_[static_cast<std::size_t>(i)] != Fabric::TileClass::kActive) {
        continue;
      }
      auto& tile = f.tiles_[static_cast<std::size_t>(i)];
      const int pc_before = tile.pc();
      if (step_tile(tile, i, pc_before)) {
        ++retired;
        if (f.tracer_ != nullptr) {
          const isa::Instruction* in = tile.instruction_at(pc_before);
          TraceEvent ev;
          ev.cycle = f.cycle_;
          ev.tile = i;
          ev.pc = pc_before;
          if (in != nullptr) ev.opcode = in->opcode;
          ev.kind = (in != nullptr && in->opcode == isa::Opcode::kHalt)
                        ? TraceEventKind::kHalt
                        : TraceEventKind::kRetire;
          f.tracer_->record(ev);
        }
      } else if (tile.faulted()) {
        // An active tile cannot have entered the cycle faulted, so this is
        // the raising transition.  The cycle the fault is raised mid-step
        // would otherwise be missing from the tile's cycle accounting
        // (TileStats invariant).
        tile.count_fault_cycle();
        if (f.metrics_ != nullptr) f.metrics_->add(f.m_faults_);
        if (f.tracer_ != nullptr) {
          TraceEvent ev;
          ev.cycle = f.cycle_;
          ev.kind = TraceEventKind::kFault;
          ev.tile = i;
          ev.pc = pc_before;
          const isa::Instruction* in = tile.instruction_at(pc_before);
          if (in != nullptr) ev.opcode = in->opcode;
          f.tracer_->record(ev);
        }
      }
    }
    f.stepping_ = false;
    if (f.active_dirty_) f.compact_active();
    // Commit remote writes synchronously at end of cycle, in ascending
    // source-tile order (the order the tiles were stepped).  Two writes to
    // the same destination word in the same cycle therefore resolve
    // deterministically: the write from the higher source-tile index
    // commits last, so its value persists — documented semantics.
    int committed = 0;
    for (const auto& w : f.remote_buffer_) {
      const int dst = f.link_target_[static_cast<std::size_t>(w.src_tile)];
      if (dst >= 0) {
        f.tiles_[static_cast<std::size_t>(dst)].set_dmem(w.addr, w.value);
        ++committed;
        if (f.tracer_ != nullptr) {
          TraceEvent ev;
          ev.cycle = f.cycle_;
          ev.kind = TraceEventKind::kRemoteWrite;
          ev.tile = w.src_tile;
          ev.dst_tile = dst;
          ev.addr = w.addr;
          ev.value = w.value;
          f.tracer_->record(ev);
        }
      }
    }
    ++f.cycle_;
    if (f.metrics_ != nullptr) {
      f.metrics_->add(f.m_cycles_);
      f.metrics_->add(f.m_retired_, retired);
      f.metrics_->add(f.m_remote_writes_, committed);
    }
    return retired;
  }

  /// Rebuild the scheduler state (classes, active list, wake queue, halted
  /// count, settlement boundaries) from the tiles' architectural state at
  /// the current cycle.  The batch engine calls this after SoA write-back,
  /// where every tile's stats are settled exactly to cycle_.
  static void rebuild_scheduler(Fabric& f) {
    f.active_.clear();
    std::fill(f.in_active_.begin(), f.in_active_.end(), 0);
    f.wake_ = {};
    f.halted_count_ = 0;
    f.stepping_ = false;
    f.active_dirty_ = false;
    for (int t = 0; t < f.tile_count(); ++t) {
      const auto k = static_cast<std::size_t>(t);
      const Tile& tile = f.tiles_[k];
      const Fabric::TileClass c =
          tile.halted()                      ? Fabric::TileClass::kHalted
          : tile.stalled_until() > f.cycle_ ? Fabric::TileClass::kStalled
                                             : Fabric::TileClass::kActive;
      f.class_[k] = c;
      f.settled_[k] = f.cycle_;
      switch (c) {
        case Fabric::TileClass::kHalted:
          ++f.halted_count_;
          break;
        case Fabric::TileClass::kActive:
          f.active_.push_back(t);  // ascending t: list stays sorted
          f.in_active_[k] = 1;
          break;
        case Fabric::TileClass::kStalled:
          f.wake_.emplace(tile.stalled_until(), t);
          break;
      }
    }
  }
};

}  // namespace cgra::fabric

// The shared semantic step core: ONE implementation of the tile
// instruction semantics, used by every execution engine.
//
// `core::exec_instr<Traits>(view, in, link)` executes exactly one decoded
// instruction against a View of some tile state.  The interpreter
// (Tile::step) instantiates it with DynTraits over a TileView; the
// threaded engine instantiates FastTraits<opcode, remote, imm>
// specializations (superinstructions) over the same TileView; the batch
// engine instantiates both traits over an SoA view.  Because all engines
// run the same template body, bit-identity across engines — faults,
// write-back order, stats, pc updates — holds by construction; the
// conformance suite (tests/test_engine.cpp) checks it anyway.
//
// The body is a line-for-line extraction of the original Tile::step
// interpreter: fault raise points, check ordering (oob before indirect on
// operand fetch; indirect before oob on remote write-back) and the
// pc/stats/halt epilogue order are all load-bearing and must not change.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_complex.hpp"
#include "common/word.hpp"
#include "fabric/tile.hpp"
#include "isa/decoded.hpp"
#include "isa/instruction.hpp"

namespace cgra::fabric {

/// Mutable view of one Tile's architectural state for the shared core.
/// All accessors are unchecked: the engine validated pc/addr class before
/// dispatch (or the core's own dynamic checks did).
class TileView {
 public:
  TileView(Tile& t, int tile_index, std::int64_t cycle,
           std::vector<RemoteWrite>& remote_out) noexcept
      : t_(t), tile_(tile_index), cycle_(cycle), out_(remote_out) {}

  [[nodiscard]] Word load(int addr) const {
    return t_.dmem_[static_cast<std::size_t>(addr)];
  }
  void store(int addr, Word v) {
    t_.dmem_[static_cast<std::size_t>(addr)] = v;
  }
  [[nodiscard]] std::int64_t& acc() noexcept { return t_.acc_; }
  [[nodiscard]] int pc() const noexcept { return t_.pc_; }
  void set_pc(int pc) noexcept { t_.pc_ = pc; }
  void raise(FaultKind kind) { t_.raise(kind, tile_, cycle_); }
  void halt() {
    t_.halted_ = true;
    t_.notify_scheduler();
  }
  void retire() noexcept { ++t_.stats_.instructions; }
  void emit_remote(int addr, Word value) {
    out_.push_back(RemoteWrite{tile_, addr, value});
    ++t_.stats_.remote_writes;
  }

 private:
  Tile& t_;
  int tile_;
  std::int64_t cycle_;
  std::vector<RemoteWrite>& out_;
};

/// Raw state access for engines that relocate tile state wholesale (the
/// batch engine's SoA extraction/write-back) or key caches on the
/// instruction image (the threaded engine's specializer).
struct TileExec {
  static std::array<Word, static_cast<std::size_t>(kDataMemWords)>& dmem(
      Tile& t) noexcept {
    return t.dmem_;
  }
  static std::int64_t& acc(Tile& t) noexcept { return t.acc_; }
  static int& pc(Tile& t) noexcept { return t.pc_; }
  static bool& halted(Tile& t) noexcept { return t.halted_; }
  static Fault& fault(Tile& t) noexcept { return t.fault_; }
  static TileStats& stats(Tile& t) noexcept { return t.stats_; }
  static const std::vector<isa::Instruction>& code(const Tile& t) noexcept {
    return t.code_;
  }
  static const std::vector<isa::DecodedInstr>& decoded(
      const Tile& t) noexcept {
    return t.decoded_;
  }
};

namespace core {

/// Runtime traits: every addressing/flag decision is read from the
/// DecodedInstr.  The interpreter (Tile::step) uses exactly this.
struct DynTraits {
  static constexpr bool kStatic = false;
  static constexpr isa::Opcode kOpcode = isa::Opcode::kNop;  // unused
  static constexpr bool kRemote = false;                     // unused
  static constexpr bool kUseImm = false;                     // unused
};

/// Compile-time traits for the superinstruction fast path: opcode, remote
/// destination and immediate choice folded into the instantiation; no
/// indirection, no out-of-range address fields, not illegal.  Only
/// dispatch instructions satisfying fast_eligible() through these.
template <isa::Opcode Op, bool Remote, bool UseImm>
struct FastTraits {
  static constexpr bool kStatic = true;
  static constexpr isa::Opcode kOpcode = Op;
  static constexpr bool kRemote = Remote;
  static constexpr bool kUseImm = UseImm;
};

/// True when `in` may run under FastTraits: no poisoned slot, no indirect
/// addressing anywhere and no statically out-of-range address field —
/// i.e. none of the checks FastTraits compiles out can fire.
[[nodiscard]] constexpr bool fast_eligible(
    const isa::DecodedInstr& in) noexcept {
  return !in.illegal && !in.srca_indirect && !in.srcb_indirect &&
         !in.dst_indirect && !in.srca_oob && !in.srcb_oob && !in.dst_oob &&
         in.opcode < isa::Opcode::kOpcodeCount;
}

/// Resolve a register-indirect data-memory address: validate the pointer's
/// own location, load it, validate the pointed-to address.  Returns -1
/// after raising kAddressOutOfRange on either check.
template <class View>
inline int indirect_addr(View& v, std::uint16_t field) {
  int addr = field;
  if (addr >= kDataMemWords) {
    v.raise(FaultKind::kAddressOutOfRange);
    return -1;
  }
  addr = static_cast<int>(to_signed(v.load(addr)));
  if (addr < 0 || addr >= kDataMemWords) {
    v.raise(FaultKind::kAddressOutOfRange);
    return -1;
  }
  return addr;
}

/// Execute one decoded instruction.  Returns true if it retired; false
/// when a fault was raised (the view recorded it and halted the tile).
/// The caller has already established that the tile is runnable and that
/// `in` is the instruction at the view's current pc.
template <class Traits, class View>
inline bool exec_instr(View& v, const isa::DecodedInstr& in, LinkState link) {
  using isa::Opcode;
  constexpr bool S = Traits::kStatic;
  if constexpr (!S) {
    if (in.illegal) {
      v.raise(FaultKind::kIllegalOpcode);
      return false;
    }
  }
  const Opcode op = S ? Traits::kOpcode : in.opcode;

  // --- operand fetch ---
  Word a = 0;
  const bool reads_a = S ? isa::reads_srca(Traits::kOpcode) : in.reads_srca;
  if (reads_a) {
    int ea = in.srca;
    if constexpr (!S) {
      if (in.srca_oob) {
        v.raise(FaultKind::kAddressOutOfRange);
        return false;
      }
      if (in.srca_indirect) {
        ea = indirect_addr(v, in.srca);
        if (ea < 0) return false;
      }
    }
    a = v.load(ea);
  }
  Word b = 0;
  const bool reads_b = S ? isa::reads_srcb(Traits::kOpcode) : in.reads_srcb;
  const bool use_imm = S ? Traits::kUseImm : in.use_imm;
  if (reads_b) {
    if (use_imm) {
      b = in.imm_word;
    } else {
      int eb = in.srcb;
      if constexpr (!S) {
        if (in.srcb_oob) {
          v.raise(FaultKind::kAddressOutOfRange);
          return false;
        }
        if (in.srcb_indirect) {
          eb = indirect_addr(v, in.srcb);
          if (eb < 0) return false;
        }
      }
      b = v.load(eb);
    }
  }

  // --- execute ---
  Word result = 0;
  int next_pc = v.pc() + 1;
  bool halt_after = false;
  switch (op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halt_after = true;
      break;
    case Opcode::kMov:
      result = a;
      break;
    case Opcode::kMovi:
      result = in.imm_word;
      break;
    case Opcode::kAdd:
      result = word_add(a, b);
      break;
    case Opcode::kSub:
      result = word_sub(a, b);
      break;
    case Opcode::kMul:
      result = word_mul(a, b);
      break;
    case Opcode::kAnd:
      result = a & b;
      break;
    case Opcode::kOrr:
      result = a | b;
      break;
    case Opcode::kXor:
      result = a ^ b;
      break;
    case Opcode::kShl:
      result = truncate_word(a << (to_signed(b) & 63));
      break;
    case Opcode::kShr:
      result = truncate_word((a & kWordMask) >>
                             static_cast<unsigned>(to_signed(b) & 63));
      break;
    case Opcode::kSra:
      result = from_signed(to_signed(a) >>
                           static_cast<unsigned>(to_signed(b) & 63));
      break;
    case Opcode::kCadd:
      result = word_cadd(a, b);
      break;
    case Opcode::kCsub:
      result = word_csub(a, b);
      break;
    case Opcode::kCmul:
      result = word_cmul(a, b);
      break;
    case Opcode::kBeqz:
      if (to_signed(a) == 0) next_pc = in.imm;
      break;
    case Opcode::kBnez:
      if (to_signed(a) != 0) next_pc = in.imm;
      break;
    case Opcode::kBltz:
      if (to_signed(a) < 0) next_pc = in.imm;
      break;
    case Opcode::kJmp:
      next_pc = in.imm;
      break;
    case Opcode::kMacz:
      v.acc() = to_signed(a) * to_signed(b);
      break;
    case Opcode::kMac:
      v.acc() += to_signed(a) * to_signed(b);
      break;
    case Opcode::kMacr:
      result = from_signed(v.acc());
      break;
    case Opcode::kOpcodeCount:
      // Unreachable: predecode marks these slots `illegal`.
      v.raise(FaultKind::kIllegalOpcode);
      return false;
  }

  // --- write back ---
  const bool writes = S ? isa::writes_dst(Traits::kOpcode) : in.writes_dst;
  if (writes) {
    const bool remote = S ? Traits::kRemote : in.dst_remote;
    if (remote) {
      if (link != LinkState::kUp) {
        v.raise(link == LinkState::kDown ? FaultKind::kLinkDown
                                         : FaultKind::kNoActiveLink);
        return false;
      }
      // Remote effective address is resolved with *local* indirection
      // (pointer lives in this tile) but addresses the neighbour's memory;
      // range is validated here, the fabric routes the value.
      int addr = in.dst;
      if constexpr (!S) {
        if (in.dst_indirect) {
          const int ea = indirect_addr(v, in.dst);
          if (ea < 0) return false;
          addr = ea;
        } else if (in.dst_oob) {
          v.raise(FaultKind::kAddressOutOfRange);
          return false;
        }
      }
      v.emit_remote(addr, result);
    } else {
      int ed = in.dst;
      if constexpr (!S) {
        if (in.dst_oob) {
          v.raise(FaultKind::kAddressOutOfRange);
          return false;
        }
        if (in.dst_indirect) {
          ed = indirect_addr(v, in.dst);
          if (ed < 0) return false;
        }
      }
      v.store(ed, truncate_word(result));
    }
  }

  v.set_pc(next_pc);
  v.retire();
  if (halt_after) v.halt();
  return true;
}

}  // namespace core
}  // namespace cgra::fabric

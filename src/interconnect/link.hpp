// Near-neighbour malleable interconnect.
//
// The fabric is an R x C mesh.  At any instant each tile drives at most ONE
// outgoing 48-wire link to a neighbour in one of the four principal
// directions ("Each tile is connected to its neighbour in one of the four
// principal directions at any instant in time").  Remote writes from a tile
// land in the data memory of the tile its active link points at.
//
// Changing which links are active is the "reLink" partial reconfiguration;
// its cost is proportional to the number of links changed (Eq. 1, term B),
// with the per-link cost L a swept design parameter.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/timing.hpp"

namespace cgra::interconnect {

/// Mesh directions.
enum class Direction : std::uint8_t { kNorth = 0, kEast, kSouth, kWest };

/// The opposite direction (kNorth <-> kSouth, kEast <-> kWest).
Direction opposite(Direction d) noexcept;

/// Short name ("N", "E", "S", "W").
const char* direction_name(Direction d) noexcept;

/// Position of a tile in the mesh.
struct TileCoord {
  int row = 0;
  int col = 0;
  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

/// Active-output-link configuration of an R x C mesh.
class LinkConfig {
 public:
  LinkConfig() = default;
  LinkConfig(int rows, int cols);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int tile_count() const noexcept { return rows_ * cols_; }

  /// Linear index of (row, col).
  [[nodiscard]] int index(TileCoord c) const noexcept {
    return c.row * cols_ + c.col;
  }
  /// Coordinates of a linear index.
  [[nodiscard]] TileCoord coord(int tile) const noexcept {
    return TileCoord{tile / cols_, tile % cols_};
  }

  /// Neighbour of `tile` in direction `d`, or nullopt at the mesh edge.
  [[nodiscard]] std::optional<int> neighbor(int tile, Direction d) const;

  /// Set (or clear) the active output link of `tile`.
  /// Setting a direction with no neighbour (mesh edge) is rejected: the
  /// call returns false and the configuration is unchanged.
  bool set_output(int tile, std::optional<Direction> d);

  /// Active output direction of `tile` (nullopt = no link driven).
  [[nodiscard]] std::optional<Direction> output(int tile) const;

  /// Tile the active link of `tile` points at, if any.
  [[nodiscard]] std::optional<int> target(int tile) const;

  /// Number of per-tile output settings that differ between two
  /// configurations of the same mesh (the paper's l_ij).
  static int changed_links(const LinkConfig& a, const LinkConfig& b);

  friend bool operator==(const LinkConfig&, const LinkConfig&) = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  /// Per-tile active direction; 255 = none.
  std::vector<std::uint8_t> out_;
};

/// Cost model for link ("reLink") reconfiguration.
struct LinkCostModel {
  /// ns to reconfigure one 48-wire link (the paper's swept parameter L).
  Nanoseconds per_link_ns = 0.0;

  /// Cost of switching from configuration `a` to configuration `b`.
  [[nodiscard]] Nanoseconds transition_ns(const LinkConfig& a,
                                          const LinkConfig& b) const {
    return per_link_ns * LinkConfig::changed_links(a, b);
  }
  /// Cost of reconfiguring `n` links.
  [[nodiscard]] Nanoseconds links_ns(int n) const noexcept {
    return per_link_ns * n;
  }
};

}  // namespace cgra::interconnect

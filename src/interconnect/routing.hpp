// Multi-hop routing over the near-neighbour mesh.
//
// A tile can only write into the neighbour its single output link points
// at, so data for a non-adjacent consumer travels through intermediate
// tiles with explicit copy processes ("The data generated at non neighbour
// tiles is brought to the tile's memory using explicit copy instructions
// and changing connectivity if required").  This module computes the hop
// routes and their cost: each hop is one cp process execution plus one
// link reconfiguration if the hop tile's output link must change.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/timing.hpp"
#include "interconnect/link.hpp"

namespace cgra::interconnect {

/// A route: the sequence of directions to follow from the source tile.
struct Route {
  int from = 0;
  int to = 0;
  std::vector<Direction> hops;

  [[nodiscard]] int length() const noexcept {
    return static_cast<int>(hops.size());
  }
};

/// Shortest Manhattan route (row-first) between two tiles of the mesh.
/// Returns nullopt for invalid indices.  `from == to` yields an empty route.
std::optional<Route> shortest_route(const LinkConfig& mesh, int from, int to);

/// Shortest route that never enters a tile in `blocked` (BFS over the
/// mesh).  Used to route around hard-failed tiles after fault evacuation.
/// Returns nullopt for invalid indices, a blocked endpoint, or when the
/// blocked set disconnects the endpoints.
std::optional<Route> shortest_route_avoiding(const LinkConfig& mesh, int from,
                                             int to,
                                             std::span<const int> blocked);

/// Manhattan distance between two tiles.
int manhattan_distance(const LinkConfig& mesh, int a, int b);

/// Cost model for routed block transfers (the paper's term C).
struct CopyCostModel {
  /// ns to copy one 48-bit word one hop: the cp loop's 5 instructions.
  Nanoseconds per_word_hop_ns = 5 * kCycleNs;
  /// Per-hop link reconfiguration cost (0 when the link already points the
  /// right way; callers pass the swept L when it must change).
  Nanoseconds per_hop_link_ns = 0.0;

  /// Cost of moving `words` words along a route of `hops` hops.
  [[nodiscard]] Nanoseconds transfer_ns(int words, int hops) const noexcept {
    if (hops <= 0) return 0.0;
    return static_cast<double>(hops) *
           (static_cast<double>(words) * per_word_hop_ns + per_hop_link_ns);
  }
};

}  // namespace cgra::interconnect

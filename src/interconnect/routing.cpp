#include "interconnect/routing.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <deque>

namespace cgra::interconnect {

std::optional<Route> shortest_route(const LinkConfig& mesh, int from, int to) {
  if (from < 0 || from >= mesh.tile_count() || to < 0 ||
      to >= mesh.tile_count()) {
    return std::nullopt;
  }
  Route route;
  route.from = from;
  route.to = to;
  TileCoord cur = mesh.coord(from);
  const TileCoord dst = mesh.coord(to);
  while (cur.row != dst.row) {
    const Direction d =
        cur.row < dst.row ? Direction::kSouth : Direction::kNorth;
    route.hops.push_back(d);
    cur.row += cur.row < dst.row ? 1 : -1;
  }
  while (cur.col != dst.col) {
    const Direction d =
        cur.col < dst.col ? Direction::kEast : Direction::kWest;
    route.hops.push_back(d);
    cur.col += cur.col < dst.col ? 1 : -1;
  }
  return route;
}

std::optional<Route> shortest_route_avoiding(const LinkConfig& mesh, int from,
                                             int to,
                                             std::span<const int> blocked) {
  const int n = mesh.tile_count();
  if (from < 0 || from >= n || to < 0 || to >= n) return std::nullopt;
  std::vector<std::uint8_t> forbidden(static_cast<std::size_t>(n), 0);
  for (const int t : blocked) {
    if (t >= 0 && t < n) forbidden[static_cast<std::size_t>(t)] = 1;
  }
  if (forbidden[static_cast<std::size_t>(from)] ||
      forbidden[static_cast<std::size_t>(to)]) {
    return std::nullopt;
  }

  Route route;
  route.from = from;
  route.to = to;
  if (from == to) return route;

  // BFS with parent links; direction order fixed for determinism.
  constexpr std::array<Direction, 4> kDirs = {
      Direction::kNorth, Direction::kEast, Direction::kSouth,
      Direction::kWest};
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<Direction> arrived_by(static_cast<std::size_t>(n),
                                    Direction::kNorth);
  std::deque<int> frontier{from};
  parent[static_cast<std::size_t>(from)] = from;
  while (!frontier.empty()) {
    const int cur = frontier.front();
    frontier.pop_front();
    if (cur == to) break;
    for (const Direction d : kDirs) {
      const auto next = mesh.neighbor(cur, d);
      if (!next || forbidden[static_cast<std::size_t>(*next)] ||
          parent[static_cast<std::size_t>(*next)] >= 0) {
        continue;
      }
      parent[static_cast<std::size_t>(*next)] = cur;
      arrived_by[static_cast<std::size_t>(*next)] = d;
      frontier.push_back(*next);
    }
  }
  if (parent[static_cast<std::size_t>(to)] < 0) return std::nullopt;
  for (int cur = to; cur != from;
       cur = parent[static_cast<std::size_t>(cur)]) {
    route.hops.push_back(arrived_by[static_cast<std::size_t>(cur)]);
  }
  std::reverse(route.hops.begin(), route.hops.end());
  return route;
}

int manhattan_distance(const LinkConfig& mesh, int a, int b) {
  const TileCoord ca = mesh.coord(a);
  const TileCoord cb = mesh.coord(b);
  return std::abs(ca.row - cb.row) + std::abs(ca.col - cb.col);
}

}  // namespace cgra::interconnect

#include "interconnect/routing.hpp"

#include <cstdlib>

namespace cgra::interconnect {

std::optional<Route> shortest_route(const LinkConfig& mesh, int from, int to) {
  if (from < 0 || from >= mesh.tile_count() || to < 0 ||
      to >= mesh.tile_count()) {
    return std::nullopt;
  }
  Route route;
  route.from = from;
  route.to = to;
  TileCoord cur = mesh.coord(from);
  const TileCoord dst = mesh.coord(to);
  while (cur.row != dst.row) {
    const Direction d =
        cur.row < dst.row ? Direction::kSouth : Direction::kNorth;
    route.hops.push_back(d);
    cur.row += cur.row < dst.row ? 1 : -1;
  }
  while (cur.col != dst.col) {
    const Direction d =
        cur.col < dst.col ? Direction::kEast : Direction::kWest;
    route.hops.push_back(d);
    cur.col += cur.col < dst.col ? 1 : -1;
  }
  return route;
}

int manhattan_distance(const LinkConfig& mesh, int a, int b) {
  const TileCoord ca = mesh.coord(a);
  const TileCoord cb = mesh.coord(b);
  return std::abs(ca.row - cb.row) + std::abs(ca.col - cb.col);
}

}  // namespace cgra::interconnect

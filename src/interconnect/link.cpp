#include "interconnect/link.hpp"

namespace cgra::interconnect {

namespace {
constexpr std::uint8_t kNoLink = 255;
}  // namespace

Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
  }
  return Direction::kNorth;
}

const char* direction_name(Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return "N";
    case Direction::kEast: return "E";
    case Direction::kSouth: return "S";
    case Direction::kWest: return "W";
  }
  return "?";
}

LinkConfig::LinkConfig(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      out_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
           kNoLink) {}

std::optional<int> LinkConfig::neighbor(int tile, Direction d) const {
  if (tile < 0 || tile >= tile_count()) return std::nullopt;
  TileCoord c = coord(tile);
  switch (d) {
    case Direction::kNorth: c.row -= 1; break;
    case Direction::kSouth: c.row += 1; break;
    case Direction::kEast: c.col += 1; break;
    case Direction::kWest: c.col -= 1; break;
  }
  if (c.row < 0 || c.row >= rows_ || c.col < 0 || c.col >= cols_) {
    return std::nullopt;
  }
  return index(c);
}

bool LinkConfig::set_output(int tile, std::optional<Direction> d) {
  if (tile < 0 || tile >= tile_count()) return false;
  if (!d) {
    out_[static_cast<std::size_t>(tile)] = kNoLink;
    return true;
  }
  if (!neighbor(tile, *d)) return false;
  out_[static_cast<std::size_t>(tile)] = static_cast<std::uint8_t>(*d);
  return true;
}

std::optional<Direction> LinkConfig::output(int tile) const {
  if (tile < 0 || tile >= tile_count()) return std::nullopt;
  const std::uint8_t v = out_[static_cast<std::size_t>(tile)];
  if (v == kNoLink) return std::nullopt;
  return static_cast<Direction>(v);
}

std::optional<int> LinkConfig::target(int tile) const {
  const auto d = output(tile);
  if (!d) return std::nullopt;
  return neighbor(tile, *d);
}

int LinkConfig::changed_links(const LinkConfig& a, const LinkConfig& b) {
  const std::size_t n =
      std::min(a.out_.size(), b.out_.size());
  int changed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.out_[i] != b.out_[i]) ++changed;
  }
  // Tiles present in only one configuration count as changed.
  changed += static_cast<int>(std::max(a.out_.size(), b.out_.size()) - n);
  return changed;
}

}  // namespace cgra::interconnect

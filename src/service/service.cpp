#include "service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "apps/fft/fabric_fft.hpp"
#include "apps/fft/programs.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "apps/jpeg/tables.hpp"

namespace cgra::service {

namespace {

// Service span tracks (below obs::kTrackTileBase; tiles are unused here).
constexpr int kTrackQueue = 3;
constexpr int kTrackRun = 4;

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// The batch key: jobs with equal keys run back to back on one configured
/// fabric.  The key therefore pins everything the setup epoch depends on.
std::string batch_key_for(const JobRequest& request, std::uint64_t id) {
  struct Visitor {
    std::uint64_t id;
    std::string operator()(const JpegBlockRequest& r) const {
      const std::string base =
          (r.plan.empty() ? std::string("jpeg.block:q=")
                          : "jpeg.resilient:r=" + std::to_string(r.rows) +
                                ":c=" + std::to_string(r.cols) + ":q=") +
          hex64(fnv1a_values(r.quant));
      return base;
    }
    std::string operator()(const JpegImageRequest& r) const {
      return "jpeg.image:q=" + std::to_string(r.quality);
    }
    std::string operator()(const FftRequest& r) const {
      return "fft:n=" + std::to_string(r.n) + ":m=" + std::to_string(r.m) +
             ":c=" + std::to_string(r.cols);
    }
    std::string operator()(const DseSweepRequest&) const {
      // Sweeps run fabric-free and gain nothing from fusion.
      return "dse:" + std::to_string(id);
    }
    std::string operator()(const MapJobRequest&) const {
      // Mapper jobs run fabric-free too: unique key, no fusion.
      return "map:" + std::to_string(id);
    }
  };
  return std::visit(Visitor{id}, request);
}

const char* job_kind_name(const JobRequest& request) {
  switch (request.index()) {
    case 0: return "jpeg.block";
    case 1: return "jpeg.image";
    case 2: return "fft";
    case 3: return "dse";
    default: return "map";
  }
}

}  // namespace

const char* job_phase_name(JobPhase phase) noexcept {
  switch (phase) {
    case JobPhase::kQueued: return "queued";
    case JobPhase::kRunning: return "running";
    case JobPhase::kDone: return "done";
    case JobPhase::kCancelled: return "cancelled";
  }
  return "?";
}

Service::Service(ServiceOptions opt)
    : opt_([&] {
        ServiceOptions o = opt;
        o.workers = std::max(1, o.workers);
        o.queue_capacity = std::max(1, o.queue_capacity);
        o.batch_limit = std::max(1, o.batch_limit);
        o.fusion_window_us = std::max(0, o.fusion_window_us);
        return o;
      }()),
      epoch_(std::chrono::steady_clock::now()),
      pool_(opt.max_fabrics_per_shape),
      chaos_(opt.chaos),
      tracer_(opt.tracer) {
  if (chaos_ != nullptr && tracer_ != nullptr) {
    chaos_->attach_tracer(tracer_);
  }
  {
    std::lock_guard<std::mutex> lock(obs_mu_);
    submitted_ = metrics_.counter("service.jobs.submitted");
    rejected_ = metrics_.counter("service.jobs.rejected");
    completed_ = metrics_.counter("service.jobs.completed");
    failed_ = metrics_.counter("service.jobs.failed");
    cancelled_ = metrics_.counter("service.jobs.cancelled");
    expired_ = metrics_.counter("service.jobs.deadline_expired");
    batches_ = metrics_.counter("service.batches");
    crashes_ = metrics_.counter("service.worker.crashes");
    lease_retries_ = metrics_.counter("service.lease.retries");
    window_waits_ = metrics_.counter("service.fusion.window_waits");
    window_gains_ = metrics_.counter("service.fusion.window_gains");
    batch_size_ = metrics_.histogram("service.batch.size",
                                     {1.0, 2.0, 4.0, 8.0, 16.0});
    spans_.set_track_name(kTrackQueue, "service queue");
    spans_.set_track_name(kTrackRun, "service run");
  }
  cache_.attach_metrics(&metrics_);
  pool_.attach_metrics(&metrics_);
  pool_.attach_chaos(chaos_);
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

Nanoseconds Service::now_ns() const {
  return static_cast<Nanoseconds>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

SubmitResult Service::submit(JobRequest request, SubmitOptions options) {
  auto state = std::make_shared<JobState>();
  state->request = std::move(request);
  state->deadline = options.deadline;
  state->queued_at_ns = now_ns();
  state->trace = options.trace;
  state->trace_queued_ns = obs::trace_clock_ns();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(rejected_);
      return {nullptr, Status::error("service is shut down")};
    }
    if (queue_.size() >= static_cast<std::size_t>(opt_.queue_capacity)) {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(rejected_);
      return {nullptr,
              Status::errorf("service saturated: queue capacity %d reached",
                             opt_.queue_capacity)};
    }
    state->id = next_id_++;
    state->batch_key = batch_key_for(state->request, state->id);
    queue_.push_back(state);
    depth = queue_.size();
  }
  {
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(submitted_);
  }
  if (tracer_ != nullptr && state->trace.valid()) {
    tracer_->event(state->trace, obs::FlightEventKind::kEnqueue, 0,
                   static_cast<std::uint32_t>(depth));
  }
  if (opt_.fusion_window_us > 0) {
    // A worker parked in its fusion window must see every arrival, not
    // just the one an idle peer happened to absorb.
    queue_cv_.notify_all();
  } else {
    queue_cv_.notify_one();
  }
  return {std::move(state), Status()};
}

JobResult Service::wait(const JobHandle& handle) const {
  if (handle == nullptr) {
    JobResult r;
    r.status = Status::error("wait on a null job handle");
    return r;
  }
  std::unique_lock<std::mutex> lock(handle->mu);
  handle->cv.wait(lock, [&] {
    return handle->phase == JobPhase::kDone ||
           handle->phase == JobPhase::kCancelled;
  });
  return handle->result;
}

bool Service::try_result(const JobHandle& handle, JobResult* out) const {
  if (handle == nullptr) return false;
  std::lock_guard<std::mutex> lock(handle->mu);
  if (handle->phase != JobPhase::kDone &&
      handle->phase != JobPhase::kCancelled) {
    return false;
  }
  *out = handle->result;
  return true;
}

void Service::on_complete(const JobHandle& handle,
                          std::function<void()> hook) {
  if (handle == nullptr || !hook) return;
  {
    std::lock_guard<std::mutex> lock(handle->mu);
    if (handle->phase != JobPhase::kDone &&
        handle->phase != JobPhase::kCancelled) {
      handle->completion_hooks.push_back(std::move(hook));
      return;
    }
  }
  hook();  // already finished: fire on the caller's thread, lock dropped
}

bool Service::cancel(const JobHandle& handle) {
  if (handle == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(queue_.begin(), queue_.end(), handle);
    if (it == queue_.end()) return false;  // running, done, or never queued
    queue_.erase(it);
  }
  // Counter before publishing: see finish().
  {
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(cancelled_);
  }
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(handle->mu);
    handle->phase = JobPhase::kCancelled;
    handle->result.status = Status::error("cancelled before execution");
    handle->result.payload = std::monostate{};
    hooks = std::move(handle->completion_hooks);
    handle->completion_hooks.clear();
  }
  handle->cv.notify_all();
  for (auto& h : hooks) h();
  return true;
}

void Service::shutdown() {
  std::deque<JobHandle> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    orphans.swap(queue_);
  }
  queue_cv_.notify_all();
  for (const auto& job : orphans) {
    JobResult r;
    r.status = Status::error("service shut down before execution");
    finish(job, std::move(r));
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool Service::accepting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !stopping_;
}

std::int64_t Service::counter(std::string_view name) const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return metrics_.counter_value(name);
}

std::vector<obs::MetricSample> Service::metrics_samples() const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return metrics_.samples();
}

void Service::finish(const JobHandle& job, JobResult result) {
  const bool ok = result.status.ok();
  if (tracer_ != nullptr && job->trace.valid()) {
    tracer_->event(job->trace, obs::FlightEventKind::kComplete,
                   static_cast<std::uint16_t>(result.status.code()), 0);
    if (!ok) {
      tracer_->note_anomaly(
          job->trace,
          result.status.code() == StatusCode::kDeadlineExceeded
              ? obs::AnomalyReason::kDeadlineExceeded
              : obs::AnomalyReason::kError,
          result.status.message());
    }
  }
  // Counters first: a caller that observed wait() return must also
  // observe the counters already reflecting this job.
  {
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(ok ? completed_ : failed_);
  }
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->phase = JobPhase::kDone;
    job->result = std::move(result);
    hooks = std::move(job->completion_hooks);
    job->completion_hooks.clear();
  }
  job->cv.notify_all();
  for (auto& h : hooks) h();
}

void Service::resume_after_crash(const std::vector<JobHandle>& batch) {
  {
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(crashes_);
  }
  if (tracer_ != nullptr) {
    for (const auto& job : batch) {
      if (!job->trace.valid()) continue;
      tracer_->event(job->trace, obs::FlightEventKind::kRetry, 0, 1);
      tracer_->note_anomaly(job->trace, obs::AnomalyReason::kCrashResume,
                            "worker crashed; batch requeued at queue front");
    }
  }
  bool resumed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      // Front of the queue, original order, no capacity check: these jobs
      // were admitted once and must not be lost to saturation now.
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        {
          std::lock_guard<std::mutex> jl((*it)->mu);
          (*it)->phase = JobPhase::kQueued;
        }
        queue_.push_front(*it);
      }
      // Safe against shutdown(): workers_ is only mutated under mu_ while
      // !stopping_, and shutdown() joins only after setting stopping_.
      workers_.emplace_back([this] { worker_loop(); });
      resumed = true;
    }
  }
  if (resumed) {
    queue_cv_.notify_all();
    return;
  }
  for (const auto& job : batch) {
    JobResult r;
    r.status = Status::error("service shut down before execution");
    finish(job, std::move(r));
  }
}

bool Service::finish_if_deadline_expired(const JobHandle& job) {
  if (!job->deadline || std::chrono::steady_clock::now() <= *job->deadline) {
    if (tracer_ != nullptr && job->deadline && job->trace.valid()) {
      tracer_->event(job->trace, obs::FlightEventKind::kDeadlineCheck, 0, 0);
    }
    return false;
  }
  if (tracer_ != nullptr && job->trace.valid()) {
    tracer_->event(job->trace, obs::FlightEventKind::kDeadlineCheck, 1, 0);
  }
  {
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(expired_);
  }
  JobResult r;
  r.status = Status::deadline_exceeded("deadline expired at epoch boundary");
  finish(job, std::move(r));
  return true;
}

FabricPool::Lease Service::acquire_fabric(int rows, int cols,
                                          const JobHandle& head) {
  const bool traced =
      tracer_ != nullptr && head != nullptr && head->trace.valid();
  const auto shape_code = static_cast<std::uint16_t>(
      (static_cast<unsigned>(rows) << 8) | static_cast<unsigned>(cols & 0xFF));
  auto lease = pool_.acquire(rows, cols);
  if (!lease.valid()) {
    // Injected kPoolLease failure; one retry recovers (the pool can
    // always construct below its bound once the rule stops firing).
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(lease_retries_);
    }
    if (traced) {
      tracer_->event(head->trace, obs::FlightEventKind::kRetry, shape_code, 1);
    }
    lease = pool_.acquire(rows, cols);
  }
  if (traced) {
    tracer_->event(head->trace, obs::FlightEventKind::kLease, shape_code,
                   lease.valid() ? 1 : 0);
  }
  if (lease.valid() && opt_.engine.has_value()) {
    if (opt_.engine->kind == engine::EngineKind::kInterp) {
      lease.get()->attach_engine(nullptr);
    } else {
      lease.get()->adopt_engine(engine::make_engine(*opt_.engine));
    }
  }
  return lease;
}

void Service::trace_fabric(const JobHandle& job, Nanoseconds t0,
                           const char* what) {
  if (tracer_ == nullptr || !job->trace.valid()) return;
  tracer_->span(obs::kTraceTrackFabric, std::string("fabric ") + what,
                job->trace, t0, obs::trace_clock_ns() - t0,
                {{"job", std::to_string(job->id), true}});
}

template <typename T, typename Builder>
std::shared_ptr<const T> Service::cached(const std::string& key,
                                         Builder&& build) {
  if (const auto d = chaos::decide(chaos_, chaos::Hook::kCachePoison);
      d && d.action == chaos::Action::kFail) {
    cache_.erase(key);
  }
  return cache_.get_or_build<T>(key, std::forward<Builder>(build));
}

void Service::fail_batch(const std::vector<JobHandle>& batch,
                         const Status& status) {
  for (const auto& job : batch) {
    JobResult r;
    r.status = status;
    finish(job, std::move(r));
  }
}

namespace {

/// Resolve a kKillTile decision to a concrete tile index (`a` out of
/// range falls back to the decision's seeded choice).
int poison_target(const chaos::Decision& d, int tiles) {
  if (d.a >= 0 && d.a < tiles) return static_cast<int>(d.a);
  SplitMix64 rng(d.salt);
  return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(tiles)));
}

}  // namespace

std::vector<JobHandle> Service::next_batch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // stopping
    const auto now = std::chrono::steady_clock::now();
    JobHandle head = queue_.front();
    queue_.pop_front();
    if (head->deadline && *head->deadline < now) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> obs(obs_mu_);
        metrics_.add(expired_);
      }
      if (tracer_ != nullptr && head->trace.valid()) {
        tracer_->event(head->trace, obs::FlightEventKind::kDeadlineCheck, 1,
                       0);
      }
      JobResult r;
      r.status = Status::deadline_exceeded("deadline expired before execution");
      finish(head, std::move(r));
      lock.lock();
      continue;
    }
    // Fuse followers sharing the head's batch key (same configuration),
    // preserving queue order for everything left behind.
    std::vector<JobHandle> batch{head};
    for (auto it = queue_.begin();
         it != queue_.end() &&
         batch.size() < static_cast<std::size_t>(opt_.batch_limit);) {
      if ((*it)->batch_key == head->batch_key &&
          (!(*it)->deadline || *(*it)->deadline >= now)) {
        batch.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    // Cross-connection fusion window: with capacity left in the batch,
    // briefly hold the epoch open for same-key arrivals from other
    // producers (the reactor's many connections).  DSE and mapper keys
    // are unique per job, so waiting can never help there.
    if (opt_.fusion_window_us > 0 && head->request.index() < 3 &&
        batch.size() < static_cast<std::size_t>(opt_.batch_limit) &&
        !stopping_) {
      const auto window_end =
          now + std::chrono::microseconds(opt_.fusion_window_us);
      {
        std::lock_guard<std::mutex> obs(obs_mu_);
        metrics_.add(window_waits_);
      }
      const std::size_t before = batch.size();
      bool timed_out = false;
      while (!timed_out && !stopping_ &&
             batch.size() < static_cast<std::size_t>(opt_.batch_limit)) {
        timed_out = queue_cv_.wait_until(lock, window_end) ==
                    std::cv_status::timeout;
        const auto arrival = std::chrono::steady_clock::now();
        for (auto it = queue_.begin();
             it != queue_.end() &&
             batch.size() < static_cast<std::size_t>(opt_.batch_limit);) {
          if ((*it)->batch_key == head->batch_key &&
              (!(*it)->deadline || *(*it)->deadline >= arrival)) {
            batch.push_back(*it);
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      if (batch.size() > before) {
        std::lock_guard<std::mutex> obs(obs_mu_);
        metrics_.add(window_gains_,
                     static_cast<std::int64_t>(batch.size() - before));
      }
      // The window may have swallowed a notify meant for an idle peer;
      // hand it back if unrelated work is still queued.
      if (!queue_.empty()) queue_cv_.notify_one();
    }
    lock.unlock();
    if (const auto d = chaos::decide(chaos_, chaos::Hook::kQueueStall);
        d && d.action == chaos::Action::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
    }
    const Nanoseconds start = now_ns();
    const Nanoseconds trace_start = obs::trace_clock_ns();
    for (const auto& job : batch) {
      job->started_at_ns = start;
      job->trace_started_ns = trace_start;
      std::lock_guard<std::mutex> jl(job->mu);
      job->phase = JobPhase::kRunning;
    }
    if (tracer_ != nullptr) {
      for (const auto& job : batch) {
        if (!job->trace.valid()) continue;
        tracer_->event(job->trace, obs::FlightEventKind::kDequeue, 0, 0);
        tracer_->event(job->trace, obs::FlightEventKind::kBatchAttach, 0,
                       static_cast<std::uint32_t>(batch.size()));
        tracer_->span(obs::kTraceTrackQueue,
                      "queue wait job " + std::to_string(job->id), job->trace,
                      job->trace_queued_ns,
                      trace_start - job->trace_queued_ns,
                      {{"kind", job_kind_name(job->request), false}});
      }
    }
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(batches_);
      metrics_.observe(batch_size_, static_cast<double>(batch.size()));
      for (const auto& job : batch) {
        spans_.complete("job " + std::to_string(job->id) + " queued",
                        "service.queue", kTrackQueue, job->queued_at_ns,
                        start - job->queued_at_ns,
                        {{"kind", job_kind_name(job->request), false}});
      }
    }
    return batch;
  }
}

void Service::worker_loop() {
  for (;;) {
    const auto batch = next_batch();
    if (batch.empty()) return;
    if (const auto d = chaos::decide(chaos_, chaos::Hook::kWorkerCrash);
        d && d.action == chaos::Action::kCrash) {
      resume_after_crash(batch);
      return;  // this worker thread "dies"
    }
    execute_batch(batch);
    if (tracer_ != nullptr) {
      const Nanoseconds trace_end = obs::trace_clock_ns();
      for (const auto& job : batch) {
        tracer_->span(obs::kTraceTrackFusion,
                      "epoch fusion job " + std::to_string(job->id),
                      job->trace, job->trace_started_ns,
                      trace_end - job->trace_started_ns,
                      {{"kind", job_kind_name(job->request), false},
                       {"batch", std::to_string(batch.size()), true}});
      }
    }
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      const Nanoseconds end = now_ns();
      for (const auto& job : batch) {
        spans_.complete("job " + std::to_string(job->id) + " run",
                        "service.run", kTrackRun, job->started_at_ns,
                        end - job->started_at_ns,
                        {{"kind", job_kind_name(job->request), false},
                         {"batch", std::to_string(batch.size()), true}});
      }
    }
  }
}

void Service::execute_batch(const std::vector<JobHandle>& batch) {
  switch (batch.front()->request.index()) {
    case 0: run_jpeg_block_batch(batch); break;
    case 1: run_jpeg_image_batch(batch); break;
    case 2: run_fft_batch(batch); break;
    case 3:
      for (const auto& job : batch) run_dse_job(job);
      break;
    default:
      for (const auto& job : batch) run_map_job(job);
      break;
  }
}

// --- executors -----------------------------------------------------------

void Service::run_jpeg_block_batch(const std::vector<JobHandle>& batch) {
  const auto& first = std::get<JpegBlockRequest>(batch.front()->request);
  if (first.plan.empty()) {
    // Warm 1x4 pipeline: one setup epoch for the whole batch.
    const auto art = cached<jpeg::JpegPipelineArtifacts>(
        "jpeg.pipeline:q=" + hex64(fnv1a_values(first.quant)),
        [&] { return jpeg::make_pipeline_artifacts(first.quant); });
    auto lease = acquire_fabric(1, 4, batch.front());
    if (!lease.valid()) {
      fail_batch(batch, Status::unavailable("no fabric lease for jpeg.block"));
      return;
    }
    auto pipe = std::make_unique<jpeg::BlockPipeline>(*lease, *art);
    for (const auto& job : batch) {
      if (finish_if_deadline_expired(job)) continue;
      JobResult r;
      if (!pipe->setup_status().ok()) {
        r.status = pipe->setup_status();
        finish(job, std::move(r));
        continue;
      }
      const auto& req = std::get<JpegBlockRequest>(job->request);
      if (const auto d = chaos::decide(chaos_, chaos::Hook::kFabricPoison);
          d && d.action == chaos::Action::kKillTile) {
        (*lease).kill_tile(
            poison_target(d, (*lease).rows() * (*lease).cols()));
      }
      const Nanoseconds t0 = obs::trace_clock_ns();
      auto res = pipe->encode(req.raw);
      if (!res.ok() && !(*lease).dead_tiles().empty()) {
        // Crash-resume: the fabric died under the job.  encode() is pure
        // and nothing was delivered, so swap in a fresh lease and re-run.
        lease.release();
        lease = acquire_fabric(1, 4, job);
        if (lease.valid()) {
          pipe = std::make_unique<jpeg::BlockPipeline>(*lease, *art);
          if (pipe->setup_status().ok()) res = pipe->encode(req.raw);
        }
      }
      trace_fabric(job, t0, "jpeg.block");
      r.status = res.status;
      JpegBlockJobResult payload;
      payload.zigzagged = res.zigzagged;
      payload.cycles = res.total_cycles;
      payload.reconfig_ns = res.reconfig_ns;
      r.payload = std::move(payload);
      finish(job, std::move(r));
    }
    return;
  }

  // Resilient path: pooled rows x cols mesh, per-job fault plan/policy.
  const auto art = cached<jpeg::ResilientJpegArtifacts>(
      "jpeg.resilient:r=" + std::to_string(first.rows) +
          ":c=" + std::to_string(first.cols) +
          ":q=" + hex64(fnv1a_values(first.quant)),
      [&] {
        return jpeg::make_resilient_artifacts(first.quant, first.rows,
                                              first.cols);
      });
  auto lease = acquire_fabric(first.rows, first.cols, batch.front());
  if (!lease.valid()) {
    fail_batch(batch, Status::unavailable("no fabric lease for jpeg.block"));
    return;
  }
  bool fresh = true;
  for (const auto& job : batch) {
    if (finish_if_deadline_expired(job)) continue;
    const auto& req = std::get<JpegBlockRequest>(job->request);
    if (!fresh) (*lease).reset();
    fresh = false;
    faults::FaultPlan plan = req.plan;
    if (const auto d = chaos::decide(chaos_, chaos::Hook::kFabricPoison);
        d && d.action == chaos::Action::kKillTile) {
      // Mid-epoch tile death routed through the job's own fault plan: the
      // RecoveryManager must rebalance onto surviving tiles and resume.
      plan.kill_tile(d.b, poison_target(d, first.rows * first.cols));
    }
    const Nanoseconds t0 = obs::trace_clock_ns();
    auto res = jpeg::encode_block_resilient_on(*lease, *art, req.raw, plan,
                                               req.policy);
    trace_fabric(job, t0, "jpeg.resilient");
    JobResult r;
    if (res.report.ok) {
      r.status = Status();
    } else {
      r.status = res.report.status.ok()
                     ? Status::error("recovery failed")
                     : res.report.status;
    }
    JpegBlockJobResult payload;
    payload.zigzagged = res.zigzagged;
    payload.reconfig_ns = res.report.timeline.reconfig_ns;
    payload.recovered = res.report.rollbacks > 0 || res.report.rebalances > 0 ||
                        res.report.icap_retries > 0;
    r.payload = std::move(payload);
    finish(job, std::move(r));
  }
}

void Service::run_jpeg_image_batch(const std::vector<JobHandle>& batch) {
  const auto& first = std::get<JpegImageRequest>(batch.front()->request);
  const std::array<int, 64> quant = jpeg::scaled_quant(first.quality);
  const auto art = cached<jpeg::JpegPipelineArtifacts>(
      "jpeg.pipeline:q=" + hex64(fnv1a_values(quant)),
      [&] { return jpeg::make_pipeline_artifacts(quant); });
  auto lease = acquire_fabric(1, 4, batch.front());
  if (!lease.valid()) {
    fail_batch(batch, Status::unavailable("no fabric lease for jpeg.image"));
    return;
  }
  jpeg::BlockPipeline pipe(*lease, *art);
  for (const auto& job : batch) {
    if (finish_if_deadline_expired(job)) continue;
    JobResult r;
    if (!pipe.setup_status().ok()) {
      r.status = pipe.setup_status();
      finish(job, std::move(r));
      continue;
    }
    const auto& req = std::get<JpegImageRequest>(job->request);
    if (req.image.width <= 0 || req.image.height <= 0 ||
        req.image.pixels.size() !=
            static_cast<std::size_t>(req.image.width) *
                static_cast<std::size_t>(req.image.height)) {
      r.status = Status::error("malformed image: pixels != width*height");
      finish(job, std::move(r));
      continue;
    }
    const Nanoseconds t0 = obs::trace_clock_ns();
    JpegImageJobResult payload;
    std::vector<jpeg::IntBlock> blocks;
    blocks.reserve(static_cast<std::size_t>(
        jpeg::block_count(req.image.width, req.image.height)));
    const int bw = (req.image.width + 7) / 8;
    const int bh = (req.image.height + 7) / 8;
    Status status;
    for (int by = 0; by < bh && status.ok(); ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        auto res = pipe.encode(jpeg::extract_block(req.image, bx, by));
        if (!res.ok()) {
          status = Status::errorf("block (%d,%d): %s", bx, by,
                                  res.status.message().c_str());
          break;
        }
        payload.fabric_cycles += res.total_cycles;
        blocks.push_back(res.zigzagged);
      }
    }
    trace_fabric(job, t0, "jpeg.image");
    r.status = status;
    if (status.ok()) {
      payload.jfif =
          jpeg::encode_image_from_zigzag(req.image, req.quality, blocks);
      r.payload = std::move(payload);
    }
    finish(job, std::move(r));
  }
}

void Service::run_fft_batch(const std::vector<JobHandle>& batch) {
  const auto& first = std::get<FftRequest>(batch.front()->request);
  const auto power_of_two = [](int v) { return v >= 2 && (v & (v - 1)) == 0; };
  if (!power_of_two(first.n) || (first.m != 0 && !power_of_two(first.m))) {
    for (const auto& job : batch) {
      JobResult r;
      r.status = Status::errorf("FFT size must be a power of two (n=%d m=%d)",
                                first.n, first.m);
      finish(job, std::move(r));
    }
    return;
  }
  const auto g = fft::make_geometry(first.n, first.m);
  const auto twiddles = cached<fft::TwiddleTable>(
      "fft.twiddles:n=" + std::to_string(g.n) + ":m=" + std::to_string(g.m),
      [&] { return fft::twiddle_patch_table(g); });
  // Content-addressed assembly: recurring kernels (the pinned butterfly,
  // the hop/apply copy programs) assemble once per source text ever.
  const auto assemble = [this](const std::string& src) {
    const auto prog = cached<isa::Program>(
        "asm:" + hex64(fnv1a(src)), [&] { return fft::must_assemble(src); });
    return *prog;
  };
  auto lease = acquire_fabric(g.rows, first.cols, batch.front());
  if (!lease.valid()) {
    fail_batch(batch, Status::unavailable("no fabric lease for fft"));
    return;
  }
  bool fresh = true;
  for (const auto& job : batch) {
    if (finish_if_deadline_expired(job)) continue;
    const auto& req = std::get<FftRequest>(job->request);
    if (!fresh) (*lease).reset();  // the FFT run leaves the fabric dirty
    fresh = false;
    if (const auto d = chaos::decide(chaos_, chaos::Hook::kFabricPoison);
        d && d.action == chaos::Action::kKillTile) {
      (*lease).kill_tile(poison_target(d, (*lease).rows() * (*lease).cols()));
    }
    fft::FabricFftOptions opt;
    opt.cols = req.cols;
    opt.fabric = lease.get();
    opt.assemble = assemble;
    opt.twiddles = twiddles.get();
    const Nanoseconds t0 = obs::trace_clock_ns();
    auto res = fft::run_fabric_fft(g, req.input, opt);
    if (!res.status.ok() && !(*lease).dead_tiles().empty()) {
      // Crash-resume onto a replacement lease (release() resets the dead
      // fabric back to health before returning it to the pool).
      lease.release();
      lease = acquire_fabric(g.rows, first.cols, job);
      if (lease.valid()) {
        opt.fabric = lease.get();
        res = fft::run_fabric_fft(g, req.input, opt);
      }
    }
    trace_fabric(job, t0, "fft");
    JobResult r;
    r.status = res.status;
    FftJobResult payload;
    payload.output = std::move(res.output);
    payload.timeline = res.timeline;
    payload.epochs = res.epochs;
    r.payload = std::move(payload);
    finish(job, std::move(r));
  }
}

void Service::run_dse_job(const JobHandle& job) {
  if (finish_if_deadline_expired(job)) return;
  const auto& req = std::get<DseSweepRequest>(job->request);
  JobResult r;
  if (req.net.processes().empty()) {
    r.status = Status::error("DSE sweep needs a non-empty process network");
    finish(job, std::move(r));
    return;
  }
  if (req.max_tiles < 1) {
    r.status = Status::errorf("DSE sweep needs max_tiles >= 1 (got %d)",
                              req.max_tiles);
    finish(job, std::move(r));
    return;
  }
  DseSweepJobResult payload;
  payload.points =
      mapping::sweep(req.net, req.max_tiles, req.algorithm, req.params);
  r.status = Status();
  r.payload = std::move(payload);
  finish(job, std::move(r));
}

void Service::run_map_job(const JobHandle& job) {
  if (finish_if_deadline_expired(job)) return;
  const auto& req = std::get<MapJobRequest>(job->request);
  JobResult r;
  MapJobResult payload;
  payload.mapped =
      mapper::map_network(req.net, req.mesh_rows, req.mesh_cols, req.options);
  r.status = payload.mapped.status;
  r.payload = std::move(payload);
  finish(job, std::move(r));
}

}  // namespace cgra::service

// Content-addressed artifact cache for the job service.
//
// Everything a warm runtime can reuse — assembled Programs, predecoded
// stage images, twiddle/quantiser tables, placements — is a pure function
// of its inputs, so the cache keys on content: the key string embeds a
// type tag plus either the configuration (mesh shape, kernel parameters)
// or an FNV-1a hash of the source text.  Same inputs, same key, same
// artifact; the cache never invalidates.
//
// Concurrency contract: get_or_build() is thread-safe.  On a miss the
// builder runs OUTSIDE the lock (builders run simulations and must not
// serialise the worker pool); if two threads race on the same key both
// build, the first insert wins and the loser's copy is dropped — safe
// because builders are pure.  Hit/miss counters land in the attached
// obs::MetricsRegistry (cache.hit / cache.miss), guarded by the cache
// mutex since the registry itself is single-threaded by design.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"

namespace cgra::service {

/// 64-bit FNV-1a — the content half of a content-addressed key.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Hash a POD-ish array (e.g. a quant table) by its value sequence.
template <typename T, std::size_t N>
[[nodiscard]] std::uint64_t fnv1a_values(const std::array<T, N>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const T& v : values) {
    auto x = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

/// Thread-safe content-addressed store of immutable artifacts.
///
/// The key must uniquely determine both the content AND the C++ type of
/// the artifact (embed a type tag: "asm:", "jpeg.pipeline:", ...);
/// retrieving a key as a different type than it was stored under is
/// undefined.  All artifacts are shared_ptr<const T>: once published they
/// are immutable and may be used concurrently by every worker.
class ArtifactCache {
 public:
  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Route hit/miss counters to `metrics` (not owned; nullptr detaches).
  void attach_metrics(obs::MetricsRegistry* metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
    if (metrics_ != nullptr) {
      hits_ = metrics_->counter("cache.hit");
      misses_ = metrics_->counter("cache.miss");
    }
  }

  /// Return the artifact for `key`, building it with `build()` on a miss.
  /// `build` must be a pure function of the content `key` names.
  template <typename T, typename Builder>
  std::shared_ptr<const T> get_or_build(const std::string& key,
                                        Builder&& build) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = map_.find(key);
      if (it != map_.end()) {
        count(hits_);
        return std::static_pointer_cast<const T>(it->second);
      }
      count(misses_);
    }
    auto built = std::make_shared<const T>(build());
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] = map_.emplace(key, built);
    if (!inserted) {
      // Lost a build race; the first publication wins (both are pure).
      return std::static_pointer_cast<const T>(it->second);
    }
    return built;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
  }

  /// Drop one entry; returns true when it existed.  Artifacts are pure
  /// functions of their key, so eviction can never change results — only
  /// force a rebuild (the property the cache-poison chaos hook asserts).
  bool erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.erase(key) > 0;
  }

 private:
  void count(obs::CounterHandle h) {
    if (metrics_ != nullptr && h.valid()) metrics_->add(h);
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const void>> map_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::CounterHandle hits_;
  obs::CounterHandle misses_;
};

}  // namespace cgra::service

// Job types for the cgra::service runtime.
//
// One submission API covers the workload families the repo models:
// JPEG encoding (single blocks — optionally under the fault-recovery
// manager — and whole images), fabric FFTs, DSE sweeps, and automatic
// process-network mapping (src/mapper/).  A JobRequest
// is a value: everything the executor needs travels in the request, so a
// job is a pure function and batched execution can be checked
// bit-for-bit against serial per-request execution.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "apps/fft/partition.hpp"
#include "apps/fft/reference.hpp"
#include "apps/jpeg/encoder.hpp"
#include "common/status.hpp"
#include "common/timing.hpp"
#include "config/reconfig.hpp"
#include "faults/fault_plan.hpp"
#include "faults/recovery.hpp"
#include "mapper/mapper.hpp"
#include "mapping/rebalance.hpp"
#include "obs/tracer.hpp"
#include "procnet/network.hpp"

namespace cgra::service {

// --- requests ------------------------------------------------------------

/// Encode one 8x8 block: shift -> DCT -> quantize -> zigzag on the 1x4
/// fabric pipeline.  With a non-empty `plan` the block instead runs under
/// the RecoveryManager on a `rows x cols` mesh (docs/FAULTS.md), honouring
/// the per-job recovery `policy`.
struct JpegBlockRequest {
  jpeg::IntBlock raw{};
  std::array<int, 64> quant{};
  faults::FaultPlan plan;              ///< Empty: plain pipeline path.
  faults::RecoveryPolicy policy{};     ///< Used only with a non-empty plan.
  int rows = 2;                        ///< Resilient-path mesh shape.
  int cols = 7;
};

/// Encode a whole grayscale image to a JFIF stream, with every block's
/// transform executed on the warm fabric pipeline.
struct JpegImageRequest {
  jpeg::Image image;
  int quality = 50;
};

/// Run an n-point FFT on the fabric (constant-geometry, Fig. 6 layout).
struct FftRequest {
  int n = 0;
  int m = 0;        ///< Partition size; 0 = memory-derived maximum.
  int cols = 1;     ///< Tile columns (must divide log2 n).
  std::vector<fft::Cplx> input;  ///< Size n, pre-scaled by 1/n.
};

/// Sweep tile budgets 1..max_tiles with a rebalance algorithm (Fig. 16).
struct DseSweepRequest {
  procnet::ProcessNetwork net;
  int max_tiles = 8;
  mapping::RebalanceAlgorithm algorithm = mapping::RebalanceAlgorithm::kTwo;
  mapping::CostParams params{};
};

/// Map an annotated process network onto a mesh with the automatic mapper
/// (exact or annealing, see src/mapper/).  The result carries the binding,
/// placement and link plan ready for mapping::compile_item_schedule.
struct MapJobRequest {
  procnet::ProcessNetwork net;
  int mesh_rows = 4;
  int mesh_cols = 4;
  mapper::MapperOptions options{};
};

using JobRequest =
    std::variant<JpegBlockRequest, JpegImageRequest, FftRequest,
                 DseSweepRequest, MapJobRequest>;

// --- results -------------------------------------------------------------

struct JpegBlockJobResult {
  jpeg::IntBlock zigzagged{};
  std::int64_t cycles = 0;
  Nanoseconds reconfig_ns = 0.0;   ///< 0 when the warm pipeline absorbed it.
  bool recovered = false;          ///< Resilient path had work to do.
};

struct JpegImageJobResult {
  std::vector<std::uint8_t> jfif;  ///< Byte-identical to encode_image().
  std::int64_t fabric_cycles = 0;  ///< Total transform cycles on the fabric.
};

struct FftJobResult {
  std::vector<fft::Cplx> output;
  config::Timeline timeline;
  int epochs = 0;
};

struct DseSweepJobResult {
  std::vector<mapping::SweepPoint> points;
};

struct MapJobResult {
  mapper::MappedNetwork mapped;
};

using JobPayload =
    std::variant<std::monostate, JpegBlockJobResult, JpegImageJobResult,
                 FftJobResult, DseSweepJobResult, MapJobResult>;

/// What wait() returns: a Status plus the kind-specific payload.
struct JobResult {
  Status status = Status::error("job did not run");
  JobPayload payload;

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

// --- lifecycle -----------------------------------------------------------

enum class JobPhase {
  kQueued,     ///< Accepted, waiting for a worker.
  kRunning,    ///< A worker is executing it.
  kDone,       ///< Result available (ok or error — see result.status).
  kCancelled,  ///< cancel() removed it before a worker picked it up.
};

[[nodiscard]] const char* job_phase_name(JobPhase phase) noexcept;

/// Shared job record; the service and the submitting thread both hold a
/// reference (JobHandle).  All fields below `mu` are guarded by it.
struct JobState {
  std::uint64_t id = 0;
  JobRequest request;
  std::string batch_key;  ///< Jobs with equal keys may share a batch.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  Nanoseconds queued_at_ns = 0.0;   ///< Host time on the service clock.
  Nanoseconds started_at_ns = 0.0;  ///< Set when a worker picks it up.
  obs::TraceContext trace;          ///< Propagated wire-trace identity.
  Nanoseconds trace_queued_ns = 0.0;   ///< Same instants on the process-wide
  Nanoseconds trace_started_ns = 0.0;  ///< trace clock (obs::trace_clock_ns).

  std::mutex mu;
  std::condition_variable cv;
  JobPhase phase = JobPhase::kQueued;
  JobResult result;
  /// Fired exactly once when the job reaches kDone/kCancelled — the
  /// event-driven alternative to blocking in Service::wait().  Invoked
  /// OUTSIDE `mu`, so hooks may call back into the service.
  std::vector<std::function<void()>> completion_hooks;
};

}  // namespace cgra::service

// Bounded pool of pre-warmed, reusable Fabric instances.
//
// Constructing a Fabric allocates every tile's memories; the job service
// instead keeps a free list per mesh shape and hands out RAII leases.
// Releasing a lease calls Fabric::reset() — restoring construction state
// bit for bit (property-tested in tests/test_fabric.cpp) — and returns
// the instance to its shape's free list, so the next job of that shape
// skips construction entirely.
//
// The pool is bounded per shape: once `max_per_shape` fabrics of a shape
// exist, further acquire() calls block until a lease is released.  This
// is the memory backstop behind the service's queue-level backpressure.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "chaos/chaos.hpp"
#include "fabric/fabric.hpp"
#include "obs/metrics.hpp"

namespace cgra::service {

/// Pool of reset-and-reuse fabrics keyed by (rows, cols).
class FabricPool {
 public:
  /// At most `max_per_shape` live fabrics of any one shape.
  explicit FabricPool(int max_per_shape = 8)
      : max_per_shape_(max_per_shape < 1 ? 1 : max_per_shape) {}

  FabricPool(const FabricPool&) = delete;
  FabricPool& operator=(const FabricPool&) = delete;

  /// RAII lease: resets the fabric and returns it to the pool on
  /// destruction.  The fabric is in construction state when acquired.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      pool_ = other.pool_;
      fabric_ = std::move(other.fabric_);
      other.pool_ = nullptr;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] fabric::Fabric& operator*() const { return *fabric_; }
    [[nodiscard]] fabric::Fabric* get() const { return fabric_.get(); }
    [[nodiscard]] bool valid() const noexcept { return fabric_ != nullptr; }

    /// Reset the fabric and hand it back early.
    void release() {
      if (pool_ != nullptr && fabric_ != nullptr) {
        fabric_->reset();
        pool_->put_back(std::move(fabric_));
      }
      pool_ = nullptr;
      fabric_ = nullptr;
    }

   private:
    friend class FabricPool;
    Lease(FabricPool* pool, std::unique_ptr<fabric::Fabric> fabric)
        : pool_(pool), fabric_(std::move(fabric)) {}

    FabricPool* pool_ = nullptr;
    std::unique_ptr<fabric::Fabric> fabric_;
  };

  /// Route reuse/construction counters to `metrics` (not owned).
  void attach_metrics(obs::MetricsRegistry* metrics) {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = metrics;
    if (metrics_ != nullptr) {
      reused_ = metrics_->counter("pool.acquire.reused");
      constructed_ = metrics_->counter("pool.acquire.constructed");
    }
  }

  /// Wire a chaos injector (not owned; call before the first acquire).
  void attach_chaos(chaos::ChaosInjector* injector) {
    std::lock_guard<std::mutex> lock(mu_);
    chaos_ = injector;
  }

  /// Take a rows x cols fabric in construction state, blocking while the
  /// shape is at its bound with no free instance.  An injected kPoolLease
  /// failure returns an invalid lease — callers must check valid().
  [[nodiscard]] Lease acquire(int rows, int cols) {
    if (const auto d = chaos::decide(chaos_, chaos::Hook::kPoolLease)) {
      if (d.action == chaos::Action::kFail) return Lease();
    }
    std::unique_lock<std::mutex> lock(mu_);
    Shape& shape = shapes_[{rows, cols}];
    cv_.wait(lock, [&] {
      return !shape.free.empty() || shape.total < max_per_shape_;
    });
    if (!shape.free.empty()) {
      auto fab = std::move(shape.free.back());
      shape.free.pop_back();
      count(reused_);
      return Lease(this, std::move(fab));
    }
    ++shape.total;
    count(constructed_);
    lock.unlock();  // construction is the expensive part; don't serialise it
    return Lease(this, std::make_unique<fabric::Fabric>(rows, cols));
  }

  /// Live fabrics of a shape (free + leased); 0 for unseen shapes.
  [[nodiscard]] int total(int rows, int cols) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = shapes_.find({rows, cols});
    return it == shapes_.end() ? 0 : it->second.total;
  }

  [[nodiscard]] int max_per_shape() const noexcept { return max_per_shape_; }

 private:
  struct Shape {
    std::vector<std::unique_ptr<fabric::Fabric>> free;
    int total = 0;
  };

  void put_back(std::unique_ptr<fabric::Fabric> fab) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shapes_[{fab->rows(), fab->cols()}].free.push_back(std::move(fab));
    }
    cv_.notify_all();
  }

  void count(obs::CounterHandle h) {
    if (metrics_ != nullptr && h.valid()) metrics_->add(h);
  }

  const int max_per_shape_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, Shape> shapes_;
  obs::MetricsRegistry* metrics_ = nullptr;
  chaos::ChaosInjector* chaos_ = nullptr;
  obs::CounterHandle reused_;
  obs::CounterHandle constructed_;
};

}  // namespace cgra::service

// cgra::Service — the asynchronous job-service runtime.
//
// The paper's runtime management system accepts work (JPEG blocks/images,
// FFTs, DSE sweeps) and keeps the reconfigurable fabric busy; this is our
// software analogue.  One Service owns:
//
//   * a bounded FIFO queue with reject-on-saturation backpressure
//     (submit() returns a Status error instead of blocking),
//   * a worker pool executing jobs on pre-warmed fabrics from a
//     FabricPool (reset-and-reuse instead of reconstruction),
//   * a content-addressed ArtifactCache of assembled programs, twiddle
//     and quantiser tables, pipeline artifacts and placements,
//   * epoch-schedule batching: consecutive queued jobs with the same
//     batch key (same kernel configuration) execute back to back on one
//     configured fabric, paying the ICAP setup once per batch,
//   * observability: job lifecycle spans plus queue/cache/pool counters
//     in an obs::MetricsRegistry.
//
// Determinism: each job's result is bit-identical to running the same
// request serially on a fresh fabric — batching and pooling only change
// WHERE the job runs (a reset fabric, a cached artifact), never its
// inputs.  tests/test_service.cpp checks this with racing producers.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/status.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "service/artifact_cache.hpp"
#include "service/fabric_pool.hpp"
#include "service/job.hpp"

namespace cgra::service {

/// A reference to a submitted job; share or store freely.
using JobHandle = std::shared_ptr<JobState>;

/// submit() outcome: `status` tells whether the job was accepted; the
/// handle is null exactly when it was not (saturation / shutdown).
struct SubmitResult {
  JobHandle handle;
  Status status = Status();

  [[nodiscard]] bool accepted() const noexcept { return status.ok(); }
};

/// Per-submission options.
struct SubmitOptions {
  /// Give up if a worker has not STARTED the job by then: expired jobs
  /// complete with a "deadline exceeded" Status instead of executing.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Wire-trace identity (zero = untraced).  Traced jobs record
  /// queue-wait / epoch-fusion / fabric-epoch spans and flight events on
  /// the attached ServiceOptions::tracer.
  obs::TraceContext trace;
};

/// Service construction knobs.
struct ServiceOptions {
  int workers = 4;             ///< Worker threads (>= 1).
  int queue_capacity = 64;     ///< Queued (not yet running) jobs bound.
  int max_fabrics_per_shape = 8;  ///< FabricPool bound per mesh shape.
  int batch_limit = 8;         ///< Max jobs fused into one warm batch.
  /// Chaos injector (not owned; must outlive the service).  Wires the
  /// service-level hooks: kWorkerCrash, kPoolLease, kCachePoison,
  /// kQueueStall, kFabricPoison.
  chaos::ChaosInjector* chaos = nullptr;
  /// Wire tracer (not owned; must outlive the service).  Traced jobs
  /// record spans + flight-recorder events here; null disables tracing
  /// at one branch per instrumentation point.
  obs::Tracer* tracer = nullptr;
  /// Cross-connection fusion window: when > 0, a worker whose batch is
  /// still below batch_limit holds the queue open this long waiting for
  /// same-batch-key arrivals (e.g. identical jobs from other
  /// connections) before paying the setup epoch.  0 keeps the legacy
  /// take-what-is-queued behaviour.
  int fusion_window_us = 0;
  /// Execution engine attached to every leased fabric.  nullopt keeps the
  /// process-wide default (engine::use_process_engine / the --engine
  /// flag); kInterp pins the interpreter explicitly.  Job results are
  /// bit-identical across engines (the engines' conformance contract).
  std::optional<engine::EngineOptions> engine;
};

/// The asynchronous job service.  Thread-safe; destruction drains the
/// queue (pending jobs complete with a shutdown Status) and joins the
/// workers.
class Service {
 public:
  explicit Service(ServiceOptions opt = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Enqueue a job.  Returns a null handle with a Status error when the
  /// queue is saturated or the service is shutting down.
  [[nodiscard]] SubmitResult submit(JobRequest request,
                                    SubmitOptions options = {});

  /// Block until the job finishes (done or cancelled) and return its
  /// result.  Cancelled jobs report a "cancelled" Status.
  [[nodiscard]] JobResult wait(const JobHandle& handle) const;

  /// Non-blocking wait(): copy the result into *out and return true iff
  /// the job already finished (done or cancelled).
  [[nodiscard]] bool try_result(const JobHandle& handle,
                                JobResult* out) const;

  /// Register a completion hook: invoked exactly once when the job
  /// reaches kDone/kCancelled — immediately (on this thread) when it
  /// already has, otherwise on the finishing thread, outside the job
  /// lock.  The event-driven reply path in cgra::net uses this instead
  /// of a blocking writer thread per connection.
  void on_complete(const JobHandle& handle, std::function<void()> hook);

  /// Remove a still-queued job.  Returns true iff this call cancelled it
  /// (running or finished jobs are not interrupted — the fabric has no
  /// preemption; that mirrors real partial reconfiguration).
  bool cancel(const JobHandle& handle);

  /// Stop accepting work, fail the still-queued jobs with a shutdown
  /// Status, and join the workers.  Idempotent; the destructor calls it.
  void shutdown();

  /// Queued-but-not-started jobs right now.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Readiness facts the network layer's health frame reports.
  [[nodiscard]] int queue_capacity() const noexcept {
    return opt_.queue_capacity;
  }
  [[nodiscard]] int workers() const noexcept { return opt_.workers; }
  [[nodiscard]] bool accepting() const;

  /// Shared observability: counters (service.*, cache.*, pool.*), job
  /// lifecycle spans.  Guarded internally; safe to read between jobs.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] const obs::SpanTimeline& spans() const { return spans_; }

  /// Counter convenience (by full metric name, e.g. "cache.hit").
  [[nodiscard]] std::int64_t counter(std::string_view name) const;

  /// Thread-safe snapshot of every counter and gauge (service.*, cache.*,
  /// pool.*) — the stats hook the network layer serves to remote clients.
  [[nodiscard]] std::vector<obs::MetricSample> metrics_samples() const;

 private:
  void worker_loop();
  /// Pop the next runnable job plus every same-batch-key follower (up to
  /// batch_limit).  Empty when shutting down.
  std::vector<JobHandle> next_batch();
  void execute_batch(const std::vector<JobHandle>& batch);
  void finish(const JobHandle& job, JobResult result);

  /// Crash-resume: an injected kWorkerCrash killed this worker after it
  /// claimed `batch`.  Requeue the jobs at the queue front (they were
  /// already admitted — the capacity check does not reapply) and respawn
  /// a replacement worker, unless the service is shutting down.
  void resume_after_crash(const std::vector<JobHandle>& batch);

  /// Epoch-boundary deadline check: finish the job with kDeadlineExceeded
  /// and return true when its deadline has passed.
  bool finish_if_deadline_expired(const JobHandle& job);

  /// Pool acquire with one retry absorbing an injected kPoolLease
  /// failure.  May still return an invalid lease (callers fail the batch
  /// with kUnavailable).  `head` attributes the lease (and any retry) to
  /// the batch head's flight recorder.
  [[nodiscard]] FabricPool::Lease acquire_fabric(int rows, int cols,
                                                 const JobHandle& head);

  /// Record a fabric-epoch span for a traced job: t0 .. now on the trace
  /// clock, on the fabric track.
  void trace_fabric(const JobHandle& job, Nanoseconds t0, const char* what);

  /// Cache lookup routed through the kCachePoison hook (an injected
  /// failure evicts the key first, forcing a rebuild).
  template <typename T, typename Builder>
  std::shared_ptr<const T> cached(const std::string& key, Builder&& build);

  void fail_batch(const std::vector<JobHandle>& batch, const Status& status);

  void run_jpeg_block_batch(const std::vector<JobHandle>& batch);
  void run_jpeg_image_batch(const std::vector<JobHandle>& batch);
  void run_fft_batch(const std::vector<JobHandle>& batch);
  void run_dse_job(const JobHandle& job);
  void run_map_job(const JobHandle& job);

  [[nodiscard]] Nanoseconds now_ns() const;

  const ServiceOptions opt_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<JobHandle> queue_;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;

  ArtifactCache cache_;
  FabricPool pool_;

  mutable std::mutex obs_mu_;  ///< Guards metrics_ + spans_ (registry is
                               ///< single-threaded by design).
  obs::MetricsRegistry metrics_;
  obs::SpanTimeline spans_;
  obs::CounterHandle submitted_;
  obs::CounterHandle rejected_;
  obs::CounterHandle completed_;
  obs::CounterHandle failed_;
  obs::CounterHandle cancelled_;
  obs::CounterHandle expired_;
  obs::CounterHandle batches_;
  obs::CounterHandle crashes_;
  obs::CounterHandle lease_retries_;
  obs::CounterHandle window_waits_;
  obs::CounterHandle window_gains_;
  obs::HistogramHandle batch_size_;
  chaos::ChaosInjector* const chaos_;
  obs::Tracer* const tracer_;

  std::vector<std::thread> workers_;
};

}  // namespace cgra::service

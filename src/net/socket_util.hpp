// Internal POSIX socket helpers shared by the server and the client.
// Not part of the public facade (cgra/net.hpp exports protocol/server/
// client only).  The blocking-with-poll readers give callers timeouts
// and stop-flag checks; the nonblocking/listen helpers carry the socket
// setup the epoll reactor and the client share, with Status-returning
// error paths instead of silently ignored setsockopt failures.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "net/protocol.hpp"

namespace cgra::net {

/// Outcome of a frame read beyond ok/error: who ended it.
enum class ReadOutcome {
  kFrame,     ///< A full frame was read.
  kClosed,    ///< Clean EOF from the peer.
  kTimeout,   ///< Idle timeout expired with no header byte.
  kStopped,   ///< The stop flag was raised mid-wait.
  kError,     ///< Socket or framing error (see the Status).
};

/// Wait until `fd` is readable, `timeout_ms` expires (<= 0 waits forever)
/// or `stop` (nullable) goes true.  Returns 1 readable / 0 timeout /
/// -1 stopped or error.
int wait_readable(int fd, int timeout_ms, const std::atomic<bool>* stop);

/// Read one length-prefixed frame.  `idle_timeout_ms` applies to the wait
/// for the FIRST header byte; once a frame is underway, a fixed body
/// timeout guards against stalled peers.
ReadOutcome read_frame(int fd, int idle_timeout_ms,
                       const std::atomic<bool>* stop, Frame* out,
                       Status* error);

/// Write the whole buffer: loops on short writes and EINTR, ignores
/// SIGPIPE, and poll-waits for writability on EAGAIN/EWOULDBLOCK — so a
/// pipelined burst that fills the socket buffer (or a nonblocking fd)
/// completes instead of failing mid-frame.
Status write_all(int fd, const std::uint8_t* data, std::size_t size);

inline Status write_all(int fd, const std::vector<std::uint8_t>& bytes) {
  return write_all(fd, bytes.data(), bytes.size());
}

/// Put the descriptor into nonblocking mode (O_NONBLOCK).
[[nodiscard]] Status set_nonblocking(int fd);

/// Disable Nagle: the protocol is request/response with small frames, so
/// coalescing delays round trips for nothing.
[[nodiscard]] Status set_nodelay(int fd);

/// Create a TCP listener: socket + SO_REUSEADDR (checked — a server
/// restarting on a fixed port must not race TIME_WAIT) + bind + listen.
/// On success `*out_fd` holds the listening socket and `*out_port` the
/// bound port (resolving port 0 to the kernel's pick).
[[nodiscard]] Status listen_tcp(std::uint16_t port, bool loopback_only,
                                int backlog, int* out_fd,
                                std::uint16_t* out_port);

}  // namespace cgra::net

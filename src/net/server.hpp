// cgra::net::Server — the TCP front-end over cgra::service::Service.
//
// One acceptor thread plus a reader/writer thread pair per connection:
//
//   reader  — frames requests off the socket, answers control frames
//             (ping/stats/cancel) and submits job frames to the service;
//   writer  — delivers replies strictly in request order, blocking on
//             Service::wait() for job results (HTTP/1.1-style pipelining:
//             a connection may have many requests in flight, replies are
//             paired by order AND by the echoed request id).
//
// Backpressure is surfaced, never dropped: a connection that exceeds its
// in-flight cap, or a submit the service rejects (queue saturation),
// comes back as a kError reply carrying the Status message, and the
// connection keeps working.  Malformed framing (bad magic/version/
// oversized length) desyncs the byte stream, so those close the
// connection; malformed payloads inside valid frames get kError replies.
//
// Shutdown is drain-then-close: stop() closes the listener, half-closes
// every connection for reading, lets writers flush all pending replies
// (in-flight jobs complete), then closes.  The Service must outlive the
// Server.  Loopback-only by default (ServerOptions::loopback_only).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "service/service.hpp"

namespace cgra::net {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port (see port()).
  bool loopback_only = true;           ///< Bind 127.0.0.1, not 0.0.0.0.
  int max_connections = 64;            ///< Accepted sockets beyond it close.
  int max_inflight_per_connection = 32;  ///< Job frames awaiting replies.
  /// Close a connection idle (no frame started) for this long; <= 0 waits
  /// forever.
  int idle_timeout_ms = 60000;
};

class Server {
 public:
  /// `service` must outlive the server.
  explicit Server(service::Service* service, ServerOptions opt = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and start the acceptor.  Fails on bind/listen errors
  /// (e.g. port in use).
  [[nodiscard]] Status start();

  /// Graceful drain-then-shutdown; idempotent, called by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return started_ && !stopping_.load(std::memory_order_relaxed);
  }

  /// The bound port (resolves option port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Server-side counters (net.*) and per-request spans.
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  [[nodiscard]] std::vector<obs::MetricSample> metrics_samples() const;
  [[nodiscard]] std::size_t span_count() const;

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  void reap_finished_connections();

  [[nodiscard]] Nanoseconds now_ns() const;

  service::Service* const service_;
  const ServerOptions opt_;
  const std::chrono::steady_clock::time_point epoch_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  mutable std::mutex obs_mu_;
  obs::MetricsRegistry metrics_;
  obs::SpanTimeline spans_;
  obs::CounterHandle accepted_;
  obs::CounterHandle refused_;
  obs::CounterHandle closed_;
  obs::CounterHandle requests_;
  obs::CounterHandle replies_;
  obs::CounterHandle errors_;
  obs::CounterHandle malformed_;
  obs::CounterHandle conn_backpressure_;
  obs::CounterHandle service_backpressure_;
  obs::CounterHandle bytes_in_;
  obs::CounterHandle bytes_out_;
};

}  // namespace cgra::net

// cgra::net::Server — the TCP front-end over cgra::service::Service.
//
// Event-driven reactor: one acceptor thread plus N epoll event-loop
// shards (ServerOptions::shards; hardware_concurrency by default).  A
// connection is pinned to a shard at accept and all of its state is
// owned by that shard's thread — no per-connection locks, no
// thread-per-connection.  Each shard runs:
//
//   accept inbox -> epoll_wait (edge-triggered) -> bounded per-wakeup
//   frame processing -> reply pump -> write flush -> idle sweep
//
// Framing is non-blocking and incremental: bytes accumulate in a
// per-connection read buffer, complete frames are decoded and handled
// inline (control frames answered immediately, job frames submitted to
// the service).  Replies are delivered strictly in request order
// (HTTP/1.1-style pipelining, paired by order AND the echoed request
// id): each connection keeps a pending-reply deque whose front is the
// next reply owed; job results are collected via Service completion
// hooks, which wake the owning shard through an eventfd — no thread
// ever blocks on a job.  Outbound frames land in a per-connection write
// queue flushed with sendmsg/iovec write coalescing; EAGAIN arms
// EPOLLOUT and the flush resumes on writability.  Per-wakeup work is
// bounded (a frame budget per connection per round) so one busy or slow
// client cannot starve its shard.
//
// Backpressure is surfaced, never silently dropped:
//   * in-flight cap / service saturation  -> kError reply, stream lives;
//   * token-bucket admission control (ServerOptions::admission_rate)
//     sheds job frames with kUnavailable replies (net.admission.shed);
//   * a slow READER whose unsent replies exceed write_backlog_limit is
//     closed (net.conn_closed.write_backlog) instead of holding shard
//     memory hostage.
// Malformed framing (bad magic/version/oversized length) desyncs the
// byte stream, so those close the connection; malformed payloads inside
// valid frames get kError replies.
//
// Robustness (protocol v2): job frames carry a deadline (propagated to
// the service as an absolute submit deadline) and an idempotency id.
// Ids deduplicate retries server-side — a repeat of an id the server
// has seen attaches to the ORIGINAL job's handle instead of submitting
// again, so a client retrying after an ambiguous failure can never
// double-execute work.  kHealth frames answer a readiness snapshot
// without touching the job queue.
//
// Every connection close is attributed to a structured reason
// (net.conn_closed.{peer_eof,idle_timeout,malformed,write_error,chaos,
// write_backlog,drain}, first cause wins) alongside the
// net.connections.closed total.  Chaos hooks (kAccept, kServerRead,
// kServerWrite, kServerFrame) are compiled into the accept/frame/reply
// paths; they cost one null test when ServerOptions::chaos is unset.
//
// Shutdown is drain-then-close: stop() closes the listener, half-closes
// every connection for reading, flushes all pending replies (in-flight
// jobs complete via their hooks), then closes.  The Service must
// outlive the Server.  Loopback-only by default.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "service/service.hpp"

namespace cgra::net {

enum class MsgType : std::uint8_t;  // protocol.hpp
struct Frame;                       // protocol.hpp

/// Why a connection closed; the FIRST cause observed wins (e.g. a chaos
/// reset that later surfaces as a write error still counts as chaos).
enum class CloseReason : std::uint8_t {
  kPeerEof = 0,    ///< Client closed its side cleanly.
  kIdleTimeout,    ///< No frame started within idle_timeout_ms.
  kMalformed,      ///< Framing desync (bad magic/version/length).
  kWriteError,     ///< Reply delivery failed (peer gone mid-write).
  kChaos,          ///< An injected fault tore the connection down.
  kWriteBacklog,   ///< Unsent replies exceeded write_backlog_limit.
  kDrain,          ///< Server-initiated shutdown drain.
};

inline constexpr int kCloseReasonCount =
    static_cast<int>(CloseReason::kDrain) + 1;

[[nodiscard]] const char* close_reason_name(CloseReason reason) noexcept;

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port (see port()).
  bool loopback_only = true;           ///< Bind 127.0.0.1, not 0.0.0.0.
  int max_connections = 64;            ///< Accepted sockets beyond it close.
  int max_inflight_per_connection = 32;  ///< Job frames awaiting replies.
  /// Close a connection idle (no frame started) for this long; <= 0 waits
  /// forever.
  int idle_timeout_ms = 60000;
  /// Distinct idempotency ids remembered for reply deduplication (FIFO
  /// eviction).  Retries of a remembered id reuse the original job's
  /// result instead of executing again.
  int reply_cache_capacity = 1024;
  /// Chaos injector for the server-side hooks (kAccept, kServerRead,
  /// kServerWrite, kServerFrame); not owned, must outlive the server.
  chaos::ChaosInjector* chaos = nullptr;
  /// Wire tracer recording connection spans, flight events and the
  /// kTraceDump payload.  Share one tracer between the Server and its
  /// Service so a request's spans land in one timeline.  Not owned; must
  /// outlive the server.  Null: the server creates a private tracer, so
  /// kTraceDump always answers.
  obs::Tracer* tracer = nullptr;
  /// Epoll event-loop shards; 0 = hardware_concurrency (>= 1).
  int shards = 0;
  /// Per-connection bound on queued-but-unsent reply bytes.  Checked
  /// BEFORE each new reply is queued, so a single oversized reply always
  /// goes out — but a reader that has not drained earlier replies past
  /// the limit is closed (kWriteBacklog) rather than growing the queue
  /// without bound.
  std::size_t write_backlog_limit = 4u << 20;
  /// Token-bucket admission control over job frames: sustained
  /// requests/s (0 disables) with `admission_burst` of headroom.  Shed
  /// requests are answered kUnavailable — never silently dropped.
  double admission_rate = 0.0;
  int admission_burst = 64;
};

class Server {
 public:
  /// `service` must outlive the server.
  explicit Server(service::Service* service, ServerOptions opt = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, start the shard loops and the acceptor.  Fails on
  /// bind/listen errors (e.g. port in use).
  [[nodiscard]] Status start();

  /// Graceful drain-then-shutdown; idempotent, called by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return started_ && !stopping_.load(std::memory_order_relaxed);
  }

  /// The bound port (resolves option port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Server-side counters (net.*) and per-request spans.  The samples
  /// include p50/p90/p99 gauges derived from the per-request-type
  /// latency histograms (net.latency_ms.<type>.p50 ...).
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  [[nodiscard]] std::vector<obs::MetricSample> metrics_samples() const;
  [[nodiscard]] std::size_t span_count() const;

  /// The tracer answering kTraceDump (the option's, or the private one).
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  struct Connection;
  struct Shard;

  void accept_loop();
  void shard_loop(const std::shared_ptr<Shard>& shard);

  /// Poke a shard's eventfd so its epoll_wait returns promptly.
  static void wake_shard(Shard* shard);
  void push_ready(Shard* shard, const std::shared_ptr<Connection>& conn);

  /// Half-close for reading and, once pending replies and the write
  /// queue drain, close.  Keeps the old reader-exits-writer-flushes
  /// semantics: queued replies are still delivered.
  void begin_drain(const std::shared_ptr<Shard>& shard,
                   const std::shared_ptr<Connection>& conn);
  void close_conn(const std::shared_ptr<Shard>& shard,
                  const std::shared_ptr<Connection>& conn);

  /// Drain readable bytes / buffered frames under the per-wakeup budget.
  /// Returns true when work remains (keep the connection scheduled).
  bool pump_reads(const std::shared_ptr<Shard>& shard,
                  const std::shared_ptr<Connection>& conn);
  /// Handle one decoded frame; false when the connection was torn down.
  bool handle_frame(const std::shared_ptr<Shard>& shard,
                    const std::shared_ptr<Connection>& conn,
                    const Frame& frame);
  /// Deliver in-order replies from the pending deque while results are
  /// available; closes a draining connection once everything flushed.
  void pump_replies(const std::shared_ptr<Shard>& shard,
                    const std::shared_ptr<Connection>& conn);
  /// Chaos hooks + write-queue append + flush for one encoded reply.
  /// False when the connection was torn down.
  bool send_reply(const std::shared_ptr<Shard>& shard,
                  const std::shared_ptr<Connection>& conn,
                  std::vector<std::uint8_t> bytes);
  /// Flush the write queue with sendmsg/iovec coalescing; arms EPOLLOUT
  /// on EAGAIN.  False when the connection was torn down.
  bool flush_writes(const std::shared_ptr<Shard>& shard,
                    const std::shared_ptr<Connection>& conn);
  void update_epoll(Shard* shard, Connection* conn);

  /// Token-bucket admission: true when the job frame may proceed.
  bool admission_allow();

  /// Record why `conn` is going down (first cause wins).
  void note_close(Connection* conn, CloseReason reason);
  /// Count one closed connection under its recorded reason.
  void count_close(Connection* conn);

  /// Reply-dedup lookup: the handle of the job originally submitted for
  /// `idempotency_id`, or null when unseen.
  [[nodiscard]] service::JobHandle cached_reply(std::uint64_t idempotency_id);
  void remember_reply(std::uint64_t idempotency_id,
                      const service::JobHandle& handle);

  [[nodiscard]] Nanoseconds now_ns() const;

  /// Latency histogram for a job request type (null handle otherwise).
  [[nodiscard]] obs::HistogramHandle latency_histogram(MsgType type) const;

  service::Service* const service_;
  const ServerOptions opt_;
  std::unique_ptr<obs::Tracer> own_tracer_;  ///< When no tracer was given.
  obs::Tracer* tracer_ = nullptr;            ///< Never null after ctor.
  const std::chrono::steady_clock::time_point epoch_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  std::vector<std::shared_ptr<Shard>> shards_;
  std::atomic<std::size_t> next_shard_{0};  ///< Round-robin pin cursor.
  std::atomic<int> open_conns_{0};

  /// Token-bucket state for admission control (shards contend briefly).
  std::mutex admission_mu_;
  double admission_tokens_ = 0.0;
  std::chrono::steady_clock::time_point admission_refill_;

  /// Idempotency id -> original job handle, FIFO-evicted at
  /// reply_cache_capacity.  Guarded by cache_mu_.
  std::mutex cache_mu_;
  std::unordered_map<std::uint64_t, service::JobHandle> reply_cache_;
  std::deque<std::uint64_t> reply_cache_order_;

  mutable std::mutex obs_mu_;
  obs::MetricsRegistry metrics_;
  obs::SpanTimeline spans_;
  obs::CounterHandle accepted_;
  obs::CounterHandle refused_;
  obs::CounterHandle closed_;
  std::array<obs::CounterHandle, kCloseReasonCount> closed_reason_;
  obs::CounterHandle requests_;
  obs::CounterHandle replies_;
  obs::CounterHandle errors_;
  obs::CounterHandle malformed_;
  obs::CounterHandle conn_backpressure_;
  obs::CounterHandle service_backpressure_;
  obs::CounterHandle idempotent_hits_;
  obs::CounterHandle deadline_submits_;
  obs::CounterHandle admission_shed_;
  obs::CounterHandle bytes_in_;
  obs::CounterHandle bytes_out_;
  /// Per-request-type latency histograms, indexed by job MsgType -
  /// kJpegBlock (jpeg.block, jpeg.image, fft, dse.sweep).
  std::array<obs::HistogramHandle, 4> latency_ms_{};
};

}  // namespace cgra::net

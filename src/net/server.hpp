// cgra::net::Server — the TCP front-end over cgra::service::Service.
//
// One acceptor thread plus a reader/writer thread pair per connection:
//
//   reader  — frames requests off the socket, answers control frames
//             (ping/stats/cancel) and submits job frames to the service;
//   writer  — delivers replies strictly in request order, blocking on
//             Service::wait() for job results (HTTP/1.1-style pipelining:
//             a connection may have many requests in flight, replies are
//             paired by order AND by the echoed request id).
//
// Backpressure is surfaced, never dropped: a connection that exceeds its
// in-flight cap, or a submit the service rejects (queue saturation),
// comes back as a kError reply carrying the Status message, and the
// connection keeps working.  Malformed framing (bad magic/version/
// oversized length) desyncs the byte stream, so those close the
// connection; malformed payloads inside valid frames get kError replies.
//
// Robustness (protocol v2): job frames carry a deadline (propagated to
// the service as an absolute submit deadline) and an idempotency id.
// Ids deduplicate retries server-side — a repeat of an id the server
// has seen attaches to the ORIGINAL job's handle instead of submitting
// again, so a client retrying after an ambiguous failure can never
// double-execute work.  kHealth frames answer a readiness snapshot
// without touching the job queue.
//
// Every connection close is attributed to a structured reason
// (net.conn_closed.{peer_eof,idle_timeout,malformed,write_error,chaos,
// drain}, first cause wins) alongside the net.connections.closed total.
// Chaos hooks (kAccept, kServerRead, kServerWrite, kServerFrame) are
// compiled into the accept/reader/writer paths; they cost one null test
// when ServerOptions::chaos is unset.
//
// Shutdown is drain-then-close: stop() closes the listener, half-closes
// every connection for reading, lets writers flush all pending replies
// (in-flight jobs complete), then closes.  The Service must outlive the
// Server.  Loopback-only by default (ServerOptions::loopback_only).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "service/service.hpp"

namespace cgra::net {

enum class MsgType : std::uint8_t;  // protocol.hpp

/// Why a connection closed; the FIRST cause observed wins (e.g. a chaos
/// reset that later surfaces as a write error still counts as chaos).
enum class CloseReason : std::uint8_t {
  kPeerEof = 0,   ///< Client closed its side cleanly.
  kIdleTimeout,   ///< No frame started within idle_timeout_ms.
  kMalformed,     ///< Framing desync (bad magic/version/length).
  kWriteError,    ///< Reply delivery failed (peer gone mid-write).
  kChaos,         ///< An injected fault tore the connection down.
  kDrain,         ///< Server-initiated shutdown drain.
};

inline constexpr int kCloseReasonCount =
    static_cast<int>(CloseReason::kDrain) + 1;

[[nodiscard]] const char* close_reason_name(CloseReason reason) noexcept;

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port (see port()).
  bool loopback_only = true;           ///< Bind 127.0.0.1, not 0.0.0.0.
  int max_connections = 64;            ///< Accepted sockets beyond it close.
  int max_inflight_per_connection = 32;  ///< Job frames awaiting replies.
  /// Close a connection idle (no frame started) for this long; <= 0 waits
  /// forever.
  int idle_timeout_ms = 60000;
  /// Distinct idempotency ids remembered for reply deduplication (FIFO
  /// eviction).  Retries of a remembered id reuse the original job's
  /// result instead of executing again.
  int reply_cache_capacity = 1024;
  /// Chaos injector for the server-side hooks (kAccept, kServerRead,
  /// kServerWrite, kServerFrame); not owned, must outlive the server.
  chaos::ChaosInjector* chaos = nullptr;
  /// Wire tracer recording connection spans, flight events and the
  /// kTraceDump payload.  Share one tracer between the Server and its
  /// Service so a request's spans land in one timeline.  Not owned; must
  /// outlive the server.  Null: the server creates a private tracer, so
  /// kTraceDump always answers.
  obs::Tracer* tracer = nullptr;
};

class Server {
 public:
  /// `service` must outlive the server.
  explicit Server(service::Service* service, ServerOptions opt = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and start the acceptor.  Fails on bind/listen errors
  /// (e.g. port in use).
  [[nodiscard]] Status start();

  /// Graceful drain-then-shutdown; idempotent, called by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return started_ && !stopping_.load(std::memory_order_relaxed);
  }

  /// The bound port (resolves option port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Server-side counters (net.*) and per-request spans.  The samples
  /// include p50/p90/p99 gauges derived from the per-request-type
  /// latency histograms (net.latency_ms.<type>.p50 ...).
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  [[nodiscard]] std::vector<obs::MetricSample> metrics_samples() const;
  [[nodiscard]] std::size_t span_count() const;

  /// The tracer answering kTraceDump (the option's, or the private one).
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  void reap_finished_connections();

  /// Record why `conn` is going down (first cause wins).
  void note_close(Connection* conn, CloseReason reason);
  /// Count one closed connection under its recorded reason.
  void count_close(Connection* conn);

  /// Reply-dedup lookup: the handle of the job originally submitted for
  /// `idempotency_id`, or null when unseen.
  [[nodiscard]] service::JobHandle cached_reply(std::uint64_t idempotency_id);
  void remember_reply(std::uint64_t idempotency_id,
                      const service::JobHandle& handle);

  [[nodiscard]] Nanoseconds now_ns() const;

  /// Latency histogram for a job request type (null handle otherwise).
  [[nodiscard]] obs::HistogramHandle latency_histogram(MsgType type) const;

  service::Service* const service_;
  const ServerOptions opt_;
  std::unique_ptr<obs::Tracer> own_tracer_;  ///< When no tracer was given.
  obs::Tracer* tracer_ = nullptr;            ///< Never null after ctor.
  const std::chrono::steady_clock::time_point epoch_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  /// Idempotency id -> original job handle, FIFO-evicted at
  /// reply_cache_capacity.  Guarded by cache_mu_ (never held together
  /// with a connection mutex).
  std::mutex cache_mu_;
  std::unordered_map<std::uint64_t, service::JobHandle> reply_cache_;
  std::deque<std::uint64_t> reply_cache_order_;

  mutable std::mutex obs_mu_;
  obs::MetricsRegistry metrics_;
  obs::SpanTimeline spans_;
  obs::CounterHandle accepted_;
  obs::CounterHandle refused_;
  obs::CounterHandle closed_;
  std::array<obs::CounterHandle, kCloseReasonCount> closed_reason_;
  obs::CounterHandle requests_;
  obs::CounterHandle replies_;
  obs::CounterHandle errors_;
  obs::CounterHandle malformed_;
  obs::CounterHandle conn_backpressure_;
  obs::CounterHandle service_backpressure_;
  obs::CounterHandle idempotent_hits_;
  obs::CounterHandle deadline_submits_;
  obs::CounterHandle bytes_in_;
  obs::CounterHandle bytes_out_;
  /// Per-request-type latency histograms, indexed by job MsgType -
  /// kJpegBlock (jpeg.block, jpeg.image, fft, dse.sweep).
  std::array<obs::HistogramHandle, 4> latency_ms_{};
};

}  // namespace cgra::net

// Wire protocol for the TCP serving layer (docs/ARCHITECTURE.md,
// "Network layer").
//
// Frames are length-prefixed binary, little-endian, versioned:
//
//   offset  size  field
//   0       4     magic 0x43475241 ("CGRA" read as bytes A R G C)
//   4       1     protocol version (kVersion)
//   5       1     message type (MsgType)
//   6       2     reserved, must be zero
//   8       4     payload length in bytes (<= kMaxPayload)
//   12      ...   payload
//
// Every payload begins with a u64 request id chosen by the client and
// echoed verbatim in the matching response, so a connection can pipeline
// requests and still pair replies (replies arrive in request order).
//
// Version 2 adds the robustness fields: job request payloads carry a
// u32 deadline (milliseconds the client is willing to wait; 0 = none)
// and a u64 idempotency id (0 = none) right after the request id, kError
// payloads lead with a StatusCode byte so clients can distinguish
// "unavailable, retry later" from "deadline exceeded" without string
// matching, and kHealth/kHealthResult report server readiness for
// load-shed-aware clients.
//
// Version 3 adds wire tracing: job payloads carry a 128-bit trace
// context (u64 trace id + u64 parent span id, client-generated, zero =
// untraced) right after the idempotency id, and kTraceDump /
// kTraceDumpResult frames pull the server's merged trace JSON and
// flight-recorder anomaly summary live (docs/OBSERVABILITY.md, "Wire
// tracing").  Decoders accept kMinVersion..kVersion and read the trace
// fields only from v3 frames; the server echoes the request's version
// on its replies so v2 clients keep working unchanged.
//
// Request payloads mirror cgra::service::JobRequest — JPEG block (plain
// or resilient, fault plan and recovery policy travel in the frame),
// whole image, FFT and DSE sweep — plus ping, stats and cancel control
// frames.  Responses carry the service::JobResult payloads; failed jobs
// come back as kError frames with the Status message.  The DSE response
// is the sweep *summary* (tiles, II, throughput, utilisation per budget
// point — the paper's Fig. 16/17 numbers); the Binding structure stays
// server-side.
//
// Decoding is defensive: every read is bounds-checked against the
// payload, element counts are capped (kMax* limits below) so a hostile
// length field cannot drive an allocation, and any violation returns a
// Status error naming the offending field.  Malformed *framing* (bad
// magic/version/oversized length) is unrecoverable for the stream; the
// server closes the connection.  Malformed *payloads* inside a valid
// frame are answered with kError and the stream continues.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "service/job.hpp"

namespace cgra::net {

inline constexpr std::uint32_t kMagic = 0x43475241u;
inline constexpr std::uint8_t kVersion = 3;
/// Oldest version still decoded; v2 peers see identical behaviour.
inline constexpr std::uint8_t kMinVersion = 2;
inline constexpr std::size_t kHeaderSize = 12;
/// Hard bound on a frame payload; frames claiming more are rejected
/// before any allocation happens.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;

// Decoder element-count caps (all well above anything the apps produce).
inline constexpr std::uint32_t kMaxFftPoints = 1u << 20;
inline constexpr std::uint32_t kMaxFaultEvents = 1u << 16;
inline constexpr std::uint32_t kMaxProcesses = 4096;
inline constexpr std::uint32_t kMaxEdges = 1u << 16;
inline constexpr std::uint32_t kMaxSweepPoints = 4096;
inline constexpr std::uint32_t kMaxStatsSamples = 1u << 16;
inline constexpr std::uint32_t kMaxStringBytes = 4096;
/// Bound on the trace JSON blob in kTraceDumpResult (exceeds
/// kMaxStringBytes by design — traces are big).
inline constexpr std::uint32_t kMaxTraceBytes = kMaxPayload / 2;

/// Frame types.  Requests are 1..63, responses 65..127; the response for
/// request type T is T + kResponseOffset (control frames included).
enum class MsgType : std::uint8_t {
  kPing = 1,
  kJpegBlock = 2,
  kJpegImage = 3,
  kFft = 4,
  kDseSweep = 5,
  kStats = 6,
  kCancel = 7,
  kHealth = 9,  // 8 is skipped so the response slot 72 stays kError's.
  kTraceDump = 10,

  kPong = 65,
  kJpegBlockResult = 66,
  kJpegImageResult = 67,
  kFftResult = 68,
  kDseSweepResult = 69,
  kStatsResult = 70,
  kCancelResult = 71,
  kError = 72,
  kHealthResult = 73,
  kTraceDumpResult = 74,
};

inline constexpr std::uint8_t kResponseOffset = 64;

[[nodiscard]] const char* msg_type_name(MsgType type) noexcept;
[[nodiscard]] bool msg_type_is_request(MsgType type) noexcept;
/// True for request types that enqueue a service job (not ping/stats/
/// cancel) — the ones the per-connection in-flight cap counts.
[[nodiscard]] bool msg_type_is_job(MsgType type) noexcept;

/// Decoded frame header.
struct FrameHeader {
  std::uint8_t version = kVersion;
  MsgType type = MsgType::kPing;
  std::uint32_t payload_len = 0;
};

/// Render the 12 header bytes.
void encode_header(const FrameHeader& header, std::uint8_t out[kHeaderSize]);

/// Parse and validate 12 header bytes (magic, version, known type,
/// payload bound).  A failure here means the byte stream is desynced.
[[nodiscard]] Status decode_header(std::span<const std::uint8_t> bytes,
                                   FrameHeader* out);

/// One full frame (header + payload) as read off a socket.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// --- request / response value types -------------------------------------

/// Per-request robustness + tracing fields carried on job frames.
struct JobFrameOptions {
  std::uint32_t deadline_ms = 0;     ///< 0 = no deadline.
  std::uint64_t idempotency_id = 0;  ///< 0 = not idempotent (never retried
                                     ///< after the frame may have been sent).
  obs::TraceContext trace;           ///< v3: propagated trace identity
                                     ///< (trace_id 0 = untraced).
  std::uint8_t version = kVersion;   ///< Wire version to speak; the trace
                                     ///< context is omitted below v3.
};

/// Server-side view of any request frame.
struct Request {
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  JobFrameOptions options;          ///< Valid iff msg_type_is_job(type).
  service::JobRequest job;          ///< Valid iff msg_type_is_job(type).
  std::uint64_t cancel_target = 0;  ///< Valid for kCancel.
};

/// One budget point of a DSE sweep reply (the wire summary of
/// mapping::SweepPoint).
struct DseWirePoint {
  int tiles = 0;
  double ii_ns = 0.0;
  double items_per_sec = 0.0;
  double avg_utilization = 0.0;
  bool needs_reconfig = false;
};

/// Server readiness snapshot (kHealthResult payload).
struct HealthInfo {
  bool accepting = false;            ///< False while draining/shutting down.
  std::uint32_t queue_depth = 0;     ///< Jobs waiting in the service queue.
  std::uint32_t queue_capacity = 0;  ///< Queue bound (admission rejects past
                                     ///< this).
  std::uint32_t workers = 0;         ///< Live worker threads.
  std::uint32_t connections = 0;     ///< Open client connections.
};

/// kTraceDumpResult payload: the server's flight-recorder counters plus
/// its merged trace as Chrome trace-event JSON (UTF-8 bytes).
struct TraceDumpInfo {
  std::uint32_t anomalies = 0;          ///< Retained AnomalyRecords.
  std::uint32_t spans = 0;              ///< Spans in the dumped timeline.
  std::uint64_t events_recorded = 0;    ///< Flight events ever recorded.
  std::uint64_t events_dropped = 0;     ///< Overwritten before dumping.
  std::vector<std::uint8_t> trace_json; ///< <= kMaxTraceBytes.
};

/// Client-side view of any response frame.  For job responses `result`
/// carries the same payload types service::Service::wait() returns (the
/// DSE payload is summarised into `dse_points`); kError frames decode to
/// an error `result.status` with an empty payload.
struct Response {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  service::JobResult result;
  std::vector<DseWirePoint> dse_points;       ///< kDseSweepResult.
  std::vector<obs::MetricSample> stats;       ///< kStatsResult.
  std::uint64_t cancel_target = 0;            ///< kCancelResult.
  bool cancelled = false;                     ///< kCancelResult.
  HealthInfo health;                          ///< kHealthResult.
  TraceDumpInfo trace_dump;                   ///< kTraceDumpResult.
};

// --- encoding ------------------------------------------------------------

/// Control frames (fixed small payloads, cannot fail).
[[nodiscard]] std::vector<std::uint8_t> encode_ping(std::uint64_t request_id);
[[nodiscard]] std::vector<std::uint8_t> encode_stats(std::uint64_t request_id);
[[nodiscard]] std::vector<std::uint8_t> encode_cancel(
    std::uint64_t request_id, std::uint64_t target_id);
[[nodiscard]] std::vector<std::uint8_t> encode_health(
    std::uint64_t request_id);
[[nodiscard]] std::vector<std::uint8_t> encode_trace_dump(
    std::uint64_t request_id);
[[nodiscard]] std::vector<std::uint8_t> encode_pong(std::uint64_t request_id);
[[nodiscard]] std::vector<std::uint8_t> encode_error(
    std::uint64_t request_id, std::string_view message,
    StatusCode code = StatusCode::kError);
[[nodiscard]] std::vector<std::uint8_t> encode_health_result(
    std::uint64_t request_id, const HealthInfo& health);
[[nodiscard]] std::vector<std::uint8_t> encode_cancel_result(
    std::uint64_t request_id, std::uint64_t target_id, bool cancelled);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_result(
    std::uint64_t request_id, const std::vector<obs::MetricSample>& samples);
/// The trace JSON is truncated to kMaxTraceBytes (at which point it no
/// longer parses — dump earlier / cap the tracer rather than rely on it).
[[nodiscard]] std::vector<std::uint8_t> encode_trace_dump_result(
    std::uint64_t request_id, const TraceDumpInfo& info);

/// Re-stamp an encoded frame's version byte (reply version echo: the
/// server answers a v2 request with v2 frames).  No-op outside
/// kMinVersion..kVersion or on short buffers.
void stamp_frame_version(std::vector<std::uint8_t>* frame,
                         std::uint8_t version);

/// Encode a job request; fails when the request exceeds protocol bounds
/// (e.g. an image larger than kMaxPayload).
[[nodiscard]] Status encode_job_request(std::uint64_t request_id,
                                        const service::JobRequest& job,
                                        std::vector<std::uint8_t>* out,
                                        const JobFrameOptions& options = {});

/// Encode a finished job's result as the response frame for `request`
/// (ok results become the typed result frame, failures become kError).
[[nodiscard]] Status encode_job_result(const Request& request,
                                       const service::JobResult& result,
                                       std::vector<std::uint8_t>* out);

// --- decoding ------------------------------------------------------------

/// Parse a request frame (server side).
[[nodiscard]] Status decode_request(const Frame& frame, Request* out);

/// Parse a response frame (client side).
[[nodiscard]] Status decode_response(const Frame& frame, Response* out);

}  // namespace cgra::net

#include "net/protocol.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <utility>

namespace cgra::net {

namespace {

// --- primitive writer / reader ------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_->insert(out_->end(), b.begin(), b.end());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const noexcept { return status_.ok(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

  std::uint8_t u8() {
    if (!need(1, "u8")) return 0;
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok()) return {};
    if (n > kMaxStringBytes) {
      fail("string length %u exceeds the %u-byte bound", n, kMaxStringBytes);
      return {};
    }
    if (!need(n, "string body")) return {};
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> blob(std::uint32_t max_bytes) {
    const std::uint32_t n = u32();
    if (!ok()) return {};
    if (n > max_bytes) {
      fail("blob length %u exceeds the %u-byte bound", n, max_bytes);
      return {};
    }
    if (!need(n, "blob body")) return {};
    std::vector<std::uint8_t> b(bytes_.begin() + static_cast<long>(pos_),
                                bytes_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return b;
  }
  /// Element count with an explicit cap; 0 on any violation.
  std::uint32_t count(std::uint32_t max, const char* what) {
    const std::uint32_t n = u32();
    if (!ok()) return 0;
    if (n > max) {
      fail("%s count %u exceeds the bound %u", what, n, max);
      return 0;
    }
    return n;
  }

  [[gnu::format(printf, 2, 3)]] void fail(const char* fmt, ...);

 private:
  bool need(std::size_t n, const char* what) {
    if (!status_.ok()) return false;
    if (bytes_.size() - pos_ < n) {
      status_ = Status::errorf("truncated payload reading %s", what);
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  Status status_;
};

void Reader::fail(const char* fmt, ...) {
  if (!status_.ok()) return;
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  status_ = Status::error(buf);
}

/// Finish a frame: fill in the header for `type` around the payload that
/// was written after kHeaderSize placeholder bytes.
std::vector<std::uint8_t> seal(MsgType type, std::vector<std::uint8_t> buf) {
  FrameHeader header;
  header.type = type;
  header.payload_len = static_cast<std::uint32_t>(buf.size() - kHeaderSize);
  encode_header(header, buf.data());
  return buf;
}

std::vector<std::uint8_t> begin_frame() {
  return std::vector<std::uint8_t>(kHeaderSize, 0);
}

// --- nested struct codecs ------------------------------------------------

void write_block(Writer& w, const jpeg::IntBlock& block) {
  for (const int v : block) w.i32(v);
}

jpeg::IntBlock read_block(Reader& r) {
  jpeg::IntBlock block{};
  for (auto& v : block) v = r.i32();
  return block;
}

void write_quant(Writer& w, const std::array<int, 64>& quant) {
  for (const int v : quant) w.i32(v);
}

std::array<int, 64> read_quant(Reader& r) {
  std::array<int, 64> quant{};
  for (auto& v : quant) v = r.i32();
  return quant;
}

void write_fault_plan(Writer& w, const faults::FaultPlan& plan) {
  w.u64(plan.seed);
  w.u32(static_cast<std::uint32_t>(plan.events.size()));
  for (const auto& e : plan.events) {
    w.u8(static_cast<std::uint8_t>(e.action));
    w.i32(e.tile);
    w.i64(e.cycle);
    w.i32(e.addr);
    w.i32(e.bit);
    w.i32(e.count);
  }
}

faults::FaultPlan read_fault_plan(Reader& r) {
  faults::FaultPlan plan;
  plan.seed = r.u64();
  const std::uint32_t n = r.count(kMaxFaultEvents, "fault event");
  plan.events.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    faults::FaultEvent e;
    const std::uint8_t action = r.u8();
    if (action > static_cast<std::uint8_t>(faults::FaultAction::kKillTile)) {
      r.fail("unknown fault action %u", action);
      break;
    }
    e.action = static_cast<faults::FaultAction>(action);
    e.tile = r.i32();
    e.cycle = r.i64();
    e.addr = r.i32();
    e.bit = r.i32();
    e.count = r.i32();
    plan.events.push_back(e);
  }
  return plan;
}

void write_cost_params(Writer& w, const mapping::CostParams& p) {
  w.f64(p.icap.bytes_per_sec);
  w.i32(p.imem_words);
  w.i32(p.dmem_words);
  w.boolean(p.allow_pinning);
}

mapping::CostParams read_cost_params(Reader& r) {
  mapping::CostParams p;
  p.icap.bytes_per_sec = r.f64();
  p.imem_words = r.i32();
  p.dmem_words = r.i32();
  p.allow_pinning = r.boolean();
  return p;
}

void write_policy(Writer& w, const faults::RecoveryPolicy& p) {
  w.boolean(p.verify_readback);
  w.f64(p.verify_cost_factor);
  w.i32(p.max_icap_retries);
  w.f64(p.icap_retry_backoff_ns);
  w.f64(p.icap_backoff_factor);
  w.i32(p.max_retries_per_checkpoint);
  w.boolean(p.scrub_imem);
  w.boolean(p.allow_rebalance);
  w.i32(p.max_rebalances);
  w.u8(static_cast<std::uint8_t>(p.rebalance_algo));
  write_cost_params(w, p.cost_params);
  w.f64(p.watchdog.margin);
  w.i64(p.watchdog.min_budget_cycles);
}

faults::RecoveryPolicy read_policy(Reader& r) {
  faults::RecoveryPolicy p;
  p.verify_readback = r.boolean();
  p.verify_cost_factor = r.f64();
  p.max_icap_retries = r.i32();
  p.icap_retry_backoff_ns = r.f64();
  p.icap_backoff_factor = r.f64();
  p.max_retries_per_checkpoint = r.i32();
  p.scrub_imem = r.boolean();
  p.allow_rebalance = r.boolean();
  p.max_rebalances = r.i32();
  const std::uint8_t algo = r.u8();
  if (algo > static_cast<std::uint8_t>(mapping::RebalanceAlgorithm::kOpt)) {
    r.fail("unknown rebalance algorithm %u", algo);
    return p;
  }
  p.rebalance_algo = static_cast<mapping::RebalanceAlgorithm>(algo);
  p.cost_params = read_cost_params(r);
  p.watchdog.margin = r.f64();
  p.watchdog.min_budget_cycles = r.i64();
  return p;
}

void write_cplx_vec(Writer& w, const std::vector<fft::Cplx>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& c : v) {
    w.f64(c.real());
    w.f64(c.imag());
  }
}

std::vector<fft::Cplx> read_cplx_vec(Reader& r) {
  const std::uint32_t n = r.count(kMaxFftPoints, "complex sample");
  std::vector<fft::Cplx> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const double re = r.f64();
    const double im = r.f64();
    v.emplace_back(re, im);
  }
  return v;
}

void write_network(Writer& w, const procnet::ProcessNetwork& net) {
  w.u32(static_cast<std::uint32_t>(net.processes().size()));
  for (const auto& p : net.processes()) {
    w.str(p.name);
    w.i32(p.insts);
    w.i32(p.data1);
    w.i32(p.data2);
    w.i32(p.data3);
    w.i64(p.runtime_cycles);
    w.i32(p.invocations_per_item);
    w.boolean(p.replicable);
  }
  w.u32(static_cast<std::uint32_t>(net.edges().size()));
  for (const auto& e : net.edges()) {
    w.i32(e.from);
    w.i32(e.to);
    w.i32(e.words);
  }
}

procnet::ProcessNetwork read_network(Reader& r) {
  procnet::ProcessNetwork net;
  const std::uint32_t procs = r.count(kMaxProcesses, "process");
  for (std::uint32_t i = 0; i < procs && r.ok(); ++i) {
    procnet::Process p;
    p.name = r.str();
    p.insts = r.i32();
    p.data1 = r.i32();
    p.data2 = r.i32();
    p.data3 = r.i32();
    p.runtime_cycles = r.i64();
    p.invocations_per_item = r.i32();
    p.replicable = r.boolean();
    if (r.ok()) net.add_process(std::move(p));
  }
  const std::uint32_t edges = r.count(kMaxEdges, "edge");
  for (std::uint32_t i = 0; i < edges && r.ok(); ++i) {
    const int from = r.i32();
    const int to = r.i32();
    const int words = r.i32();
    if (r.ok() && !net.add_edge(from, to, words)) {
      r.fail("invalid edge %d -> %d", from, to);
    }
  }
  return net;
}

Status finish(const Reader& r) {
  if (!r.ok()) return r.status();
  if (!r.exhausted()) {
    return Status::error("trailing bytes after payload");
  }
  return Status();
}

std::vector<std::uint8_t> control_frame(MsgType type,
                                        std::uint64_t request_id) {
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request_id);
  return seal(type, std::move(buf));
}

}  // namespace

// --- header --------------------------------------------------------------

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kJpegBlock: return "jpeg.block";
    case MsgType::kJpegImage: return "jpeg.image";
    case MsgType::kFft: return "fft";
    case MsgType::kDseSweep: return "dse.sweep";
    case MsgType::kStats: return "stats";
    case MsgType::kCancel: return "cancel";
    case MsgType::kHealth: return "health";
    case MsgType::kTraceDump: return "trace.dump";
    case MsgType::kPong: return "pong";
    case MsgType::kJpegBlockResult: return "jpeg.block.result";
    case MsgType::kJpegImageResult: return "jpeg.image.result";
    case MsgType::kFftResult: return "fft.result";
    case MsgType::kDseSweepResult: return "dse.sweep.result";
    case MsgType::kStatsResult: return "stats.result";
    case MsgType::kCancelResult: return "cancel.result";
    case MsgType::kError: return "error";
    case MsgType::kHealthResult: return "health.result";
    case MsgType::kTraceDumpResult: return "trace.dump.result";
  }
  return "?";
}

bool msg_type_is_request(MsgType type) noexcept {
  switch (type) {
    case MsgType::kPing:
    case MsgType::kJpegBlock:
    case MsgType::kJpegImage:
    case MsgType::kFft:
    case MsgType::kDseSweep:
    case MsgType::kStats:
    case MsgType::kCancel:
    case MsgType::kHealth:
    case MsgType::kTraceDump:
      return true;
    default:
      return false;
  }
}

bool msg_type_is_job(MsgType type) noexcept {
  switch (type) {
    case MsgType::kJpegBlock:
    case MsgType::kJpegImage:
    case MsgType::kFft:
    case MsgType::kDseSweep:
      return true;
    default:
      return false;
  }
}

void encode_header(const FrameHeader& header, std::uint8_t out[kHeaderSize]) {
  const std::uint32_t magic = kMagic;
  std::memcpy(out, &magic, 4);  // little-endian on every supported target
  out[4] = header.version;
  out[5] = static_cast<std::uint8_t>(header.type);
  out[6] = 0;
  out[7] = 0;
  const std::uint32_t len = header.payload_len;
  out[8] = static_cast<std::uint8_t>(len);
  out[9] = static_cast<std::uint8_t>(len >> 8);
  out[10] = static_cast<std::uint8_t>(len >> 16);
  out[11] = static_cast<std::uint8_t>(len >> 24);
}

Status decode_header(std::span<const std::uint8_t> bytes, FrameHeader* out) {
  if (bytes.size() < kHeaderSize) {
    return Status::errorf("short frame header: %zu of %zu bytes",
                          bytes.size(), kHeaderSize);
  }
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  if (magic != kMagic) {
    return Status::errorf("bad frame magic 0x%08x", magic);
  }
  if (bytes[4] < kMinVersion || bytes[4] > kVersion) {
    return Status::errorf("unsupported protocol version %u (speaking %u..%u)",
                          bytes[4], kMinVersion, kVersion);
  }
  const std::uint8_t raw_type = bytes[5];
  const auto type = static_cast<MsgType>(raw_type);
  if (msg_type_name(type) == std::string_view("?")) {
    return Status::errorf("unknown message type %u", raw_type);
  }
  if (bytes[6] != 0 || bytes[7] != 0) {
    return Status::error("nonzero reserved header bytes");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(bytes[8]) |
                            (static_cast<std::uint32_t>(bytes[9]) << 8) |
                            (static_cast<std::uint32_t>(bytes[10]) << 16) |
                            (static_cast<std::uint32_t>(bytes[11]) << 24);
  if (len > kMaxPayload) {
    return Status::errorf("payload length %u exceeds the %u-byte bound", len,
                          kMaxPayload);
  }
  out->version = bytes[4];
  out->type = type;
  out->payload_len = len;
  return Status();
}

// --- control-frame encoders ----------------------------------------------

std::vector<std::uint8_t> encode_ping(std::uint64_t request_id) {
  return control_frame(MsgType::kPing, request_id);
}

std::vector<std::uint8_t> encode_stats(std::uint64_t request_id) {
  return control_frame(MsgType::kStats, request_id);
}

std::vector<std::uint8_t> encode_health(std::uint64_t request_id) {
  return control_frame(MsgType::kHealth, request_id);
}

std::vector<std::uint8_t> encode_trace_dump(std::uint64_t request_id) {
  return control_frame(MsgType::kTraceDump, request_id);
}

std::vector<std::uint8_t> encode_pong(std::uint64_t request_id) {
  return control_frame(MsgType::kPong, request_id);
}

std::vector<std::uint8_t> encode_cancel(std::uint64_t request_id,
                                        std::uint64_t target_id) {
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request_id);
  w.u64(target_id);
  return seal(MsgType::kCancel, std::move(buf));
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       std::string_view message,
                                       StatusCode code) {
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(code == StatusCode::kOk ? StatusCode::kError
                                                         : code));
  w.str(message.substr(0, kMaxStringBytes));
  return seal(MsgType::kError, std::move(buf));
}

std::vector<std::uint8_t> encode_health_result(std::uint64_t request_id,
                                               const HealthInfo& health) {
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request_id);
  w.boolean(health.accepting);
  w.u32(health.queue_depth);
  w.u32(health.queue_capacity);
  w.u32(health.workers);
  w.u32(health.connections);
  return seal(MsgType::kHealthResult, std::move(buf));
}

std::vector<std::uint8_t> encode_cancel_result(std::uint64_t request_id,
                                               std::uint64_t target_id,
                                               bool cancelled) {
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request_id);
  w.u64(target_id);
  w.boolean(cancelled);
  return seal(MsgType::kCancelResult, std::move(buf));
}

std::vector<std::uint8_t> encode_stats_result(
    std::uint64_t request_id, const std::vector<obs::MetricSample>& samples) {
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request_id);
  const std::uint32_t n = static_cast<std::uint32_t>(
      std::min<std::size_t>(samples.size(), kMaxStatsSamples));
  w.u32(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    w.str(std::string_view(samples[i].name).substr(0, kMaxStringBytes));
    w.boolean(samples[i].is_counter);
    w.f64(samples[i].value);
  }
  return seal(MsgType::kStatsResult, std::move(buf));
}

std::vector<std::uint8_t> encode_trace_dump_result(std::uint64_t request_id,
                                                   const TraceDumpInfo& info) {
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request_id);
  w.u32(info.anomalies);
  w.u32(info.spans);
  w.u64(info.events_recorded);
  w.u64(info.events_dropped);
  if (info.trace_json.size() > kMaxTraceBytes) {
    std::vector<std::uint8_t> truncated(
        info.trace_json.begin(),
        info.trace_json.begin() + static_cast<long>(kMaxTraceBytes));
    w.bytes(truncated);
  } else {
    w.bytes(info.trace_json);
  }
  return seal(MsgType::kTraceDumpResult, std::move(buf));
}

void stamp_frame_version(std::vector<std::uint8_t>* frame,
                         std::uint8_t version) {
  if (frame == nullptr || frame->size() < kHeaderSize) return;
  if (version < kMinVersion || version > kVersion) return;
  (*frame)[4] = version;
}

// --- job request encoder -------------------------------------------------

Status encode_job_request(std::uint64_t request_id,
                          const service::JobRequest& job,
                          std::vector<std::uint8_t>* out,
                          const JobFrameOptions& options) {
  if (options.version < kMinVersion || options.version > kVersion) {
    return Status::errorf("cannot encode protocol version %u (speaking %u..%u)",
                          options.version, kMinVersion, kVersion);
  }
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request_id);
  w.u32(options.deadline_ms);
  w.u64(options.idempotency_id);
  if (options.version >= 3) {
    w.u64(options.trace.trace_id);
    w.u64(options.trace.parent_span_id);
  }
  MsgType type;
  switch (job.index()) {
    case 0: {
      type = MsgType::kJpegBlock;
      const auto& r = std::get<service::JpegBlockRequest>(job);
      if (r.plan.events.size() > kMaxFaultEvents) {
        return Status::errorf("fault plan has %zu events (bound %u)",
                              r.plan.events.size(), kMaxFaultEvents);
      }
      write_block(w, r.raw);
      write_quant(w, r.quant);
      w.i32(r.rows);
      w.i32(r.cols);
      write_fault_plan(w, r.plan);
      write_policy(w, r.policy);
      break;
    }
    case 1: {
      type = MsgType::kJpegImage;
      const auto& r = std::get<service::JpegImageRequest>(job);
      if (r.image.pixels.size() > kMaxPayload / 2) {
        return Status::errorf("image payload %zu bytes exceeds the bound %u",
                              r.image.pixels.size(), kMaxPayload / 2);
      }
      w.i32(r.quality);
      w.i32(r.image.width);
      w.i32(r.image.height);
      w.bytes(r.image.pixels);
      break;
    }
    case 2: {
      type = MsgType::kFft;
      const auto& r = std::get<service::FftRequest>(job);
      if (r.input.size() > kMaxFftPoints) {
        return Status::errorf("FFT input has %zu points (bound %u)",
                              r.input.size(), kMaxFftPoints);
      }
      w.i32(r.n);
      w.i32(r.m);
      w.i32(r.cols);
      write_cplx_vec(w, r.input);
      break;
    }
    case 3: {
      type = MsgType::kDseSweep;
      const auto& r = std::get<service::DseSweepRequest>(job);
      if (r.net.processes().size() > kMaxProcesses ||
          r.net.edges().size() > kMaxEdges) {
        return Status::error("process network exceeds protocol bounds");
      }
      w.i32(r.max_tiles);
      w.u8(static_cast<std::uint8_t>(r.algorithm));
      write_cost_params(w, r.params);
      write_network(w, r.net);
      break;
    }
    default:
      // Mapper jobs are in-process only for now: the wire protocol has no
      // frame for them, and silently encoding a different job kind would be
      // far worse than refusing.
      return Status::error("job kind has no wire encoding");
  }
  if (buf.size() - kHeaderSize > kMaxPayload) {
    return Status::errorf("encoded request is %zu bytes (bound %u)",
                          buf.size() - kHeaderSize, kMaxPayload);
  }
  *out = seal(type, std::move(buf));
  stamp_frame_version(out, options.version);
  return Status();
}

// --- job result encoder --------------------------------------------------

Status encode_job_result(const Request& request,
                         const service::JobResult& result,
                         std::vector<std::uint8_t>* out) {
  if (!result.status.ok()) {
    *out = encode_error(request.request_id, result.status.message(),
                        result.status.code());
    return Status();
  }
  auto buf = begin_frame();
  Writer w(&buf);
  w.u64(request.request_id);
  switch (request.type) {
    case MsgType::kJpegBlock: {
      const auto* p = std::get_if<service::JpegBlockJobResult>(&result.payload);
      if (p == nullptr) return Status::error("payload/type mismatch");
      write_block(w, p->zigzagged);
      w.i64(p->cycles);
      w.f64(p->reconfig_ns);
      w.boolean(p->recovered);
      *out = seal(MsgType::kJpegBlockResult, std::move(buf));
      return Status();
    }
    case MsgType::kJpegImage: {
      const auto* p = std::get_if<service::JpegImageJobResult>(&result.payload);
      if (p == nullptr) return Status::error("payload/type mismatch");
      if (p->jfif.size() > kMaxPayload / 2) {
        return Status::errorf("JFIF stream %zu bytes exceeds the bound %u",
                              p->jfif.size(), kMaxPayload / 2);
      }
      w.i64(p->fabric_cycles);
      w.bytes(p->jfif);
      *out = seal(MsgType::kJpegImageResult, std::move(buf));
      return Status();
    }
    case MsgType::kFft: {
      const auto* p = std::get_if<service::FftJobResult>(&result.payload);
      if (p == nullptr) return Status::error("payload/type mismatch");
      w.i32(p->epochs);
      w.f64(p->timeline.epoch_compute_ns);
      w.f64(p->timeline.reconfig_ns);
      write_cplx_vec(w, p->output);
      *out = seal(MsgType::kFftResult, std::move(buf));
      return Status();
    }
    case MsgType::kDseSweep: {
      const auto* p = std::get_if<service::DseSweepJobResult>(&result.payload);
      if (p == nullptr) return Status::error("payload/type mismatch");
      const std::uint32_t n = static_cast<std::uint32_t>(
          std::min<std::size_t>(p->points.size(), kMaxSweepPoints));
      w.u32(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto& pt = p->points[i];
        w.i32(pt.tiles);
        w.f64(pt.eval.ii_ns);
        w.f64(pt.eval.items_per_sec);
        w.f64(pt.eval.avg_utilization);
        w.boolean(pt.eval.needs_reconfig);
      }
      *out = seal(MsgType::kDseSweepResult, std::move(buf));
      return Status();
    }
    default:
      return Status::errorf("request type %s has no job result",
                            msg_type_name(request.type));
  }
}

// --- request decoder -----------------------------------------------------

Status decode_request(const Frame& frame, Request* out) {
  if (!msg_type_is_request(frame.header.type)) {
    return Status::errorf("%s is not a request frame",
                          msg_type_name(frame.header.type));
  }
  Reader r(frame.payload);
  out->type = frame.header.type;
  out->request_id = r.u64();
  out->options = JobFrameOptions{};
  out->cancel_target = 0;
  if (msg_type_is_job(frame.header.type)) {
    out->options.deadline_ms = r.u32();
    out->options.idempotency_id = r.u64();
    out->options.version = frame.header.version;
    if (frame.header.version >= 3) {
      out->options.trace.trace_id = r.u64();
      out->options.trace.parent_span_id = r.u64();
    }
  }
  switch (frame.header.type) {
    case MsgType::kPing:
    case MsgType::kStats:
    case MsgType::kHealth:
    case MsgType::kTraceDump:
      break;
    case MsgType::kCancel:
      out->cancel_target = r.u64();
      break;
    case MsgType::kJpegBlock: {
      service::JpegBlockRequest req;
      req.raw = read_block(r);
      req.quant = read_quant(r);
      req.rows = r.i32();
      req.cols = r.i32();
      req.plan = read_fault_plan(r);
      req.policy = read_policy(r);
      out->job = std::move(req);
      break;
    }
    case MsgType::kJpegImage: {
      service::JpegImageRequest req;
      req.quality = r.i32();
      req.image.width = r.i32();
      req.image.height = r.i32();
      req.image.pixels = r.blob(kMaxPayload / 2);
      out->job = std::move(req);
      break;
    }
    case MsgType::kFft: {
      service::FftRequest req;
      req.n = r.i32();
      req.m = r.i32();
      req.cols = r.i32();
      req.input = read_cplx_vec(r);
      out->job = std::move(req);
      break;
    }
    case MsgType::kDseSweep: {
      service::DseSweepRequest req;
      req.max_tiles = r.i32();
      const std::uint8_t algo = r.u8();
      if (algo > static_cast<std::uint8_t>(mapping::RebalanceAlgorithm::kOpt)) {
        return Status::errorf("unknown rebalance algorithm %u", algo);
      }
      req.algorithm = static_cast<mapping::RebalanceAlgorithm>(algo);
      req.params = read_cost_params(r);
      req.net = read_network(r);
      out->job = std::move(req);
      break;
    }
    default:
      return Status::errorf("unhandled request type %s",
                            msg_type_name(frame.header.type));
  }
  return finish(r);
}

// --- response decoder ----------------------------------------------------

Status decode_response(const Frame& frame, Response* out) {
  if (msg_type_is_request(frame.header.type)) {
    return Status::errorf("%s is not a response frame",
                          msg_type_name(frame.header.type));
  }
  Reader r(frame.payload);
  out->type = frame.header.type;
  out->request_id = r.u64();
  out->result = service::JobResult{};
  out->dse_points.clear();
  out->stats.clear();
  out->cancel_target = 0;
  out->cancelled = false;
  out->health = HealthInfo{};
  out->trace_dump = TraceDumpInfo{};
  switch (frame.header.type) {
    case MsgType::kPong:
      out->result.status = Status();
      break;
    case MsgType::kHealthResult:
      out->health.accepting = r.boolean();
      out->health.queue_depth = r.u32();
      out->health.queue_capacity = r.u32();
      out->health.workers = r.u32();
      out->health.connections = r.u32();
      out->result.status = Status();
      break;
    case MsgType::kError: {
      const std::uint8_t raw_code = r.u8();
      if (raw_code > static_cast<std::uint8_t>(StatusCode::kUnknownOutcome) ||
          raw_code == static_cast<std::uint8_t>(StatusCode::kOk)) {
        return Status::errorf("invalid error status code %u", raw_code);
      }
      const std::string message = r.str();
      if (r.ok()) {
        out->result.status =
            Status::coded(static_cast<StatusCode>(raw_code), message);
      }
      break;
    }
    case MsgType::kCancelResult:
      out->cancel_target = r.u64();
      out->cancelled = r.boolean();
      out->result.status = Status();
      break;
    case MsgType::kTraceDumpResult:
      out->trace_dump.anomalies = r.u32();
      out->trace_dump.spans = r.u32();
      out->trace_dump.events_recorded = r.u64();
      out->trace_dump.events_dropped = r.u64();
      out->trace_dump.trace_json = r.blob(kMaxTraceBytes);
      out->result.status = Status();
      break;
    case MsgType::kStatsResult: {
      const std::uint32_t n = r.count(kMaxStatsSamples, "stats sample");
      out->stats.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        obs::MetricSample s;
        s.name = r.str();
        s.is_counter = r.boolean();
        s.value = r.f64();
        out->stats.push_back(std::move(s));
      }
      out->result.status = Status();
      break;
    }
    case MsgType::kJpegBlockResult: {
      service::JpegBlockJobResult p;
      p.zigzagged = read_block(r);
      p.cycles = r.i64();
      p.reconfig_ns = r.f64();
      p.recovered = r.boolean();
      out->result.status = Status();
      out->result.payload = std::move(p);
      break;
    }
    case MsgType::kJpegImageResult: {
      service::JpegImageJobResult p;
      p.fabric_cycles = r.i64();
      p.jfif = r.blob(kMaxPayload / 2);
      out->result.status = Status();
      out->result.payload = std::move(p);
      break;
    }
    case MsgType::kFftResult: {
      service::FftJobResult p;
      p.epochs = r.i32();
      p.timeline.epoch_compute_ns = r.f64();
      p.timeline.reconfig_ns = r.f64();
      p.output = read_cplx_vec(r);
      out->result.status = Status();
      out->result.payload = std::move(p);
      break;
    }
    case MsgType::kDseSweepResult: {
      const std::uint32_t n = r.count(kMaxSweepPoints, "sweep point");
      out->dse_points.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        DseWirePoint pt;
        pt.tiles = r.i32();
        pt.ii_ns = r.f64();
        pt.items_per_sec = r.f64();
        pt.avg_utilization = r.f64();
        pt.needs_reconfig = r.boolean();
        out->dse_points.push_back(pt);
      }
      out->result.status = Status();
      break;
    }
    default:
      return Status::errorf("unhandled response type %s",
                            msg_type_name(frame.header.type));
  }
  return finish(r);
}

}  // namespace cgra::net

// cgra::net::Client — blocking TCP client for the serving layer.
//
// One connection, requests paired to replies by the echoed request id.
// call() is the simple path: send one job, block for its reply.  The
// send()/receive() pair exposes pipelining (many requests in flight on
// one connection, replies in request order) for load generators.
//
// Transient transport failures — connect refused/reset while the server
// restarts, a broken pipe, a reply timeout — are retried with
// exponential backoff after reconnecting.  Retry safety is explicit
// about WHEN the failure happened: before the request bytes were
// written, any request retries; after they may have been sent, only
// requests carrying an idempotency id (the server deduplicates them) are
// resent — anything else returns kUnknownOutcome, because a blind resend
// could double-execute it.  Protocol-level errors (kError replies,
// malformed responses) are never retried.
//
// On top of the per-call backoff sits an optional circuit breaker:
// after `breaker_threshold` consecutive whole-call transport failures
// the client fails fast with kUnavailable for `breaker_cooldown_ms`,
// then lets exactly one probe through (half-open); a probe success
// closes the breaker, a failure reopens it.
//
// Not thread-safe: one Client per thread (see bench_net_throughput).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/status.hpp"
#include "net/protocol.hpp"

namespace cgra::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Reply wait bound per attempt; <= 0 waits forever.
  int request_timeout_ms = 30000;
  /// Transport retries after the first attempt (0 = fail fast).
  int max_retries = 3;
  int retry_backoff_ms = 50;     ///< First backoff; doubles per retry.
  double backoff_factor = 2.0;
  /// Consecutive whole-call transport failures that open the circuit
  /// breaker; 0 disables it.
  int breaker_threshold = 0;
  int breaker_cooldown_ms = 1000;  ///< Open-state fail-fast window.
  /// Chaos injector for the client-side hooks (kClientConnect,
  /// kClientFrame, kClientRecv); not owned, must outlive the client.
  chaos::ChaosInjector* chaos = nullptr;
  /// Wire tracer: call() generates a propagated trace context per
  /// request (when CallOptions::trace is unset), records a client span
  /// around the round-trip, and logs retry / breaker-open flight
  /// events.  Not owned, must outlive the client; null = untraced.
  obs::Tracer* tracer = nullptr;
  /// Version stamped on job frames (kMinVersion..kVersion).  v2 omits
  /// the trace context — the compatibility knob the mixed-version tests
  /// exercise.
  std::uint8_t protocol_version = kVersion;
};

/// Per-call robustness options (wire fields of protocol v2 job frames).
struct CallOptions {
  /// Milliseconds the caller will wait; propagated end to end and
  /// enforced by the server at queue admission and epoch boundaries.
  std::uint32_t deadline_ms = 0;
  /// Non-zero marks the request idempotent: the server deduplicates
  /// repeats of the same id, so post-send retries are safe.
  std::uint64_t idempotency_id = 0;
  /// Explicit trace identity to propagate (v3 frames).  Invalid (the
  /// default) lets call() mint one from ClientOptions::tracer.
  obs::TraceContext trace;
};

class Client {
 public:
  explicit Client(ClientOptions opt);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect now (otherwise the first request connects lazily).  Applies
  /// the retry policy.
  [[nodiscard]] Status connect();
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Round-trip a ping.
  [[nodiscard]] Status ping();

  /// Submit one job and block for its result (with transport retries —
  /// post-send retries only when `options.idempotency_id` is set; a
  /// possibly-sent non-idempotent request fails with kUnknownOutcome).
  [[nodiscard]] Status call(const service::JobRequest& job, Response* out,
                            const CallOptions& options = {});

  /// Fetch the server's merged stats samples (service.* + net.*).
  [[nodiscard]] Status stats(std::vector<obs::MetricSample>* out);

  /// Fetch the server's readiness snapshot.
  [[nodiscard]] Status health(HealthInfo* out);

  /// Pull the server tracer's live dump: anomaly/span/event counts plus
  /// the full Chrome trace JSON (merge it locally with
  /// obs::parse_chrome_trace + Tracer::merge_spans).
  [[nodiscard]] Status trace_dump(TraceDumpInfo* out);

  /// Ask the server to cancel a job by its request id; `cancelled`
  /// reports whether it was still cancellable.  Blocking: replies are
  /// strictly in request order, so only use this when no other requests
  /// are in flight on this connection (pipelined callers use
  /// send_cancel() and pair the ack via receive()).
  [[nodiscard]] Status cancel(std::uint64_t target_id, bool* cancelled);

  // --- pipelining (no retries: callers manage the stream) ---

  /// Fire a job request without waiting; returns the assigned id.
  [[nodiscard]] Status send(const service::JobRequest& job,
                            std::uint64_t* request_id,
                            const CallOptions& options = {});
  /// Fire a cancel for `target_id` without waiting; the kCancelResult
  /// ack arrives via receive() behind any earlier in-flight replies.
  [[nodiscard]] Status send_cancel(std::uint64_t target_id,
                                   std::uint64_t* request_id);
  /// Read the next in-order reply.
  [[nodiscard]] Status receive(Response* out);

  /// Connect attempts made so far (tests assert the retry schedule).
  [[nodiscard]] int connect_attempts() const noexcept {
    return connect_attempts_;
  }

  /// True while the circuit breaker is failing calls fast.
  [[nodiscard]] bool breaker_open() const noexcept {
    return breaker_ == BreakerState::kOpen;
  }

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  [[nodiscard]] Status connect_once();
  [[nodiscard]] Status ensure_connected();
  /// Send `frame` and wait for the reply matching `request_id`, applying
  /// the retry policy on transport failures.  `idempotent` gates
  /// post-send retries (see the file comment).
  [[nodiscard]] Status roundtrip(const std::vector<std::uint8_t>& frame,
                                 std::uint64_t request_id, bool idempotent,
                                 Response* out);
  [[nodiscard]] Status read_response(Response* out);

  /// Fail fast while the breaker is open; arm the half-open probe once
  /// the cooldown has passed.
  [[nodiscard]] Status breaker_gate();
  void breaker_success();
  void breaker_failure();

  const ClientOptions opt_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  /// Trace identity of the call in flight; roundtrip() tags its retry
  /// and breaker flight events with it (invalid between calls).
  obs::TraceContext trace_ctx_;
  int connect_attempts_ = 0;
  BreakerState breaker_ = BreakerState::kClosed;
  int breaker_failures_ = 0;
  std::chrono::steady_clock::time_point breaker_open_until_{};
};

}  // namespace cgra::net

// cgra::net::Client — blocking TCP client for the serving layer.
//
// One connection, requests paired to replies by the echoed request id.
// call() is the simple path: send one job, block for its reply.  The
// send()/receive() pair exposes pipelining (many requests in flight on
// one connection, replies in request order) for load generators.
//
// Transient transport failures — connect refused/reset while the server
// restarts, a broken pipe, a reply timeout — are retried with
// exponential backoff after reconnecting, because every request type is
// a pure function of its payload (the job-service determinism contract),
// so resending is always safe.  Protocol-level errors (kError replies,
// malformed responses) are never retried.
//
// Not thread-safe: one Client per thread (see bench_net_throughput).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "net/protocol.hpp"

namespace cgra::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Reply wait bound per attempt; <= 0 waits forever.
  int request_timeout_ms = 30000;
  /// Transport retries after the first attempt (0 = fail fast).
  int max_retries = 3;
  int retry_backoff_ms = 50;     ///< First backoff; doubles per retry.
  double backoff_factor = 2.0;
};

class Client {
 public:
  explicit Client(ClientOptions opt);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect now (otherwise the first request connects lazily).  Applies
  /// the retry policy.
  [[nodiscard]] Status connect();
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Round-trip a ping.
  [[nodiscard]] Status ping();

  /// Submit one job and block for its result (with transport retries).
  [[nodiscard]] Status call(const service::JobRequest& job, Response* out);

  /// Fetch the server's merged stats samples (service.* + net.*).
  [[nodiscard]] Status stats(std::vector<obs::MetricSample>* out);

  /// Ask the server to cancel a job by its request id; `cancelled`
  /// reports whether it was still cancellable.  Blocking: replies are
  /// strictly in request order, so only use this when no other requests
  /// are in flight on this connection (pipelined callers use
  /// send_cancel() and pair the ack via receive()).
  [[nodiscard]] Status cancel(std::uint64_t target_id, bool* cancelled);

  // --- pipelining (no retries: callers manage the stream) ---

  /// Fire a job request without waiting; returns the assigned id.
  [[nodiscard]] Status send(const service::JobRequest& job,
                            std::uint64_t* request_id);
  /// Fire a cancel for `target_id` without waiting; the kCancelResult
  /// ack arrives via receive() behind any earlier in-flight replies.
  [[nodiscard]] Status send_cancel(std::uint64_t target_id,
                                   std::uint64_t* request_id);
  /// Read the next in-order reply.
  [[nodiscard]] Status receive(Response* out);

  /// Connect attempts made so far (tests assert the retry schedule).
  [[nodiscard]] int connect_attempts() const noexcept {
    return connect_attempts_;
  }

 private:
  [[nodiscard]] Status connect_once();
  [[nodiscard]] Status ensure_connected();
  /// Send `frame` and wait for the reply matching `request_id`, applying
  /// the retry policy on transport failures.
  [[nodiscard]] Status roundtrip(const std::vector<std::uint8_t>& frame,
                                 std::uint64_t request_id, Response* out);
  [[nodiscard]] Status read_response(Response* out);

  const ClientOptions opt_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  int connect_attempts_ = 0;
};

}  // namespace cgra::net

#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/protocol.hpp"
#include "net/socket_util.hpp"

namespace cgra::net {

namespace {

/// Span track for network requests (service uses 3/4, tiles start at
/// obs::kTrackTileBase).
constexpr int kTrackNet = 5;

/// Frames handled per connection per shard round: bounds the time one
/// busy pipelined client can hold the shard before its peers get a turn.
constexpr int kFrameBudget = 16;

/// recv() chunk size for the incremental read buffer.
constexpr std::size_t kReadChunk = 64 * 1024;

/// iovec entries per sendmsg: coalesces up to this many queued replies
/// into one syscall.
constexpr std::size_t kMaxIov = 16;

/// Shard idle sweep cadence and epoll timeout when no work is ready.
constexpr int kSweepSliceMs = 20;

/// Once a frame header arrived, the rest must follow within this budget
/// (matches the blocking reader's body timeout).
constexpr auto kBodyTimeout = std::chrono::milliseconds(10000);

/// Shutdown drain bound: a peer that will not take its replies cannot
/// hold stop() hostage past this.
constexpr auto kDrainTimeout = std::chrono::milliseconds(10000);

}  // namespace

const char* close_reason_name(CloseReason reason) noexcept {
  switch (reason) {
    case CloseReason::kPeerEof: return "peer_eof";
    case CloseReason::kIdleTimeout: return "idle_timeout";
    case CloseReason::kMalformed: return "malformed";
    case CloseReason::kWriteError: return "write_error";
    case CloseReason::kChaos: return "chaos";
    case CloseReason::kWriteBacklog: return "write_backlog";
    case CloseReason::kDrain: return "drain";
  }
  return "?";
}

/// Per-connection state.  Everything here is owned by the connection's
/// shard thread — no mutex.  Other threads only ever see the connection
/// through the shard's locked inbox/completions vectors.
struct Server::Connection {
  int fd = -1;

  // Incremental framing: bytes accumulate in rbuf, rpos marks how far
  // complete frames have been consumed.
  std::vector<std::uint8_t> rbuf;
  std::size_t rpos = 0;

  bool read_ready = false;   ///< Edge-triggered readability latch.
  bool write_ready = false;  ///< EPOLLOUT observed, flush pending.
  bool want_write = false;   ///< EPOLLOUT armed in the epoll set.
  bool in_ready = false;     ///< Already queued on the shard ready list.
  bool draining = false;     ///< Read side closed; flushing replies.
  bool closed = false;

  std::chrono::steady_clock::time_point last_rx;  ///< Last byte received.

  /// One reply slot, delivered strictly in request order.  Control and
  /// error replies are pre-encoded (`ready`); job replies wait for
  /// Service::try_result when their turn comes (completion hooks wake
  /// the shard, so nothing blocks).
  struct Pending {
    std::vector<std::uint8_t> ready;
    service::JobHandle handle;
    MsgType request_type = MsgType::kPing;
    std::uint64_t request_id = 0;
    Nanoseconds start_ns = 0;
    std::uint8_t version = kVersion;  ///< Echoed on the reply frame.
    obs::TraceContext trace;          ///< v3 propagated trace identity.
    Nanoseconds trace_start_ns = 0;   ///< Frame arrival, trace clock.
  };
  std::deque<Pending> pending;
  std::unordered_map<std::uint64_t, service::JobHandle> active;
  int inflight = 0;

  // Write coalescing queue: encoded frames awaiting the socket.
  std::deque<std::vector<std::uint8_t>> wq;
  std::size_t wq_front_off = 0;  ///< Sent bytes of wq.front().
  std::size_t wq_bytes = 0;      ///< Total unsent bytes across wq.

  int close_reason = -1;  ///< First CloseReason observed; -1 = none yet.
};

/// One epoll event loop.  `mu` guards only the cross-thread mailboxes
/// (inbox from the acceptor, completions from service worker threads);
/// everything else is shard-thread-only.
struct Server::Shard {
  int epfd = -1;
  int wake_fd = -1;  ///< eventfd; data.ptr == nullptr marks it in events.
  std::thread thread;
  obs::GaugeHandle conn_gauge;

  std::mutex mu;
  std::vector<std::shared_ptr<Connection>> inbox;
  std::vector<std::shared_ptr<Connection>> completions;

  // Shard-thread-only.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  std::deque<std::shared_ptr<Connection>> ready;

  ~Shard() {
    if (epfd >= 0) ::close(epfd);
    if (wake_fd >= 0) ::close(wake_fd);
  }
};

void Server::note_close(Connection* conn, CloseReason reason) {
  if (conn->close_reason < 0) conn->close_reason = static_cast<int>(reason);
}

void Server::count_close(Connection* conn) {
  // A connection with no recorded cause went down in the shutdown drain.
  if (conn->close_reason < 0) {
    conn->close_reason = static_cast<int>(CloseReason::kDrain);
  }
  std::lock_guard<std::mutex> obs(obs_mu_);
  metrics_.add(closed_);
  metrics_.add(closed_reason_[static_cast<std::size_t>(conn->close_reason)]);
}

service::JobHandle Server::cached_reply(std::uint64_t idempotency_id) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  const auto it = reply_cache_.find(idempotency_id);
  return it == reply_cache_.end() ? nullptr : it->second;
}

void Server::remember_reply(std::uint64_t idempotency_id,
                            const service::JobHandle& handle) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!reply_cache_.emplace(idempotency_id, handle).second) return;
  reply_cache_order_.push_back(idempotency_id);
  while (reply_cache_order_.size() >
         static_cast<std::size_t>(std::max(1, opt_.reply_cache_capacity))) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
}

Server::Server(service::Service* service, ServerOptions opt)
    : service_(service),
      opt_([&] {
        ServerOptions o = opt;
        o.max_connections = std::max(1, o.max_connections);
        o.max_inflight_per_connection =
            std::max(1, o.max_inflight_per_connection);
        o.write_backlog_limit = std::max<std::size_t>(o.write_backlog_limit, 1);
        o.admission_burst = std::max(1, o.admission_burst);
        return o;
      }()),
      epoch_(std::chrono::steady_clock::now()) {
  if (opt_.tracer != nullptr) {
    tracer_ = opt_.tracer;
  } else {
    own_tracer_ = std::make_unique<obs::Tracer>();
    tracer_ = own_tracer_.get();
  }
  if (opt_.chaos != nullptr) opt_.chaos->attach_tracer(tracer_);
  admission_tokens_ = static_cast<double>(opt_.admission_burst);
  admission_refill_ = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> obs(obs_mu_);
  accepted_ = metrics_.counter("net.connections.accepted");
  refused_ = metrics_.counter("net.connections.refused");
  closed_ = metrics_.counter("net.connections.closed");
  for (int r = 0; r < kCloseReasonCount; ++r) {
    closed_reason_[static_cast<std::size_t>(r)] = metrics_.counter(
        std::string("net.conn_closed.") +
        close_reason_name(static_cast<CloseReason>(r)));
  }
  requests_ = metrics_.counter("net.requests");
  replies_ = metrics_.counter("net.replies");
  errors_ = metrics_.counter("net.replies.error");
  malformed_ = metrics_.counter("net.frames.malformed");
  conn_backpressure_ = metrics_.counter("net.backpressure.connection");
  service_backpressure_ = metrics_.counter("net.backpressure.service");
  idempotent_hits_ = metrics_.counter("net.idempotent.hits");
  deadline_submits_ = metrics_.counter("net.deadline.submits");
  admission_shed_ = metrics_.counter("net.admission.shed");
  bytes_in_ = metrics_.counter("net.bytes.in");
  bytes_out_ = metrics_.counter("net.bytes.out");
  const std::vector<double> latency_bounds = {0.1, 0.25, 0.5,  1.0,  2.5,
                                              5.0, 10.0, 25.0, 50.0, 100.0,
                                              250.0, 1000.0};
  const char* const kJobNames[4] = {"jpeg.block", "jpeg.image", "fft",
                                    "dse.sweep"};
  for (std::size_t i = 0; i < latency_ms_.size(); ++i) {
    latency_ms_[i] = metrics_.histogram(
        std::string("net.latency_ms.") + kJobNames[i], latency_bounds);
  }
  spans_.set_track_name(kTrackNet, "net requests");
}

Server::~Server() { stop(); }

Nanoseconds Server::now_ns() const {
  return static_cast<Nanoseconds>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Status Server::start() {
  if (started_) return Status::error("server already started");
  const Status listening =
      listen_tcp(opt_.port, opt_.loopback_only, 4096, &listen_fd_, &port_);
  if (!listening.ok()) {
    listen_fd_ = -1;
    return listening;
  }
  const int nshards =
      opt_.shards > 0
          ? opt_.shards
          : std::max(1u, std::thread::hardware_concurrency());
  shards_.reserve(static_cast<std::size_t>(nshards));
  for (int i = 0; i < nshards; ++i) {
    auto shard = std::make_shared<Shard>();
    shard->epfd = ::epoll_create1(0);
    shard->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (shard->epfd < 0 || shard->wake_fd < 0) {
      shards_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::errorf("shard setup failed: %s", std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // marks the wake eventfd in the event batch
    if (::epoll_ctl(shard->epfd, EPOLL_CTL_ADD, shard->wake_fd, &ev) < 0) {
      shards_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::errorf("epoll_ctl(wake) failed: %s",
                            std::strerror(errno));
    }
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      shard->conn_gauge = metrics_.gauge("net.shard." + std::to_string(i) +
                                         ".connections");
    }
    shards_.push_back(std::move(shard));
  }
  started_ = true;
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, shard] { shard_loop(shard); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return Status();
}

void Server::stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    // Stop accepting; shards drain their connections below.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& shard : shards_) wake_shard(shard.get());
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Shards (and their fds) stay alive until destruction: completion
  // hooks for jobs still running in the service hold weak_ptrs and may
  // yet write the eventfd — harmless while it is a real, open eventfd.
}

std::int64_t Server::counter(std::string_view name) const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return metrics_.counter_value(name);
}

obs::HistogramHandle Server::latency_histogram(MsgType type) const {
  if (!msg_type_is_job(type)) return {};
  return latency_ms_[static_cast<std::size_t>(type) -
                     static_cast<std::size_t>(MsgType::kJpegBlock)];
}

std::vector<obs::MetricSample> Server::metrics_samples() const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  auto samples = metrics_.samples();
  // Percentile gauges from the latency histograms: remote stats readers
  // get p50/p90/p99 without shipping the raw buckets over the wire.
  for (const obs::HistogramSnapshot& h : metrics_.histograms()) {
    if (h.total <= 0) continue;
    samples.push_back({h.name + ".count", true,
                       static_cast<double>(h.total)});
    samples.push_back({h.name + ".p50", false, histogram_quantile(h, 0.50)});
    samples.push_back({h.name + ".p90", false, histogram_quantile(h, 0.90)});
    samples.push_back({h.name + ".p99", false, histogram_quantile(h, 0.99)});
  }
  return samples;
}

std::size_t Server::span_count() const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return spans_.spans().size();
}

bool Server::admission_allow() {
  if (opt_.admission_rate <= 0.0) return true;
  std::lock_guard<std::mutex> lock(admission_mu_);
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      std::chrono::duration<double>(now - admission_refill_).count();
  admission_refill_ = now;
  admission_tokens_ =
      std::min(static_cast<double>(opt_.admission_burst),
               admission_tokens_ + dt * opt_.admission_rate);
  if (admission_tokens_ < 1.0) return false;
  admission_tokens_ -= 1.0;
  return true;
}

void Server::wake_shard(Shard* shard) {
  const std::uint64_t one = 1;
  (void)!::write(shard->wake_fd, &one, sizeof one);
}

void Server::push_ready(Shard* shard,
                        const std::shared_ptr<Connection>& conn) {
  if (conn->closed || conn->in_ready) return;
  conn->in_ready = true;
  shard->ready.push_back(conn);
}

void Server::update_epoll(Shard* shard, Connection* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET |
              (conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.ptr = conn;
  (void)::epoll_ctl(shard->epfd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::close_conn(const std::shared_ptr<Shard>& shard,
                        const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  (void)::epoll_ctl(shard->epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->pending.clear();
  conn->wq.clear();
  conn->wq_bytes = 0;
  conn->wq_front_off = 0;
  conn->active.clear();
  count_close(conn.get());
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  shard->conns.erase(conn->fd);
  std::lock_guard<std::mutex> obs(obs_mu_);
  metrics_.set(shard->conn_gauge,
               static_cast<double>(shard->conns.size()));
}

void Server::begin_drain(const std::shared_ptr<Shard>& shard,
                         const std::shared_ptr<Connection>& conn) {
  if (conn->closed || conn->draining) return;
  conn->draining = true;
  ::shutdown(conn->fd, SHUT_RD);
  conn->rbuf.clear();
  conn->rpos = 0;
  conn->read_ready = false;
  if (conn->pending.empty() && conn->wq.empty()) close_conn(shard, conn);
}

bool Server::flush_writes(const std::shared_ptr<Shard>& shard,
                          const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return false;
  while (!conn->wq.empty()) {
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    std::size_t off = conn->wq_front_off;
    for (auto it = conn->wq.begin(); it != conn->wq.end() && niov < kMaxIov;
         ++it) {
      iov[niov].iov_base = it->data() + off;
      iov[niov].iov_len = it->size() - off;
      off = 0;
      ++niov;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    // sendmsg, not writev: the coalesced write still needs MSG_NOSIGNAL.
    const ssize_t sent = ::sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          update_epoll(shard.get(), conn.get());
        }
        return true;  // resume on EPOLLOUT
      }
      note_close(conn.get(), CloseReason::kWriteError);
      close_conn(shard, conn);
      return false;
    }
    std::size_t left = static_cast<std::size_t>(sent);
    conn->wq_bytes -= left;
    while (left > 0) {
      auto& front = conn->wq.front();
      const std::size_t avail = front.size() - conn->wq_front_off;
      if (left >= avail) {
        left -= avail;
        conn->wq.pop_front();
        conn->wq_front_off = 0;
      } else {
        conn->wq_front_off += left;
        left = 0;
      }
    }
  }
  if (conn->want_write) {
    conn->want_write = false;
    update_epoll(shard.get(), conn.get());
  }
  return true;
}

bool Server::send_reply(const std::shared_ptr<Shard>& shard,
                        const std::shared_ptr<Connection>& conn,
                        std::vector<std::uint8_t> bytes) {
  if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kServerFrame)) {
    if (d.action == chaos::Action::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
    } else {
      // Corrupt/truncate the outbound reply; the client must detect it
      // (checksum-free protocol: bad magic/length/payload) and resync.
      chaos::mutate_frame(d, &bytes);
    }
  }
  if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kServerWrite)) {
    switch (d.action) {
      case chaos::Action::kReset:
        note_close(conn.get(), CloseReason::kChaos);
        close_conn(shard, conn);
        return false;
      case chaos::Action::kPartialWrite: {
        // Deliver earlier replies plus a prefix of this one, then fail:
        // the client sees a half-frame followed by EOF.
        if (!flush_writes(shard, conn)) return false;
        const auto keep = static_cast<std::size_t>(std::clamp<std::int64_t>(
            d.a, 0, static_cast<std::int64_t>(bytes.size())));
        (void)write_all(conn->fd,
                        std::vector<std::uint8_t>(bytes.begin(),
                                                  bytes.begin() + keep));
        note_close(conn.get(), CloseReason::kChaos);
        close_conn(shard, conn);
        return false;
      }
      case chaos::Action::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
        break;
      default:
        break;
    }
  }
  if (conn->wq_bytes > opt_.write_backlog_limit) {
    // Earlier replies are still undrained past the limit: the reader
    // stopped reading.  Shed the whole connection instead of queueing
    // without bound (and stalling shard memory on one peer).  Checked
    // before the append so one oversized reply never trips it alone.
    note_close(conn.get(), CloseReason::kWriteBacklog);
    close_conn(shard, conn);
    return false;
  }
  conn->wq_bytes += bytes.size();
  {
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(replies_);
    metrics_.add(bytes_out_, static_cast<std::int64_t>(bytes.size()));
  }
  conn->wq.push_back(std::move(bytes));
  return flush_writes(shard, conn);
}

void Server::pump_replies(const std::shared_ptr<Shard>& shard,
                          const std::shared_ptr<Connection>& conn) {
  while (!conn->closed && !conn->pending.empty()) {
    Connection::Pending& front = conn->pending.front();
    std::vector<std::uint8_t> bytes;
    if (!front.ready.empty()) {
      bytes = std::move(front.ready);
      conn->pending.pop_front();
    } else {
      service::JobResult result;
      if (!service_->try_result(front.handle, &result)) break;  // not done
      Request req;
      req.type = front.request_type;
      req.request_id = front.request_id;
      const Status enc = encode_job_result(req, result, &bytes);
      if (!enc.ok()) bytes = encode_error(front.request_id, enc.message());
      stamp_frame_version(&bytes, front.version);
      const Nanoseconds dur = now_ns() - front.start_ns;
      {
        std::lock_guard<std::mutex> obs(obs_mu_);
        if (!result.status.ok()) metrics_.add(errors_);
        metrics_.observe(latency_histogram(front.request_type), dur / 1e6);
        spans_.complete(
            "req " + std::to_string(front.request_id),
            "net.request", kTrackNet, front.start_ns, dur,
            {{"type", msg_type_name(front.request_type), false}});
      }
      if (front.trace.valid()) {
        const Nanoseconds tdur =
            obs::trace_clock_ns() - front.trace_start_ns;
        tracer_->span(obs::kTraceTrackConnection,
                      "conn req " + std::to_string(front.request_id),
                      front.trace, front.trace_start_ns, tdur,
                      {{"type", msg_type_name(front.request_type), false}});
        tracer_->note_complete(front.trace, tdur);
      }
      --conn->inflight;
      conn->active.erase(front.request_id);
      conn->pending.pop_front();
    }
    if (!send_reply(shard, conn, std::move(bytes))) return;
  }
  if (conn->draining && !conn->closed && conn->pending.empty() &&
      conn->wq.empty()) {
    close_conn(shard, conn);
  }
}

bool Server::handle_frame(const std::shared_ptr<Shard>& shard,
                          const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
  if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kServerRead)) {
    if (d.action == chaos::Action::kDelay) {
      // Read stall: the whole shard pauses, pipelined peers block.
      std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
    } else if (d.action == chaos::Action::kReset) {
      note_close(conn.get(), CloseReason::kChaos);
      close_conn(shard, conn);
      return false;
    }
  }
  const Nanoseconds start = now_ns();
  const Nanoseconds trace_start = obs::trace_clock_ns();
  const std::uint8_t version = frame.header.version;
  {
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(requests_);
    metrics_.add(bytes_in_, static_cast<std::int64_t>(
                                kHeaderSize + frame.payload.size()));
  }
  // Replies are stamped with the dialect the client spoke (a v2 client
  // rejects v3 frames).
  const auto queue_ready = [&](std::vector<std::uint8_t> bytes) {
    stamp_frame_version(&bytes, version);
    Connection::Pending p;
    p.ready = std::move(bytes);
    conn->pending.push_back(std::move(p));
  };
  const auto queue_error = [&](std::uint64_t request_id,
                               std::string_view message,
                               StatusCode code = StatusCode::kError) {
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(errors_);
    }
    queue_ready(encode_error(request_id, message, code));
  };
  Request req;
  const Status decoded = decode_request(frame, &req);
  if (!decoded.ok()) {
    // Valid frame, bad payload: recoverable — reply and keep reading.
    queue_error(req.request_id, decoded.message());
    return true;
  }
  switch (req.type) {
    case MsgType::kPing:
      queue_ready(encode_pong(req.request_id));
      break;
    case MsgType::kStats: {
      // The service's counters plus our own net.* set, one flat list.
      auto samples = service_->metrics_samples();
      const auto mine = metrics_samples();
      samples.insert(samples.end(), mine.begin(), mine.end());
      queue_ready(encode_stats_result(req.request_id, samples));
      break;
    }
    case MsgType::kHealth: {
      HealthInfo info;
      info.accepting = running() && service_->accepting();
      info.queue_depth = static_cast<std::uint32_t>(service_->queue_depth());
      info.queue_capacity =
          static_cast<std::uint32_t>(service_->queue_capacity());
      info.workers = static_cast<std::uint32_t>(service_->workers());
      info.connections = static_cast<std::uint32_t>(
          std::max(0, open_conns_.load(std::memory_order_relaxed)));
      queue_ready(encode_health_result(req.request_id, info));
      break;
    }
    case MsgType::kTraceDump: {
      TraceDumpInfo info;
      info.anomalies =
          static_cast<std::uint32_t>(tracer_->anomalies().size());
      info.spans = static_cast<std::uint32_t>(tracer_->span_count());
      info.events_recorded = tracer_->events_recorded();
      info.events_dropped = tracer_->events_dropped();
      const std::string json = tracer_->to_chrome_json("cgra.server");
      info.trace_json.assign(json.begin(), json.end());
      queue_ready(encode_trace_dump_result(req.request_id, info));
      break;
    }
    case MsgType::kCancel: {
      service::JobHandle target;
      const auto it = conn->active.find(req.cancel_target);
      if (it != conn->active.end()) target = it->second;
      const bool cancelled = target != nullptr && service_->cancel(target);
      queue_ready(encode_cancel_result(req.request_id, req.cancel_target,
                                       cancelled));
      break;
    }
    default: {  // job request
      if (conn->inflight >= opt_.max_inflight_per_connection) {
        {
          std::lock_guard<std::mutex> obs(obs_mu_);
          metrics_.add(conn_backpressure_);
        }
        queue_error(req.request_id,
                    "connection in-flight limit reached; drain replies "
                    "before sending more jobs");
        break;
      }
      // Idempotent retry?  Attach to the ORIGINAL job's handle — the
      // service keeps results for the handle's lifetime, so the retry
      // gets the same bytes without executing anything twice.
      service::JobHandle handle;
      if (req.options.idempotency_id != 0) {
        handle = cached_reply(req.options.idempotency_id);
        if (handle != nullptr) {
          std::lock_guard<std::mutex> obs(obs_mu_);
          metrics_.add(idempotent_hits_);
        }
      }
      // Admission control: retries of remembered work pass (they cost
      // nothing); fresh submissions spend a token or get shed visibly.
      if (handle == nullptr && !admission_allow()) {
        {
          std::lock_guard<std::mutex> obs(obs_mu_);
          metrics_.add(admission_shed_);
        }
        if (req.options.trace.valid()) {
          tracer_->note_anomaly(req.options.trace, obs::AnomalyReason::kError,
                                "admission control shed the request");
        }
        queue_error(req.request_id,
                    "admission control: request shed, retry later",
                    StatusCode::kUnavailable);
        break;
      }
      if (handle == nullptr) {
        service::SubmitOptions sopt;
        sopt.trace = req.options.trace;
        if (req.options.deadline_ms > 0) {
          sopt.deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(req.options.deadline_ms);
          if (req.options.trace.valid()) {
            tracer_->event(req.options.trace,
                           obs::FlightEventKind::kDeadlineCheck, 0,
                           req.options.deadline_ms);
          }
          std::lock_guard<std::mutex> obs(obs_mu_);
          metrics_.add(deadline_submits_);
        }
        auto submit = service_->submit(std::move(req.job), sopt);
        if (!submit.accepted()) {
          {
            std::lock_guard<std::mutex> obs(obs_mu_);
            metrics_.add(service_backpressure_);
          }
          queue_error(req.request_id, submit.status.message(),
                      submit.status.code());
          break;
        }
        handle = submit.handle;
        if (req.options.idempotency_id != 0) {
          remember_reply(req.options.idempotency_id, handle);
        }
      }
      Connection::Pending p;
      p.handle = handle;
      p.request_type = req.type;
      p.request_id = req.request_id;
      p.start_ns = start;
      p.version = version;
      p.trace = req.options.trace;
      p.trace_start_ns = trace_start;
      conn->pending.push_back(std::move(p));
      ++conn->inflight;
      conn->active[req.request_id] = handle;
      // Event-driven reply: when the job finishes, hand the connection
      // to its shard's completions mailbox and poke the eventfd.  Weak
      // refs so a hook firing after the connection (or server) is gone
      // degrades to a no-op.
      std::weak_ptr<Shard> ws = shard;
      std::weak_ptr<Connection> wc = conn;
      service_->on_complete(handle, [ws, wc] {
        const auto s = ws.lock();
        const auto c = wc.lock();
        if (s == nullptr || c == nullptr) return;
        {
          std::lock_guard<std::mutex> lock(s->mu);
          s->completions.push_back(c);
        }
        wake_shard(s.get());
      });
      break;
    }
  }
  return !conn->closed;
}

bool Server::pump_reads(const std::shared_ptr<Shard>& shard,
                        const std::shared_ptr<Connection>& conn) {
  if (conn->closed || conn->draining) return false;
  int frames = 0;
  for (;;) {
    // Extract and handle complete frames under the round budget.
    while (frames < kFrameBudget) {
      const std::size_t avail = conn->rbuf.size() - conn->rpos;
      if (avail < kHeaderSize) break;
      FrameHeader hdr;
      const Status parsed = decode_header(
          std::span<const std::uint8_t>(conn->rbuf.data() + conn->rpos,
                                        kHeaderSize),
          &hdr);
      if (!parsed.ok()) {
        // Framing desync: no reply possible, close (flushing what is
        // already queued).
        note_close(conn.get(), CloseReason::kMalformed);
        {
          std::lock_guard<std::mutex> obs(obs_mu_);
          metrics_.add(malformed_);
        }
        begin_drain(shard, conn);
        pump_replies(shard, conn);
        return false;
      }
      if (avail < kHeaderSize + hdr.payload_len) break;
      Frame frame;
      frame.header = hdr;
      const auto* body = conn->rbuf.data() + conn->rpos + kHeaderSize;
      frame.payload.assign(body, body + hdr.payload_len);
      conn->rpos += kHeaderSize + hdr.payload_len;
      ++frames;
      if (!handle_frame(shard, conn, frame)) return false;
      if (conn->closed || conn->draining) return false;
    }
    // Compact the consumed prefix.
    if (conn->rpos == conn->rbuf.size()) {
      conn->rbuf.clear();
      conn->rpos = 0;
    } else if (conn->rpos >= kReadChunk) {
      conn->rbuf.erase(conn->rbuf.begin(),
                       conn->rbuf.begin() +
                           static_cast<std::ptrdiff_t>(conn->rpos));
      conn->rpos = 0;
    }
    if (frames >= kFrameBudget) {
      // Budget spent: deliver what we owe and yield to shard peers.
      pump_replies(shard, conn);
      return !conn->closed;
    }
    if (!conn->read_ready) break;
    const std::size_t old_size = conn->rbuf.size();
    conn->rbuf.resize(old_size + kReadChunk);
    const ssize_t n =
        ::recv(conn->fd, conn->rbuf.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      conn->rbuf.resize(old_size + static_cast<std::size_t>(n));
      conn->last_rx = std::chrono::steady_clock::now();
      continue;
    }
    conn->rbuf.resize(old_size);
    if (n == 0) {
      // EOF: clean at a frame boundary, malformed mid-frame.
      if (conn->rbuf.size() - conn->rpos > 0) {
        note_close(conn.get(), CloseReason::kMalformed);
        std::lock_guard<std::mutex> obs(obs_mu_);
        metrics_.add(malformed_);
      } else {
        note_close(conn.get(), CloseReason::kPeerEof);
      }
      begin_drain(shard, conn);
      pump_replies(shard, conn);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      conn->read_ready = false;
      break;
    }
    note_close(conn.get(), CloseReason::kMalformed);
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(malformed_);
    }
    begin_drain(shard, conn);
    pump_replies(shard, conn);
    return false;
  }
  pump_replies(shard, conn);
  return false;  // socket drained; epoll will reschedule
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed or broken
    }
    if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kAccept);
        d && d.action == chaos::Action::kFail) {
      // Injected accept failure: to the client this is indistinguishable
      // from a crash between accept and the first read.
      ::close(fd);
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(refused_);
      continue;
    }
    if (open_conns_.load(std::memory_order_relaxed) >= opt_.max_connections ||
        !set_nonblocking(fd).ok()) {
      ::close(fd);
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(refused_);
      continue;
    }
    (void)set_nodelay(fd);  // latency optimisation; failure is non-fatal
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_rx = std::chrono::steady_clock::now();
    // Count before handing off: a health frame served right away on the
    // shard must already see this connection.
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(accepted_);
    }
    Shard* shard =
        shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) %
                shards_.size()]
            .get();
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->inbox.push_back(std::move(conn));
    }
    wake_shard(shard);
  }
}

void Server::shard_loop(const std::shared_ptr<Shard>& shard) {
  std::vector<std::shared_ptr<Connection>> incoming;
  std::vector<std::shared_ptr<Connection>> completed;
  bool drain_started = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  auto last_sweep = std::chrono::steady_clock::now();
  epoll_event events[128];
  for (;;) {
    // 1. Cross-thread mailboxes: new connections, finished jobs.
    incoming.clear();
    completed.clear();
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      incoming.swap(shard->inbox);
      completed.swap(shard->completions);
    }
    for (auto& conn : incoming) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(shard->epfd, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
        ::close(conn->fd);
        conn->closed = true;
        count_close(conn.get());
        open_conns_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      shard->conns.emplace(conn->fd, conn);
      {
        std::lock_guard<std::mutex> obs(obs_mu_);
        metrics_.set(shard->conn_gauge,
                     static_cast<double>(shard->conns.size()));
      }
      // Bytes may have arrived before registration; probe immediately.
      conn->read_ready = true;
      push_ready(shard.get(), conn);
      if (drain_started) begin_drain(shard, conn);
    }
    for (auto& conn : completed) {
      if (!conn->closed) pump_replies(shard, conn);
    }
    // 2. Shutdown drain: half-close everything once, then wait for the
    // pending replies to flush (bounded by kDrainTimeout).
    if (stopping_.load(std::memory_order_relaxed) && !drain_started) {
      drain_started = true;
      drain_deadline = std::chrono::steady_clock::now() + kDrainTimeout;
      std::vector<std::shared_ptr<Connection>> all;
      all.reserve(shard->conns.size());
      for (const auto& [fd, conn] : shard->conns) all.push_back(conn);
      for (auto& conn : all) {
        begin_drain(shard, conn);
        if (!conn->closed) pump_replies(shard, conn);
      }
    }
    if (drain_started) {
      if (shard->conns.empty()) {
        std::lock_guard<std::mutex> lock(shard->mu);
        if (shard->inbox.empty()) return;
      } else if (std::chrono::steady_clock::now() >= drain_deadline) {
        std::vector<std::shared_ptr<Connection>> rest;
        rest.reserve(shard->conns.size());
        for (const auto& [fd, conn] : shard->conns) rest.push_back(conn);
        for (auto& conn : rest) close_conn(shard, conn);
        continue;
      }
    }
    // 3. Poll: zero timeout while connections still owe budgeted work.
    const int timeout = shard->ready.empty() ? kSweepSliceMs : 0;
    const int n = ::epoll_wait(shard->epfd, events,
                               static_cast<int>(std::size(events)), timeout);
    if (n < 0 && errno != EINTR) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // 4. Dispatch: flags only — nothing is closed or freed here, so the
    // raw pointers in this batch stay valid for the whole loop.
    for (int i = 0; i < std::max(0, n); ++i) {
      if (events[i].data.ptr == nullptr) {
        std::uint64_t junk;
        while (::read(shard->wake_fd, &junk, sizeof junk) > 0) {
        }
        continue;
      }
      auto* cp = static_cast<Connection*>(events[i].data.ptr);
      const auto it = shard->conns.find(cp->fd);
      if (it == shard->conns.end()) continue;
      if ((events[i].events &
           (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
        cp->read_ready = true;
      }
      if ((events[i].events & EPOLLOUT) != 0) cp->write_ready = true;
      push_ready(shard.get(), it->second);
    }
    // 5. Process one bounded round over the ready list.
    std::size_t rounds = shard->ready.size();
    while (rounds-- > 0 && !shard->ready.empty()) {
      auto conn = shard->ready.front();
      shard->ready.pop_front();
      conn->in_ready = false;
      if (conn->closed) continue;
      if (conn->write_ready) {
        conn->write_ready = false;
        if (!flush_writes(shard, conn)) continue;
        pump_replies(shard, conn);  // may close a drained connection
        if (conn->closed) continue;
      }
      if (pump_reads(shard, conn)) push_ready(shard.get(), conn);
    }
    // 6. Idle / stalled-frame sweep.
    const auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= std::chrono::milliseconds(kSweepSliceMs)) {
      last_sweep = now;
      std::vector<std::pair<std::shared_ptr<Connection>, CloseReason>>
          victims;
      for (const auto& [fd, conn] : shard->conns) {
        if (conn->closed || conn->draining) continue;
        const bool mid_frame = conn->rbuf.size() - conn->rpos > 0;
        if (mid_frame) {
          if (now - conn->last_rx >= kBodyTimeout) {
            victims.emplace_back(conn, CloseReason::kMalformed);
          }
        } else if (opt_.idle_timeout_ms > 0 &&
                   now - conn->last_rx >=
                       std::chrono::milliseconds(opt_.idle_timeout_ms)) {
          victims.emplace_back(conn, CloseReason::kIdleTimeout);
        }
      }
      for (auto& [conn, reason] : victims) {
        note_close(conn.get(), reason);
        if (reason == CloseReason::kMalformed) {
          std::lock_guard<std::mutex> obs(obs_mu_);
          metrics_.add(malformed_);
        }
        begin_drain(shard, conn);
        if (!conn->closed) pump_replies(shard, conn);
      }
    }
  }
}

}  // namespace cgra::net

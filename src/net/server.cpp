#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/socket_util.hpp"

namespace cgra::net {

namespace {

/// Span track for network requests (service uses 3/4, tiles start at
/// obs::kTrackTileBase).
constexpr int kTrackNet = 5;

}  // namespace

const char* close_reason_name(CloseReason reason) noexcept {
  switch (reason) {
    case CloseReason::kPeerEof: return "peer_eof";
    case CloseReason::kIdleTimeout: return "idle_timeout";
    case CloseReason::kMalformed: return "malformed";
    case CloseReason::kWriteError: return "write_error";
    case CloseReason::kChaos: return "chaos";
    case CloseReason::kDrain: return "drain";
  }
  return "?";
}

/// Per-connection state.  The reader thread is the only producer of
/// `replies`, the writer thread the only consumer; `mu` guards the queue,
/// the in-flight count and the id -> handle map used by cancel.
struct Server::Connection {
  int fd = -1;
  std::thread reader;
  std::thread writer;

  /// One reply slot, delivered strictly in request order.  Control and
  /// error replies are pre-encoded (`ready`); job replies block the
  /// writer on Service::wait(handle) when their turn comes.
  struct Pending {
    std::vector<std::uint8_t> ready;
    service::JobHandle handle;
    MsgType request_type = MsgType::kPing;
    std::uint64_t request_id = 0;
    Nanoseconds start_ns = 0;
    std::uint8_t version = kVersion;  ///< Echoed on the reply frame.
    obs::TraceContext trace;          ///< v3 propagated trace identity.
    Nanoseconds trace_start_ns = 0;   ///< Frame arrival, trace clock.
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> replies;
  std::unordered_map<std::uint64_t, service::JobHandle> active;
  int inflight = 0;
  bool reader_exited = false;
  bool writer_exited = false;
  bool broken = false;  ///< Writer hit a socket error; stop queueing.
  int close_reason = -1;  ///< First CloseReason observed; -1 = none yet.
};

void Server::note_close(Connection* conn, CloseReason reason) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->close_reason < 0) conn->close_reason = static_cast<int>(reason);
}

void Server::count_close(Connection* conn) {
  int reason;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    // A connection with no recorded cause went down in the shutdown
    // drain (stop() half-closes it and the reader reports kStopped).
    if (conn->close_reason < 0) {
      conn->close_reason = static_cast<int>(CloseReason::kDrain);
    }
    reason = conn->close_reason;
  }
  std::lock_guard<std::mutex> obs(obs_mu_);
  metrics_.add(closed_);
  metrics_.add(closed_reason_[static_cast<std::size_t>(reason)]);
}

service::JobHandle Server::cached_reply(std::uint64_t idempotency_id) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  const auto it = reply_cache_.find(idempotency_id);
  return it == reply_cache_.end() ? nullptr : it->second;
}

void Server::remember_reply(std::uint64_t idempotency_id,
                            const service::JobHandle& handle) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!reply_cache_.emplace(idempotency_id, handle).second) return;
  reply_cache_order_.push_back(idempotency_id);
  while (reply_cache_order_.size() >
         static_cast<std::size_t>(std::max(1, opt_.reply_cache_capacity))) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
}

Server::Server(service::Service* service, ServerOptions opt)
    : service_(service),
      opt_([&] {
        ServerOptions o = opt;
        o.max_connections = std::max(1, o.max_connections);
        o.max_inflight_per_connection =
            std::max(1, o.max_inflight_per_connection);
        return o;
      }()),
      epoch_(std::chrono::steady_clock::now()) {
  if (opt_.tracer != nullptr) {
    tracer_ = opt_.tracer;
  } else {
    own_tracer_ = std::make_unique<obs::Tracer>();
    tracer_ = own_tracer_.get();
  }
  if (opt_.chaos != nullptr) opt_.chaos->attach_tracer(tracer_);
  std::lock_guard<std::mutex> obs(obs_mu_);
  accepted_ = metrics_.counter("net.connections.accepted");
  refused_ = metrics_.counter("net.connections.refused");
  closed_ = metrics_.counter("net.connections.closed");
  for (int r = 0; r < kCloseReasonCount; ++r) {
    closed_reason_[static_cast<std::size_t>(r)] = metrics_.counter(
        std::string("net.conn_closed.") +
        close_reason_name(static_cast<CloseReason>(r)));
  }
  requests_ = metrics_.counter("net.requests");
  replies_ = metrics_.counter("net.replies");
  errors_ = metrics_.counter("net.replies.error");
  malformed_ = metrics_.counter("net.frames.malformed");
  conn_backpressure_ = metrics_.counter("net.backpressure.connection");
  service_backpressure_ = metrics_.counter("net.backpressure.service");
  idempotent_hits_ = metrics_.counter("net.idempotent.hits");
  deadline_submits_ = metrics_.counter("net.deadline.submits");
  bytes_in_ = metrics_.counter("net.bytes.in");
  bytes_out_ = metrics_.counter("net.bytes.out");
  const std::vector<double> latency_bounds = {0.1, 0.25, 0.5,  1.0,  2.5,
                                              5.0, 10.0, 25.0, 50.0, 100.0,
                                              250.0, 1000.0};
  const char* const kJobNames[4] = {"jpeg.block", "jpeg.image", "fft",
                                    "dse.sweep"};
  for (std::size_t i = 0; i < latency_ms_.size(); ++i) {
    latency_ms_[i] = metrics_.histogram(
        std::string("net.latency_ms.") + kJobNames[i], latency_bounds);
  }
  spans_.set_track_name(kTrackNet, "net requests");
}

Server::~Server() { stop(); }

Nanoseconds Server::now_ns() const {
  return static_cast<Nanoseconds>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Status Server::start() {
  if (started_) return Status::error("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::errorf("socket failed: %s", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      opt_.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const Status s = Status::errorf("bind to port %u failed: %s", opt_.port,
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status s = Status::errorf("listen failed: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  return Status();
}

void Server::stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    // Stop accepting; in-flight connections drain below.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    // Half-close: no more requests, pending replies still flush.
    ::shutdown(conn->fd, SHUT_RD);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
    count_close(conn.get());
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::int64_t Server::counter(std::string_view name) const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return metrics_.counter_value(name);
}

obs::HistogramHandle Server::latency_histogram(MsgType type) const {
  if (!msg_type_is_job(type)) return {};
  return latency_ms_[static_cast<std::size_t>(type) -
                     static_cast<std::size_t>(MsgType::kJpegBlock)];
}

std::vector<obs::MetricSample> Server::metrics_samples() const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  auto samples = metrics_.samples();
  // Percentile gauges from the latency histograms: remote stats readers
  // get p50/p90/p99 without shipping the raw buckets over the wire.
  for (const obs::HistogramSnapshot& h : metrics_.histograms()) {
    if (h.total <= 0) continue;
    samples.push_back({h.name + ".count", true,
                       static_cast<double>(h.total)});
    samples.push_back({h.name + ".p50", false, histogram_quantile(h, 0.50)});
    samples.push_back({h.name + ".p90", false, histogram_quantile(h, 0.90)});
    samples.push_back({h.name + ".p99", false, histogram_quantile(h, 0.99)});
  }
  return samples;
}

std::size_t Server::span_count() const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return spans_.spans().size();
}

void Server::reap_finished_connections() {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      std::unique_lock<std::mutex> cl((*it)->mu);
      const bool done = (*it)->reader_exited && (*it)->writer_exited;
      cl.unlock();
      if (done) {
        finished.push_back(*it);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
    count_close(conn.get());
  }
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed or broken
    }
    if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kAccept);
        d && d.action == chaos::Action::kFail) {
      // Injected accept failure: to the client this is indistinguishable
      // from a crash between accept and the first read.
      ::close(fd);
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(refused_);
      continue;
    }
    reap_finished_connections();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.size() >= static_cast<std::size_t>(opt_.max_connections)) {
        ::close(fd);
        std::lock_guard<std::mutex> obs(obs_mu_);
        metrics_.add(refused_);
        continue;
      }
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(accepted_);
    }
    // Register before spawning: a health request served by the reader
    // must already see its own connection in conns_.  Reap can observe
    // the not-yet-started threads but only joins once both exit flags
    // are set, and stop() joins the acceptor before draining conns_.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  const auto queue_reply = [&](Connection::Pending pending) {
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->broken) {
        conn->replies.push_back(std::move(pending));
        notify = true;
      }
    }
    if (notify) conn->cv.notify_one();
  };
  // Version of the frame currently being answered: replies are stamped
  // with the dialect the client spoke (a v2 client rejects v3 frames).
  std::uint8_t cur_version = kVersion;
  const auto queue_ready = [&](std::vector<std::uint8_t> bytes) {
    stamp_frame_version(&bytes, cur_version);
    Connection::Pending p;
    p.ready = std::move(bytes);
    queue_reply(std::move(p));
  };
  const auto queue_error = [&](std::uint64_t request_id,
                               std::string_view message,
                               StatusCode code = StatusCode::kError) {
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(errors_);
    }
    queue_ready(encode_error(request_id, message, code));
  };

  for (;;) {
    if (const auto d =
            chaos::decide(opt_.chaos, chaos::Hook::kServerRead)) {
      if (d.action == chaos::Action::kDelay) {
        // Read stall: the connection sits idle, pipelined peers block.
        std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
      } else if (d.action == chaos::Action::kReset) {
        note_close(conn.get(), CloseReason::kChaos);
        ::shutdown(conn->fd, SHUT_RDWR);
        break;
      }
    }
    Frame frame;
    Status err;
    const ReadOutcome outcome = read_frame(
        conn->fd, opt_.idle_timeout_ms, &stopping_, &frame, &err);
    if (outcome != ReadOutcome::kFrame) {
      switch (outcome) {
        case ReadOutcome::kClosed:
          note_close(conn.get(), CloseReason::kPeerEof);
          break;
        case ReadOutcome::kTimeout:
          note_close(conn.get(), CloseReason::kIdleTimeout);
          break;
        case ReadOutcome::kStopped:
          note_close(conn.get(), CloseReason::kDrain);
          break;
        default:
          // Framing errors desync the stream: report once, then close.
          note_close(conn.get(), CloseReason::kMalformed);
          std::lock_guard<std::mutex> obs(obs_mu_);
          metrics_.add(malformed_);
          break;
      }
      break;
    }
    const Nanoseconds start = now_ns();
    const Nanoseconds trace_start = obs::trace_clock_ns();
    cur_version = frame.header.version;
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(requests_);
      metrics_.add(bytes_in_, static_cast<std::int64_t>(
                                  kHeaderSize + frame.payload.size()));
    }
    Request req;
    const Status decoded = decode_request(frame, &req);
    if (!decoded.ok()) {
      // Valid frame, bad payload: recoverable — reply and keep reading.
      queue_error(req.request_id, decoded.message());
      continue;
    }
    switch (req.type) {
      case MsgType::kPing:
        queue_ready(encode_pong(req.request_id));
        break;
      case MsgType::kStats: {
        // The service's counters plus our own net.* set, one flat list.
        auto samples = service_->metrics_samples();
        const auto mine = metrics_samples();
        samples.insert(samples.end(), mine.begin(), mine.end());
        queue_ready(encode_stats_result(req.request_id, samples));
        break;
      }
      case MsgType::kHealth: {
        HealthInfo info;
        info.accepting = running() && service_->accepting();
        info.queue_depth = static_cast<std::uint32_t>(service_->queue_depth());
        info.queue_capacity =
            static_cast<std::uint32_t>(service_->queue_capacity());
        info.workers = static_cast<std::uint32_t>(service_->workers());
        {
          std::lock_guard<std::mutex> lock(conns_mu_);
          info.connections = static_cast<std::uint32_t>(conns_.size());
        }
        queue_ready(encode_health_result(req.request_id, info));
        break;
      }
      case MsgType::kTraceDump: {
        TraceDumpInfo info;
        info.anomalies =
            static_cast<std::uint32_t>(tracer_->anomalies().size());
        info.spans = static_cast<std::uint32_t>(tracer_->span_count());
        info.events_recorded = tracer_->events_recorded();
        info.events_dropped = tracer_->events_dropped();
        const std::string json = tracer_->to_chrome_json("cgra.server");
        info.trace_json.assign(json.begin(), json.end());
        queue_ready(encode_trace_dump_result(req.request_id, info));
        break;
      }
      case MsgType::kCancel: {
        service::JobHandle target;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          const auto it = conn->active.find(req.cancel_target);
          if (it != conn->active.end()) target = it->second;
        }
        const bool cancelled =
            target != nullptr && service_->cancel(target);
        queue_ready(encode_cancel_result(req.request_id, req.cancel_target,
                                         cancelled));
        break;
      }
      default: {  // job request
        bool over_cap = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          over_cap = conn->inflight >= opt_.max_inflight_per_connection;
        }
        if (over_cap) {
          {
            std::lock_guard<std::mutex> obs(obs_mu_);
            metrics_.add(conn_backpressure_);
          }
          queue_error(req.request_id,
                      "connection in-flight limit reached; drain replies "
                      "before sending more jobs");
          break;
        }
        // Idempotent retry?  Attach to the ORIGINAL job's handle — the
        // service keeps results for the handle's lifetime, so the retry
        // gets the same bytes without executing anything twice.
        service::JobHandle handle;
        if (req.options.idempotency_id != 0) {
          handle = cached_reply(req.options.idempotency_id);
          if (handle != nullptr) {
            std::lock_guard<std::mutex> obs(obs_mu_);
            metrics_.add(idempotent_hits_);
          }
        }
        if (handle == nullptr) {
          service::SubmitOptions sopt;
          sopt.trace = req.options.trace;
          if (req.options.deadline_ms > 0) {
            sopt.deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(req.options.deadline_ms);
            if (req.options.trace.valid()) {
              tracer_->event(req.options.trace,
                             obs::FlightEventKind::kDeadlineCheck, 0,
                             req.options.deadline_ms);
            }
            std::lock_guard<std::mutex> obs(obs_mu_);
            metrics_.add(deadline_submits_);
          }
          auto submit = service_->submit(std::move(req.job), sopt);
          if (!submit.accepted()) {
            {
              std::lock_guard<std::mutex> obs(obs_mu_);
              metrics_.add(service_backpressure_);
            }
            queue_error(req.request_id, submit.status.message(),
                        submit.status.code());
            break;
          }
          handle = submit.handle;
          if (req.options.idempotency_id != 0) {
            remember_reply(req.options.idempotency_id, handle);
          }
        }
        Connection::Pending p;
        p.handle = handle;
        p.request_type = req.type;
        p.request_id = req.request_id;
        p.start_ns = start;
        p.version = frame.header.version;
        p.trace = req.options.trace;
        p.trace_start_ns = trace_start;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          ++conn->inflight;
          conn->active[req.request_id] = handle;
        }
        queue_reply(std::move(p));
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->reader_exited = true;
  }
  conn->cv.notify_all();
}

void Server::writer_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Connection::Pending pending;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [&] {
        return !conn->replies.empty() || conn->reader_exited;
      });
      if (conn->replies.empty()) break;  // reader gone, queue drained
      pending = std::move(conn->replies.front());
      conn->replies.pop_front();
    }
    std::vector<std::uint8_t> bytes;
    if (!pending.ready.empty()) {
      bytes = std::move(pending.ready);
    } else {
      // Job reply: block until the service finishes it, then encode.
      const auto result = service_->wait(pending.handle);
      Request req;
      req.type = pending.request_type;
      req.request_id = pending.request_id;
      const Status enc = encode_job_result(req, result, &bytes);
      if (!enc.ok()) bytes = encode_error(pending.request_id, enc.message());
      stamp_frame_version(&bytes, pending.version);
      const Nanoseconds dur = now_ns() - pending.start_ns;
      {
        std::lock_guard<std::mutex> obs(obs_mu_);
        if (!result.status.ok()) metrics_.add(errors_);
        metrics_.observe(latency_histogram(pending.request_type), dur / 1e6);
        spans_.complete(
            "req " + std::to_string(pending.request_id),
            "net.request", kTrackNet, pending.start_ns, dur,
            {{"type", msg_type_name(pending.request_type), false}});
      }
      if (pending.trace.valid()) {
        const Nanoseconds tdur =
            obs::trace_clock_ns() - pending.trace_start_ns;
        tracer_->span(obs::kTraceTrackConnection,
                      "conn req " + std::to_string(pending.request_id),
                      pending.trace, pending.trace_start_ns, tdur,
                      {{"type", msg_type_name(pending.request_type), false}});
        tracer_->note_complete(pending.trace, tdur);
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        --conn->inflight;
        conn->active.erase(pending.request_id);
      }
    }
    if (const auto d =
            chaos::decide(opt_.chaos, chaos::Hook::kServerFrame)) {
      if (d.action == chaos::Action::kDelay) {
        std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
      } else {
        // Corrupt/truncate the outbound reply; the client must detect it
        // (checksum-free protocol: bad magic/length/payload) and resync.
        chaos::mutate_frame(d, &bytes);
      }
    }
    bool chaos_break = false;
    Status written;
    if (const auto d =
            chaos::decide(opt_.chaos, chaos::Hook::kServerWrite)) {
      switch (d.action) {
        case chaos::Action::kReset:
          note_close(conn.get(), CloseReason::kChaos);
          written = Status::error("injected write reset");
          chaos_break = true;
          break;
        case chaos::Action::kPartialWrite: {
          // Deliver a prefix, then fail the write: the client sees a
          // half-frame followed by EOF.
          const auto keep = static_cast<std::size_t>(std::clamp<std::int64_t>(
              d.a, 0, static_cast<std::int64_t>(bytes.size())));
          (void)write_all(conn->fd,
                          std::vector<std::uint8_t>(bytes.begin(),
                                                    bytes.begin() + keep));
          note_close(conn.get(), CloseReason::kChaos);
          written = Status::error("injected partial write");
          chaos_break = true;
          break;
        }
        case chaos::Action::kDelay:
          std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
          break;
        default:
          break;
      }
    }
    if (!chaos_break) written = write_all(conn->fd, bytes);
    if (!written.ok()) {
      // Peer is gone: wake the reader (it may be blocked in poll on a
      // half-dead socket) and stop delivering.  In-flight jobs keep
      // running in the service; their results are simply dropped.
      note_close(conn.get(), CloseReason::kWriteError);
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->broken = true;
        conn->replies.clear();
        conn->active.clear();
      }
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(replies_);
    metrics_.add(bytes_out_, static_cast<std::int64_t>(bytes.size()));
  }
  // The writer is always the last side with bytes to deliver: once it is
  // done (reader gone + queue drained, or the socket broke), signal EOF
  // to the peer.  The fd itself is closed by reap/stop.
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->writer_exited = true;
  }
  conn->cv.notify_all();
}

}  // namespace cgra::net

#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "net/socket_util.hpp"

namespace cgra::net {

namespace {

/// Span track for network requests (service uses 3/4, tiles start at
/// obs::kTrackTileBase).
constexpr int kTrackNet = 5;

}  // namespace

/// Per-connection state.  The reader thread is the only producer of
/// `replies`, the writer thread the only consumer; `mu` guards the queue,
/// the in-flight count and the id -> handle map used by cancel.
struct Server::Connection {
  int fd = -1;
  std::thread reader;
  std::thread writer;

  /// One reply slot, delivered strictly in request order.  Control and
  /// error replies are pre-encoded (`ready`); job replies block the
  /// writer on Service::wait(handle) when their turn comes.
  struct Pending {
    std::vector<std::uint8_t> ready;
    service::JobHandle handle;
    MsgType request_type = MsgType::kPing;
    std::uint64_t request_id = 0;
    Nanoseconds start_ns = 0;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> replies;
  std::unordered_map<std::uint64_t, service::JobHandle> active;
  int inflight = 0;
  bool reader_exited = false;
  bool writer_exited = false;
  bool broken = false;  ///< Writer hit a socket error; stop queueing.
};

Server::Server(service::Service* service, ServerOptions opt)
    : service_(service),
      opt_([&] {
        ServerOptions o = opt;
        o.max_connections = std::max(1, o.max_connections);
        o.max_inflight_per_connection =
            std::max(1, o.max_inflight_per_connection);
        return o;
      }()),
      epoch_(std::chrono::steady_clock::now()) {
  std::lock_guard<std::mutex> obs(obs_mu_);
  accepted_ = metrics_.counter("net.connections.accepted");
  refused_ = metrics_.counter("net.connections.refused");
  closed_ = metrics_.counter("net.connections.closed");
  requests_ = metrics_.counter("net.requests");
  replies_ = metrics_.counter("net.replies");
  errors_ = metrics_.counter("net.replies.error");
  malformed_ = metrics_.counter("net.frames.malformed");
  conn_backpressure_ = metrics_.counter("net.backpressure.connection");
  service_backpressure_ = metrics_.counter("net.backpressure.service");
  bytes_in_ = metrics_.counter("net.bytes.in");
  bytes_out_ = metrics_.counter("net.bytes.out");
  spans_.set_track_name(kTrackNet, "net requests");
}

Server::~Server() { stop(); }

Nanoseconds Server::now_ns() const {
  return static_cast<Nanoseconds>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Status Server::start() {
  if (started_) return Status::error("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::errorf("socket failed: %s", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      opt_.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const Status s = Status::errorf("bind to port %u failed: %s", opt_.port,
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status s = Status::errorf("listen failed: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  return Status();
}

void Server::stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    // Stop accepting; in-flight connections drain below.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    // Half-close: no more requests, pending replies still flush.
    ::shutdown(conn->fd, SHUT_RD);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(closed_);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::int64_t Server::counter(std::string_view name) const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return metrics_.counter_value(name);
}

std::vector<obs::MetricSample> Server::metrics_samples() const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return metrics_.samples();
}

std::size_t Server::span_count() const {
  std::lock_guard<std::mutex> obs(obs_mu_);
  return spans_.spans().size();
}

void Server::reap_finished_connections() {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      std::unique_lock<std::mutex> cl((*it)->mu);
      const bool done = (*it)->reader_exited && (*it)->writer_exited;
      cl.unlock();
      if (done) {
        finished.push_back(*it);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(closed_);
  }
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed or broken
    }
    reap_finished_connections();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.size() >= static_cast<std::size_t>(opt_.max_connections)) {
        ::close(fd);
        std::lock_guard<std::mutex> obs(obs_mu_);
        metrics_.add(refused_);
        continue;
      }
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(accepted_);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  const auto queue_reply = [&](Connection::Pending pending) {
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->broken) {
        conn->replies.push_back(std::move(pending));
        notify = true;
      }
    }
    if (notify) conn->cv.notify_one();
  };
  const auto queue_ready = [&](std::vector<std::uint8_t> bytes) {
    Connection::Pending p;
    p.ready = std::move(bytes);
    queue_reply(std::move(p));
  };
  const auto queue_error = [&](std::uint64_t request_id,
                               std::string_view message) {
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(errors_);
    }
    queue_ready(encode_error(request_id, message));
  };

  for (;;) {
    Frame frame;
    Status err;
    const ReadOutcome outcome = read_frame(
        conn->fd, opt_.idle_timeout_ms, &stopping_, &frame, &err);
    if (outcome != ReadOutcome::kFrame) {
      if (outcome == ReadOutcome::kError) {
        // Framing errors desync the stream: report once, then close.
        std::lock_guard<std::mutex> obs(obs_mu_);
        metrics_.add(malformed_);
      }
      break;
    }
    const Nanoseconds start = now_ns();
    {
      std::lock_guard<std::mutex> obs(obs_mu_);
      metrics_.add(requests_);
      metrics_.add(bytes_in_, static_cast<std::int64_t>(
                                  kHeaderSize + frame.payload.size()));
    }
    Request req;
    const Status decoded = decode_request(frame, &req);
    if (!decoded.ok()) {
      // Valid frame, bad payload: recoverable — reply and keep reading.
      queue_error(req.request_id, decoded.message());
      continue;
    }
    switch (req.type) {
      case MsgType::kPing:
        queue_ready(encode_pong(req.request_id));
        break;
      case MsgType::kStats: {
        // The service's counters plus our own net.* set, one flat list.
        auto samples = service_->metrics_samples();
        const auto mine = metrics_samples();
        samples.insert(samples.end(), mine.begin(), mine.end());
        queue_ready(encode_stats_result(req.request_id, samples));
        break;
      }
      case MsgType::kCancel: {
        service::JobHandle target;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          const auto it = conn->active.find(req.cancel_target);
          if (it != conn->active.end()) target = it->second;
        }
        const bool cancelled =
            target != nullptr && service_->cancel(target);
        queue_ready(encode_cancel_result(req.request_id, req.cancel_target,
                                         cancelled));
        break;
      }
      default: {  // job request
        bool over_cap = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          over_cap = conn->inflight >= opt_.max_inflight_per_connection;
        }
        if (over_cap) {
          {
            std::lock_guard<std::mutex> obs(obs_mu_);
            metrics_.add(conn_backpressure_);
          }
          queue_error(req.request_id,
                      "connection in-flight limit reached; drain replies "
                      "before sending more jobs");
          break;
        }
        auto submit = service_->submit(std::move(req.job));
        if (!submit.accepted()) {
          {
            std::lock_guard<std::mutex> obs(obs_mu_);
            metrics_.add(service_backpressure_);
          }
          queue_error(req.request_id, submit.status.message());
          break;
        }
        Connection::Pending p;
        p.handle = submit.handle;
        p.request_type = req.type;
        p.request_id = req.request_id;
        p.start_ns = start;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          ++conn->inflight;
          conn->active[req.request_id] = submit.handle;
        }
        queue_reply(std::move(p));
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->reader_exited = true;
  }
  conn->cv.notify_all();
}

void Server::writer_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Connection::Pending pending;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [&] {
        return !conn->replies.empty() || conn->reader_exited;
      });
      if (conn->replies.empty()) break;  // reader gone, queue drained
      pending = std::move(conn->replies.front());
      conn->replies.pop_front();
    }
    std::vector<std::uint8_t> bytes;
    if (!pending.ready.empty()) {
      bytes = std::move(pending.ready);
    } else {
      // Job reply: block until the service finishes it, then encode.
      const auto result = service_->wait(pending.handle);
      Request req;
      req.type = pending.request_type;
      req.request_id = pending.request_id;
      const Status enc = encode_job_result(req, result, &bytes);
      if (!enc.ok()) bytes = encode_error(pending.request_id, enc.message());
      {
        std::lock_guard<std::mutex> obs(obs_mu_);
        if (!result.status.ok()) metrics_.add(errors_);
        spans_.complete(
            "req " + std::to_string(pending.request_id),
            "net.request", kTrackNet, pending.start_ns,
            now_ns() - pending.start_ns,
            {{"type", msg_type_name(pending.request_type), false}});
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        --conn->inflight;
        conn->active.erase(pending.request_id);
      }
    }
    const Status written = write_all(conn->fd, bytes);
    if (!written.ok()) {
      // Peer is gone: wake the reader (it may be blocked in poll on a
      // half-dead socket) and stop delivering.  In-flight jobs keep
      // running in the service; their results are simply dropped.
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->broken = true;
        conn->replies.clear();
        conn->active.clear();
      }
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
    std::lock_guard<std::mutex> obs(obs_mu_);
    metrics_.add(replies_);
    metrics_.add(bytes_out_, static_cast<std::int64_t>(bytes.size()));
  }
  // The writer is always the last side with bytes to deliver: once it is
  // done (reader gone + queue drained, or the socket broke), signal EOF
  // to the peer.  The fd itself is closed by reap/stop.
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->writer_exited = true;
  }
  conn->cv.notify_all();
}

}  // namespace cgra::net

#include "net/socket_util.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace cgra::net {

namespace {

/// Poll slice so a blocking wait notices the stop flag promptly.
constexpr int kPollSliceMs = 50;

/// Once a header arrived, the rest of the frame must follow within this
/// budget — a peer that stalls mid-frame is broken, not idle.
constexpr int kBodyTimeoutMs = 10000;

}  // namespace

int wait_readable(int fd, int timeout_ms, const std::atomic<bool>* stop) {
  int waited = 0;
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return -1;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int slice = kPollSliceMs;
    if (timeout_ms > 0) slice = std::min(slice, timeout_ms - waited);
    const int rc = ::poll(&pfd, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc > 0) return 1;
    waited += slice;
    if (timeout_ms > 0 && waited >= timeout_ms) return 0;
  }
}

namespace {

/// Read exactly `size` bytes; the idle timeout applies only when
/// `first_byte_idle` (i.e. between frames).
ReadOutcome read_exact(int fd, std::uint8_t* data, std::size_t size,
                       int idle_timeout_ms, const std::atomic<bool>* stop,
                       bool first_byte_idle, Status* error) {
  std::size_t got = 0;
  while (got < size) {
    const int timeout =
        (got == 0 && first_byte_idle) ? idle_timeout_ms : kBodyTimeoutMs;
    const int rc = wait_readable(fd, timeout, stop);
    if (rc == 0) {
      if (got == 0 && first_byte_idle) return ReadOutcome::kTimeout;
      *error = Status::error("peer stalled mid-frame");
      return ReadOutcome::kError;
    }
    if (rc < 0) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        return ReadOutcome::kStopped;
      }
      *error = Status::errorf("poll failed: %s", std::strerror(errno));
      return ReadOutcome::kError;
    }
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) {
      if (got == 0 && first_byte_idle) return ReadOutcome::kClosed;
      *error = Status::error("peer closed mid-frame");
      return ReadOutcome::kError;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      *error = Status::errorf("recv failed: %s", std::strerror(errno));
      return ReadOutcome::kError;
    }
    got += static_cast<std::size_t>(n);
  }
  return ReadOutcome::kFrame;
}

}  // namespace

ReadOutcome read_frame(int fd, int idle_timeout_ms,
                       const std::atomic<bool>* stop, Frame* out,
                       Status* error) {
  std::uint8_t header[kHeaderSize];
  const ReadOutcome head = read_exact(fd, header, kHeaderSize,
                                      idle_timeout_ms, stop, true, error);
  if (head != ReadOutcome::kFrame) return head;
  const Status parsed = decode_header(header, &out->header);
  if (!parsed.ok()) {
    *error = parsed;
    return ReadOutcome::kError;
  }
  out->payload.assign(out->header.payload_len, 0);
  if (out->header.payload_len == 0) return ReadOutcome::kFrame;
  return read_exact(fd, out->payload.data(), out->payload.size(),
                    idle_timeout_ms, stop, false, error);
}

Status write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Socket buffer full (pipelined burst, or a nonblocking fd):
        // wait for writability instead of failing the stream mid-frame.
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        const int rc = ::poll(&pfd, 1, kBodyTimeoutMs);
        if (rc > 0) continue;
        if (rc < 0 && errno == EINTR) continue;
        return Status::error(rc == 0 ? "send stalled: peer not draining"
                                     : "poll for writability failed");
      }
      return Status::errorf("send failed: %s", std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status();
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::errorf("fcntl(F_GETFL) failed: %s", std::strerror(errno));
  }
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::errorf("fcntl(F_SETFL, O_NONBLOCK) failed: %s",
                          std::strerror(errno));
  }
  return Status();
}

Status set_nodelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) < 0) {
    return Status::errorf("setsockopt(TCP_NODELAY) failed: %s",
                          std::strerror(errno));
  }
  return Status();
}

Status listen_tcp(std::uint16_t port, bool loopback_only, int backlog,
                  int* out_fd, std::uint16_t* out_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::errorf("socket failed: %s", std::strerror(errno));
  }
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
    const Status s = Status::errorf("setsockopt(SO_REUSEADDR) failed: %s",
                                    std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const Status s = Status::errorf("bind to port %u failed: %s", port,
                                    std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) < 0) {
    const Status s = Status::errorf("listen failed: %s", std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const Status s =
        Status::errorf("getsockname failed: %s", std::strerror(errno));
    ::close(fd);
    return s;
  }
  *out_fd = fd;
  *out_port = ntohs(bound.sin_port);
  return Status();
}

}  // namespace cgra::net

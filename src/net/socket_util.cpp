#include "net/socket_util.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace cgra::net {

namespace {

/// Poll slice so a blocking wait notices the stop flag promptly.
constexpr int kPollSliceMs = 50;

/// Once a header arrived, the rest of the frame must follow within this
/// budget — a peer that stalls mid-frame is broken, not idle.
constexpr int kBodyTimeoutMs = 10000;

}  // namespace

int wait_readable(int fd, int timeout_ms, const std::atomic<bool>* stop) {
  int waited = 0;
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return -1;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int slice = kPollSliceMs;
    if (timeout_ms > 0) slice = std::min(slice, timeout_ms - waited);
    const int rc = ::poll(&pfd, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc > 0) return 1;
    waited += slice;
    if (timeout_ms > 0 && waited >= timeout_ms) return 0;
  }
}

namespace {

/// Read exactly `size` bytes; the idle timeout applies only when
/// `first_byte_idle` (i.e. between frames).
ReadOutcome read_exact(int fd, std::uint8_t* data, std::size_t size,
                       int idle_timeout_ms, const std::atomic<bool>* stop,
                       bool first_byte_idle, Status* error) {
  std::size_t got = 0;
  while (got < size) {
    const int timeout =
        (got == 0 && first_byte_idle) ? idle_timeout_ms : kBodyTimeoutMs;
    const int rc = wait_readable(fd, timeout, stop);
    if (rc == 0) {
      if (got == 0 && first_byte_idle) return ReadOutcome::kTimeout;
      *error = Status::error("peer stalled mid-frame");
      return ReadOutcome::kError;
    }
    if (rc < 0) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        return ReadOutcome::kStopped;
      }
      *error = Status::errorf("poll failed: %s", std::strerror(errno));
      return ReadOutcome::kError;
    }
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) {
      if (got == 0 && first_byte_idle) return ReadOutcome::kClosed;
      *error = Status::error("peer closed mid-frame");
      return ReadOutcome::kError;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      *error = Status::errorf("recv failed: %s", std::strerror(errno));
      return ReadOutcome::kError;
    }
    got += static_cast<std::size_t>(n);
  }
  return ReadOutcome::kFrame;
}

}  // namespace

ReadOutcome read_frame(int fd, int idle_timeout_ms,
                       const std::atomic<bool>* stop, Frame* out,
                       Status* error) {
  std::uint8_t header[kHeaderSize];
  const ReadOutcome head = read_exact(fd, header, kHeaderSize,
                                      idle_timeout_ms, stop, true, error);
  if (head != ReadOutcome::kFrame) return head;
  const Status parsed = decode_header(header, &out->header);
  if (!parsed.ok()) {
    *error = parsed;
    return ReadOutcome::kError;
  }
  out->payload.assign(out->header.payload_len, 0);
  if (out->header.payload_len == 0) return ReadOutcome::kFrame;
  return read_exact(fd, out->payload.data(), out->payload.size(),
                    idle_timeout_ms, stop, false, error);
}

Status write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::errorf("send failed: %s", std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status();
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace cgra::net

#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "net/socket_util.hpp"

namespace cgra::net {

Client::Client(ClientOptions opt) : opt_(std::move(opt)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::connect_once() {
  close();
  ++connect_attempts_;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::errorf("socket failed: %s", std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::errorf("bad host address '%s'", opt_.host.c_str());
  }
  // Non-blocking connect so the timeout is enforceable.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    const Status s = Status::errorf("connect to %s:%u failed: %s",
                                    opt_.host.c_str(), opt_.port,
                                    std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (rc < 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int ready = ::poll(&pfd, 1, std::max(1, opt_.connect_timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      return Status::errorf("connect to %s:%u timed out after %d ms",
                            opt_.host.c_str(), opt_.port,
                            opt_.connect_timeout_ms);
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::errorf("connect to %s:%u failed: %s",
                            opt_.host.c_str(), opt_.port,
                            std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  set_nodelay(fd);
  fd_ = fd;
  return Status();
}

Status Client::connect() {
  Status last;
  int backoff = opt_.retry_backoff_ms;
  for (int attempt = 0; attempt <= opt_.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = static_cast<int>(backoff * opt_.backoff_factor);
    }
    last = connect_once();
    if (last.ok()) return last;
  }
  return last;
}

Status Client::ensure_connected() {
  if (fd_ >= 0) return Status();
  return connect_once();
}

Status Client::read_response(Response* out) {
  Frame frame;
  Status err;
  const ReadOutcome outcome = read_frame(fd_, opt_.request_timeout_ms,
                                         nullptr, &frame, &err);
  switch (outcome) {
    case ReadOutcome::kFrame:
      break;
    case ReadOutcome::kClosed:
      return Status::error("server closed the connection");
    case ReadOutcome::kTimeout:
      return Status::errorf("no reply within %d ms", opt_.request_timeout_ms);
    default:
      return err.ok() ? Status::error("read failed") : err;
  }
  return decode_response(frame, out);
}

Status Client::roundtrip(const std::vector<std::uint8_t>& frame,
                         std::uint64_t request_id, Response* out) {
  Status last;
  int backoff = opt_.retry_backoff_ms;
  for (int attempt = 0; attempt <= opt_.max_retries; ++attempt) {
    if (attempt > 0) {
      // A failed attempt leaves the stream in an unknown state (a reply
      // may be half-delivered), so retries always reconnect first.
      close();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = static_cast<int>(backoff * opt_.backoff_factor);
    }
    last = ensure_connected();
    if (!last.ok()) continue;
    last = write_all(fd_, frame);
    if (!last.ok()) continue;
    last = read_response(out);
    if (!last.ok()) continue;
    if (out->request_id != request_id) {
      // In-order protocol: a mismatched id means the stream is desynced
      // (e.g. a stale reply after a timeout).  Resync by reconnecting.
      last = Status::errorf("reply id %llu does not match request %llu",
                            static_cast<unsigned long long>(out->request_id),
                            static_cast<unsigned long long>(request_id));
      continue;
    }
    return Status();
  }
  close();
  return last;
}

Status Client::ping() {
  const std::uint64_t id = next_id_++;
  Response resp;
  const Status s = roundtrip(encode_ping(id), id, &resp);
  if (!s.ok()) return s;
  if (resp.type != MsgType::kPong) {
    return Status::errorf("expected pong, got %s", msg_type_name(resp.type));
  }
  return Status();
}

Status Client::call(const service::JobRequest& job, Response* out) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  const Status enc = encode_job_request(id, job, &frame);
  if (!enc.ok()) return enc;
  return roundtrip(frame, id, out);
}

Status Client::stats(std::vector<obs::MetricSample>* out) {
  const std::uint64_t id = next_id_++;
  Response resp;
  const Status s = roundtrip(encode_stats(id), id, &resp);
  if (!s.ok()) return s;
  if (resp.type != MsgType::kStatsResult) {
    return Status::errorf("expected stats result, got %s",
                          msg_type_name(resp.type));
  }
  *out = std::move(resp.stats);
  return Status();
}

Status Client::cancel(std::uint64_t target_id, bool* cancelled) {
  const std::uint64_t id = next_id_++;
  Response resp;
  const Status s = roundtrip(encode_cancel(id, target_id), id, &resp);
  if (!s.ok()) return s;
  if (resp.type != MsgType::kCancelResult) {
    return Status::errorf("expected cancel result, got %s",
                          msg_type_name(resp.type));
  }
  *cancelled = resp.cancelled;
  return Status();
}

Status Client::send(const service::JobRequest& job,
                    std::uint64_t* request_id) {
  const Status conn = ensure_connected();
  if (!conn.ok()) return conn;
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  const Status enc = encode_job_request(id, job, &frame);
  if (!enc.ok()) return enc;
  const Status sent = write_all(fd_, frame);
  if (!sent.ok()) {
    close();
    return sent;
  }
  *request_id = id;
  return Status();
}

Status Client::send_cancel(std::uint64_t target_id,
                           std::uint64_t* request_id) {
  const Status conn = ensure_connected();
  if (!conn.ok()) return conn;
  const std::uint64_t id = next_id_++;
  const Status sent = write_all(fd_, encode_cancel(id, target_id));
  if (!sent.ok()) {
    close();
    return sent;
  }
  *request_id = id;
  return Status();
}

Status Client::receive(Response* out) {
  if (fd_ < 0) return Status::error("not connected");
  const Status s = read_response(out);
  if (!s.ok()) close();
  return s;
}

}  // namespace cgra::net

#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "net/socket_util.hpp"

namespace cgra::net {

Client::Client(ClientOptions opt) : opt_(std::move(opt)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::connect_once() {
  close();
  ++connect_attempts_;
  if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kClientConnect);
      d && d.action == chaos::Action::kFail) {
    return Status::errorf("injected connect failure to %s:%u",
                          opt_.host.c_str(), opt_.port);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::errorf("socket failed: %s", std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::errorf("bad host address '%s'", opt_.host.c_str());
  }
  // Non-blocking connect so the timeout is enforceable.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    const Status s = Status::errorf("connect to %s:%u failed: %s",
                                    opt_.host.c_str(), opt_.port,
                                    std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (rc < 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int ready = ::poll(&pfd, 1, std::max(1, opt_.connect_timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      return Status::errorf("connect to %s:%u timed out after %d ms",
                            opt_.host.c_str(), opt_.port,
                            opt_.connect_timeout_ms);
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::errorf("connect to %s:%u failed: %s",
                            opt_.host.c_str(), opt_.port,
                            std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  // Nagle off is a latency optimisation, not a correctness requirement:
  // a failure here still leaves a working (slower) connection.
  (void)set_nodelay(fd);
  fd_ = fd;
  return Status();
}

Status Client::connect() {
  Status last;
  int backoff = opt_.retry_backoff_ms;
  for (int attempt = 0; attempt <= opt_.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = static_cast<int>(backoff * opt_.backoff_factor);
    }
    last = connect_once();
    if (last.ok()) return last;
  }
  return last;
}

Status Client::ensure_connected() {
  if (fd_ >= 0) return Status();
  return connect_once();
}

Status Client::read_response(Response* out) {
  Frame frame;
  Status err;
  const ReadOutcome outcome = read_frame(fd_, opt_.request_timeout_ms,
                                         nullptr, &frame, &err);
  switch (outcome) {
    case ReadOutcome::kFrame:
      break;
    case ReadOutcome::kClosed:
      return Status::error("server closed the connection");
    case ReadOutcome::kTimeout:
      return Status::errorf("no reply within %d ms", opt_.request_timeout_ms);
    default:
      return err.ok() ? Status::error("read failed") : err;
  }
  return decode_response(frame, out);
}

Status Client::breaker_gate() {
  if (opt_.breaker_threshold <= 0) return Status();
  if (breaker_ == BreakerState::kOpen) {
    if (std::chrono::steady_clock::now() < breaker_open_until_) {
      return Status::unavailable("circuit breaker open");
    }
    breaker_ = BreakerState::kHalfOpen;  // cooldown passed: one probe
  }
  return Status();
}

void Client::breaker_success() {
  breaker_ = BreakerState::kClosed;
  breaker_failures_ = 0;
}

void Client::breaker_failure() {
  if (opt_.breaker_threshold <= 0) return;
  ++breaker_failures_;
  if (breaker_ == BreakerState::kHalfOpen ||
      breaker_failures_ >= opt_.breaker_threshold) {
    const bool was_open = breaker_ == BreakerState::kOpen;
    breaker_ = BreakerState::kOpen;
    breaker_open_until_ =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(std::max(1, opt_.breaker_cooldown_ms));
    if (!was_open && opt_.tracer != nullptr && trace_ctx_.valid()) {
      opt_.tracer->note_anomaly(
          trace_ctx_, obs::AnomalyReason::kBreakerOpen,
          "breaker opened after " + std::to_string(breaker_failures_) +
              " consecutive transport failures");
    }
  }
}

Status Client::roundtrip(const std::vector<std::uint8_t>& frame,
                         std::uint64_t request_id, bool idempotent,
                         Response* out) {
  if (Status gate = breaker_gate(); !gate.ok()) return gate;
  Status last;
  bool maybe_sent = false;  ///< A write was attempted; the server may have
                            ///< received (and started executing) the request.
  int backoff = opt_.retry_backoff_ms;
  for (int attempt = 0; attempt <= opt_.max_retries; ++attempt) {
    if (attempt > 0) {
      if (maybe_sent && !idempotent) break;  // resend could double-execute
      if (opt_.tracer != nullptr && trace_ctx_.valid()) {
        opt_.tracer->event(trace_ctx_, obs::FlightEventKind::kRetry, 0,
                           static_cast<std::uint32_t>(attempt));
      }
      // A failed attempt leaves the stream in an unknown state (a reply
      // may be half-delivered), so retries always reconnect first.
      close();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = static_cast<int>(backoff * opt_.backoff_factor);
    }
    last = ensure_connected();
    if (!last.ok()) continue;
    const std::vector<std::uint8_t>* to_send = &frame;
    std::vector<std::uint8_t> mutated;
    if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kClientFrame)) {
      if (d.action == chaos::Action::kDelay) {
        std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
      } else {
        mutated = frame;
        if (chaos::mutate_frame(d, &mutated)) to_send = &mutated;
      }
    }
    maybe_sent = true;
    last = write_all(fd_, *to_send);
    if (!last.ok()) continue;
    if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kClientRecv);
        d && d.action == chaos::Action::kReset) {
      close();
      last = Status::error("injected receive reset");
      continue;
    }
    last = read_response(out);
    if (!last.ok()) continue;
    if (out->request_id != request_id) {
      // In-order protocol: a mismatched id means the stream is desynced
      // (e.g. a stale reply after a timeout).  Resync by reconnecting.
      last = Status::errorf("reply id %llu does not match request %llu",
                            static_cast<unsigned long long>(out->request_id),
                            static_cast<unsigned long long>(request_id));
      continue;
    }
    breaker_success();
    return Status();
  }
  close();
  breaker_failure();
  if (maybe_sent && !idempotent) {
    return Status::unknown_outcome(
        "request may have been executed (no idempotency id, so not "
        "retried): " +
        last.message());
  }
  return last;
}

Status Client::ping() {
  const std::uint64_t id = next_id_++;
  Response resp;
  const Status s = roundtrip(encode_ping(id), id, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  if (resp.type != MsgType::kPong) {
    return Status::errorf("expected pong, got %s", msg_type_name(resp.type));
  }
  return Status();
}

Status Client::call(const service::JobRequest& job, Response* out,
                    const CallOptions& options) {
  const std::uint64_t id = next_id_++;
  obs::TraceContext ctx = options.trace;
  if (!ctx.valid() && opt_.tracer != nullptr &&
      opt_.protocol_version >= 3) {
    ctx = opt_.tracer->make_context();
  }
  std::vector<std::uint8_t> frame;
  JobFrameOptions wire;
  wire.deadline_ms = options.deadline_ms;
  wire.idempotency_id = options.idempotency_id;
  wire.trace = ctx;
  wire.version = opt_.protocol_version;
  const Status enc = encode_job_request(id, job, &frame, wire);
  if (!enc.ok()) return enc;
  const Nanoseconds t0 = obs::trace_clock_ns();
  trace_ctx_ = ctx;
  const Status s = roundtrip(frame, id, options.idempotency_id != 0, out);
  trace_ctx_ = obs::TraceContext{};
  if (opt_.tracer != nullptr && ctx.valid()) {
    opt_.tracer->span(obs::kTraceTrackClient,
                      "call req " + std::to_string(id), ctx, t0,
                      obs::trace_clock_ns() - t0,
                      {{"status", status_code_name(s.code()), false}});
  }
  return s;
}

Status Client::stats(std::vector<obs::MetricSample>* out) {
  const std::uint64_t id = next_id_++;
  Response resp;
  const Status s = roundtrip(encode_stats(id), id, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  if (resp.type != MsgType::kStatsResult) {
    return Status::errorf("expected stats result, got %s",
                          msg_type_name(resp.type));
  }
  *out = std::move(resp.stats);
  return Status();
}

Status Client::health(HealthInfo* out) {
  const std::uint64_t id = next_id_++;
  Response resp;
  const Status s =
      roundtrip(encode_health(id), id, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  if (resp.type != MsgType::kHealthResult) {
    return Status::errorf("expected health result, got %s",
                          msg_type_name(resp.type));
  }
  *out = resp.health;
  return Status();
}

Status Client::trace_dump(TraceDumpInfo* out) {
  const std::uint64_t id = next_id_++;
  Response resp;
  const Status s =
      roundtrip(encode_trace_dump(id), id, /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  if (resp.type != MsgType::kTraceDumpResult) {
    return Status::errorf("expected trace dump result, got %s",
                          msg_type_name(resp.type));
  }
  *out = std::move(resp.trace_dump);
  return Status();
}

Status Client::cancel(std::uint64_t target_id, bool* cancelled) {
  const std::uint64_t id = next_id_++;
  Response resp;
  // Cancelling twice acks the same way, so post-send retries are safe.
  const Status s = roundtrip(encode_cancel(id, target_id), id,
                             /*idempotent=*/true, &resp);
  if (!s.ok()) return s;
  if (resp.type != MsgType::kCancelResult) {
    return Status::errorf("expected cancel result, got %s",
                          msg_type_name(resp.type));
  }
  *cancelled = resp.cancelled;
  return Status();
}

Status Client::send(const service::JobRequest& job, std::uint64_t* request_id,
                    const CallOptions& options) {
  const Status conn = ensure_connected();
  if (!conn.ok()) return conn;
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  JobFrameOptions wire;
  wire.deadline_ms = options.deadline_ms;
  wire.idempotency_id = options.idempotency_id;
  wire.trace = options.trace;
  wire.version = opt_.protocol_version;
  const Status enc = encode_job_request(id, job, &frame, wire);
  if (!enc.ok()) return enc;
  if (const auto d = chaos::decide(opt_.chaos, chaos::Hook::kClientFrame)) {
    if (d.action == chaos::Action::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(d.a));
    } else {
      chaos::mutate_frame(d, &frame);
    }
  }
  const Status sent = write_all(fd_, frame);
  if (!sent.ok()) {
    close();
    return sent;
  }
  *request_id = id;
  return Status();
}

Status Client::send_cancel(std::uint64_t target_id,
                           std::uint64_t* request_id) {
  const Status conn = ensure_connected();
  if (!conn.ok()) return conn;
  const std::uint64_t id = next_id_++;
  const Status sent = write_all(fd_, encode_cancel(id, target_id));
  if (!sent.ok()) {
    close();
    return sent;
  }
  *request_id = id;
  return Status();
}

Status Client::receive(Response* out) {
  if (fd_ < 0) return Status::error("not connected");
  const Status s = read_response(out);
  if (!s.ok()) close();
  return s;
}

}  // namespace cgra::net

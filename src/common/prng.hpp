// Deterministic PRNG (SplitMix64) for synthetic workloads.
//
// Benchmarks and tests must be reproducible run-to-run, so nothing in the
// repository uses std::random_device; all randomness flows from explicit
// seeds through this generator.
#pragma once

#include <cstdint>

namespace cgra {

/// SplitMix64: tiny, fast, full-period, excellent diffusion.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) for bound > 0 (slightly biased for huge
  /// bounds, irrelevant for workload synthesis).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace cgra

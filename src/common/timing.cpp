#include "common/timing.hpp"

// Header-only definitions; this translation unit exists so the library has a
// stable archive member and the constants get ODR-anchored in one place.
namespace cgra {
static_assert(kCycleNs == 2.5, "paper specifies 2.5 ns per instruction");
}  // namespace cgra

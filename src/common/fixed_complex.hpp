// Packed complex fixed-point arithmetic for the 48-bit fabric word.
//
// One fabric word holds a complex sample: the high 24 bits are the real part,
// the low 24 bits the imaginary part, each a two's-complement Q3.20 value
// (range [-4, 4), resolution 2^-20).  This mirrors the paper's tiles doing
// "complex operations on a 48 bit word" with the FPGA DSP macros.
//
// The same routines implement both the host-side reference arithmetic and the
// semantics of the fabric's CADD/CSUB/CMUL instructions, so tests can compare
// fabric execution against double-precision references with a known bound.
#pragma once

#include <complex>
#include <cstdint>

#include "common/word.hpp"

namespace cgra {

/// Fraction bits of each 24-bit half (Q3.20).
inline constexpr int kFixedFracBits = 20;
/// Bits of each packed half.
inline constexpr int kHalfBits = 24;
/// Scale factor 2^20.
inline constexpr double kFixedScale = static_cast<double>(1 << kFixedFracBits);
/// Largest representable half value.
inline constexpr std::int32_t kHalfMax = (1 << (kHalfBits - 1)) - 1;
/// Smallest representable half value.
inline constexpr std::int32_t kHalfMin = -(1 << (kHalfBits - 1));

/// A complex number as two 24-bit Q3.20 fixed-point halves.
struct FixedComplex {
  std::int32_t re = 0;  ///< Q3.20, kept within [kHalfMin, kHalfMax].
  std::int32_t im = 0;  ///< Q3.20, kept within [kHalfMin, kHalfMax].

  friend bool operator==(const FixedComplex&, const FixedComplex&) = default;
};

/// Saturate a wide value into the 24-bit half range.
std::int32_t saturate_half(std::int64_t v) noexcept;

/// Convert a double to a Q3.20 half with rounding and saturation.
std::int32_t double_to_half(double v) noexcept;

/// Convert a Q3.20 half to double.
double half_to_double(std::int32_t h) noexcept;

/// Pack re/im halves into one 48-bit word (re in the high 24 bits).
Word pack_complex(FixedComplex c) noexcept;

/// Unpack a 48-bit word into re/im halves (sign-extended).
FixedComplex unpack_complex(Word w) noexcept;

/// Convert std::complex<double> to the packed fixed-point form.
FixedComplex to_fixed(std::complex<double> z) noexcept;

/// Convert the fixed-point form back to std::complex<double>.
std::complex<double> to_double(FixedComplex c) noexcept;

/// Saturating complex addition (semantics of the fabric CADD instruction).
FixedComplex cadd(FixedComplex a, FixedComplex b) noexcept;

/// Saturating complex subtraction (semantics of the fabric CSUB instruction).
FixedComplex csub(FixedComplex a, FixedComplex b) noexcept;

/// Saturating complex multiplication with Q3.20 renormalisation
/// (semantics of the fabric CMUL instruction; round-to-nearest).
FixedComplex cmul(FixedComplex a, FixedComplex b) noexcept;

/// Word-level wrappers used directly by the tile interpreter.
Word word_cadd(Word a, Word b) noexcept;
Word word_csub(Word a, Word b) noexcept;
Word word_cmul(Word a, Word b) noexcept;

}  // namespace cgra

#include "common/word.hpp"

#include <array>

namespace cgra {

std::string word_to_hex(Word w) {
  static constexpr std::array<char, 16> digits = {'0', '1', '2', '3', '4', '5',
                                                  '6', '7', '8', '9', 'a', 'b',
                                                  'c', 'd', 'e', 'f'};
  std::string out = "0x";
  for (int shift = kWordBits - 4; shift >= 0; shift -= 4) {
    out.push_back(digits[static_cast<std::size_t>((w >> shift) & 0xF)]);
  }
  return out;
}

}  // namespace cgra

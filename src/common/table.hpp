// Minimal fixed-width table printer for benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables/figures as text;
// this helper keeps their output aligned and uniform.
#pragma once

#include <string>
#include <vector>

namespace cgra {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Render with a header underline and two-space column gaps.
  [[nodiscard]] std::string render() const;

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Raw cells, for machine-readable exports (obs::BenchReport).
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Format helpers for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cgra

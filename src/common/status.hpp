// Lightweight error reporting used across the library.
//
// The assembler and loaders report rich diagnostics; the simulator reports
// runtime faults.  Neither path uses exceptions on hot paths: the tile
// interpreter records a Fault and halts, and offline tools return Status.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace cgra {

/// Coarse classification of a failure, preserved across the wire so a
/// remote caller can react without parsing the message.  kError is the
/// generic class every plain Status::error falls into; the rest exist
/// because the serving stack handles them differently (fail fast, give
/// up on a deadline, or — crucially — *not* retry when the outcome of a
/// sent request is unknowable).
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kError = 1,             ///< Generic failure (bad request, execution fault).
  kUnavailable = 2,       ///< Backpressure / circuit open: safe to retry later.
  kDeadlineExceeded = 3,  ///< The caller's deadline passed; work was shed.
  kUnknownOutcome = 4,    ///< Request may or may not have executed; a blind
                          ///< retry could double-execute it.
};

/// Human-readable status-code name.
const char* status_code_name(StatusCode code) noexcept;

/// Result of an offline operation (assembly, configuration loading, ...).
class Status {
 public:
  /// Success.
  Status() = default;

  /// Failure with a human-readable message.
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  /// Failure with a printf-style formatted message — the one formatting
  /// idiom every diagnostic call site uses, so messages stay greppable.
  [[gnu::format(printf, 1, 2)]] static Status errorf(const char* fmt, ...);

  /// Failure with an explicit classification (see StatusCode).
  static Status coded(StatusCode code, std::string message) {
    Status s = error(std::move(message));
    s.code_ = code == StatusCode::kOk ? StatusCode::kError : code;
    return s;
  }

  static Status unavailable(std::string message) {
    return coded(StatusCode::kUnavailable, std::move(message));
  }
  static Status deadline_exceeded(std::string message) {
    return coded(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status unknown_outcome(std::string message) {
    return coded(StatusCode::kUnknownOutcome, std::move(message));
  }

  [[nodiscard]] bool ok() const noexcept { return !message_.has_value(); }
  [[nodiscard]] StatusCode code() const noexcept {
    return ok() ? StatusCode::kOk : code_;
  }
  [[nodiscard]] const std::string& message() const noexcept {
    static const std::string kOk = "ok";
    return message_ ? *message_ : kOk;
  }

  explicit operator bool() const noexcept { return ok(); }

 private:
  std::optional<std::string> message_;
  StatusCode code_ = StatusCode::kError;  ///< Meaningful only when !ok().
};

/// Runtime fault classes the tile interpreter, the reconfiguration
/// controller and the fault-detection layer can raise.
enum class FaultKind {
  kNone,
  kIllegalOpcode,       ///< Undefined opcode field.
  kPcOutOfRange,        ///< PC walked past the instruction memory.
  kAddressOutOfRange,   ///< Direct or indirect address outside data memory.
  kNoActiveLink,        ///< Remote write with no configured output link.
  kIcapCorruption,      ///< Readback-verify mismatch after an ICAP stream.
  kWatchdogTimeout,     ///< Epoch ran past the analytic prediction margin.
  kLinkDown,            ///< Remote write over a physically failed link.
  kTileDead,            ///< Hard tile failure: the tile never recovers.
};

/// Human-readable fault name.
const char* fault_kind_name(FaultKind kind) noexcept;

/// True for fault classes that scrub-and-retry (roll back to the last
/// checkpoint, re-stream the configuration, re-run) can plausibly clear:
/// SEU-style transient corruption of memories or ICAP transfers.
bool fault_is_transient(FaultKind kind) noexcept;

/// True for permanent hardware faults the recovery layer must evacuate
/// (remap the work onto surviving resources) rather than retry.
bool fault_is_permanent(FaultKind kind) noexcept;

/// A recorded runtime fault: what happened, where, and when.
struct Fault {
  FaultKind kind = FaultKind::kNone;
  int tile = -1;          ///< Linear tile index.
  int pc = -1;            ///< PC of the faulting instruction.
  long long cycle = -1;   ///< Fabric cycle of the fault.

  [[nodiscard]] bool is_fault() const noexcept {
    return kind != FaultKind::kNone;
  }
  [[nodiscard]] std::string describe() const;
};

}  // namespace cgra

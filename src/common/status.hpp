// Lightweight error reporting used across the library.
//
// The assembler and loaders report rich diagnostics; the simulator reports
// runtime faults.  Neither path uses exceptions on hot paths: the tile
// interpreter records a Fault and halts, and offline tools return Status.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace cgra {

/// Result of an offline operation (assembly, configuration loading, ...).
class Status {
 public:
  /// Success.
  Status() = default;

  /// Failure with a human-readable message.
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  /// Failure with a printf-style formatted message — the one formatting
  /// idiom every diagnostic call site uses, so messages stay greppable.
  [[gnu::format(printf, 1, 2)]] static Status errorf(const char* fmt, ...);

  [[nodiscard]] bool ok() const noexcept { return !message_.has_value(); }
  [[nodiscard]] const std::string& message() const noexcept {
    static const std::string kOk = "ok";
    return message_ ? *message_ : kOk;
  }

  explicit operator bool() const noexcept { return ok(); }

 private:
  std::optional<std::string> message_;
};

/// Runtime fault classes the tile interpreter, the reconfiguration
/// controller and the fault-detection layer can raise.
enum class FaultKind {
  kNone,
  kIllegalOpcode,       ///< Undefined opcode field.
  kPcOutOfRange,        ///< PC walked past the instruction memory.
  kAddressOutOfRange,   ///< Direct or indirect address outside data memory.
  kNoActiveLink,        ///< Remote write with no configured output link.
  kIcapCorruption,      ///< Readback-verify mismatch after an ICAP stream.
  kWatchdogTimeout,     ///< Epoch ran past the analytic prediction margin.
  kLinkDown,            ///< Remote write over a physically failed link.
  kTileDead,            ///< Hard tile failure: the tile never recovers.
};

/// Human-readable fault name.
const char* fault_kind_name(FaultKind kind) noexcept;

/// True for fault classes that scrub-and-retry (roll back to the last
/// checkpoint, re-stream the configuration, re-run) can plausibly clear:
/// SEU-style transient corruption of memories or ICAP transfers.
bool fault_is_transient(FaultKind kind) noexcept;

/// True for permanent hardware faults the recovery layer must evacuate
/// (remap the work onto surviving resources) rather than retry.
bool fault_is_permanent(FaultKind kind) noexcept;

/// A recorded runtime fault: what happened, where, and when.
struct Fault {
  FaultKind kind = FaultKind::kNone;
  int tile = -1;          ///< Linear tile index.
  int pc = -1;            ///< PC of the faulting instruction.
  long long cycle = -1;   ///< Fabric cycle of the fault.

  [[nodiscard]] bool is_fault() const noexcept {
    return kind != FaultKind::kNone;
  }
  [[nodiscard]] std::string describe() const;
};

}  // namespace cgra

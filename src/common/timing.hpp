// Timing and reconfiguration cost constants of the modelled fabric.
//
// All published numbers from the paper are centralised here:
//   * 400 MHz tile clock  -> 2.5 ns per instruction,
//   * ICAP reconfiguration at 180 MB/s -> 33.33 ns per 48-bit data word and
//     50 ns per 72-bit instruction word,
//   * 48-wire links whose reconfiguration cost L is a swept parameter.
#pragma once

#include <cstdint>

namespace cgra {

/// Nanoseconds, carried as double so analytic models can mix measured cycle
/// counts with fractional ICAP costs exactly as the paper does.
using Nanoseconds = double;

/// Tile clock frequency (Hz).
inline constexpr double kClockHz = 400e6;
/// One instruction per cycle at 400 MHz.
inline constexpr Nanoseconds kCycleNs = 1e9 / kClockHz;  // 2.5 ns

/// ICAP partial-reconfiguration bandwidth (bytes per second).
inline constexpr double kIcapBytesPerSec = 180e6;

/// Data memory geometry: 512 x 48-bit words (two 512x48 dual-port BRAMs).
inline constexpr int kDataMemWords = 512;
/// Instruction memory geometry: 512 x 72-bit words.
inline constexpr int kInstMemWords = 512;

/// Bits per data word / instruction word / link.
inline constexpr int kDataWordBits = 48;
inline constexpr int kInstWordBits = 72;
inline constexpr int kLinkWires = 48;

/// Cost model for ICAP-driven partial reconfiguration.
struct IcapModel {
  double bytes_per_sec = kIcapBytesPerSec;

  /// ns to stream `bytes` through the ICAP.
  [[nodiscard]] Nanoseconds ns_for_bytes(double bytes) const noexcept {
    return bytes / bytes_per_sec * 1e9;
  }
  /// ns to reload one 48-bit data-memory word (paper: 33.33 ns).
  [[nodiscard]] Nanoseconds ns_per_data_word() const noexcept {
    return ns_for_bytes(kDataWordBits / 8.0);
  }
  /// ns to reload one 72-bit instruction word (50 ns at 180 MB/s).
  [[nodiscard]] Nanoseconds ns_per_inst_word() const noexcept {
    return ns_for_bytes(kInstWordBits / 8.0);
  }
  /// ns to reload `n` data words.
  [[nodiscard]] Nanoseconds data_reload_ns(std::int64_t n) const noexcept {
    return ns_per_data_word() * static_cast<double>(n);
  }
  /// ns to reload `n` instruction words.
  [[nodiscard]] Nanoseconds inst_reload_ns(std::int64_t n) const noexcept {
    return ns_per_inst_word() * static_cast<double>(n);
  }
};

/// Convert a cycle count to nanoseconds at the fabric clock.
constexpr Nanoseconds cycles_to_ns(std::int64_t cycles) noexcept {
  return static_cast<double>(cycles) * kCycleNs;
}

/// Convert nanoseconds to whole cycles (rounding up: a tile cannot resume
/// mid-cycle after reconfiguration).
constexpr std::int64_t ns_to_cycles_ceil(Nanoseconds ns) noexcept {
  const double cycles = ns / kCycleNs;
  const auto whole = static_cast<std::int64_t>(cycles);
  return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

}  // namespace cgra

#include "common/fixed_complex.hpp"

#include <cmath>

namespace cgra {

std::int32_t saturate_half(std::int64_t v) noexcept {
  if (v > kHalfMax) return kHalfMax;
  if (v < kHalfMin) return kHalfMin;
  return static_cast<std::int32_t>(v);
}

std::int32_t double_to_half(double v) noexcept {
  const double scaled = v * kFixedScale;
  // llround saturates poorly on huge inputs; clamp in double space first.
  const double lo = static_cast<double>(kHalfMin);
  const double hi = static_cast<double>(kHalfMax);
  const double clamped = scaled < lo ? lo : (scaled > hi ? hi : scaled);
  return saturate_half(std::llround(clamped));
}

double half_to_double(std::int32_t h) noexcept {
  return static_cast<double>(h) / kFixedScale;
}

Word pack_complex(FixedComplex c) noexcept {
  const auto re = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(c.re) & ((1u << kHalfBits) - 1));
  const auto im = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(c.im) & ((1u << kHalfBits) - 1));
  return truncate_word((re << kHalfBits) | im);
}

namespace {
std::int32_t sign_extend_half(std::uint32_t h) noexcept {
  const std::uint32_t sign_bit = 1u << (kHalfBits - 1);
  const std::uint32_t mask = (1u << kHalfBits) - 1;
  const std::uint32_t payload = h & mask;
  return (payload & sign_bit) != 0
             ? static_cast<std::int32_t>(payload | ~mask)
             : static_cast<std::int32_t>(payload);
}
}  // namespace

FixedComplex unpack_complex(Word w) noexcept {
  FixedComplex c;
  c.re = sign_extend_half(static_cast<std::uint32_t>((w >> kHalfBits)));
  c.im = sign_extend_half(static_cast<std::uint32_t>(w));
  return c;
}

FixedComplex to_fixed(std::complex<double> z) noexcept {
  return FixedComplex{double_to_half(z.real()), double_to_half(z.imag())};
}

std::complex<double> to_double(FixedComplex c) noexcept {
  return {half_to_double(c.re), half_to_double(c.im)};
}

FixedComplex cadd(FixedComplex a, FixedComplex b) noexcept {
  return FixedComplex{
      saturate_half(static_cast<std::int64_t>(a.re) + b.re),
      saturate_half(static_cast<std::int64_t>(a.im) + b.im)};
}

FixedComplex csub(FixedComplex a, FixedComplex b) noexcept {
  return FixedComplex{
      saturate_half(static_cast<std::int64_t>(a.re) - b.re),
      saturate_half(static_cast<std::int64_t>(a.im) - b.im)};
}

namespace {
// Round-to-nearest arithmetic shift by kFixedFracBits.
std::int64_t renorm(std::int64_t v) noexcept {
  const std::int64_t half = std::int64_t{1} << (kFixedFracBits - 1);
  return (v + half) >> kFixedFracBits;
}
}  // namespace

FixedComplex cmul(FixedComplex a, FixedComplex b) noexcept {
  const std::int64_t re = static_cast<std::int64_t>(a.re) * b.re -
                          static_cast<std::int64_t>(a.im) * b.im;
  const std::int64_t im = static_cast<std::int64_t>(a.re) * b.im +
                          static_cast<std::int64_t>(a.im) * b.re;
  return FixedComplex{saturate_half(renorm(re)), saturate_half(renorm(im))};
}

Word word_cadd(Word a, Word b) noexcept {
  return pack_complex(cadd(unpack_complex(a), unpack_complex(b)));
}

Word word_csub(Word a, Word b) noexcept {
  return pack_complex(csub(unpack_complex(a), unpack_complex(b)));
}

Word word_cmul(Word a, Word b) noexcept {
  return pack_complex(cmul(unpack_complex(a), unpack_complex(b)));
}

}  // namespace cgra

#include "common/prng.hpp"

// ODR anchor for the header-only SplitMix64.
namespace cgra {
static_assert(SplitMix64(1).next_below(10) < 10);
}  // namespace cgra

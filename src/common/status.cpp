#include "common/status.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <vector>

namespace cgra {

Status Status::errorf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string message;
  if (needed > 0) {
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    message.assign(buf.data(), static_cast<std::size_t>(needed));
  }
  va_end(args);
  return error(std::move(message));
}

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kError: return "error";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kUnknownOutcome: return "unknown-outcome";
  }
  return "unknown";
}

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kIllegalOpcode: return "illegal-opcode";
    case FaultKind::kPcOutOfRange: return "pc-out-of-range";
    case FaultKind::kAddressOutOfRange: return "address-out-of-range";
    case FaultKind::kNoActiveLink: return "no-active-link";
    case FaultKind::kIcapCorruption: return "icap-corruption";
    case FaultKind::kWatchdogTimeout: return "watchdog-timeout";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kTileDead: return "tile-dead";
  }
  return "unknown";
}

bool fault_is_transient(FaultKind kind) noexcept {
  switch (kind) {
    // An SEU in a memory or a corrupted ICAP transfer manifests as one of
    // these; scrubbing (re-streaming the intended configuration) clears it.
    case FaultKind::kIllegalOpcode:
    case FaultKind::kPcOutOfRange:
    case FaultKind::kAddressOutOfRange:
    case FaultKind::kIcapCorruption:
    case FaultKind::kWatchdogTimeout:
      return true;
    case FaultKind::kNone:
    case FaultKind::kNoActiveLink:
    case FaultKind::kLinkDown:
    case FaultKind::kTileDead:
      return false;
  }
  return false;
}

bool fault_is_permanent(FaultKind kind) noexcept {
  return kind == FaultKind::kLinkDown || kind == FaultKind::kTileDead;
}

std::string Fault::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << " at tile " << tile << " pc " << pc
     << " cycle " << cycle;
  return os.str();
}

}  // namespace cgra

#include "common/status.hpp"

#include <sstream>

namespace cgra {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kIllegalOpcode: return "illegal-opcode";
    case FaultKind::kPcOutOfRange: return "pc-out-of-range";
    case FaultKind::kAddressOutOfRange: return "address-out-of-range";
    case FaultKind::kNoActiveLink: return "no-active-link";
    case FaultKind::kDivideByZero: return "divide-by-zero";
  }
  return "unknown";
}

std::string Fault::describe() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << " at tile " << tile << " pc " << pc
     << " cycle " << cycle;
  return os.str();
}

}  // namespace cgra

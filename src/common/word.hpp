// 48-bit machine word of the reMORPH-style tile.
//
// The fabric operates on 48-bit words (the paper: "supports these operations
// on a 48 bit word").  We store a word in the low 48 bits of a uint64_t and
// provide wrapping arithmetic plus signed interpretation helpers.
#pragma once

#include <cstdint>
#include <string>

namespace cgra {

/// Number of payload bits in a fabric word.
inline constexpr int kWordBits = 48;
/// Mask selecting the 48 payload bits.
inline constexpr std::uint64_t kWordMask = (std::uint64_t{1} << kWordBits) - 1;

/// A 48-bit fabric word stored in the low bits of a uint64_t.
using Word = std::uint64_t;

/// Truncate an arbitrary 64-bit value to a 48-bit word (two's complement wrap).
constexpr Word truncate_word(std::uint64_t v) noexcept { return v & kWordMask; }

/// Interpret a 48-bit word as a signed value (sign-extend bit 47).
constexpr std::int64_t to_signed(Word w) noexcept {
  const std::uint64_t sign_bit = std::uint64_t{1} << (kWordBits - 1);
  const std::uint64_t payload = w & kWordMask;
  return (payload & sign_bit) != 0
             ? static_cast<std::int64_t>(payload | ~kWordMask)
             : static_cast<std::int64_t>(payload);
}

/// Encode a signed 64-bit value into a 48-bit word (two's complement wrap).
constexpr Word from_signed(std::int64_t v) noexcept {
  return truncate_word(static_cast<std::uint64_t>(v));
}

/// Wrapping 48-bit addition.
constexpr Word word_add(Word a, Word b) noexcept { return truncate_word(a + b); }
/// Wrapping 48-bit subtraction.
constexpr Word word_sub(Word a, Word b) noexcept { return truncate_word(a - b); }
/// Wrapping 48-bit multiplication (low 48 bits of the product).
constexpr Word word_mul(Word a, Word b) noexcept {
  return from_signed(to_signed(a) * to_signed(b));
}

/// Hex rendering ("0x0123456789ab") used by the disassembler and dumps.
std::string word_to_hex(Word w);

}  // namespace cgra

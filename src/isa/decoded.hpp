// Predecoded instruction form for the fabric fast path.
//
// The interpreter used to re-derive, on every retired instruction, facts
// that are fixed at configuration time: which operands the opcode reads,
// whether the destination is written, every addressing-mode flag bit, the
// sign-extended immediate, and whether a direct address field is inside the
// 512-word data memory.  A DecodedInstr resolves all of that once, when a
// program is loaded (or when fault injection pokes an instruction slot), so
// the per-cycle dispatch touches only plain pre-split fields.
//
// Invariants (docs/ARCHITECTURE.md, "Execution engine"):
//   * predecode(decode(encode(i))) is consistent with interpreting `i`
//     directly — predecoding changes no architectural semantics.
//   * A slot whose opcode field no longer decodes (SEU poisoning) predecodes
//     with `illegal = true` and raises kIllegalOpcode when executed.
//   * `*_oob` pre-resolves the bounds check of the 12-bit address FIELD
//     (the direct address, or the pointer's own location when indirect);
//     indirect addresses still validate the pointer VALUE at run time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/timing.hpp"
#include "common/word.hpp"
#include "isa/instruction.hpp"

namespace cgra::isa {

/// One instruction, flattened for the interpreter hot loop.
struct DecodedInstr {
  Opcode opcode = Opcode::kNop;
  bool illegal = false;       ///< Poisoned slot: raise kIllegalOpcode.

  // --- operand fetch ---
  bool reads_srca = false;
  bool srca_indirect = false;
  bool srca_oob = false;      ///< srcA field (address or pointer location)
                              ///< exceeds the data memory: static fault.
  bool reads_srcb = false;    ///< Opcode consumes opB (memory or immediate).
  bool use_imm = false;       ///< opB comes from the immediate.
  bool srcb_indirect = false;
  bool srcb_oob = false;      ///< srcB field exceeds the data memory.

  // --- write back ---
  bool writes_dst = false;
  bool dst_remote = false;    ///< Write lands in the linked neighbour.
  bool dst_indirect = false;
  bool dst_oob = false;       ///< dst field exceeds the data memory.

  std::uint16_t dst = 0;
  std::uint16_t srca = 0;
  std::uint16_t srcb = 0;
  std::int32_t imm = 0;       ///< Branch target / raw immediate.
  Word imm_word = 0;          ///< from_signed(imm), precomputed.
};

/// Flatten one instruction.  Handles the poisoned kOpcodeCount slot.
[[nodiscard]] DecodedInstr predecode(const Instruction& in) noexcept;

/// Flatten a whole instruction image (load_program).
[[nodiscard]] std::vector<DecodedInstr> predecode_all(
    const std::vector<Instruction>& code);

}  // namespace cgra::isa

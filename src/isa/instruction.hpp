// The tile instruction set.
//
// reMORPH never published its encodings; we define a 72-bit memory-to-memory
// ISA with the documented capabilities: 48-bit ALU and packed-complex ops,
// two reads + one write per instruction (matching the dual-port data memory),
// direct and register-indirect addressing, immediates, branches for C-style
// loops, and remote writes into the neighbour connected by the active link.
//
// Encoding (72 bits):
//   [71:66] opcode   [65:60] flags   [59:48] dst
//   [47:36] srcA     [35:24] srcB    [23:0]  imm (two's complement)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/word.hpp"

namespace cgra::isa {

/// Opcode space (6 bits).
enum class Opcode : std::uint8_t {
  kNop = 0,   ///< No operation.
  kHalt,      ///< Stop the tile; it stays halted until reprogrammed.
  kMov,       ///< dst <- [srcA]
  kMovi,      ///< dst <- sign_extend(imm)
  kAdd,       ///< dst <- [srcA] + opB   (48-bit wrap)
  kSub,       ///< dst <- [srcA] - opB
  kMul,       ///< dst <- [srcA] * opB   (low 48 bits, signed)
  kAnd,       ///< dst <- [srcA] & opB
  kOrr,       ///< dst <- [srcA] | opB
  kXor,       ///< dst <- [srcA] ^ opB
  kShl,       ///< dst <- [srcA] << (opB & 63)
  kShr,       ///< dst <- [srcA] >> (opB & 63)  logical
  kSra,       ///< dst <- [srcA] >> (opB & 63)  arithmetic
  kCadd,      ///< dst <- [srcA] +c opB  packed Q3.20 complex, saturating
  kCsub,      ///< dst <- [srcA] -c opB
  kCmul,      ///< dst <- [srcA] *c opB  renormalised Q3.20
  kBeqz,      ///< if [srcA] == 0 then pc <- imm
  kBnez,      ///< if [srcA] != 0 then pc <- imm
  kBltz,      ///< if signed([srcA]) < 0 then pc <- imm
  kJmp,       ///< pc <- imm
  // DSP-macro accumulator ops: the FPGA's hard DSP48 keeps a private
  // accumulator, so multiply-accumulate needs no third memory read and the
  // 2R1W data-memory constraint still holds.
  kMacz,      ///< acc <- [srcA] * opB
  kMac,       ///< acc <- acc + [srcA] * opB
  kMacr,      ///< dst <- acc (truncated to 48 bits)
  kOpcodeCount
};

/// Flag bits (6 bits).
enum InstrFlag : std::uint8_t {
  kFlagDstIndirect = 1u << 0,   ///< dst address = [dst] (register-indirect).
  kFlagSrcAIndirect = 1u << 1,  ///< srcA address = [srcA].
  kFlagSrcBIndirect = 1u << 2,  ///< srcB address = [srcB].
  kFlagDstRemote = 1u << 3,     ///< Write lands in the linked neighbour.
  kFlagUseImm = 1u << 4,        ///< opB = sign_extend(imm) instead of [srcB].
};

/// Field widths / masks.
inline constexpr int kAddrFieldBits = 12;
inline constexpr std::uint32_t kAddrFieldMask = (1u << kAddrFieldBits) - 1;
inline constexpr int kImmBits = 24;
inline constexpr std::int32_t kImmMax = (1 << (kImmBits - 1)) - 1;
inline constexpr std::int32_t kImmMin = -(1 << (kImmBits - 1));

/// A decoded instruction.
struct Instruction {
  Opcode opcode = Opcode::kNop;
  std::uint8_t flags = 0;
  std::uint16_t dst = 0;   ///< 12-bit address field.
  std::uint16_t srca = 0;  ///< 12-bit address field.
  std::uint16_t srcb = 0;  ///< 12-bit address field.
  std::int32_t imm = 0;    ///< 24-bit signed immediate.

  [[nodiscard]] bool has_flag(InstrFlag f) const noexcept {
    return (flags & f) != 0;
  }
  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// A raw 72-bit instruction word: bits [71:64] in `hi`, [63:0] in `lo`.
struct EncodedInstr {
  std::uint64_t lo = 0;
  std::uint8_t hi = 0;
  friend bool operator==(const EncodedInstr&, const EncodedInstr&) = default;
};

/// Encode to the 72-bit form.  Fields are masked to their widths.
EncodedInstr encode(const Instruction& in) noexcept;

/// Decode a 72-bit word.  Returns nullopt if the opcode field is undefined.
std::optional<Instruction> decode(EncodedInstr raw) noexcept;

/// Mnemonic of an opcode ("cmul", "bnez", ...).
const char* mnemonic(Opcode op) noexcept;

/// Opcode from a mnemonic, or nullopt.
std::optional<Opcode> opcode_from_mnemonic(const std::string& name) noexcept;

// Opcode property helpers.  constexpr so the templated execution engines
// (src/fabric/step_core.hpp) fold them away when the opcode is a template
// parameter; the interpreter calls them with runtime opcodes as before.

/// Whether this opcode writes its dst field.
[[nodiscard]] constexpr bool writes_dst(Opcode op) noexcept {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kBeqz:
    case Opcode::kBnez:
    case Opcode::kBltz:
    case Opcode::kJmp:
    case Opcode::kMacz:
    case Opcode::kMac:
      return false;
    default:
      return true;
  }
}

/// Whether this opcode reads srcA / may read srcB.
[[nodiscard]] constexpr bool reads_srca(Opcode op) noexcept {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kMovi:
    case Opcode::kJmp:
    case Opcode::kMacr:
      return false;
    default:
      return true;
  }
}

[[nodiscard]] constexpr bool reads_srcb(Opcode op) noexcept {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOrr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSra:
    case Opcode::kCadd:
    case Opcode::kCsub:
    case Opcode::kCmul:
    case Opcode::kMacz:
    case Opcode::kMac:
      return true;
    default:
      return false;
  }
}

/// Whether this opcode is a control-flow instruction using imm as target.
[[nodiscard]] constexpr bool is_branch(Opcode op) noexcept {
  switch (op) {
    case Opcode::kBeqz:
    case Opcode::kBnez:
    case Opcode::kBltz:
    case Opcode::kJmp:
      return true;
    default:
      return false;
  }
}

}  // namespace cgra::isa

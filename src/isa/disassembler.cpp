#include "isa/disassembler.hpp"

#include <sstream>

namespace cgra::isa {

namespace {
std::string dst_text(const Instruction& in) {
  std::string out;
  if (in.has_flag(kFlagDstRemote)) out += "!";
  out += std::to_string(in.dst);
  if (in.has_flag(kFlagDstIndirect)) out += "*";
  return out;
}
std::string srca_text(const Instruction& in) {
  std::string out = std::to_string(in.srca);
  if (in.has_flag(kFlagSrcAIndirect)) out += "*";
  return out;
}
std::string srcb_text(const Instruction& in) {
  if (in.has_flag(kFlagUseImm)) return "#" + std::to_string(in.imm);
  std::string out = std::to_string(in.srcb);
  if (in.has_flag(kFlagSrcBIndirect)) out += "*";
  return out;
}
}  // namespace

std::string disassemble(const Instruction& in) {
  std::ostringstream os;
  os << mnemonic(in.opcode);
  switch (in.opcode) {
    case Opcode::kNop:
    case Opcode::kHalt:
      break;
    case Opcode::kMov:
      os << ' ' << dst_text(in) << ", " << srca_text(in);
      break;
    case Opcode::kMovi:
      os << ' ' << dst_text(in) << ", #" << in.imm;
      break;
    case Opcode::kBeqz:
    case Opcode::kBnez:
    case Opcode::kBltz:
      os << ' ' << srca_text(in) << ", " << in.imm;
      break;
    case Opcode::kJmp:
      os << ' ' << in.imm;
      break;
    case Opcode::kMacz:
    case Opcode::kMac:
      os << ' ' << srca_text(in) << ", " << srcb_text(in);
      break;
    case Opcode::kMacr:
      os << ' ' << dst_text(in);
      break;
    case Opcode::kOpcodeCount:
      break;
    default:
      os << ' ' << dst_text(in) << ", " << srca_text(in) << ", "
         << srcb_text(in);
      break;
  }
  return os.str();
}

std::string disassemble(const Program& prog) {
  std::ostringstream os;
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    os << disassemble(prog.code[i]) << "    ; [" << i << "]\n";
  }
  return os.str();
}

}  // namespace cgra::isa

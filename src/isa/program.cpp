#include "isa/program.hpp"

namespace cgra::isa {

std::vector<EncodedInstr> Program::encoded() const {
  std::vector<EncodedInstr> out;
  out.reserve(code.size());
  for (const auto& in : code) out.push_back(encode(in));
  return out;
}

}  // namespace cgra::isa

// Basic-block segmentation over a predecoded instruction image.
//
// The threaded execution engine (src/engine/threaded_engine.cpp) specializes
// each tile's program into straight-line superinstruction runs; the unit of
// specialization is the basic block.  Leaders are pc 0, every in-range
// branch target, and the instruction after any control-flow or halt
// instruction.  Out-of-range branch targets start no block: taking such a
// branch raises kPcOutOfRange on the next cycle, which block boundaries do
// not affect.
//
// Segmentation is purely structural — it derives from the DecodedInstr
// image alone and changes no semantics.  A tile's blocks are recomputed
// whenever Tile::code_version() moves.
#pragma once

#include <vector>

#include "isa/decoded.hpp"

namespace cgra::isa {

/// How a basic block ends.
enum class BlockTerm {
  kFallthrough,  ///< Next instruction is a leader (branch target).
  kBranch,       ///< Conditional branch (beqz/bnez/bltz): two successors.
  kJump,         ///< Unconditional jmp.
  kHalt,         ///< halt instruction.
  kEnd,          ///< Runs off the end of the image (pc fault next cycle).
};

/// One basic block: instructions [begin, end) of the image.
struct Block {
  int begin = 0;
  int end = 0;  ///< One past the last instruction.
  BlockTerm term = BlockTerm::kEnd;

  [[nodiscard]] int size() const noexcept { return end - begin; }
};

/// Partition `code` into basic blocks, ordered by `begin` and covering the
/// whole image exactly once.  Empty image -> empty vector.
[[nodiscard]] std::vector<Block> segment_blocks(
    const std::vector<DecodedInstr>& code);

}  // namespace cgra::isa

// Disassembler: renders instructions back into assembler syntax.
//
// disassemble(assemble(text).program) reassembles to the same encodings
// (label names are lost; branch targets become numeric), which the test
// suite asserts as a round-trip property.
#pragma once

#include <string>

#include "isa/instruction.hpp"
#include "isa/program.hpp"

namespace cgra::isa {

/// Render one instruction ("cmul 10, 20*, 30*").
std::string disassemble(const Instruction& in);

/// Render a whole program, one instruction per line with index comments.
std::string disassemble(const Program& prog);

}  // namespace cgra::isa

// A tile program: instruction image plus data-memory initialisation.
//
// This is the unit of (re)configuration: loading a Program into a tile via
// the ICAP costs inst_words * 50 ns + data_words * 33.33 ns in the timing
// model (see config/ReconfigController).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/word.hpp"
#include "isa/instruction.hpp"

namespace cgra::isa {

/// One data-memory initialisation: dmem[addr] = value.
struct DataPatch {
  int addr = 0;
  Word value = 0;
  friend bool operator==(const DataPatch&, const DataPatch&) = default;
};

/// An assembled tile program.
struct Program {
  std::vector<Instruction> code;      ///< Decoded instruction stream.
  std::vector<DataPatch> data;        ///< Data-memory initial contents.
  std::map<std::string, int> labels;  ///< Code labels -> instruction index.
  std::map<std::string, std::int64_t> symbols;  ///< .equ symbol values.

  /// Number of 72-bit instruction words (reconfiguration footprint).
  [[nodiscard]] int inst_words() const noexcept {
    return static_cast<int>(code.size());
  }
  /// Number of 48-bit data words initialised (reconfiguration footprint).
  [[nodiscard]] int data_words() const noexcept {
    return static_cast<int>(data.size());
  }

  /// Encoded 72-bit image, in instruction order.
  [[nodiscard]] std::vector<EncodedInstr> encoded() const;
};

}  // namespace cgra::isa

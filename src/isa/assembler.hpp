// Two-pass assembler for the tile ISA.
//
// Syntax (one statement per line, ';' starts a comment):
//
//   .equ NAME, expr              define a symbol
//   .data addr, v0, v1, ...      initialise dmem[addr..] with 48-bit values
//   .cdata addr, re, im          initialise dmem[addr] with a packed Q3.20
//                                complex constant (floats accepted)
//   label:                       code label (instruction index)
//   mnemonic operands            see below
//
// Operand forms:
//   expr        direct data-memory address
//   expr*       register-indirect: effective address = dmem[expr]
//   !expr       remote: write into the linked neighbour (dst only)
//   !expr*      remote + indirect
//   #expr       immediate (srcB position only; also movi's operand)
//
// Expressions are integer literals (decimal or 0x hex), .equ symbols and
// code labels combined with + and - (left associative).
//
// Operand shapes per mnemonic:
//   nop | halt
//   mov   dst, srcA
//   movi  dst, #imm
//   add|sub|mul|and|orr|xor|shl|shr|sra|cadd|csub|cmul  dst, srcA, (srcB|#imm)
//   beqz|bnez|bltz  srcA, target
//   jmp   target
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace cgra::isa {

/// Outcome of assembling one source unit.
struct AssembleResult {
  Program program;                  ///< Valid only if status.ok().
  Status status;                    ///< First error, or ok.
  std::vector<std::string> errors;  ///< All diagnostics ("line N: ...").

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// Assemble `source` into a Program.
AssembleResult assemble(const std::string& source);

}  // namespace cgra::isa

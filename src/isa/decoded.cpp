#include "isa/decoded.hpp"

namespace cgra::isa {

DecodedInstr predecode(const Instruction& in) noexcept {
  DecodedInstr d;
  d.opcode = in.opcode;
  d.dst = in.dst;
  d.srca = in.srca;
  d.srcb = in.srcb;
  d.imm = in.imm;
  d.imm_word = from_signed(in.imm);

  if (in.opcode >= Opcode::kOpcodeCount) {
    // A poisoned slot executes as "raise kIllegalOpcode": no operand fetch,
    // no write back (the interpreter faults before either).
    d.illegal = true;
    return d;
  }

  d.reads_srca = isa::reads_srca(in.opcode);
  d.srca_indirect = in.has_flag(kFlagSrcAIndirect);
  d.srca_oob = d.reads_srca && in.srca >= kDataMemWords;

  d.reads_srcb = isa::reads_srcb(in.opcode);
  d.use_imm = in.has_flag(kFlagUseImm);
  d.srcb_indirect = in.has_flag(kFlagSrcBIndirect);
  d.srcb_oob = d.reads_srcb && !d.use_imm && in.srcb >= kDataMemWords;

  d.writes_dst = isa::writes_dst(in.opcode);
  d.dst_remote = in.has_flag(kFlagDstRemote);
  d.dst_indirect = in.has_flag(kFlagDstIndirect);
  d.dst_oob = d.writes_dst && in.dst >= kDataMemWords;

  return d;
}

std::vector<DecodedInstr> predecode_all(
    const std::vector<Instruction>& code) {
  std::vector<DecodedInstr> out;
  out.reserve(code.size());
  for (const auto& in : code) out.push_back(predecode(in));
  return out;
}

}  // namespace cgra::isa

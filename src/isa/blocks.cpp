#include "isa/blocks.hpp"

#include <cstddef>

#include "isa/instruction.hpp"

namespace cgra::isa {

std::vector<Block> segment_blocks(const std::vector<DecodedInstr>& code) {
  const int n = static_cast<int>(code.size());
  std::vector<Block> blocks;
  if (n == 0) return blocks;

  // Pass 1: leaders.  A poisoned (illegal) slot predecodes with the raw
  // opcode field, so consult the decoded roles only on legal slots.
  std::vector<std::uint8_t> leader(static_cast<std::size_t>(n), 0);
  leader[0] = 1;
  for (int i = 0; i < n; ++i) {
    const DecodedInstr& in = code[static_cast<std::size_t>(i)];
    if (in.illegal) continue;
    if (is_branch(in.opcode)) {
      if (in.imm >= 0 && in.imm < n) leader[static_cast<std::size_t>(in.imm)] = 1;
      if (i + 1 < n) leader[static_cast<std::size_t>(i + 1)] = 1;
    } else if (in.opcode == Opcode::kHalt) {
      if (i + 1 < n) leader[static_cast<std::size_t>(i + 1)] = 1;
    }
  }

  // Pass 2: cut blocks at leaders and control flow.
  int begin = 0;
  for (int i = 0; i < n; ++i) {
    const DecodedInstr& in = code[static_cast<std::size_t>(i)];
    const bool last = i + 1 == n;
    BlockTerm term = BlockTerm::kFallthrough;
    bool cut = false;
    if (!in.illegal && is_branch(in.opcode)) {
      term = in.opcode == Opcode::kJmp ? BlockTerm::kJump : BlockTerm::kBranch;
      cut = true;
    } else if (!in.illegal && in.opcode == Opcode::kHalt) {
      term = BlockTerm::kHalt;
      cut = true;
    } else if (last) {
      term = BlockTerm::kEnd;
      cut = true;
    } else if (leader[static_cast<std::size_t>(i + 1)] != 0) {
      term = BlockTerm::kFallthrough;
      cut = true;
    }
    if (cut) {
      blocks.push_back(Block{begin, i + 1, term});
      begin = i + 1;
    }
  }
  return blocks;
}

}  // namespace cgra::isa

#include "isa/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "common/fixed_complex.hpp"

namespace cgra::isa {
namespace {

/// One parsed operand before encoding.
struct Operand {
  std::string expr;      ///< Textual expression (resolved in pass 2).
  bool indirect = false;
  bool remote = false;
  bool immediate = false;
};

/// One parsed statement.
struct Stmt {
  int line = 0;
  std::string mnemonic;           ///< Lower-case mnemonic (code lines only).
  std::vector<Operand> operands;  ///< For code lines.
  bool is_directive = false;
  std::string directive;               ///< ".equ" | ".data" | ".cdata"
  std::vector<std::string> dir_args;   ///< Raw directive arguments.
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  const std::string last = trim(cur);
  if (!last.empty() || !out.empty()) out.push_back(last);
  return out;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.';
}

/// Collects diagnostics with line numbers.
class Diag {
 public:
  void error(int line, const std::string& msg) {
    std::ostringstream os;
    os << "line " << line << ": " << msg;
    errors_.push_back(os.str());
  }
  [[nodiscard]] bool has_errors() const noexcept { return !errors_.empty(); }
  [[nodiscard]] std::vector<std::string> take() { return std::move(errors_); }

 private:
  std::vector<std::string> errors_;
};

/// Expression evaluator over symbols + labels: term (('+'|'-') term)*.
class ExprEval {
 public:
  ExprEval(const std::map<std::string, std::int64_t>& symbols,
           const std::map<std::string, int>& labels)
      : symbols_(symbols), labels_(labels) {}

  std::optional<std::int64_t> eval(const std::string& text,
                                   std::string* err) const {
    std::size_t pos = 0;
    auto first = term(text, pos, err);
    if (!first) return std::nullopt;
    std::int64_t acc = *first;
    skip_ws(text, pos);
    while (pos < text.size()) {
      const char op = text[pos];
      if (op != '+' && op != '-') {
        if (err != nullptr) *err = "unexpected character '" + std::string(1, op) + "'";
        return std::nullopt;
      }
      ++pos;
      auto rhs = term(text, pos, err);
      if (!rhs) return std::nullopt;
      acc = (op == '+') ? acc + *rhs : acc - *rhs;
      skip_ws(text, pos);
    }
    return acc;
  }

 private:
  static void skip_ws(const std::string& t, std::size_t& pos) {
    while (pos < t.size() &&
           std::isspace(static_cast<unsigned char>(t[pos])) != 0) {
      ++pos;
    }
  }

  std::optional<std::int64_t> term(const std::string& t, std::size_t& pos,
                                   std::string* err) const {
    skip_ws(t, pos);
    if (pos >= t.size()) {
      if (err != nullptr) *err = "empty expression";
      return std::nullopt;
    }
    bool neg = false;
    if (t[pos] == '-' || t[pos] == '+') {
      neg = t[pos] == '-';
      ++pos;
      skip_ws(t, pos);
    }
    if (pos >= t.size()) {
      if (err != nullptr) *err = "dangling sign";
      return std::nullopt;
    }
    std::int64_t value = 0;
    if (std::isdigit(static_cast<unsigned char>(t[pos])) != 0) {
      char* end = nullptr;
      value = std::strtoll(t.c_str() + pos, &end, 0);
      pos = static_cast<std::size_t>(end - t.c_str());
    } else if (is_ident_start(t[pos])) {
      std::size_t start = pos;
      while (pos < t.size() && is_ident_char(t[pos])) ++pos;
      const std::string name = t.substr(start, pos - start);
      if (auto it = symbols_.find(name); it != symbols_.end()) {
        value = it->second;
      } else if (auto jt = labels_.find(name); jt != labels_.end()) {
        value = jt->second;
      } else {
        if (err != nullptr) *err = "undefined symbol '" + name + "'";
        return std::nullopt;
      }
    } else {
      if (err != nullptr) {
        *err = "bad expression character '" + std::string(1, t[pos]) + "'";
      }
      return std::nullopt;
    }
    return neg ? -value : value;
  }

  const std::map<std::string, std::int64_t>& symbols_;
  const std::map<std::string, int>& labels_;
};

std::optional<Operand> parse_operand(std::string text, std::string* err) {
  Operand op;
  text = trim(text);
  if (text.empty()) {
    *err = "empty operand";
    return std::nullopt;
  }
  if (text.front() == '#') {
    op.immediate = true;
    text = trim(text.substr(1));
  }
  if (!text.empty() && text.front() == '!') {
    op.remote = true;
    text = trim(text.substr(1));
  }
  if (!text.empty() && text.back() == '*') {
    op.indirect = true;
    text = trim(text.substr(0, text.size() - 1));
  }
  if (text.empty()) {
    *err = "operand has no expression";
    return std::nullopt;
  }
  if (op.immediate && (op.remote || op.indirect)) {
    *err = "immediate operand cannot be remote or indirect";
    return std::nullopt;
  }
  op.expr = text;
  return op;
}

}  // namespace

AssembleResult assemble(const std::string& source) {
  AssembleResult result;
  Diag diag;
  Program& prog = result.program;

  // ---- Pass 1: scan statements, collect labels and .equ symbols. ----
  std::vector<Stmt> stmts;
  {
    std::istringstream in(source);
    std::string raw;
    int line_no = 0;
    int inst_index = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      if (auto cut = raw.find(';'); cut != std::string::npos) {
        raw.resize(cut);
      }
      std::string line = trim(raw);
      if (line.empty()) continue;

      // Labels may share a line with an instruction: "loop:  add ..."
      while (true) {
        std::size_t i = 0;
        if (!is_ident_start(line[0])) break;
        while (i < line.size() && is_ident_char(line[i])) ++i;
        if (i < line.size() && line[i] == ':') {
          const std::string label = line.substr(0, i);
          if (prog.labels.count(label) != 0) {
            diag.error(line_no, "duplicate label '" + label + "'");
          }
          prog.labels[label] = inst_index;
          line = trim(line.substr(i + 1));
          if (line.empty()) break;
          continue;
        }
        break;
      }
      if (line.empty()) continue;

      Stmt stmt;
      stmt.line = line_no;
      if (line[0] == '.') {
        stmt.is_directive = true;
        std::size_t sp = line.find_first_of(" \t");
        stmt.directive = line.substr(0, sp);
        const std::string rest =
            sp == std::string::npos ? "" : trim(line.substr(sp));
        stmt.dir_args = split_commas(rest);
        if (stmt.directive == ".equ") {
          if (stmt.dir_args.size() != 2) {
            diag.error(line_no, ".equ needs NAME, expr");
          }
          // Value resolved in pass 2 (may reference earlier symbols only);
          // record the name now so labels/symbols don't collide.
        } else if (stmt.directive != ".data" && stmt.directive != ".cdata") {
          diag.error(line_no, "unknown directive '" + stmt.directive + "'");
          continue;
        }
        stmts.push_back(std::move(stmt));
        continue;
      }

      // Instruction statement.
      std::size_t sp = line.find_first_of(" \t");
      stmt.mnemonic = line.substr(0, sp);
      for (auto& c : stmt.mnemonic) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      const std::string rest =
          sp == std::string::npos ? "" : trim(line.substr(sp));
      if (!rest.empty()) {
        for (const auto& part : split_commas(rest)) {
          std::string err;
          auto op = parse_operand(part, &err);
          if (!op) {
            diag.error(line_no, err);
            op = Operand{};  // placeholder keeps operand counts aligned
          }
          stmt.operands.push_back(*op);
        }
      }
      stmts.push_back(std::move(stmt));
      ++inst_index;
    }
  }

  // ---- Pass 2: resolve expressions and encode. ----
  ExprEval eval(prog.symbols, prog.labels);

  auto eval_or = [&](const std::string& text, int line,
                     std::int64_t fallback) -> std::int64_t {
    std::string err;
    auto v = eval.eval(text, &err);
    if (!v) {
      diag.error(line, err + " in '" + text + "'");
      return fallback;
    }
    return *v;
  };

  auto addr_field = [&](const Operand& op, int line) -> std::uint16_t {
    const std::int64_t v = eval_or(op.expr, line, 0);
    if (v < 0 || v > kAddrFieldMask) {
      diag.error(line, "address out of field range: " + op.expr);
      return 0;
    }
    return static_cast<std::uint16_t>(v);
  };

  auto imm_field = [&](const Operand& op, int line) -> std::int32_t {
    const std::int64_t v = eval_or(op.expr, line, 0);
    if (v < kImmMin || v > kImmMax) {
      diag.error(line, "immediate out of 24-bit range: " + op.expr);
      return 0;
    }
    return static_cast<std::int32_t>(v);
  };

  for (const auto& stmt : stmts) {
    if (stmt.is_directive) {
      if (stmt.directive == ".equ") {
        if (stmt.dir_args.size() == 2) {
          prog.symbols[stmt.dir_args[0]] =
              eval_or(stmt.dir_args[1], stmt.line, 0);
        }
      } else if (stmt.directive == ".data") {
        if (stmt.dir_args.size() < 2) {
          diag.error(stmt.line, ".data needs addr, v0 [, v1 ...]");
          continue;
        }
        const std::int64_t base = eval_or(stmt.dir_args[0], stmt.line, 0);
        for (std::size_t i = 1; i < stmt.dir_args.size(); ++i) {
          const std::int64_t v = eval_or(stmt.dir_args[i], stmt.line, 0);
          prog.data.push_back(
              DataPatch{static_cast<int>(base + static_cast<std::int64_t>(i) - 1),
                        from_signed(v)});
        }
      } else if (stmt.directive == ".cdata") {
        if (stmt.dir_args.size() != 3) {
          diag.error(stmt.line, ".cdata needs addr, re, im");
          continue;
        }
        const std::int64_t addr = eval_or(stmt.dir_args[0], stmt.line, 0);
        char* end = nullptr;
        const double re = std::strtod(stmt.dir_args[1].c_str(), &end);
        const double im = std::strtod(stmt.dir_args[2].c_str(), &end);
        prog.data.push_back(DataPatch{
            static_cast<int>(addr),
            pack_complex(FixedComplex{double_to_half(re), double_to_half(im)})});
      }
      continue;
    }

    auto opcode = opcode_from_mnemonic(stmt.mnemonic);
    if (!opcode) {
      diag.error(stmt.line, "unknown mnemonic '" + stmt.mnemonic + "'");
      continue;
    }
    Instruction in;
    in.opcode = *opcode;
    const auto& ops = stmt.operands;
    auto expect = [&](std::size_t n) {
      if (ops.size() != n) {
        std::ostringstream os;
        os << "'" << stmt.mnemonic << "' expects " << n << " operand(s), got "
           << ops.size();
        diag.error(stmt.line, os.str());
        return false;
      }
      return true;
    };

    auto set_dst = [&](const Operand& op) {
      if (op.immediate) {
        diag.error(stmt.line, "destination cannot be immediate");
        return;
      }
      in.dst = addr_field(op, stmt.line);
      if (op.indirect) in.flags |= kFlagDstIndirect;
      if (op.remote) in.flags |= kFlagDstRemote;
    };
    auto set_srca = [&](const Operand& op) {
      if (op.immediate || op.remote) {
        diag.error(stmt.line, "srcA cannot be immediate or remote");
        return;
      }
      in.srca = addr_field(op, stmt.line);
      if (op.indirect) in.flags |= kFlagSrcAIndirect;
    };
    auto set_srcb_or_imm = [&](const Operand& op) {
      if (op.remote) {
        diag.error(stmt.line, "srcB cannot be remote");
        return;
      }
      if (op.immediate) {
        in.flags |= kFlagUseImm;
        in.imm = imm_field(op, stmt.line);
      } else {
        in.srcb = addr_field(op, stmt.line);
        if (op.indirect) in.flags |= kFlagSrcBIndirect;
      }
    };
    auto set_target = [&](const Operand& op) {
      if (op.indirect || op.remote || op.immediate) {
        diag.error(stmt.line, "branch target must be a plain expression");
        return;
      }
      in.imm = imm_field(op, stmt.line);
    };

    switch (in.opcode) {
      case Opcode::kNop:
      case Opcode::kHalt:
        expect(0);
        break;
      case Opcode::kMov:
        if (expect(2)) {
          set_dst(ops[0]);
          set_srca(ops[1]);
        }
        break;
      case Opcode::kMovi:
        if (expect(2)) {
          set_dst(ops[0]);
          if (!ops[1].immediate) {
            diag.error(stmt.line, "movi operand must be immediate (#expr)");
          } else {
            in.flags |= kFlagUseImm;
            in.imm = imm_field(ops[1], stmt.line);
          }
        }
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kAnd:
      case Opcode::kOrr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kSra:
      case Opcode::kCadd:
      case Opcode::kCsub:
      case Opcode::kCmul:
        if (expect(3)) {
          set_dst(ops[0]);
          set_srca(ops[1]);
          set_srcb_or_imm(ops[2]);
        }
        break;
      case Opcode::kBeqz:
      case Opcode::kBnez:
      case Opcode::kBltz:
        if (expect(2)) {
          set_srca(ops[0]);
          set_target(ops[1]);
        }
        break;
      case Opcode::kJmp:
        if (expect(1)) set_target(ops[0]);
        break;
      case Opcode::kMacz:
      case Opcode::kMac:
        if (expect(2)) {
          set_srca(ops[0]);
          set_srcb_or_imm(ops[1]);
        }
        break;
      case Opcode::kMacr:
        if (expect(1)) set_dst(ops[0]);
        break;
      case Opcode::kOpcodeCount:
        break;
    }
    prog.code.push_back(in);
  }

  if (diag.has_errors()) {
    result.errors = diag.take();
    result.status = Status::error(result.errors.front());
  }
  return result;
}

}  // namespace cgra::isa

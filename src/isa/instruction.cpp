#include "isa/instruction.hpp"

#include <array>

namespace cgra::isa {

namespace {
constexpr std::array<const char*, static_cast<std::size_t>(
                                      Opcode::kOpcodeCount)>
    kMnemonics = {"nop",  "halt", "mov",  "movi", "add",  "sub",
                  "mul",  "and",  "orr",  "xor",  "shl",  "shr",
                  "sra",  "cadd", "csub", "cmul", "beqz", "bnez",
                  "bltz", "jmp",  "macz", "mac",  "macr"};
}  // namespace

EncodedInstr encode(const Instruction& in) noexcept {
  const std::uint64_t opcode =
      static_cast<std::uint64_t>(in.opcode) & 0x3F;
  const std::uint64_t flags = static_cast<std::uint64_t>(in.flags) & 0x3F;
  const std::uint64_t dst = in.dst & kAddrFieldMask;
  const std::uint64_t srca = in.srca & kAddrFieldMask;
  const std::uint64_t srcb = in.srcb & kAddrFieldMask;
  const std::uint64_t imm =
      static_cast<std::uint32_t>(in.imm) & ((1u << kImmBits) - 1);

  // Assemble the 72-bit value as (hi:8, lo:64).
  // bits: opcode [71:66], flags [65:60], dst [59:48], srca [47:36],
  //       srcb [35:24], imm [23:0]
  const unsigned __int128 word =
      (static_cast<unsigned __int128>(opcode) << 66) |
      (static_cast<unsigned __int128>(flags) << 60) |
      (static_cast<unsigned __int128>(dst) << 48) | (srca << 36) |
      (srcb << 24) | imm;
  EncodedInstr out;
  out.lo = static_cast<std::uint64_t>(word);
  out.hi = static_cast<std::uint8_t>(word >> 64);
  return out;
}

std::optional<Instruction> decode(EncodedInstr raw) noexcept {
  const unsigned __int128 word =
      (static_cast<unsigned __int128>(raw.hi) << 64) | raw.lo;
  const auto opcode_field = static_cast<std::uint8_t>((word >> 66) & 0x3F);
  if (opcode_field >= static_cast<std::uint8_t>(Opcode::kOpcodeCount)) {
    return std::nullopt;
  }
  Instruction in;
  in.opcode = static_cast<Opcode>(opcode_field);
  in.flags = static_cast<std::uint8_t>((word >> 60) & 0x3F);
  in.dst = static_cast<std::uint16_t>((word >> 48) & kAddrFieldMask);
  in.srca = static_cast<std::uint16_t>((word >> 36) & kAddrFieldMask);
  in.srcb = static_cast<std::uint16_t>((word >> 24) & kAddrFieldMask);
  const auto imm_raw = static_cast<std::uint32_t>(word & ((1u << kImmBits) - 1));
  const std::uint32_t sign = 1u << (kImmBits - 1);
  in.imm = (imm_raw & sign) != 0
               ? static_cast<std::int32_t>(imm_raw | ~((1u << kImmBits) - 1))
               : static_cast<std::int32_t>(imm_raw);
  return in;
}

const char* mnemonic(Opcode op) noexcept {
  const auto idx = static_cast<std::size_t>(op);
  return idx < kMnemonics.size() ? kMnemonics[idx] : "???";
}

std::optional<Opcode> opcode_from_mnemonic(const std::string& name) noexcept {
  for (std::size_t i = 0; i < kMnemonics.size(); ++i) {
    if (name == kMnemonics[i]) return static_cast<Opcode>(i);
  }
  return std::nullopt;
}

}  // namespace cgra::isa

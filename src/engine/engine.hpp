// Pluggable execution engines: one cgra::engine API over three
// implementations (docs/ARCHITECTURE.md, "Execution engines").
//
//   * InterpreterEngine — the built-in reference interpreter, explicitly.
//   * ThreadedEngine    — per-block specialization of decoded basic blocks
//                         into templated straight-line superinstructions,
//                         re-specialized when a tile's code_version() moves
//                         (imem pokes, reloads).
//   * BatchEngine       — N same-shape fabrics stepped in lockstep over
//                         SoA tile state; same-program tiles take a
//                         vectorized path, divergent ones a scalar one.
//
// Every engine is bit-identical to the interpreter: same cycle counts,
// TileStats, fault records, remote-write commit order and trace event
// streams (tests/test_engine.cpp enforces the cross-product).  All engines
// run the one shared semantic core (fabric/step_core.hpp) and the one
// shared per-cycle sweep (fabric/exec_access.hpp), so identity holds by
// construction, not by parallel maintenance.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fabric/fabric.hpp"

namespace cgra::engine {

/// Which execution strategy drives a fabric.
enum class EngineKind { kInterp, kThreaded, kBatch };

/// Engine selection plus its tuning knobs — the one options struct shared
/// by the CLI flag, dse::Sweep and ServiceOptions.
struct EngineOptions {
  EngineKind kind = EngineKind::kInterp;
  int batch_width = 8;  ///< Lockstep replicas per batch group (kBatch).
  int threads = 0;      ///< Sweep worker threads (0 = hardware concurrency).

  friend bool operator==(const EngineOptions&, const EngineOptions&) = default;
};

/// Canonical name: "interp" | "threaded" | "batch".
[[nodiscard]] const char* engine_name(EngineKind kind) noexcept;
/// Inverse of engine_name.
[[nodiscard]] std::optional<EngineKind> engine_from_name(
    std::string_view name) noexcept;

/// Parse an engine spec: "interp", "threaded" or "batch[:width]"
/// (e.g. "batch:16").  Returns nullopt on an unknown name or a
/// non-positive width.
[[nodiscard]] std::optional<EngineOptions> parse_engine_spec(
    std::string_view spec) noexcept;
/// Render options back to a spec parse_engine_spec accepts.
[[nodiscard]] std::string engine_spec(const EngineOptions& options);

/// Common base: a fabric::ExecutionHook that knows which kind it is.
class ExecutionEngine : public fabric::ExecutionHook {
 public:
  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;
};

/// The reference interpreter as an explicit engine (attach it to pin a
/// fabric to the interpreter regardless of the process default).
class InterpreterEngine final : public ExecutionEngine {
 public:
  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kInterp;
  }
  fabric::RunResult run(fabric::Fabric& fabric,
                        std::int64_t max_cycles) override {
    return fabric.run_interpreter(max_cycles);
  }
  int step(fabric::Fabric& fabric) override {
    return fabric.step_interpreter();
  }
};

/// Superinstruction dispatch: each tile's program is specialized, per basic
/// block, into templated straight-line C++ superinstructions (the opcode /
/// remote / immediate decisions folded into the instantiation).  A
/// lone-runner tile additionally executes whole pure straight-line runs —
/// no branch, halt, remote write or possible fault — without per-cycle
/// sweep overhead.  Specializations are cached per tile and rebuilt when
/// Tile::code_version() moves.
class ThreadedEngine final : public ExecutionEngine {
 public:
  ThreadedEngine();
  ~ThreadedEngine() override;
  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kThreaded;
  }
  fabric::RunResult run(fabric::Fabric& fabric,
                        std::int64_t max_cycles) override;
  int step(fabric::Fabric& fabric) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Lockstep batch stepping: N same-shape fabrics execute cycle-for-cycle
/// over struct-of-arrays tile state (data memories interleaved by
/// instance), so same-program tiles amortize dispatch to one indirect call
/// per (tile, cycle) and the ALU work vectorizes across instances.
/// Instances that diverge (data-dependent branches, faults, halts) fall
/// back to a scalar per-instance path that is the interpreter body —
/// results stay bit-identical either way.
class BatchEngine final : public ExecutionEngine {
 public:
  explicit BatchEngine(int batch_width = 8) noexcept
      : width_(batch_width > 0 ? batch_width : 1) {}

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kBatch;
  }
  [[nodiscard]] int width() const noexcept { return width_; }

  fabric::RunResult run(fabric::Fabric& fabric,
                        std::int64_t max_cycles) override;
  int step(fabric::Fabric& fabric) override;

  /// Run every fabric for up to `max_cycles`, in lockstep.  Results are
  /// positionally matched to `fabrics`.  All fabrics must share one shape
  /// and be distinct; otherwise each runs sequentially on the interpreter
  /// (bit-identical, just unbatched).  A shared Tracer receives the same
  /// per-fabric event subsequences as sequential runs would produce, but
  /// interleaved across instances in cycle order.
  std::vector<fabric::RunResult> run_batch(
      std::span<fabric::Fabric* const> fabrics, std::int64_t max_cycles);

 private:
  int width_;
};

/// Construct an engine for `options`; kInterp returns an InterpreterEngine.
[[nodiscard]] std::unique_ptr<ExecutionEngine> make_engine(
    const EngineOptions& options);

/// Install `options` as the process-wide default: fabrics that never had an
/// engine attached resolve it lazily on first run()/step()
/// (fabric::set_default_engine_factory).  Thread-safe; kInterp clears the
/// factory so such fabrics stay on the built-in interpreter.
void use_process_engine(const EngineOptions& options);
/// The currently installed process-wide default.
[[nodiscard]] EngineOptions process_engine();

/// Install the build-configured default engine (the CGRA_DEFAULT_ENGINE
/// CMake cache variable, e.g. the CI leg that runs the whole test suite on
/// the threaded engine).  No-op when the build default is "interp".
void install_build_default();

}  // namespace cgra::engine

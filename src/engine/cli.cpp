#include "engine/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace cgra::engine {

namespace {

[[noreturn]] void bad_spec(std::string_view spec) {
  std::fprintf(stderr,
               "invalid --engine spec '%.*s' (expected interp | threaded | "
               "batch[:width])\n",
               static_cast<int>(spec.size()), spec.data());
  std::exit(2);
}

}  // namespace

EngineOptions apply_engine_flag(int* argc, char** argv) {
  std::optional<EngineOptions> chosen;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const std::string_view arg = argv[r];
    std::string_view spec;
    if (arg == "--engine") {
      if (r + 1 >= *argc) bad_spec("");
      spec = argv[++r];
    } else if (arg.starts_with("--engine=")) {
      spec = arg.substr(sizeof("--engine=") - 1);
    } else {
      argv[w++] = argv[r];
      continue;
    }
    const auto parsed = parse_engine_spec(spec);
    if (!parsed.has_value()) bad_spec(spec);
    chosen = *parsed;  // last one wins, like most flag parsers
  }
  for (int r = w; r < *argc; ++r) argv[r] = nullptr;
  *argc = w;
  if (chosen.has_value()) {
    use_process_engine(*chosen);
    return *chosen;
  }
  install_build_default();
  return process_engine();
}

}  // namespace cgra::engine

// BatchEngine: lockstep SoA stepping of N same-shape fabrics.
//
// Tile state is extracted into struct-of-arrays buffers with the instance
// index innermost (dmem word w of tile t for instance i lives at
// ((t*512 + w) * W) + i), so one instruction applied across instances
// walks contiguous memory.  Each simulated cycle sweeps tiles in ascending
// index; per tile, lanes whose instances run the same code at the same pc
// take the vectorized path — one indirect call into a superinstruction
// whose lane loop the compiler vectorizes — and divergent lanes take a
// scalar path that is the interpreter body.  Remote writes are buffered
// per instance and committed at end of cycle in ascending source order,
// exactly the interpreter's commit semantics.
//
// When no instance has a live link or a tracer (the common dense-mesh
// case), tiles cannot interact at all, and the lockstep sweep is replaced
// by isolated mode: each tile runs to its halt or the budget in one
// converged burst plus per-lane scalar tails, with the idle-cycle
// accounting settled in closed form afterwards (see run_isolated).
//
// Bit-identity: the same shared step core executes every lane, prologue
// checks and stat bumps mirror Tile::step, and stat/metric totals are
// written back as deltas so the end state equals a sequential run's.  The
// vectorized path is disabled whenever any instance has a tracer attached
// (per-event streams come from the scalar path); a tracer shared across
// instances sees each fabric's event subsequence unchanged, interleaved in
// cycle order.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/timing.hpp"
#include "engine/dispatch.hpp"
#include "engine/engine.hpp"
#include "fabric/exec_access.hpp"
#include "fabric/step_core.hpp"
#include "fabric/trace.hpp"

namespace cgra::engine {

using fabric::ExecAccess;
using fabric::Fabric;
using fabric::LinkState;
using fabric::RemoteWrite;
using fabric::RunResult;
using fabric::Tile;
using fabric::TileExec;
using fabric::TraceEvent;
using fabric::TraceEventKind;
using isa::DecodedInstr;

namespace {

/// Per-instance (per-fabric) bookkeeping.
struct Instance {
  Fabric* f = nullptr;
  std::int64_t start = 0;   ///< Fabric cycle counter at extraction.
  std::int64_t cycles = 0;  ///< Cycles executed (RunResult::cycles).
  bool done = false;
  int halted_tiles = 0;
  std::int64_t d_committed = 0;
  std::int64_t d_faults = 0;
  std::vector<RemoteWrite> rbuf;  ///< This cycle's remote writes.
  fabric::Tracer* tracer = nullptr;
  std::vector<LinkState> link;  ///< Per tile, from ExecAccess::begin.
  std::vector<int> link_target;
};

struct DenseCtx;
/// Per-pc dispatch entry for a uniform tile's dense lane loop.  `pure`
/// marks instructions that cannot branch, halt, fault or write remotely
/// (detail::pure_instr), so a burst can skip every post-step check.
struct DensePc {
  void (*fn)(DenseCtx&, const DecodedInstr&) = nullptr;
  std::uint8_t pure = 0;
};

/// The extracted lockstep state: T tiles x W instances.
struct Soa {
  int T = 0;
  int W = 0;
  bool any_tracer = false;
  int halted_total = 0;  ///< Halted tiles summed over every instance.
  std::vector<Instance> inst;
  std::vector<Word> dmem;  ///< [(t*kDataMemWords + w) * W + i]
  // Per (t, i) = t*W + i:
  std::vector<std::int64_t> acc;
  std::vector<int> pc;
  std::vector<std::uint8_t> halted;
  std::vector<Fault> fault;
  std::vector<std::int64_t> stalled_until;
  std::vector<std::int64_t> d_instr, d_stall, d_halt, d_remote;
  /// Relative cycle at which the lane's tile halted or faulted during
  /// this run; -1 while running (and for tiles halted at extraction).
  /// Isolated mode turns it into closed-form cycles_halted credit.
  std::vector<std::int64_t> halt_cycle;
  std::vector<const std::vector<DecodedInstr>*> dec;
  std::vector<std::uint8_t> uniform;  ///< Per t: identical code, all i.
  /// Per t (uniform tiles only): lane-loop fn per pc, classified once at
  /// extraction so the cycle loop dispatches with a single indexed load.
  std::vector<std::vector<DensePc>> fn_tables;

  [[nodiscard]] std::size_t ti(int t, int i) const noexcept {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(W) +
           static_cast<std::size_t>(i);
  }
  [[nodiscard]] std::size_t word(int t, int addr, int i) const noexcept {
    return (static_cast<std::size_t>(t) *
                static_cast<std::size_t>(kDataMemWords) +
            static_cast<std::size_t>(addr)) *
               static_cast<std::size_t>(W) +
           static_cast<std::size_t>(i);
  }
};

/// The step-core View over one SoA lane — same interface as TileView.
class SoaView {
 public:
  SoaView(Soa& s, int t, int i, std::int64_t cycle) noexcept
      : s_(s), t_(t), i_(i), ti_(s.ti(t, i)), cycle_(cycle) {}

  [[nodiscard]] Word load(int addr) const {
    return s_.dmem[s_.word(t_, addr, i_)];
  }
  void store(int addr, Word v) { s_.dmem[s_.word(t_, addr, i_)] = v; }
  [[nodiscard]] std::int64_t& acc() noexcept { return s_.acc[ti_]; }
  [[nodiscard]] int pc() const noexcept { return s_.pc[ti_]; }
  void set_pc(int pc) noexcept { s_.pc[ti_] = pc; }
  void raise(FaultKind kind) {
    Fault& fl = s_.fault[ti_];
    fl.kind = kind;
    fl.tile = t_;
    fl.pc = s_.pc[ti_];
    fl.cycle = cycle_;
    mark_halted();
  }
  void halt() { mark_halted(); }
  void retire() noexcept { ++s_.d_instr[ti_]; }
  void emit_remote(int addr, Word value) {
    s_.inst[static_cast<std::size_t>(i_)].rbuf.push_back(
        RemoteWrite{t_, addr, value});
    ++s_.d_remote[ti_];
  }

 private:
  void mark_halted() {
    if (s_.halted[ti_] == 0) {
      s_.halted[ti_] = 1;
      ++s_.inst[static_cast<std::size_t>(i_)].halted_tiles;
      ++s_.halted_total;
      s_.halt_cycle[ti_] =
          cycle_ - s_.inst[static_cast<std::size_t>(i_)].start;
    }
  }

  Soa& s_;
  int t_;
  int i_;
  std::size_t ti_;
  std::int64_t cycle_;
};

/// Lane context handed to the vectorized superinstructions.
struct VecCtx {
  Soa* s;
  int t;
  std::int64_t k;    ///< Relative cycle (absolute = inst.start + k).
  const int* lanes;  ///< Running instance indices.
  int n;

  [[nodiscard]] int lane_count() const noexcept { return n; }
  [[nodiscard]] SoaView view(int j) {
    const int i = lanes[j];
    return SoaView(*s, t, i,
                   s->inst[static_cast<std::size_t>(i)].start + k);
  }
  [[nodiscard]] LinkState link(int j) const {
    return s->inst[static_cast<std::size_t>(lanes[j])]
        .link[static_cast<std::size_t>(t)];
  }
  void on_fault(int j) {
    const int i = lanes[j];
    ++s->d_halt[s->ti(t, i)];  // the raising cycle lands in the halted bucket
    ++s->inst[static_cast<std::size_t>(i)].d_faults;
  }
};

/// Lane view for the dense (all-instances-runnable) cycle: lane j IS
/// instance j, so every hot access — dmem, acc, pc, retire counter — is an
/// affine function of j over a handful of loop-invariant base pointers,
/// which is what lets the compiler vectorize the lane loop across
/// instances.  Cold paths (faults, halt, remote writes) delegate to the
/// bookkeeping-carrying SoaView.
class DenseView {
 public:
  DenseView(Soa& s, int t, int j, std::int64_t k, Word* dmem_t,
            std::int64_t* acc_t, int* pc_t, std::int64_t* d_instr_t) noexcept
      : s_(s),
        t_(t),
        j_(j),
        k_(k),
        dmem_t_(dmem_t),
        acc_t_(acc_t),
        pc_t_(pc_t),
        d_instr_t_(d_instr_t) {}

  [[nodiscard]] Word load(int addr) const {
    return dmem_t_[static_cast<std::size_t>(addr) *
                       static_cast<std::size_t>(s_.W) +
                   static_cast<std::size_t>(j_)];
  }
  void store(int addr, Word v) {
    dmem_t_[static_cast<std::size_t>(addr) * static_cast<std::size_t>(s_.W) +
            static_cast<std::size_t>(j_)] = v;
  }
  [[nodiscard]] std::int64_t& acc() noexcept {
    return acc_t_[static_cast<std::size_t>(j_)];
  }
  [[nodiscard]] int pc() const noexcept {
    return pc_t_[static_cast<std::size_t>(j_)];
  }
  void set_pc(int pc) noexcept { pc_t_[static_cast<std::size_t>(j_)] = pc; }
  void retire() noexcept { ++d_instr_t_[static_cast<std::size_t>(j_)]; }
  void raise(FaultKind kind) { cold_view().raise(kind); }
  void halt() { cold_view().halt(); }
  void emit_remote(int addr, Word value) {
    cold_view().emit_remote(addr, value);
  }

 private:
  [[nodiscard]] SoaView cold_view() {
    return SoaView(s_, t_, j_,
                   s_.inst[static_cast<std::size_t>(j_)].start + k_);
  }

  Soa& s_;
  int t_;
  int j_;
  std::int64_t k_;
  Word* dmem_t_;
  std::int64_t* acc_t_;
  int* pc_t_;
  std::int64_t* d_instr_t_;
};

/// Lane context for the dense cycle: identity lane map over all W
/// instances, base pointers hoisted per tile.
struct DenseCtx {
  Soa* s;
  int t;
  std::int64_t k;
  Word* dmem_t;
  std::int64_t* acc_t;
  int* pc_t;
  std::int64_t* d_instr_t;

  DenseCtx(Soa& soa, int tile, std::int64_t cycle) noexcept
      : s(&soa),
        t(tile),
        k(cycle),
        dmem_t(soa.dmem.data() + static_cast<std::size_t>(tile) *
                                     static_cast<std::size_t>(kDataMemWords) *
                                     static_cast<std::size_t>(soa.W)),
        acc_t(soa.acc.data() + soa.ti(tile, 0)),
        pc_t(soa.pc.data() + soa.ti(tile, 0)),
        d_instr_t(soa.d_instr.data() + soa.ti(tile, 0)) {}

  [[nodiscard]] int lane_count() const noexcept { return s->W; }
  [[nodiscard]] DenseView view(int j) noexcept {
    return DenseView(*s, t, j, k, dmem_t, acc_t, pc_t, d_instr_t);
  }
  [[nodiscard]] LinkState link(int j) const {
    return s->inst[static_cast<std::size_t>(j)]
        .link[static_cast<std::size_t>(t)];
  }
  void on_fault(int j) {
    ++s->d_halt[s->ti(t, j)];  // the raising cycle lands in the halted bucket
    ++s->inst[static_cast<std::size_t>(j)].d_faults;
  }
};

void trace_fault(const Instance& in, int t, int pc, std::int64_t cycle) {
  if (in.tracer == nullptr) return;
  TraceEvent ev;
  ev.cycle = cycle;
  ev.kind = TraceEventKind::kFault;
  ev.tile = t;
  ev.pc = pc;
  const isa::Instruction* ip = in.f->tile(t).instruction_at(pc);
  if (ip != nullptr) ev.opcode = ip->opcode;
  in.tracer->record(ev);
}

/// One lane, one cycle: the interpreter body (same prologue, raise points
/// and trace events as Tile::step under ExecAccess::run_cycle).  The lane
/// is known runnable (not halted, not stalled).
void scalar_step(Soa& s, int t, int i, std::int64_t k) {
  const std::size_t ti = s.ti(t, i);
  Instance& in = s.inst[static_cast<std::size_t>(i)];
  const std::int64_t cycle = in.start + k;
  const auto& dec = *s.dec[ti];
  const int pc = s.pc[ti];
  SoaView v(s, t, i, cycle);
  if (pc < 0 || pc >= static_cast<int>(dec.size())) {
    v.raise(FaultKind::kPcOutOfRange);
    ++s.d_halt[ti];
    ++in.d_faults;
    trace_fault(in, t, pc, cycle);
    return;
  }
  if (fabric::core::exec_instr<fabric::core::DynTraits>(
          v, dec[static_cast<std::size_t>(pc)],
          in.link[static_cast<std::size_t>(t)])) {
    if (in.tracer != nullptr) {
      const isa::Instruction* ip = in.f->tile(t).instruction_at(pc);
      TraceEvent ev;
      ev.cycle = cycle;
      ev.tile = t;
      ev.pc = pc;
      if (ip != nullptr) ev.opcode = ip->opcode;
      ev.kind = (ip != nullptr && ip->opcode == isa::Opcode::kHalt)
                    ? TraceEventKind::kHalt
                    : TraceEventKind::kRetire;
      in.tracer->record(ev);
    }
  } else {
    ++s.d_halt[ti];
    ++in.d_faults;
    trace_fault(in, t, pc, cycle);
  }
}

// --- isolated mode ---------------------------------------------------------
// When no instance has a live link and no tracer is attached (and the
// cycle budget is finite), remote writes can never commit: every (tile,
// lane) evolves independently, so instead of sweeping all tiles each
// cycle we run each tile to its halt or the budget in one go and settle
// the idle-cycle accounting in closed form afterwards.  This removes the
// per-(tile, cycle) dispatch overhead that dominates dense meshes.

/// Run tile t's converged lanes (all unhalted, unstalled, same pc,
/// uniform code) for as many cycles as they stay converged, up to
/// `max_cycles`.  Pure instructions (cannot branch/halt/fault/emit) skip
/// every post-step check; others re-check halt and pc convergence.
/// Returns the relative cycle at which the burst stopped.
std::int64_t dense_burst(Soa& s, int t, std::int64_t max_cycles) {
  const int W = s.W;
  const auto& tab = s.fn_tables[static_cast<std::size_t>(t)];
  const auto& dec = *s.dec[s.ti(t, 0)];
  const int n = static_cast<int>(tab.size());
  DenseCtx c(s, t, 0);
  int pc0 = s.pc[s.ti(t, 0)];
  const int h0 = s.halted_total;
  std::int64_t k = 0;
  while (k < max_cycles) {
    if (pc0 < 0 || pc0 >= n) {
      // Same per-lane raise as scalar_step's out-of-range arm (no tracer
      // can be attached in isolated mode).
      for (int j = 0; j < W; ++j) {
        SoaView v(s, t, j, s.inst[static_cast<std::size_t>(j)].start + k);
        v.raise(FaultKind::kPcOutOfRange);
        ++s.d_halt[s.ti(t, j)];
        ++s.inst[static_cast<std::size_t>(j)].d_faults;
      }
      return k + 1;
    }
    const DensePc e = tab[static_cast<std::size_t>(pc0)];
    c.k = k;
    e.fn(c, dec[static_cast<std::size_t>(pc0)]);
    ++k;
    if (e.pure != 0) {
      ++pc0;  // a pure instruction always falls through
      continue;
    }
    if (s.halted_total != h0) break;  // some lane halted or faulted
    const int* pcs = s.pc.data() + s.ti(t, 0);
    pc0 = pcs[0];
    bool converged = true;
    for (int j = 1; j < W; ++j) converged &= (pcs[j] == pc0);
    if (!converged) break;
  }
  return k;
}

/// Run lane (t, i) alone from relative cycle max(k0, its stall expiry)
/// until it halts or the budget ends.  Idle cycles are NOT bumped here;
/// run_isolated credits them in closed form.
void scalar_tail(Soa& s, int t, int i, std::int64_t k0,
                 std::int64_t max_cycles) {
  const std::size_t ti = s.ti(t, i);
  if (s.halted[ti] != 0) return;
  std::int64_t k = std::max(
      k0,
      std::max<std::int64_t>(
          s.stalled_until[ti] - s.inst[static_cast<std::size_t>(i)].start, 0));
  while (k < max_cycles && s.halted[ti] == 0) {
    scalar_step(s, t, i, k);
    ++k;
  }
}

void run_isolated(Soa& s, std::int64_t max_cycles) {
  const int T = s.T;
  const int W = s.W;
  for (int t = 0; t < T; ++t) {
    std::int64_t k = 0;
    bool converged = s.uniform[static_cast<std::size_t>(t)] != 0;
    const int pc0 = s.pc[s.ti(t, 0)];
    for (int i = 0; converged && i < W; ++i) {
      const std::size_t ti = s.ti(t, i);
      converged = s.halted[ti] == 0 &&
                  s.stalled_until[ti] <=
                      s.inst[static_cast<std::size_t>(i)].start &&
                  s.pc[ti] == pc0;
    }
    if (converged) k = dense_burst(s, t, max_cycles);
    if (k < max_cycles) {
      for (int i = 0; i < W; ++i) scalar_tail(s, t, i, k, max_cycles);
    }
  }
  // Closed-form completion and idle accounting, matching the lockstep
  // loop cycle for cycle: an instance finishes at the top of the first
  // cycle with every tile halted (last halt event + 1), else at the
  // budget; halted tiles bump cycles_halted each remaining cycle and
  // pre-halted ones every cycle; stall windows count until they expire,
  // the tile halts, or the run ends — whichever is first.
  for (int i = 0; i < W; ++i) {
    Instance& in = s.inst[static_cast<std::size_t>(i)];
    std::int64_t cycles = max_cycles;
    if (in.halted_tiles == T) {
      cycles = 0;
      for (int t = 0; t < T; ++t) {
        cycles = std::max(cycles, s.halt_cycle[s.ti(t, i)] + 1);
      }
    }
    in.done = true;
    in.cycles = cycles;
    for (int t = 0; t < T; ++t) {
      const std::size_t ti = s.ti(t, i);
      const std::int64_t h = s.halt_cycle[ti];
      if (s.halted[ti] != 0 && h < 0) {
        // Halted before this run began: every executed cycle lands in
        // the halted bucket and any stall window underneath never counts.
        s.d_halt[ti] += cycles;
        continue;
      }
      if (h >= 0) s.d_halt[ti] += cycles - (h + 1);
      s.d_stall[ti] += std::min(
          std::max<std::int64_t>(s.stalled_until[ti] - in.start, 0), cycles);
    }
  }
}

bool batchable(std::span<Fabric* const> fabrics) {
  if (fabrics.empty() || fabrics.front() == nullptr) return false;
  const int rows = fabrics.front()->rows();
  const int cols = fabrics.front()->cols();
  for (std::size_t i = 0; i < fabrics.size(); ++i) {
    if (fabrics[i] == nullptr) return false;
    if (fabrics[i]->rows() != rows || fabrics[i]->cols() != cols) {
      return false;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (fabrics[i] == fabrics[j]) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<RunResult> BatchEngine::run_batch(
    std::span<Fabric* const> fabrics, std::int64_t max_cycles) {
  std::vector<RunResult> results(fabrics.size());
  if (fabrics.empty()) return results;
  if (!batchable(fabrics)) {
    // Mixed shapes / duplicates cannot be stepped in lockstep; fall back
    // to sequential interpretation — bit-identical, just unbatched.
    for (std::size_t i = 0; i < fabrics.size(); ++i) {
      if (fabrics[i] != nullptr) {
        results[i] = fabrics[i]->run_interpreter(max_cycles);
      }
    }
    return results;
  }

  const int W = static_cast<int>(fabrics.size());
  const int T = fabrics.front()->tile_count();
  Soa s;
  s.T = T;
  s.W = W;
  s.inst.resize(static_cast<std::size_t>(W));
  const std::size_t tw = static_cast<std::size_t>(T) *
                         static_cast<std::size_t>(W);
  s.dmem.resize(tw * static_cast<std::size_t>(kDataMemWords));
  s.acc.resize(tw);
  s.pc.resize(tw);
  s.halted.resize(tw);
  s.fault.resize(tw);
  s.stalled_until.resize(tw);
  s.d_instr.assign(tw, 0);
  s.d_stall.assign(tw, 0);
  s.d_halt.assign(tw, 0);
  s.d_remote.assign(tw, 0);
  s.halt_cycle.assign(tw, -1);
  s.dec.resize(tw);
  s.uniform.assign(static_cast<std::size_t>(T), 1);

  // --- extraction ---
  for (int i = 0; i < W; ++i) {
    Fabric& f = *fabrics[static_cast<std::size_t>(i)];
    ExecAccess::begin(f);       // links re-derived: the one shared place
    ExecAccess::settle_all(f);  // stats exact at cycle_ before we add deltas
    Instance& in = s.inst[static_cast<std::size_t>(i)];
    in.f = &f;
    in.start = f.now();
    in.tracer = f.tracer();
    if (in.tracer != nullptr) s.any_tracer = true;
    in.link.resize(static_cast<std::size_t>(T));
    in.link_target.resize(static_cast<std::size_t>(T));
    for (int t = 0; t < T; ++t) {
      in.link[static_cast<std::size_t>(t)] = ExecAccess::link_state(f, t);
      in.link_target[static_cast<std::size_t>(t)] =
          ExecAccess::link_target(f, t);
      Tile& tile = f.tile(t);
      const std::size_t ti = s.ti(t, i);
      s.acc[ti] = TileExec::acc(tile);
      s.pc[ti] = TileExec::pc(tile);
      s.halted[ti] = tile.halted() ? 1 : 0;
      if (tile.halted()) {
        ++in.halted_tiles;
        ++s.halted_total;
      }
      s.fault[ti] = tile.fault();
      s.stalled_until[ti] = tile.stalled_until();
      s.dec[ti] = &TileExec::decoded(tile);
      if (i > 0 && s.uniform[static_cast<std::size_t>(t)] != 0 &&
          TileExec::code(tile) !=
              TileExec::code(fabrics.front()->tile(t))) {
        s.uniform[static_cast<std::size_t>(t)] = 0;
      }
    }
  }
  s.fn_tables.resize(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    if (s.uniform[static_cast<std::size_t>(t)] == 0) continue;
    const auto& dec = *s.dec[s.ti(t, 0)];
    auto& tab = s.fn_tables[static_cast<std::size_t>(t)];
    tab.resize(dec.size());
    for (std::size_t p = 0; p < dec.size(); ++p) {
      tab[p].fn = detail::select_vec_fn<DenseCtx>(dec[p]);
      if (tab[p].fn == nullptr) tab[p].fn = &detail::exec_vec_generic<DenseCtx>;
      tab[p].pure = detail::pure_instr(dec[p]) ? 1 : 0;
    }
  }
  // Dmem AoS -> SoA as a tile-major transpose: the destination walks the
  // SoA array sequentially and the sources are W sequential streams, vs
  // one cache line touched per word when copying instance-major.
  std::vector<Word*> lane_mem(static_cast<std::size_t>(W));
  for (int t = 0; t < T; ++t) {
    for (int i = 0; i < W; ++i) {
      lane_mem[static_cast<std::size_t>(i)] =
          TileExec::dmem(s.inst[static_cast<std::size_t>(i)].f->tile(t))
              .data();
    }
    Word* dst = s.dmem.data() + static_cast<std::size_t>(t) *
                                    static_cast<std::size_t>(kDataMemWords) *
                                    static_cast<std::size_t>(W);
    for (int a = 0; a < kDataMemWords; ++a) {
      for (int i = 0; i < W; ++i) {
        dst[static_cast<std::size_t>(a) * static_cast<std::size_t>(W) +
            static_cast<std::size_t>(i)] =
            lane_mem[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)];
      }
    }
  }
  // Cycles any lane spends stalled come only from stall windows already
  // pending at extraction (nothing inside a batch run re-arms them), so
  // past this horizon a cycle with no halted tile anywhere needs no
  // per-lane runnable scan at all.
  std::int64_t clean_from = 0;
  for (int i = 0; i < W; ++i) {
    const Instance& in = s.inst[static_cast<std::size_t>(i)];
    for (int t = 0; t < T; ++t) {
      clean_from = std::max(clean_from,
                            s.stalled_until[s.ti(t, i)] - in.start);
    }
  }

  // Instances interact only through remote writes over live links, and
  // only a tracer observes the per-cycle interleave; with neither (and a
  // finite budget), no lane can affect another, so the per-cycle tile
  // sweep collapses into per-tile bursts (run_isolated above).
  bool interacting = s.any_tracer || max_cycles < 0;
  for (int i = 0; i < W && !interacting; ++i) {
    const Instance& in = s.inst[static_cast<std::size_t>(i)];
    for (int t = 0; t < T; ++t) {
      if (in.link[static_cast<std::size_t>(t)] == LinkState::kUp) {
        interacting = true;
        break;
      }
    }
  }
  if (!interacting) {
    run_isolated(s, max_cycles);
  } else {
  // --- lockstep cycle loop ---
  std::vector<int> live;
  std::vector<int> lanes;
  live.reserve(static_cast<std::size_t>(W));
  lanes.reserve(static_cast<std::size_t>(W));

  // End-of-cycle commit for one instance, in push order == ascending
  // source tile (tiles are swept ascending): the interpreter's commit
  // semantics, including the same-destination tie-break.
  const auto commit_remotes = [&s, T](int i, std::int64_t k) {
    Instance& in = s.inst[static_cast<std::size_t>(i)];
    if (in.rbuf.empty()) return;
    for (const auto& w : in.rbuf) {
      const int dst = in.link_target[static_cast<std::size_t>(w.src_tile)];
      if (dst < 0) continue;
      s.dmem[s.word(dst, w.addr, i)] = w.value;
      ++in.d_committed;
      if (in.tracer != nullptr) {
        TraceEvent ev;
        ev.cycle = in.start + k;
        ev.kind = TraceEventKind::kRemoteWrite;
        ev.tile = w.src_tile;
        ev.dst_tile = dst;
        ev.addr = w.addr;
        ev.value = w.value;
        in.tracer->record(ev);
      }
    }
    in.rbuf.clear();
    (void)T;
  };

  for (std::int64_t k = 0;; ++k) {
    if (s.halted_total == 0 && k >= clean_from && k != max_cycles) {
      // Dense cycle: every instance is live and every lane runnable, so
      // lane j IS instance j and the idle-lane bookkeeping vanishes; per
      // tile the only question left is whether the lanes' pcs converge.
      for (int t = 0; t < T; ++t) {
        const int* pcs = s.pc.data() + s.ti(t, 0);
        const int pc0 = pcs[0];
        bool same_pc = true;
        for (int j = 1; j < W; ++j) same_pc &= (pcs[j] == pc0);
        if (same_pc && !s.any_tracer &&
            s.uniform[static_cast<std::size_t>(t)] != 0) {
          const auto& tab = s.fn_tables[static_cast<std::size_t>(t)];
          if (pc0 >= 0 && pc0 < static_cast<int>(tab.size())) {
            const DecodedInstr& din =
                (*s.dec[s.ti(t, 0)])[static_cast<std::size_t>(pc0)];
            DenseCtx c(s, t, k);
            tab[static_cast<std::size_t>(pc0)].fn(c, din);
            continue;
          }
        }
        for (int i = 0; i < W; ++i) scalar_step(s, t, i, k);
      }
      for (int i = 0; i < W; ++i) commit_remotes(i, k);
      continue;
    }

    live.clear();
    for (int i = 0; i < W; ++i) {
      Instance& in = s.inst[static_cast<std::size_t>(i)];
      if (in.done) continue;
      if (in.halted_tiles == T || k == max_cycles) {
        in.done = true;
        in.cycles = k;
        continue;
      }
      live.push_back(i);
    }
    if (live.empty()) break;

    for (int t = 0; t < T; ++t) {
      lanes.clear();
      bool same_pc = true;
      int pc0 = -1;
      for (const int i : live) {
        const std::size_t ti = s.ti(t, i);
        // The idle-lane bumps mirror the Tile::step prologue and are the
        // same whichever execution path the running lanes take.
        if (s.halted[ti] != 0) {
          ++s.d_halt[ti];
          continue;
        }
        if (s.inst[static_cast<std::size_t>(i)].start + k <
            s.stalled_until[ti]) {
          ++s.d_stall[ti];
          continue;
        }
        const int pc = s.pc[ti];
        if (pc0 == -1) {
          pc0 = pc;
        } else if (pc != pc0) {
          same_pc = false;
        }
        lanes.push_back(i);
      }
      if (lanes.empty()) continue;
      if (same_pc && !s.any_tracer &&
          s.uniform[static_cast<std::size_t>(t)] != 0) {
        const auto& dec = *s.dec[s.ti(t, lanes.front())];
        if (pc0 >= 0 && pc0 < static_cast<int>(dec.size())) {
          const DecodedInstr& din = dec[static_cast<std::size_t>(pc0)];
          VecCtx c{&s, t, k, lanes.data(), static_cast<int>(lanes.size())};
          if (const auto vfn = detail::select_vec_fn<VecCtx>(din)) {
            vfn(c, din);
          } else {
            detail::exec_vec_generic(c, din);
          }
          continue;
        }
      }
      for (const int i : lanes) scalar_step(s, t, i, k);
    }

    for (const int i : live) commit_remotes(i, k);
  }
  }  // interacting

  // --- write-back ---
  // Dmem SoA -> AoS, the transpose inverse of extraction: sequential reads
  // of the SoA array fanning out to W sequential per-instance streams.
  for (int t = 0; t < T; ++t) {
    for (int i = 0; i < W; ++i) {
      lane_mem[static_cast<std::size_t>(i)] =
          TileExec::dmem(s.inst[static_cast<std::size_t>(i)].f->tile(t))
              .data();
    }
    const Word* src = s.dmem.data() +
                      static_cast<std::size_t>(t) *
                          static_cast<std::size_t>(kDataMemWords) *
                          static_cast<std::size_t>(W);
    for (int a = 0; a < kDataMemWords; ++a) {
      for (int i = 0; i < W; ++i) {
        lane_mem[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)] =
            src[static_cast<std::size_t>(a) * static_cast<std::size_t>(W) +
                static_cast<std::size_t>(i)];
      }
    }
  }
  for (int i = 0; i < W; ++i) {
    Instance& in = s.inst[static_cast<std::size_t>(i)];
    Fabric& f = *in.f;
    std::int64_t d_retired = 0;
    for (int t = 0; t < T; ++t) {
      const std::size_t ti = s.ti(t, i);
      Tile& tile = f.tile(t);
      TileExec::acc(tile) = s.acc[ti];
      TileExec::pc(tile) = s.pc[ti];
      TileExec::halted(tile) = s.halted[ti] != 0;
      TileExec::fault(tile) = s.fault[ti];
      auto& stats = TileExec::stats(tile);
      stats.instructions += s.d_instr[ti];
      stats.remote_writes += s.d_remote[ti];
      stats.cycles_stalled += s.d_stall[ti];
      stats.cycles_halted += s.d_halt[ti];
      d_retired += s.d_instr[ti];
    }
    // Cycle counter first: rebuild_scheduler classifies stalled-vs-active
    // against it and stamps every settlement boundary with it.
    ExecAccess::cycle(f) = in.start + in.cycles;
    ExecAccess::rebuild_scheduler(f);
    ExecAccess::flush_cycle_metrics(f, in.cycles, d_retired, in.d_committed,
                                    in.d_faults);
    RunResult& r = results[static_cast<std::size_t>(i)];
    r.cycles = in.cycles;
    r.all_halted = f.all_halted();
    r.faults = f.faults();
  }
  return results;
}

RunResult BatchEngine::run(Fabric& fabric, std::int64_t max_cycles) {
  Fabric* one[] = {&fabric};
  return run_batch(one, max_cycles).front();
}

int BatchEngine::step(Fabric& fabric) {
  // A single externally-driven cycle has no batch dimension; the
  // interpreter step is the reference semantics verbatim.
  return fabric.step_interpreter();
}

}  // namespace cgra::engine

#include "engine/engine.hpp"

#include <charconv>
#include <mutex>

#include "obs/bench_report.hpp"

namespace cgra::engine {

const char* engine_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kInterp:
      return "interp";
    case EngineKind::kThreaded:
      return "threaded";
    case EngineKind::kBatch:
      return "batch";
  }
  return "interp";
}

std::optional<EngineKind> engine_from_name(std::string_view name) noexcept {
  if (name == "interp") return EngineKind::kInterp;
  if (name == "threaded") return EngineKind::kThreaded;
  if (name == "batch") return EngineKind::kBatch;
  return std::nullopt;
}

std::optional<EngineOptions> parse_engine_spec(std::string_view spec) noexcept {
  EngineOptions options;
  const std::size_t colon = spec.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  const auto kind = engine_from_name(name);
  if (!kind.has_value()) return std::nullopt;
  options.kind = *kind;
  if (colon != std::string_view::npos) {
    // Only the batch engine takes a parameter ("batch:16").
    if (options.kind != EngineKind::kBatch) return std::nullopt;
    const std::string_view arg = spec.substr(colon + 1);
    int width = 0;
    const auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), width);
    if (ec != std::errc{} || ptr != arg.data() + arg.size() || width <= 0) {
      return std::nullopt;
    }
    options.batch_width = width;
  }
  return options;
}

std::string engine_spec(const EngineOptions& options) {
  std::string spec = engine_name(options.kind);
  if (options.kind == EngineKind::kBatch) {
    spec += ':';
    spec += std::to_string(options.batch_width);
  }
  return spec;
}

std::unique_ptr<ExecutionEngine> make_engine(const EngineOptions& options) {
  switch (options.kind) {
    case EngineKind::kThreaded:
      return std::make_unique<ThreadedEngine>();
    case EngineKind::kBatch:
      return std::make_unique<BatchEngine>(options.batch_width);
    case EngineKind::kInterp:
      break;
  }
  return std::make_unique<InterpreterEngine>();
}

namespace {

std::mutex& process_engine_mutex() {
  static std::mutex mu;
  return mu;
}
EngineOptions& process_engine_options() {
  static EngineOptions options;
  return options;
}

std::unique_ptr<fabric::ExecutionHook> make_process_default() {
  const EngineOptions options = process_engine();
  // nullptr keeps the built-in interpreter (Fabric::resolve_engine).
  if (options.kind == EngineKind::kInterp) return nullptr;
  return make_engine(options);
}

}  // namespace

void use_process_engine(const EngineOptions& options) {
  {
    const std::lock_guard<std::mutex> lock(process_engine_mutex());
    process_engine_options() = options;
  }
  fabric::set_default_engine_factory(
      options.kind == EngineKind::kInterp ? nullptr : &make_process_default);
  // Keep BENCH_*.json stamps in sync so perf_compare.py can refuse
  // cross-engine comparisons.
  obs::set_bench_engine_label(engine_spec(options));
}

EngineOptions process_engine() {
  const std::lock_guard<std::mutex> lock(process_engine_mutex());
  return process_engine_options();
}

void install_build_default() {
#ifdef CGRA_DEFAULT_ENGINE_NAME
  if (const auto options = parse_engine_spec(CGRA_DEFAULT_ENGINE_NAME)) {
    if (options->kind != EngineKind::kInterp) use_process_engine(*options);
  }
#endif
}

}  // namespace cgra::engine

// Shared --engine flag handling for every executable entry point
// (profile_run, serve_demo, the bench mains).  One parser, one spelling:
//
//   --engine=interp | threaded | batch[:width]      (or "--engine SPEC")
//
// The chosen engine is installed as the process-wide default
// (engine::use_process_engine), so every fabric created afterwards runs on
// it.  Without the flag the build-configured default (CGRA_DEFAULT_ENGINE)
// applies.
#pragma once

#include "engine/engine.hpp"

namespace cgra::engine {

/// Consume any --engine arguments from argv (compacting it in place and
/// updating *argc), install the selection process-wide, and return it.
/// Prints a diagnostic and exits with status 2 on a malformed spec.
EngineOptions apply_engine_flag(int* argc, char** argv);

}  // namespace cgra::engine

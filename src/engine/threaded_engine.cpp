// ThreadedEngine: per-block superinstruction specialization.
//
// Each tile's decoded program is compiled (cheaply, at attach / reload
// time) into an array of function pointers — one templated specialization
// of the shared step core per instruction, with the opcode, remote flag
// and immediate choice folded in — plus, per basic block, the length of
// the pure straight-line run starting at each pc.  The per-cycle sweep is
// the shared ExecAccess::run_cycle, so traces, fault accounting and
// remote-write commit order are the interpreter's by construction.
//
// When exactly one tile is runnable (the common tail of dataflow kernels
// and the whole life of 1x1 meshes) and no tracer is attached, run()
// enters a burst loop: pure straight-line runs execute with no per-cycle
// sweep, no remote-buffer traffic and no fault checks — those are
// statically impossible for pure instructions — with cycle/stat/metric
// totals settled in batches to the same end state.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/dispatch.hpp"
#include "engine/engine.hpp"
#include "fabric/exec_access.hpp"
#include "fabric/step_core.hpp"
#include "isa/blocks.hpp"

namespace cgra::engine {

using fabric::ExecAccess;
using fabric::Fabric;
using fabric::LinkState;
using fabric::RunResult;
using fabric::Tile;
using fabric::TileExec;
using fabric::TileView;

struct ThreadedEngine::Impl {
  struct TileSpec {
    std::uint64_t version = ~std::uint64_t{0};  ///< code_version it matches.
    std::vector<detail::StepFn<TileView>> fn;   ///< Per pc.
    /// Per pc: length of the pure straight-line run starting there,
    /// bounded by the enclosing basic block (0 = not pure).
    std::vector<std::int32_t> fast_run;
  };

  const Fabric* bound = nullptr;
  std::vector<TileSpec> spec;

  void sync(Fabric& f) {
    if (bound != &f ||
        spec.size() != static_cast<std::size_t>(f.tile_count())) {
      bound = &f;
      spec.assign(static_cast<std::size_t>(f.tile_count()), TileSpec{});
    }
    for (int t = 0; t < f.tile_count(); ++t) {
      TileSpec& sp = spec[static_cast<std::size_t>(t)];
      const Tile& tile = f.tile(t);
      if (sp.version != tile.code_version()) rebuild(sp, tile);
    }
  }

  static void rebuild(TileSpec& sp, const Tile& tile) {
    const auto& dec = TileExec::decoded(tile);
    const int n = static_cast<int>(dec.size());
    sp.fn.resize(static_cast<std::size_t>(n));
    sp.fast_run.assign(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      sp.fn[static_cast<std::size_t>(i)] =
          detail::select_step_fn<TileView>(dec[static_cast<std::size_t>(i)]);
    }
    for (const auto& b : isa::segment_blocks(dec)) {
      std::int32_t run = 0;
      for (int i = b.end - 1; i >= b.begin; --i) {
        run = detail::pure_instr(dec[static_cast<std::size_t>(i)]) ? run + 1
                                                                   : 0;
        sp.fast_run[static_cast<std::size_t>(i)] = run;
      }
    }
    sp.version = tile.code_version();
  }

  /// Replicates Tile::step exactly, with the switch replaced by the
  /// specialized dispatch.  Same prologue (halted, stalled, pc checks and
  /// their stat bumps), same raise points.
  bool step_tile(Fabric& f, Tile& tile, int i, int pc_before) {
    auto& stats = TileExec::stats(tile);
    if (tile.halted() || tile.faulted()) {
      ++stats.cycles_halted;
      return false;
    }
    if (ExecAccess::cycle(f) < tile.stalled_until()) {
      ++stats.cycles_stalled;
      return false;
    }
    TileView v(tile, i, ExecAccess::cycle(f), ExecAccess::remote_buffer(f));
    const auto& dec = TileExec::decoded(tile);
    if (pc_before < 0 || pc_before >= static_cast<int>(dec.size())) {
      v.raise(FaultKind::kPcOutOfRange);
      return false;
    }
    const TileSpec& sp = spec[static_cast<std::size_t>(i)];
    return sp.fn[static_cast<std::size_t>(pc_before)](
        v, dec[static_cast<std::size_t>(pc_before)],
        ExecAccess::link_state(f, i));
  }

  /// Lone-runner burst: tile `t` is the only runnable tile and no tracer
  /// is attached.  Executes up to `budget` cycles (bounded by the next
  /// stall-wake event) and returns the cycles consumed (>= 1).
  std::int64_t burst(Fabric& f, int t, std::int64_t budget) {
    Tile& tile = f.tile(t);
    const TileSpec& sp = spec[static_cast<std::size_t>(t)];
    auto& buf = ExecAccess::remote_buffer(f);
    const LinkState link = ExecAccess::link_state(f, t);
    const auto& dec = TileExec::decoded(tile);
    const int n = static_cast<int>(dec.size());

    std::int64_t limit = budget;
    const std::int64_t next_wake = f.next_wake_cycle();
    if (next_wake >= 0) {
      limit = std::min(limit, next_wake - ExecAccess::cycle(f));
    }

    std::int64_t done = 0;
    std::int64_t retired = 0;
    std::int64_t committed = 0;
    ExecAccess::set_stepping(f, true);
    while (done < limit) {
      const int pc = TileExec::pc(tile);
      if (pc < 0 || pc >= n) {
        // Same raise as the Tile::step prologue; the fault transition gets
        // the same cycle accounting as ExecAccess::run_cycle gives it.
        buf.clear();
        TileView v(tile, t, ExecAccess::cycle(f), buf);
        v.raise(FaultKind::kPcOutOfRange);
        tile.count_fault_cycle();
        ExecAccess::count_fault(f);
        ++ExecAccess::cycle(f);
        ++done;
        break;
      }
      const std::int64_t run = std::min<std::int64_t>(
          sp.fast_run[static_cast<std::size_t>(pc)], limit - done);
      if (run > 0) {
        // Pure straight line: no fault, branch, halt or remote write can
        // occur, so nothing but this tile's state is touched.
        TileView v(tile, t, ExecAccess::cycle(f), buf);
        for (std::int64_t k = 0; k < run; ++k) {
          const int p = TileExec::pc(tile);
          sp.fn[static_cast<std::size_t>(p)](
              v, dec[static_cast<std::size_t>(p)], link);
        }
        ExecAccess::cycle(f) += run;
        done += run;
        retired += run;
        continue;
      }
      // General single cycle (branch / halt / remote / non-fast instr).
      buf.clear();
      TileView v(tile, t, ExecAccess::cycle(f), buf);
      if (sp.fn[static_cast<std::size_t>(pc)](
              v, dec[static_cast<std::size_t>(pc)], link)) {
        ++retired;
      } else if (tile.faulted()) {
        tile.count_fault_cycle();
        ExecAccess::count_fault(f);
      }
      for (const auto& w : buf) {
        const int dst = ExecAccess::link_target(f, w.src_tile);
        if (dst >= 0) {
          f.tile(dst).set_dmem(w.addr, w.value);
          ++committed;
        }
      }
      ++ExecAccess::cycle(f);
      ++done;
      if (tile.halted()) break;
    }
    ExecAccess::finish_sweep(f);
    ExecAccess::flush_cycle_metrics(f, done, retired, committed);
    return done;
  }
};

ThreadedEngine::ThreadedEngine() : impl_(std::make_unique<Impl>()) {}
ThreadedEngine::~ThreadedEngine() = default;

RunResult ThreadedEngine::run(Fabric& f, std::int64_t max_cycles) {
  impl_->sync(f);
  RunResult result;
  ExecAccess::begin(f);
  const bool can_burst = f.tracer() == nullptr;
  while (result.cycles < max_cycles) {
    if (f.all_halted()) break;
    ExecAccess::process_wakes(f);
    const auto& active = ExecAccess::active(f);
    if (active.empty()) {
      // Only stalled tiles remain: fast-forward to the next wake event,
      // exactly as the interpreter does.
      const std::int64_t next = f.next_wake_cycle();
      if (next < 0) break;
      const std::int64_t skip =
          std::min(next - ExecAccess::cycle(f), max_cycles - result.cycles);
      ExecAccess::cycle(f) += skip;
      result.cycles += skip;
      ExecAccess::add_skipped_cycles(f, skip);
      continue;
    }
    if (can_burst && active.size() == 1) {
      result.cycles += impl_->burst(f, active.front(),
                                    max_cycles - result.cycles);
      continue;
    }
    ExecAccess::run_cycle(f, [this, &f](Tile& tile, int i, int pc_before) {
      return impl_->step_tile(f, tile, i, pc_before);
    });
    ++result.cycles;
  }
  ExecAccess::settle_all(f);
  result.all_halted = f.all_halted();
  result.faults = f.faults();
  return result;
}

int ThreadedEngine::step(Fabric& f) {
  impl_->sync(f);
  ExecAccess::begin(f);
  ExecAccess::process_wakes(f);
  const int retired =
      ExecAccess::run_cycle(f, [this, &f](Tile& tile, int i, int pc_before) {
        return impl_->step_tile(f, tile, i, pc_before);
      });
  ExecAccess::settle_all(f);
  return retired;
}

}  // namespace cgra::engine

// Internal: superinstruction dispatch tables (not part of cgra/engine.hpp).
//
// One templated specialization of the shared step core per
// (opcode, remote-destination, immediate) combination, generated over the
// whole opcode space at compile time.  The threaded engine indexes the
// per-instruction table (StepFn over a TileView); the batch engine indexes
// the per-lane-loop table (VecStepFn over its SoA lane context), where the
// instance loop sits INSIDE the specialization so the compiler can
// vectorize the ALU work across lanes.
//
// Classification normalizes don't-care flag bits — a remote flag on an
// opcode that writes nothing, an immediate flag on one that reads no opB —
// so equivalent encodings dispatch to one specialization.
#pragma once

#include <array>
#include <cstddef>
#include <utility>

#include "fabric/step_core.hpp"
#include "isa/decoded.hpp"
#include "isa/instruction.hpp"

namespace cgra::engine::detail {

inline constexpr std::size_t kOpcodeSlots =
    static_cast<std::size_t>(isa::Opcode::kOpcodeCount);

/// One instruction against one view (threaded engine).
template <class View>
using StepFn = bool (*)(View&, const isa::DecodedInstr&, fabric::LinkState);

template <class View, isa::Opcode Op, bool Remote, bool UseImm>
bool exec_fast(View& v, const isa::DecodedInstr& in, fabric::LinkState link) {
  return fabric::core::exec_instr<fabric::core::FastTraits<Op, Remote, UseImm>>(
      v, in, link);
}

/// Fallback for instructions fast_eligible() rejects: the full dynamic
/// core, i.e. exactly what the interpreter runs.
template <class View>
bool exec_generic(View& v, const isa::DecodedInstr& in,
                  fabric::LinkState link) {
  return fabric::core::exec_instr<fabric::core::DynTraits>(v, in, link);
}

template <class View, std::size_t I>
constexpr std::array<StepFn<View>, 4> step_variants() {
  constexpr auto kOp = static_cast<isa::Opcode>(I);
  return {&exec_fast<View, kOp, false, false>,
          &exec_fast<View, kOp, false, true>,
          &exec_fast<View, kOp, true, false>,
          &exec_fast<View, kOp, true, true>};
}

template <class View, std::size_t... Is>
constexpr auto make_step_table(std::index_sequence<Is...>) {
  return std::array<std::array<StepFn<View>, 4>, sizeof...(Is)>{
      step_variants<View, Is>()...};
}

template <class View>
inline constexpr auto kStepTable =
    make_step_table<View>(std::make_index_sequence<kOpcodeSlots>{});

[[nodiscard]] constexpr std::size_t variant_index(
    const isa::DecodedInstr& in) noexcept {
  const bool remote = in.dst_remote && isa::writes_dst(in.opcode);
  const bool imm = in.use_imm && isa::reads_srcb(in.opcode);
  return (remote ? 2u : 0u) + (imm ? 1u : 0u);
}

/// The specialization executing `in`, or the generic core when it is not
/// fast-eligible.  Never null.
template <class View>
[[nodiscard]] StepFn<View> select_step_fn(const isa::DecodedInstr& in) {
  if (!fabric::core::fast_eligible(in)) return &exec_generic<View>;
  return kStepTable<View>[static_cast<std::size_t>(in.opcode)]
                         [variant_index(in)];
}

/// One uniform instruction across every lane of a batch context (batch
/// engine).  Ctx supplies: lane_count(), view(j) -> a step-core View,
/// link(j), and on_fault(j) — called when the lane's execution raised.
template <class Ctx>
using VecStepFn = void (*)(Ctx&, const isa::DecodedInstr&);

template <class Ctx, isa::Opcode Op, bool Remote, bool UseImm>
void exec_vec(Ctx& c, const isa::DecodedInstr& in) {
  const int n = c.lane_count();
  for (int j = 0; j < n; ++j) {
    auto v = c.view(j);
    if (!fabric::core::exec_instr<
            fabric::core::FastTraits<Op, Remote, UseImm>>(v, in, c.link(j))) {
      c.on_fault(j);
    }
  }
}

template <class Ctx, std::size_t I>
constexpr std::array<VecStepFn<Ctx>, 4> vec_variants() {
  constexpr auto kOp = static_cast<isa::Opcode>(I);
  return {&exec_vec<Ctx, kOp, false, false>, &exec_vec<Ctx, kOp, false, true>,
          &exec_vec<Ctx, kOp, true, false>, &exec_vec<Ctx, kOp, true, true>};
}

template <class Ctx, std::size_t... Is>
constexpr auto make_vec_table(std::index_sequence<Is...>) {
  return std::array<std::array<VecStepFn<Ctx>, 4>, sizeof...(Is)>{
      vec_variants<Ctx, Is>()...};
}

template <class Ctx>
inline constexpr auto kVecTable =
    make_vec_table<Ctx>(std::make_index_sequence<kOpcodeSlots>{});

/// The lane-loop specialization for `in`, or nullptr when it is not
/// fast-eligible (caller runs the scalar per-lane path instead).
template <class Ctx>
[[nodiscard]] VecStepFn<Ctx> select_vec_fn(const isa::DecodedInstr& in) {
  if (!fabric::core::fast_eligible(in)) return nullptr;
  return kVecTable<Ctx>[static_cast<std::size_t>(in.opcode)]
                       [variant_index(in)];
}

/// The dynamic-core lane loop for uniform instructions select_vec_fn
/// rejects (indirect addressing, oob fields): every lane runs the full
/// interpreter body, but dispatch and operand classification are still
/// amortized across the batch.  The caller has bounds-checked the pc.
template <class Ctx>
void exec_vec_generic(Ctx& c, const isa::DecodedInstr& in) {
  const int n = c.lane_count();
  for (int j = 0; j < n; ++j) {
    auto v = c.view(j);
    if (!fabric::core::exec_instr<fabric::core::DynTraits>(v, in, c.link(j))) {
      c.on_fault(j);
    }
  }
}

/// True when `in` can run in a checked-free straight line: it cannot
/// fault, branch, halt or emit a remote write, so executing it touches
/// nothing but this tile's memory/acc/pc/stats.  The unit of the threaded
/// engine's lone-runner burst loop.
[[nodiscard]] constexpr bool pure_instr(const isa::DecodedInstr& in) noexcept {
  return fabric::core::fast_eligible(in) && !isa::is_branch(in.opcode) &&
         in.opcode != isa::Opcode::kHalt &&
         !(in.dst_remote && isa::writes_dst(in.opcode));
}

}  // namespace cgra::engine::detail

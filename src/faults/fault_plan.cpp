#include "faults/fault_plan.hpp"

#include <algorithm>

#include "common/prng.hpp"

namespace cgra::faults {

const char* fault_action_name(FaultAction a) noexcept {
  switch (a) {
    case FaultAction::kFlipDmemBit: return "flip-dmem-bit";
    case FaultAction::kFlipInstBit: return "flip-inst-bit";
    case FaultAction::kCorruptIcap: return "corrupt-icap";
    case FaultAction::kFailLink: return "fail-link";
    case FaultAction::kKillTile: return "kill-tile";
  }
  return "?";
}

FaultPlan& FaultPlan::flip_dmem_bit(std::int64_t cycle, int tile, int addr,
                                    int bit) {
  events.push_back({FaultAction::kFlipDmemBit, tile, cycle, addr, bit, 1});
  return *this;
}

FaultPlan& FaultPlan::flip_inst_bit(std::int64_t cycle, int tile, int index,
                                    int bit) {
  events.push_back({FaultAction::kFlipInstBit, tile, cycle, index, bit, 1});
  return *this;
}

FaultPlan& FaultPlan::corrupt_icap(int tile, int times) {
  events.push_back({FaultAction::kCorruptIcap, tile, 0, -1, -1, times});
  return *this;
}

FaultPlan& FaultPlan::fail_link(std::int64_t cycle, int tile) {
  events.push_back({FaultAction::kFailLink, tile, cycle, -1, -1, 1});
  return *this;
}

FaultPlan& FaultPlan::kill_tile(std::int64_t cycle, int tile) {
  events.push_back({FaultAction::kKillTile, tile, cycle, -1, -1, 1});
  return *this;
}

FaultPlan FaultPlan::random_seus(std::uint64_t seed, int tiles,
                                 std::int64_t horizon_cycles, int upsets,
                                 double imem_fraction) {
  FaultPlan plan;
  plan.seed = seed;
  SplitMix64 rng(seed);
  for (int i = 0; i < upsets; ++i) {
    const auto cycle = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, horizon_cycles))));
    const int tile = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(std::max(1, tiles))));
    if (rng.next_double() < imem_fraction) {
      plan.flip_inst_bit(cycle, tile);
    } else {
      plan.flip_dmem_bit(cycle, tile);
    }
  }
  // Sort by cycle so the injector can poll the earliest pending event.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  return plan;
}

}  // namespace cgra::faults

// Epoch-level fault recovery.
//
// The RecoveryManager plays the paper's MicroBlaze runtime in degraded
// mode: it drives a compiled item schedule (mapping/schedule_compiler.hpp)
// through the fabric while a FaultInjector replays its plan, detects what
// goes wrong, and recovers:
//
//   * Corrupted ICAP transfers are caught by the controller's readback
//     verification and re-streamed with bounded backoff (scrub + retry);
//     the retry time lands in Timeline.reconfig_ns like any other
//     reconfiguration cost.
//   * Transient execution faults (SEU-induced illegal opcodes, PC runoff,
//     watchdog timeouts) roll the pipeline back to the last process-
//     boundary checkpoint: the input block is restored from the host-side
//     golden copy, the affected tile's configuration is scrubbed through
//     the ICAP, and the epoch re-runs.
//   * Permanent faults (dead tiles, failed links) trigger graceful
//     degradation: the pipeline is rebalanced over the surviving tile
//     budget (mapping/rebalance.hpp), re-placed avoiding the failed
//     hardware, recompiled, and resumed from the checkpoint.  Because
//     every process is a deterministic function of its input block, the
//     recovered output is bit-identical to the fault-free run.
//
// Every recovery action is recorded as a kRecovery trace event when a
// Tracer is attached, and every nanosecond of recovery work is accounted
// in the returned Timeline (see docs/FAULTS.md).
#pragma once

#include <span>
#include <vector>

#include "config/reconfig.hpp"
#include "fabric/fabric.hpp"
#include "faults/detector.hpp"
#include "faults/injector.hpp"
#include "mapping/rebalance.hpp"
#include "mapping/schedule_compiler.hpp"

namespace cgra::faults {

/// Recovery knobs.
struct RecoveryPolicy {
  // --- ICAP stream protection (config::IcapFaultOptions) ---
  bool verify_readback = true;
  double verify_cost_factor = 1.0;
  int max_icap_retries = 3;
  Nanoseconds icap_retry_backoff_ns = 100.0;
  double icap_backoff_factor = 2.0;

  // --- rollback / scrub ---
  /// Checkpoint re-runs allowed per process boundary before giving up.
  int max_retries_per_checkpoint = 3;
  /// Diff per-tile imem fingerprints across every epoch run.  Instruction
  /// memory never legitimately changes outside the ICAP, so a mismatch is
  /// a configuration upset even when the corrupted word still decodes to
  /// a valid instruction (which would otherwise corrupt data silently).
  bool scrub_imem = true;

  // --- graceful degradation ---
  bool allow_rebalance = true;
  int max_rebalances = 2;
  mapping::RebalanceAlgorithm rebalance_algo =
      mapping::RebalanceAlgorithm::kOpt;
  mapping::CostParams cost_params{};

  // --- hang detection ---
  EpochWatchdog watchdog{};

  [[nodiscard]] config::IcapFaultOptions icap_options(
      config::IcapTap* tap) const noexcept {
    config::IcapFaultOptions o;
    o.tap = tap;
    o.verify_readback = verify_readback;
    o.verify_cost_factor = verify_cost_factor;
    o.max_retries = max_icap_retries;
    o.retry_backoff_ns = icap_retry_backoff_ns;
    o.backoff_factor = icap_backoff_factor;
    return o;
  }
};

/// What happened during a resilient item run.
struct RecoveryReport {
  bool ok = false;
  Status status;                ///< Diagnostics when !ok.
  std::vector<Word> output;     ///< The last process's output block.
  config::Timeline timeline;    ///< Eq.-1 accounting incl. recovery cost.
  Nanoseconds recovery_ns = 0.0;  ///< Reconfig+compute spent on recovery
                                  ///< (verify, retries, scrubs, replays).
  int epochs_applied = 0;
  int faults_injected = 0;      ///< Scheduled events the injector fired.
  int icap_retries = 0;         ///< Payload re-streams by the controller.
  int scrub_detections = 0;     ///< Upsets caught by the imem fingerprint
                                ///< diff (RecoveryPolicy::scrub_imem).
  int rollbacks = 0;            ///< Checkpoint restore + replay rounds.
  int rebalances = 0;           ///< Remappings onto surviving tiles.
  std::vector<int> evacuated_tiles;  ///< Tiles abandoned as unusable.
  std::vector<Fault> unrecovered;    ///< Faults recovery could not clear.
};

/// Drives item schedules through a fabric with detection and recovery.
class RecoveryManager {
 public:
  /// `injector` may be null (no injected faults — the manager still
  /// detects and recovers organic ones).  None of the references are
  /// owned; the controller's fault options are saved and restored around
  /// each run.
  RecoveryManager(fabric::Fabric& fabric, config::ReconfigController& ctrl,
                  FaultInjector* injector, RecoveryPolicy policy = {});

  /// Run one pipeline item through `net` as mapped by `binding` /
  /// `placement`, feeding `input` to the first process and returning the
  /// last process's output block in the report.  Detection and recovery
  /// happen per the policy; the mapping may be rebalanced mid-run if
  /// hardware dies.
  RecoveryReport run_item(const procnet::ProcessNetwork& net,
                          const mapping::Binding& binding,
                          const mapping::Placement& placement,
                          const mapping::ProgramLibrary& library,
                          std::span<const Word> input,
                          const mapping::CompileOptions& options = {});

  [[nodiscard]] const RecoveryPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  /// Run the fabric for at most `budget` cycles, pausing at scheduled
  /// fault-injection cycles to fire them (segmented execution: the hot
  /// path has no per-cycle hook).
  fabric::RunResult run_with_injection(std::int64_t budget,
                                      RecoveryReport& report);

  void trace(int tile, fabric::RecoveryAction action, int attempt) const;

  fabric::Fabric& fabric_;
  config::ReconfigController& ctrl_;
  FaultInjector* injector_;
  RecoveryPolicy policy_;
};

}  // namespace cgra::faults

#include "faults/detector.hpp"

#include "isa/instruction.hpp"

namespace cgra::faults {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

constexpr std::uint64_t fnv1a(std::uint64_t h, std::uint64_t word) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t dmem_checksum(const fabric::Tile& tile) {
  std::uint64_t h = kFnvOffset;
  for (int addr = 0; addr < kDataMemWords; ++addr) {
    h = fnv1a(h, tile.dmem(addr));
  }
  return h;
}

std::uint64_t imem_checksum(const fabric::Tile& tile) {
  std::uint64_t h = kFnvOffset;
  for (int i = 0; i < tile.code_size(); ++i) {
    const isa::EncodedInstr raw = isa::encode(*tile.instruction_at(i));
    h = fnv1a(h, raw.lo);
    h = fnv1a(h, raw.hi);
  }
  return h;
}

MemoryChecksums snapshot_checksums(const fabric::Fabric& fabric) {
  MemoryChecksums sums;
  sums.dmem.reserve(static_cast<std::size_t>(fabric.tile_count()));
  sums.imem.reserve(static_cast<std::size_t>(fabric.tile_count()));
  for (int t = 0; t < fabric.tile_count(); ++t) {
    sums.dmem.push_back(dmem_checksum(fabric.tile(t)));
    sums.imem.push_back(imem_checksum(fabric.tile(t)));
  }
  return sums;
}

std::vector<int> changed_tiles(const MemoryChecksums& before,
                               const MemoryChecksums& after) {
  std::vector<int> changed;
  const std::size_t n = std::min(before.dmem.size(), after.dmem.size());
  for (std::size_t t = 0; t < n; ++t) {
    if (before.dmem[t] != after.dmem[t] || before.imem[t] != after.imem[t]) {
      changed.push_back(static_cast<int>(t));
    }
  }
  return changed;
}

}  // namespace cgra::faults

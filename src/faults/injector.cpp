#include "faults/injector.hpp"

#include <algorithm>

#include "isa/instruction.hpp"

namespace cgra::faults {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  remaining_.reserve(plan_.events.size());
  for (const auto& ev : plan_.events) {
    remaining_.push_back(
        ev.action == FaultAction::kCorruptIcap ? std::max(0, ev.count) : 1);
  }
}

std::optional<std::int64_t> FaultInjector::next_cycle() const {
  std::optional<std::int64_t> earliest;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const auto& ev = plan_.events[i];
    if (remaining_[i] <= 0 || ev.action == FaultAction::kCorruptIcap) {
      continue;
    }
    if (!earliest || ev.cycle < *earliest) earliest = ev.cycle;
  }
  return earliest;
}

int FaultInjector::fire_due(fabric::Fabric& fabric) {
  int fired = 0;
  const std::int64_t now = fabric.now();
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const auto& ev = plan_.events[i];
    if (remaining_[i] <= 0 || ev.action == FaultAction::kCorruptIcap ||
        ev.cycle > now) {
      continue;
    }
    if (ev.tile < 0 || ev.tile >= fabric.tile_count()) {
      remaining_[i] = 0;  // malformed event: drop it
      continue;
    }
    auto& tile = fabric.tile(ev.tile);
    switch (ev.action) {
      case FaultAction::kFlipDmemBit: {
        const int addr =
            ev.addr >= 0 ? ev.addr
                         : static_cast<int>(rng_.next_below(kDataMemWords));
        const int bit = ev.bit >= 0
                            ? ev.bit
                            : static_cast<int>(rng_.next_below(kWordBits));
        // A plan-specified address outside the data memory flips nothing
        // (the upset landed in unpopulated address space); the event is
        // still consumed.
        (void)tile.flip_dmem_bit(addr, bit);
        break;
      }
      case FaultAction::kFlipInstBit: {
        if (tile.code_size() > 0) {
          const int index =
              ev.addr >= 0 ? ev.addr
                           : static_cast<int>(rng_.next_below(
                                 static_cast<std::uint64_t>(
                                     tile.code_size())));
          const int bit =
              ev.bit >= 0 ? ev.bit
                          : static_cast<int>(rng_.next_below(kInstWordBits));
          tile.flip_inst_bit(index, bit);
        }
        break;
      }
      case FaultAction::kFailLink:
        fabric.fail_link(ev.tile);
        break;
      case FaultAction::kKillTile:
        fabric.kill_tile(ev.tile);
        break;
      case FaultAction::kCorruptIcap:
        break;  // unreachable: filtered above
    }
    remaining_[i] = 0;
    ++fired_count_;
    ++fired;
  }
  return fired;
}

void FaultInjector::on_stream(int tile, int /*attempt*/, isa::Program& program,
                              std::vector<isa::DataPatch>& patches) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const auto& ev = plan_.events[i];
    if (ev.action != FaultAction::kCorruptIcap || remaining_[i] <= 0 ||
        ev.tile != tile) {
      continue;
    }
    // Flip one bit of the payload: prefer the instruction stream, fall
    // back to a data patch.  An empty payload cannot be corrupted — the
    // event stays armed for the next non-empty stream.
    if (!program.code.empty()) {
      const auto index = rng_.next_below(program.code.size());
      isa::EncodedInstr raw = isa::encode(program.code[index]);
      const int bit = static_cast<int>(rng_.next_below(kInstWordBits));
      if (bit < 64) {
        raw.lo ^= std::uint64_t{1} << bit;
      } else {
        raw.hi ^= static_cast<std::uint8_t>(1u << (bit - 64));
      }
      // Decoding may normalise the flipped bit away (a don't-care bit of
      // the encoding); a corruption event must be observable, so poison
      // the word outright in that case.
      const isa::Instruction poison{isa::Opcode::kOpcodeCount, 0, 0, 0, 0, 0};
      const isa::Instruction corrupted = isa::decode(raw).value_or(poison);
      program.code[index] =
          corrupted == program.code[index] ? poison : corrupted;
    } else if (!patches.empty()) {
      const auto index = rng_.next_below(patches.size());
      const int bit = static_cast<int>(rng_.next_below(kWordBits));
      patches[index].value ^= std::uint64_t{1} << bit;
    } else {
      continue;
    }
    if (--remaining_[i] == 0) ++fired_count_;
    return;  // one corruption per stream attempt
  }
}

int FaultInjector::pending() const {
  int n = 0;
  for (const int r : remaining_) {
    if (r > 0) ++n;
  }
  return n;
}

}  // namespace cgra::faults

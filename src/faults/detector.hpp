// Fault detection: memory checksums and the epoch watchdog.
//
// Two detectors complement the reconfiguration controller's readback
// verification (config/reconfig.hpp):
//
//   * Memory checksums (FNV-1a over the data words / encoded instruction
//     words of each tile) — cheap integrity fingerprints the runtime can
//     snapshot at epoch boundaries and diff to localise silent SEUs that
//     have not (yet) raised an architectural fault.
//   * The epoch watchdog — flags a hung epoch when executed cycles exceed
//     the analytic model's prediction by a configurable margin.  An SEU in
//     a loop counter or branch target typically loops forever rather than
//     faulting; the watchdog converts that hang into kWatchdogTimeout.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fabric/fabric.hpp"

namespace cgra::faults {

/// FNV-1a fingerprint of a tile's 512 data words.
std::uint64_t dmem_checksum(const fabric::Tile& tile);

/// FNV-1a fingerprint of a tile's encoded (72-bit) instruction words.
std::uint64_t imem_checksum(const fabric::Tile& tile);

/// Per-tile fingerprints of the whole fabric.
struct MemoryChecksums {
  std::vector<std::uint64_t> dmem;
  std::vector<std::uint64_t> imem;
};

MemoryChecksums snapshot_checksums(const fabric::Fabric& fabric);

/// Tiles whose data or instruction fingerprint differs between two
/// snapshots (sorted ascending).  A tile that legitimately computed will
/// differ too — diff only across intervals the tile was meant to be idle.
std::vector<int> changed_tiles(const MemoryChecksums& before,
                               const MemoryChecksums& after);

/// Hang budget for one epoch, derived from the analytic prediction.
struct EpochWatchdog {
  /// Executed cycles allowed as a multiple of the prediction.
  double margin = 4.0;
  /// Floor: epochs with tiny (or missing) predictions still get this long.
  std::int64_t min_budget_cycles = 4096;

  [[nodiscard]] std::int64_t budget_cycles(
      std::int64_t predicted_cycles) const noexcept {
    const auto scaled = static_cast<std::int64_t>(
        margin * static_cast<double>(std::max<std::int64_t>(
                     0, predicted_cycles)));
    return std::max(min_budget_cycles, scaled);
  }
};

}  // namespace cgra::faults

// Deterministic fault injector.
//
// Executes a FaultPlan against a live fabric.  Cycle-scheduled events
// (SEUs, link failures, tile deaths) are polled by the recovery runner,
// which runs the fabric in segments up to the next scheduled event so the
// simulator's hot path needs no per-cycle hook.  ICAP corruption events
// implement the config::IcapTap interface: the reconfiguration controller
// hands each in-flight payload to the injector, which flips bits in the
// copy — the pristine payload stays with the controller for readback
// verification and re-streaming.
#pragma once

#include <optional>

#include "common/prng.hpp"
#include "config/reconfig.hpp"
#include "fabric/fabric.hpp"
#include "faults/fault_plan.hpp"

namespace cgra::faults {

/// Replays a FaultPlan against a fabric.  Deterministic: the same plan
/// (same seed) produces the same faults at the same cycles every run.
class FaultInjector final : public config::IcapTap {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Cycle of the earliest pending cycle-scheduled event, if any.  The
  /// recovery runner segments fabric.run() at this boundary.
  [[nodiscard]] std::optional<std::int64_t> next_cycle() const;

  /// Fire every pending event whose cycle has been reached
  /// (event.cycle <= fabric.now()).  Returns the number fired.
  int fire_due(fabric::Fabric& fabric);

  /// IcapTap: corrupt the in-flight payload of a stream to `tile` if a
  /// kCorruptIcap event with attempts remaining targets it.
  void on_stream(int tile, int attempt, isa::Program& program,
                 std::vector<isa::DataPatch>& patches) override;

  /// Events that have fully fired / are still pending.
  [[nodiscard]] int fired() const noexcept { return fired_count_; }
  [[nodiscard]] int pending() const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  /// Remaining activations per event: scheduled events start at 1,
  /// kCorruptIcap events at their `count`.
  std::vector<int> remaining_;
  int fired_count_ = 0;
  SplitMix64 rng_;
};

}  // namespace cgra::faults

#include "faults/recovery.hpp"

#include <algorithm>
#include <exception>
#include <set>

#include "mapping/placement.hpp"

namespace cgra::faults {

namespace {

std::vector<Word> read_block(const fabric::Tile& tile, int base, int words) {
  std::vector<Word> block;
  block.reserve(static_cast<std::size_t>(words));
  for (int i = 0; i < words; ++i) block.push_back(tile.dmem(base + i));
  return block;
}

void write_block(fabric::Tile& tile, int base, std::span<const Word> block) {
  for (std::size_t i = 0; i < block.size(); ++i) {
    tile.set_dmem(base + static_cast<int>(i), block[i]);
  }
}

/// Restores the controller's fault options when a run exits by any path.
class OptionsGuard {
 public:
  explicit OptionsGuard(config::ReconfigController& ctrl)
      : ctrl_(ctrl), saved_(ctrl.fault_options()) {}
  ~OptionsGuard() { ctrl_.set_fault_options(saved_); }
  OptionsGuard(const OptionsGuard&) = delete;
  OptionsGuard& operator=(const OptionsGuard&) = delete;

 private:
  config::ReconfigController& ctrl_;
  config::IcapFaultOptions saved_;
};

}  // namespace

RecoveryManager::RecoveryManager(fabric::Fabric& fabric,
                                 config::ReconfigController& ctrl,
                                 FaultInjector* injector,
                                 RecoveryPolicy policy)
    : fabric_(fabric), ctrl_(ctrl), injector_(injector), policy_(policy) {}

void RecoveryManager::trace(int tile, fabric::RecoveryAction action,
                            int attempt) const {
  if (obs::SpanTimeline* spans = ctrl_.timeline(); spans != nullptr) {
    spans->instant(
        std::string("recovery:") + fabric::recovery_action_name(action),
        "recovery", obs::tile_track(tile), cycles_to_ns(fabric_.now()),
        {{"tile", std::to_string(tile), true},
         {"attempt", std::to_string(attempt), true}});
  }
  if (fabric_.tracer() == nullptr) return;
  fabric::TraceEvent ev;
  ev.cycle = fabric_.now();
  ev.kind = fabric::TraceEventKind::kRecovery;
  ev.tile = tile;
  ev.action = action;
  ev.attempt = attempt;
  fabric_.tracer()->record(ev);
}

fabric::RunResult RecoveryManager::run_with_injection(std::int64_t budget,
                                                      RecoveryReport& report) {
  fabric::RunResult total;
  if (injector_ != nullptr) {
    report.faults_injected += injector_->fire_due(fabric_);
  }
  std::int64_t remaining = budget;
  while (remaining > 0) {
    std::int64_t segment = remaining;
    if (injector_ != nullptr) {
      if (const auto next = injector_->next_cycle();
          next && *next > fabric_.now()) {
        segment = std::min(segment, *next - fabric_.now());
      }
    }
    const fabric::RunResult r = fabric_.run(segment);
    remaining -= r.cycles;
    total.cycles += r.cycles;
    if (injector_ != nullptr) {
      report.faults_injected += injector_->fire_due(fabric_);
    }
    if (fabric_.all_halted() || r.cycles == 0) break;
  }
  total.all_halted = fabric_.all_halted();
  total.faults = fabric_.faults();
  return total;
}

RecoveryReport RecoveryManager::run_item(
    const procnet::ProcessNetwork& net, const mapping::Binding& binding,
    const mapping::Placement& placement,
    const mapping::ProgramLibrary& library, std::span<const Word> input,
    const mapping::CompileOptions& options) {
  RecoveryReport rep;
  if (binding.groups.empty() || binding.groups.front().procs.empty()) {
    rep.status = Status::error("empty binding");
    return rep;
  }

  OptionsGuard restore_options(ctrl_);
  ctrl_.set_fault_options(policy_.icap_options(injector_));

  mapping::Binding cur_binding = binding;
  mapping::Placement cur_place = placement;
  mapping::CompileOptions copts = options;
  std::set<int> avoid(copts.avoid_tiles.begin(), copts.avoid_tiles.end());
  std::set<int> evacuated;  ///< Tiles whose latched faults are expected.

  auto sched = mapping::compile_item_schedule(net, cur_binding, cur_place,
                                              library, copts);
  if (!sched.ok()) {
    rep.status = sched.status;
    return rep;
  }

  const int first_pid = cur_binding.groups.front().procs.front();
  const auto& first_impl = library.at(first_pid);
  if (static_cast<int>(input.size()) != first_impl.words) {
    rep.status = Status::errorf(
        "input block is %d words, process '%s' expects %d",
        static_cast<int>(input.size()), net.process(first_pid).name.c_str(),
        first_impl.words);
    return rep;
  }
  write_block(fabric_.tile(sched.meta.front().tile), first_impl.in_base,
              input);

  /// Host-side golden copy of the in-flight block at the last process
  /// boundary — the MicroBlaze runtime's checkpoint.
  struct Checkpoint {
    int pid = -1;
    std::size_t epoch = 0;
    int tile = -1;
    std::vector<Word> block;
  };
  Checkpoint ckpt;
  int retries_here = 0;
  std::size_t furthest = 0;  ///< First epoch index not yet completed.
  std::size_t idx = 0;

  auto give_up = [&](std::vector<Fault> faults, Status why) -> RecoveryReport {
    rep.unrecovered = std::move(faults);
    rep.status = std::move(why);
    rep.evacuated_tiles.assign(evacuated.begin(), evacuated.end());
    if (!rep.unrecovered.empty()) {
      trace(rep.unrecovered.front().tile, fabric::RecoveryAction::kGiveUp,
            retries_here);
    }
    return rep;
  };

  while (idx < sched.epochs.size()) {
    const bool replay = idx < furthest;
    const mapping::EpochMeta& m = sched.meta[idx];
    if (m.process >= 0) {
      if (ckpt.pid != m.process || ckpt.epoch != idx) retries_here = 0;
      const auto& impl = library.at(m.process);
      ckpt = {m.process, idx, m.tile,
              read_block(fabric_.tile(m.tile), impl.in_base, impl.words)};
    }

    const config::TransitionReport treport =
        ctrl_.apply(fabric_, sched.epochs[idx]);
    rep.timeline.reconfig_ns += treport.total_ns();
    rep.timeline.transitions.push_back(treport);
    rep.icap_retries += treport.icap_retries;
    rep.recovery_ns += treport.retry_ns;
    if (replay) rep.recovery_ns += treport.total_ns() - treport.retry_ns;
    ++rep.epochs_applied;

    fabric::RunResult run{};
    const bool stream_failed = !treport.detected.empty();
    std::vector<std::uint64_t> imem_before;
    if (policy_.scrub_imem && !stream_failed) {
      imem_before.reserve(static_cast<std::size_t>(fabric_.tile_count()));
      for (int t = 0; t < fabric_.tile_count(); ++t) {
        imem_before.push_back(imem_checksum(fabric_.tile(t)));
      }
    }
    if (!stream_failed) {
      const std::int64_t budget =
          policy_.watchdog.budget_cycles(m.predicted_cycles);
      const Nanoseconds epoch_start_ns = cycles_to_ns(fabric_.now());
      run = run_with_injection(budget, rep);
      rep.timeline.epoch_compute_ns += run.elapsed_ns();
      rep.timeline.epoch_cycles.push_back(run.cycles);
      if (obs::SpanTimeline* spans = ctrl_.timeline(); spans != nullptr) {
        spans->complete(sched.epochs[idx].name, "epoch", obs::kTrackEpochs,
                        epoch_start_ns, run.elapsed_ns(),
                        {{"cycles", std::to_string(run.cycles), true},
                         {"replay", replay ? "true" : "false", true}});
      }
      if (replay) rep.recovery_ns += run.elapsed_ns();
      // Configuration scrub: instruction memory never changes outside
      // the ICAP, so any fingerprint drift across the run is an upset —
      // including one whose corrupted word still decodes to a valid
      // instruction and so raised no architectural fault.
      if (policy_.scrub_imem) {
        for (int t = 0; t < fabric_.tile_count(); ++t) {
          if (evacuated.count(t) != 0 || fabric_.tile(t).faulted()) continue;
          if (imem_checksum(fabric_.tile(t)) !=
              imem_before[static_cast<std::size_t>(t)]) {
            fabric_.tile(t).inject_fault(FaultKind::kIcapCorruption, t,
                                         fabric_.now());
            ++rep.scrub_detections;
          }
        }
      }
    }

    // Detected stream failures first, then faults latched in the tiles
    // (skipping tiles already evacuated, whose kTileDead is expected, and
    // tiles both detected and latched).
    std::vector<Fault> faults;
    for (const Fault& f : treport.detected) {
      if (evacuated.count(f.tile) == 0) faults.push_back(f);
    }
    for (const Fault& f : fabric_.faults()) {
      if (evacuated.count(f.tile) != 0) continue;
      bool seen = false;
      for (const Fault& d : faults) seen = seen || d.tile == f.tile;
      if (!seen) faults.push_back(f);
    }
    if (!stream_failed && faults.empty() && !run.all_halted) {
      // Nothing faulted but the epoch overran its analytic budget: a hung
      // loop (e.g. an SEU in a loop counter).  The watchdog converts the
      // hang into a recoverable fault on the epoch's tile.
      fabric_.tile(m.tile).inject_fault(FaultKind::kWatchdogTimeout, m.tile,
                                        fabric_.now());
      faults.push_back(fabric_.tile(m.tile).fault());
    }
    if (faults.empty()) {
      furthest = std::max(furthest, idx + 1);
      ++idx;
      continue;
    }

    bool any_permanent = false;
    for (const Fault& f : faults) {
      if (fault_is_permanent(f.kind) || fabric_.tile(f.tile).dead()) {
        any_permanent = true;
      }
    }

    if (any_permanent) {
      // --- graceful degradation: evacuate and remap onto survivors ---
      if (!policy_.allow_rebalance) {
        return give_up(std::move(faults),
                       Status::error("hard fault and rebalance disabled"));
      }
      if (rep.rebalances >= policy_.max_rebalances) {
        return give_up(std::move(faults),
                       Status::errorf("rebalance budget (%d) exhausted",
                                      policy_.max_rebalances));
      }
      if (ckpt.pid < 0) {
        return give_up(std::move(faults),
                       Status::error("hard fault before first checkpoint"));
      }
      for (const Fault& f : faults) {
        avoid.insert(f.tile);
        evacuated.insert(f.tile);
        fabric_.tile(f.tile).clear_fault();  // no-op on dead tiles
      }
      for (const int t : fabric_.dead_tiles()) {
        avoid.insert(t);
        evacuated.insert(t);
      }
      for (int t = 0; t < fabric_.tile_count(); ++t) {
        if (fabric_.link_failed(t)) {
          avoid.insert(t);
          evacuated.insert(t);
          fabric_.tile(t).clear_fault();
        }
      }
      const int surviving =
          fabric_.tile_count() - static_cast<int>(avoid.size());
      const int tile_budget = std::min(cur_binding.tile_count(), surviving);
      if (tile_budget < 1) {
        return give_up(std::move(faults),
                       Status::error("no surviving tiles to remap onto"));
      }
      cur_binding = mapping::rebalance(net, tile_budget,
                                       policy_.rebalance_algo,
                                       policy_.cost_params);
      copts.avoid_tiles.assign(avoid.begin(), avoid.end());
      try {
        cur_place = mapping::place_avoiding(
            cur_binding, fabric_.rows(), fabric_.cols(),
            mapping::PlacementStrategy::kSnake, copts.avoid_tiles);
      } catch (const std::exception& e) {
        return give_up(std::move(faults), Status::errorf("%s", e.what()));
      }
      sched = mapping::compile_item_schedule(net, cur_binding, cur_place,
                                             library, copts);
      if (!sched.ok()) {
        return give_up(std::move(faults), sched.status);
      }
      std::size_t resume = sched.epochs.size();
      for (std::size_t e = 0; e < sched.meta.size(); ++e) {
        if (sched.meta[e].process == ckpt.pid) {
          resume = e;
          break;
        }
      }
      if (resume == sched.epochs.size()) {
        return give_up(
            std::move(faults),
            Status::error("checkpointed process missing after rebalance"));
      }
      const auto& impl = library.at(ckpt.pid);
      write_block(fabric_.tile(sched.meta[resume].tile), impl.in_base,
                  ckpt.block);
      ckpt.epoch = resume;
      ckpt.tile = sched.meta[resume].tile;
      idx = resume;
      furthest = resume;  // new schedule: indices beyond here are fresh
      retries_here = 0;
      ++rep.rebalances;
      trace(ckpt.tile, fabric::RecoveryAction::kRebalance, rep.rebalances);
      continue;
    }

    // --- transient fault: scrub, roll back, replay from the checkpoint ---
    if (ckpt.pid < 0) {
      return give_up(std::move(faults),
                     Status::error("fault before first checkpoint"));
    }
    if (++retries_here > policy_.max_retries_per_checkpoint) {
      return give_up(std::move(faults),
                     Status::errorf("retry budget (%d) per checkpoint "
                                    "exhausted",
                                    policy_.max_retries_per_checkpoint));
    }
    for (const Fault& f : faults) {
      // Scrub: re-stream the faulted tile's configuration through the
      // ICAP (paying the modelled time) and clear the latched fault.  The
      // upset may sit on a tile the current epoch never touched, so the
      // scrub source is the most recent epoch that configured the tile.
      for (std::size_t e = idx + 1; e-- > 0;) {
        if (sched.epochs[e].tiles.count(f.tile) == 0) continue;
        const config::TransitionReport scrub =
            ctrl_.scrub_tile(fabric_, sched.epochs[e], f.tile);
        if (scrub.total_ns() > 0.0) {
          rep.timeline.reconfig_ns += scrub.total_ns();
          rep.timeline.transitions.push_back(scrub);
          rep.recovery_ns += scrub.total_ns();
          rep.icap_retries += scrub.icap_retries;
        }
        break;
      }
      fabric_.tile(f.tile).clear_fault();
    }
    const auto& impl = library.at(ckpt.pid);
    write_block(fabric_.tile(ckpt.tile), impl.in_base, ckpt.block);
    ++rep.rollbacks;
    trace(ckpt.tile, fabric::RecoveryAction::kRollback, retries_here);
    idx = ckpt.epoch;
  }

  // --- success: read the final block off the last process's tile ---
  const int last_pid = cur_binding.groups.back().procs.back();
  const auto& last_impl = library.at(last_pid);
  int out_tile = -1;
  for (std::size_t e = sched.meta.size(); e-- > 0;) {
    if (sched.meta[e].process == last_pid) {
      out_tile = sched.meta[e].tile;
      break;
    }
  }
  rep.output =
      read_block(fabric_.tile(out_tile), last_impl.out_base, last_impl.words);
  rep.evacuated_tiles.assign(evacuated.begin(), evacuated.end());
  rep.ok = true;
  return rep;
}

}  // namespace cgra::faults

// Scriptable fault plans.
//
// A FaultPlan is a deterministic script of hardware faults: single-event
// upsets in tile memories, words corrupted in flight during ICAP transfers,
// failed link drivers and hard tile deaths, each scheduled at a fabric
// cycle (or, for ICAP corruption, at a stream attempt).  All randomness —
// which address, which bit — flows from the plan's seed through SplitMix64,
// so a plan replays identically run after run; the recovery tests and the
// fault-rate sweep bench rely on this (docs/FAULTS.md).
#pragma once

#include <cstdint>
#include <vector>

namespace cgra::faults {

/// What a fault event does when it fires.
enum class FaultAction : std::uint8_t {
  kFlipDmemBit,  ///< SEU: flip one bit of a data-memory word.
  kFlipInstBit,  ///< SEU: flip one bit of an encoded instruction word.
  kCorruptIcap,  ///< Corrupt words in flight during ICAP streams to a tile.
  kFailLink,     ///< Permanently break the tile's output link driver.
  kKillTile,     ///< Hard-fail the whole tile.
};

const char* fault_action_name(FaultAction a) noexcept;

/// One scheduled fault.
struct FaultEvent {
  FaultAction action = FaultAction::kFlipDmemBit;
  int tile = 0;
  /// Fabric cycle at (or after) which the fault lands.  Ignored by
  /// kCorruptIcap, which triggers on ICAP streams instead.
  std::int64_t cycle = 0;
  /// SEU target: data-memory address or instruction index; -1 = chosen by
  /// the plan's PRNG when the event fires.
  int addr = -1;
  /// SEU target bit; -1 = chosen by the plan's PRNG.
  int bit = -1;
  /// kCorruptIcap: how many consecutive stream attempts to corrupt.  A
  /// value below the controller's retry bound recovers; above it, the
  /// corruption is latched as kIcapCorruption.
  int count = 1;
};

/// A deterministic script of fault events.
struct FaultPlan {
  std::uint64_t seed = 0x5EEDu;
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  // Builder helpers (chainable).
  FaultPlan& flip_dmem_bit(std::int64_t cycle, int tile, int addr = -1,
                           int bit = -1);
  FaultPlan& flip_inst_bit(std::int64_t cycle, int tile, int index = -1,
                           int bit = -1);
  FaultPlan& corrupt_icap(int tile, int times = 1);
  FaultPlan& fail_link(std::int64_t cycle, int tile);
  FaultPlan& kill_tile(std::int64_t cycle, int tile);

  /// A shower of `upsets` random SEUs spread uniformly over `tiles` tiles
  /// and [0, horizon_cycles); `imem_fraction` of them hit instruction
  /// memory, the rest data memory.  Fully determined by `seed`.
  static FaultPlan random_seus(std::uint64_t seed, int tiles,
                               std::int64_t horizon_cycles, int upsets,
                               double imem_fraction = 0.5);
};

}  // namespace cgra::faults

// Radix-2 FFT partitioning onto M-point tiles (Sec. 3.1).
//
// An N-point radix-2 DIF FFT has S = log2(N) stages.  The computation is
// broken into N/M horizontal rows, each mapped to a tile; a design uses
// `cols` columns of tiles, each column executing S/cols consecutive stages.
//
// The partition size M is fixed by the tile's data memory: a stage needs
// 2M locations for data (own + partner/scratch), up to M for twiddles and
// 41 temporaries, so M = 2^x with x = floor(log2((DM - 41) / 3)); for the
// 512-word reMORPH memory M = 128 (paper Sec. 3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/timing.hpp"

namespace cgra::fft {

/// Largest power-of-two partition size a data memory of `dmem_words`
/// supports (3M + 41 <= DM).
int max_partition_size(int dmem_words = kDataMemWords) noexcept;

/// Geometry of an N-point FFT on M-point tiles.
struct FftGeometry {
  int n = 0;       ///< Transform size (power of two).
  int m = 0;       ///< Partition (tile) size (power of two, m <= n).
  int stages = 0;  ///< log2(n).
  int rows = 0;    ///< n / m tiles per column.

  /// Stages whose butterfly span crosses tiles (need vertical exchange):
  /// the first log2(n) - log2(m) stages.
  [[nodiscard]] int cross_stages() const noexcept;

  /// Butterfly half-span of stage s: H = n / 2^(s+1).
  [[nodiscard]] int half_span(int stage) const noexcept;

  /// Twiddle words a tile needs for stage s: min(M, N / 2^(s+1))
  /// (reproduces Table 1's "Twiddle" column for N=1024, M=128).
  [[nodiscard]] int twiddles_for_stage(int stage) const noexcept;

  /// Distinct twiddle exponents tile-row `row` needs at `stage`, following
  /// the rearranged structure of Fig. 6/8: row r owns butterflies
  /// [r*M/2, (r+1)*M/2), and butterfly t of stage s uses exponent
  /// 2^s * (t mod N/2^(s+1)).
  [[nodiscard]] std::vector<int> twiddle_exponents(int row, int stage) const;

  /// Minimum and maximum usable column counts (1 .. stages).
  [[nodiscard]] int min_tiles() const noexcept { return rows; }
  [[nodiscard]] int max_tiles() const noexcept { return rows * stages; }
};

/// Build the geometry; M defaults to the memory-derived maximum.
FftGeometry make_geometry(int n, int m = 0);

}  // namespace cgra::fft

// Assembly program builders for the FFT kernels.
//
// Tile data-memory layout for an M-point partition (3M + 41 words, the
// paper's budget):
//   X = [0, M)        data (inputs, overwritten by outputs)
//   P = [M, 2M)       partner / transit scratch
//   W = [2M, 3M)      twiddle factors
//   CTRL = [3M, 3M+8) loop counters, pointers, temporaries
//
// Kernels:
//   bf_pair    — the constant-geometry butterfly: slot k pairs with slot
//                k+M/2, twiddle W[k]; used by every stage of the fabric FFT.
//   bf_local   — stride-H in-tile butterflies (groups of 2H); used to
//                measure the per-stage runtimes of Table 1, where later
//                stages pay more loop overhead.
//   copy_loop  — the vcp/hcp copy process: a 5-instruction/word loop that
//                streams `count` words to the linked neighbour; its
//                source/destination variables live in CTRL so they can be
//                updated in place (Table 2's optimisation) instead of
//                reloading the program.
//   copy_straight — straight-line remote/local moves used by the
//                redistribution sub-epochs (one instruction per word).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "isa/assembler.hpp"

namespace cgra::fft {

/// Layout constants for an M-point tile.
struct TileLayout {
  int m = 0;
  int x = 0;       ///< data base
  int p = 0;       ///< scratch base
  int w = 0;       ///< twiddle base
  int ctrl = 0;    ///< control base
  // Control-region slots.
  int cnt_g = 0, cnt_j = 0, pa = 0, pb = 0, pw = 0, ts = 0, td = 0, ps = 0;
};

/// Build the layout for partition size m (requires 3m + 16 <= 512).
TileLayout make_layout(int m);

/// Constant-geometry butterfly kernel: M/2 butterflies (k, k+M/2).
std::string bf_pair_source(const TileLayout& lay);

/// Stride-H butterfly kernel (H < M): M/(2H) groups of H butterflies.
std::string bf_local_source(const TileLayout& lay, int h);

/// Copy loop streaming `count` words from `src_base` to the neighbour's
/// `dst_base` (remote = true) or locally (remote = false).  The source and
/// destination pointers are CTRL variables initialised by the program but
/// re-targetable by 2-word data patches (Table 2).
std::string copy_loop_source(const TileLayout& lay, int count, int src_base,
                             int dst_base, bool remote);

/// One straight-line move per (src, dst) pair; remote selects neighbour
/// writes.  Used by the redistribution sub-epochs.
std::string copy_straight_source(
    const std::vector<std::pair<int, int>>& moves, bool remote);

/// Assemble `source`, aborting the process on assembly errors (builder
/// outputs are programmatically generated; errors are bugs, not input).
isa::Program must_assemble(const std::string& source);

}  // namespace cgra::fft

#include "apps/fft/reference.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace cgra::fft {

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

int log2_exact(std::size_t n) noexcept {
  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

std::size_t bit_reverse(std::size_t i, int bits) noexcept {
  std::size_t out = 0;
  for (int b = 0; b < bits; ++b) {
    out = (out << 1) | ((i >> b) & 1u);
  }
  return out;
}

Cplx twiddle(std::size_t n, std::size_t k) {
  const double ang =
      -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
  return {std::cos(ang), std::sin(ang)};
}

void fft_dif(std::vector<Cplx>& x) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft size must be 2^k");
  for (std::size_t half = n / 2; half >= 1; half /= 2) {
    const std::size_t step = n / (2 * half);  // twiddle exponent stride
    for (std::size_t base = 0; base < n; base += 2 * half) {
      for (std::size_t j = 0; j < half; ++j) {
        const Cplx a = x[base + j];
        const Cplx b = x[base + j + half];
        x[base + j] = a + b;
        x[base + j + half] = (a - b) * twiddle(n, j * step);
      }
    }
  }
}

FftPlan::FftPlan(std::size_t n) : n_(n), bits_(log2_exact(n)) {
  if (!is_pow2(n)) throw std::invalid_argument("fft size must be 2^k");
  twiddles_.reserve(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    twiddles_.push_back(twiddle(n, k));
  }
}

void FftPlan::transform_dif(std::vector<Cplx>& x) const {
  if (x.size() != n_) throw std::invalid_argument("size mismatch with plan");
  for (std::size_t half = n_ / 2; half >= 1; half /= 2) {
    const std::size_t step = n_ / (2 * half);
    for (std::size_t base = 0; base < n_; base += 2 * half) {
      for (std::size_t j = 0; j < half; ++j) {
        const Cplx a = x[base + j];
        const Cplx b = x[base + j + half];
        x[base + j] = a + b;
        x[base + j + half] = (a - b) * twiddles_[j * step];
      }
    }
  }
}

std::vector<Cplx> FftPlan::transform(std::vector<Cplx> x) const {
  transform_dif(x);
  std::vector<Cplx> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[bit_reverse(i, bits_)] = x[i];
  }
  return out;
}

std::vector<Cplx> fft(std::vector<Cplx> x) {
  const int bits = log2_exact(x.size());
  fft_dif(x);
  std::vector<Cplx> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[bit_reverse(i, bits)] = x[i];
  }
  return out;
}

std::vector<Cplx> dft_naive(const std::vector<Cplx>& x) {
  const std::size_t n = x.size();
  std::vector<Cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      acc += x[j] * twiddle(n, (j * k) % n);
    }
    out[k] = acc;
  }
  return out;
}

double rms_error(const std::vector<Cplx>& a, const std::vector<Cplx>& b) {
  if (a.size() != b.size() || a.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::norm(a[i] - b[i]);
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace cgra::fft

#include "apps/fft/fabric_fft.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "apps/fft/programs.hpp"
#include "common/fixed_complex.hpp"
#include "config/profiler.hpp"
#include "fabric/fabric.hpp"
#include "interconnect/link.hpp"

namespace cgra::fft {

using config::EpochConfig;
using config::ReconfigController;
using config::TileUpdate;
using interconnect::Direction;
using interconnect::LinkConfig;

ElementPos element_position(const FftGeometry& g, int stage, int e) {
  const int h = g.half_span(stage);
  const int span2 = 2 * h;
  const int r_in = e % span2;
  const bool b_side = r_in >= h;
  const int t = (e / span2) * h + (b_side ? r_in - h : r_in);
  const int half = g.m / 2;
  ElementPos pos;
  pos.row = t / half;
  pos.slot = (t % half) + (b_side ? half : 0);
  return pos;
}

namespace {

/// Twiddle patches for stage `stage` of row `row`: W[k] holds the factor of
/// butterfly r*M/2 + k.
std::vector<isa::DataPatch> twiddle_patches(const FftGeometry& g,
                                            const TileLayout& lay, int row,
                                            int stage) {
  const int h = g.half_span(stage);
  const int step = g.n / (2 * h);
  std::vector<isa::DataPatch> patches;
  patches.reserve(static_cast<std::size_t>(g.m / 2));
  for (int k = 0; k < g.m / 2; ++k) {
    const int t = row * (g.m / 2) + k;
    const std::size_t exponent =
        static_cast<std::size_t>((t % h) * step) % static_cast<std::size_t>(g.n);
    patches.push_back(isa::DataPatch{
        lay.w + k,
        pack_complex(to_fixed(twiddle(static_cast<std::size_t>(g.n),
                                      exponent)))});
  }
  return patches;
}

/// One pending inter-stage element move (between physical tiles).
struct Move {
  int src_tile = 0, src_slot = 0;
  int dst_tile = 0, dst_slot = 0;
  int cur_tile = 0;
  bool in_transit = false;  ///< Value sits in P[dst_slot] of cur_tile.
  bool delivered = false;   ///< Arrived at dst_tile's P (awaiting apply).
  bool applied = false;
};

}  // namespace

TwiddleTable twiddle_patch_table(const FftGeometry& g) {
  const TileLayout lay = make_layout(g.m);
  TwiddleTable table;
  table.rows = g.rows;
  table.patches.reserve(static_cast<std::size_t>(g.stages * g.rows));
  for (int s = 0; s < g.stages; ++s) {
    for (int row = 0; row < g.rows; ++row) {
      table.patches.push_back(twiddle_patches(g, lay, row, s));
    }
  }
  return table;
}

FabricFftResult run_fabric_fft(const FftGeometry& g,
                               const std::vector<Cplx>& input,
                               const FabricFftOptions& opt) {
  FabricFftResult result;
  if (static_cast<int>(input.size()) != g.n) {
    result.status = Status::errorf("input size %zu does not match n=%d",
                                   input.size(), g.n);
    return result;
  }
  const int cols = opt.cols;
  if (cols < 1 || g.stages % cols != 0) {
    result.status = Status::errorf(
        "cols=%d must be positive and divide log2(n)=%d", cols, g.stages);
    return result;
  }
  const int spc = g.stages / cols;  // stage slots per column
  const auto stage_col = [spc](int stage) { return stage / spc; };

  const TileLayout lay = make_layout(g.m);
  const auto assemble = opt.assemble
                            ? opt.assemble
                            : [](const std::string& s) { return must_assemble(s); };
  std::optional<fabric::Fabric> local;
  if (opt.fabric == nullptr) local.emplace(g.rows, cols);
  fabric::Fabric& fab = opt.fabric != nullptr ? *opt.fabric : *local;
  if (fab.rows() != g.rows || fab.cols() != cols) {
    result.status = Status::errorf(
        "borrowed fabric is %dx%d, geometry needs %dx%d", fab.rows(),
        fab.cols(), g.rows, cols);
    return result;
  }
  const auto tidx = [cols](int row, int col) { return row * cols + col; };
  ReconfigController ctrl(IcapModel{},
                          interconnect::LinkCostModel{opt.link_cost_ns});
  ctrl.set_fault_options(opt.icap_faults);
  ctrl.attach_timeline(opt.spans);
  fab.attach_metrics(opt.metrics);
  config::Timeline& timeline = result.timeline;

  /// Every exit past this point goes through finish() so the profile is
  /// available even for runs that end early on a fault.
  auto finish = [&]() -> FabricFftResult& {
    if (opt.collect_profile) {
      result.profile = config::build_profile(fab, timeline);
    }
    return result;
  };

  auto run_epoch = [&](const EpochConfig& epoch) -> bool {
    const auto report = ctrl.apply(fab, epoch);
    timeline.reconfig_ns += report.total_ns();
    timeline.transitions.push_back(report);
    const Nanoseconds epoch_start_ns = cycles_to_ns(fab.now());
    const auto run = fab.run(opt.max_cycles_per_epoch);
    timeline.epoch_compute_ns += run.elapsed_ns();
    timeline.epoch_cycles.push_back(run.cycles);
    if (opt.spans != nullptr) {
      opt.spans->complete(epoch.name, "epoch", obs::kTrackEpochs,
                          epoch_start_ns, run.elapsed_ns(),
                          {{"cycles", std::to_string(run.cycles), true}});
    }
    ++result.epochs;
    if (!run.ok()) {
      result.faults = run.faults;
      result.status =
          run.faults.empty()
              ? Status::errorf("epoch '%s' exceeded the %lld-cycle budget",
                               epoch.name.c_str(),
                               static_cast<long long>(
                                   opt.max_cycles_per_epoch))
              : Status::errorf("epoch '%s' ended with %zu fault(s): %s",
                               epoch.name.c_str(), run.faults.size(),
                               run.faults.front().describe().c_str());
      return false;
    }
    return true;
  };

  const LinkConfig no_links(g.rows, cols);

  // ---- preprocessing: scatter scaled inputs to the stage-0 arrangement ----
  {
    EpochConfig load;
    load.name = "input-scramble";
    load.links = no_links;
    const double scale = 1.0 / static_cast<double>(g.n);
    std::map<int, std::vector<isa::DataPatch>> per_tile;
    for (int e = 0; e < g.n; ++e) {
      const ElementPos pos = element_position(g, 0, e);
      per_tile[tidx(pos.row, 0)].push_back(isa::DataPatch{
          lay.x + pos.slot,
          pack_complex(to_fixed(input[static_cast<std::size_t>(e)] * scale))});
    }
    for (auto& [tile, patches] : per_tile) {
      TileUpdate update;
      update.patches = std::move(patches);
      update.restart = false;
      load.tiles[tile] = std::move(update);
    }
    if (!run_epoch(load)) return finish();
  }

  const isa::Program bf_prog = assemble(bf_pair_source(lay));
  // Instruction pinning: the BF kernel stays resident in a tile until a
  // redistribution epoch overwrites that tile's instruction memory.
  std::vector<bool> kernel_resident(
      static_cast<std::size_t>(g.rows * cols), false);

  for (int s = 0; s < g.stages; ++s) {
    const int sc = stage_col(s);
    // ---- butterfly epoch on column sc: twiddles patched, kernel reloaded
    // only where a copy program clobbered it ----
    EpochConfig bf;
    bf.name = "bf-stage-" + std::to_string(s);
    bf.links = no_links;
    for (int row = 0; row < g.rows; ++row) {
      const int tile = tidx(row, sc);
      TileUpdate update;
      if (!kernel_resident[static_cast<std::size_t>(tile)]) {
        update.program = bf_prog;
        update.reload_program = true;
        kernel_resident[static_cast<std::size_t>(tile)] = true;
      }
      update.patches = opt.twiddles != nullptr
                           ? opt.twiddles->at(s, row)
                           : twiddle_patches(g, lay, row, s);
      update.restart = true;
      bf.tiles[tile] = std::move(update);
    }
    if (!run_epoch(bf)) return finish();
    if (s + 1 == g.stages) break;

    // ---- redistribution to the stage-(s+1) arrangement ----
    // When the next stage lives in the next column this also performs the
    // hcp horizontal transfer; within a column it is the vcp exchange.
    const int next_col = stage_col(s + 1);
    std::vector<Move> moves;
    for (int e = 0; e < g.n; ++e) {
      const ElementPos from = element_position(g, s, e);
      const ElementPos to = element_position(g, s + 1, e);
      const int src_tile = tidx(from.row, sc);
      const int dst_tile = tidx(to.row, next_col);
      if (src_tile == dst_tile && from.slot == to.slot) continue;
      Move mv;
      mv.src_tile = src_tile;
      mv.src_slot = from.slot;
      mv.dst_tile = dst_tile;
      mv.dst_slot = to.slot;
      mv.cur_tile = src_tile;
      moves.push_back(mv);
    }
    // P-region occupancy: (tile, slot) held by an unapplied in-transit move.
    std::set<std::pair<int, int>> occupied;
    // X slots that are still the source of a not-yet-departed move.
    auto x_busy = [&](int tile, int slot) {
      for (const auto& mv : moves) {
        if (!mv.in_transit && !mv.delivered && mv.src_tile == tile &&
            mv.src_slot == slot) {
          return true;
        }
      }
      return false;
    };

    auto all_done = [&]() {
      return std::all_of(moves.begin(), moves.end(),
                         [](const Move& m) { return m.applied; });
    };

    // Next hop of a move: vertical first, then horizontal.
    auto next_hop = [&](const Move& mv) -> std::optional<Direction> {
      const auto cur = no_links.coord(mv.cur_tile);
      const auto dst = no_links.coord(mv.dst_tile);
      if (dst.row < cur.row) return Direction::kNorth;
      if (dst.row > cur.row) return Direction::kSouth;
      if (dst.col > cur.col) return Direction::kEast;
      if (dst.col < cur.col) return Direction::kWest;
      return std::nullopt;
    };

    int guard = 0;
    while (!all_done()) {
      if (++guard > 8 * (g.rows + cols) + 64) {
        result.status =
            Status::errorf("redistribution livelock after stage %d", s);
        return finish();
      }
      bool progress = false;

      // One hop sub-epoch per direction.
      for (const Direction dir :
           {Direction::kNorth, Direction::kSouth, Direction::kEast,
            Direction::kWest}) {
        EpochConfig hop;
        hop.name = "redistribute-s" + std::to_string(s);
        hop.links = no_links;
        std::map<int, std::vector<std::pair<int, int>>> remote_moves;
        std::map<int, std::vector<std::pair<int, int>>> local_moves;
        std::vector<Move*> advancing;
        std::set<std::pair<int, int>> claimed;  // P slots claimed this hop

        for (auto& mv : moves) {
          if (mv.delivered) continue;
          if (mv.dst_tile == mv.cur_tile) {
            // Local move X -> P (only before transit; first batch).
            if (dir == Direction::kNorth && !mv.in_transit) {
              const auto key = std::make_pair(mv.cur_tile, mv.dst_slot);
              if (occupied.count(key) != 0 || claimed.count(key) != 0) continue;
              claimed.insert(key);
              local_moves[mv.cur_tile].push_back(
                  {lay.x + mv.src_slot, lay.p + mv.dst_slot});
              advancing.push_back(&mv);
            }
            continue;
          }
          const auto want = next_hop(mv);
          if (!want || *want != dir) continue;
          // A tile drives one link per sub-epoch: if this tile already
          // queued sends this batch they share `dir`, which is fine.
          const auto next = no_links.neighbor(mv.cur_tile, dir);
          if (!next) continue;
          const auto key = std::make_pair(*next, mv.dst_slot);
          if (occupied.count(key) != 0 || claimed.count(key) != 0) continue;
          claimed.insert(key);
          const int src_addr =
              mv.in_transit ? lay.p + mv.dst_slot : lay.x + mv.src_slot;
          remote_moves[mv.cur_tile].push_back({src_addr, lay.p + mv.dst_slot});
          advancing.push_back(&mv);
        }
        if (advancing.empty()) continue;

        for (const auto& [tile, entries] : remote_moves) {
          hop.links.set_output(tile, dir);
        }
        std::set<int> tiles;
        for (const auto& [tile, entries] : remote_moves) tiles.insert(tile);
        for (const auto& [tile, entries] : local_moves) tiles.insert(tile);
        for (int tile : tiles) {
          std::vector<std::pair<int, int>> remote =
              remote_moves.count(tile) != 0
                  ? remote_moves[tile]
                  : std::vector<std::pair<int, int>>{};
          std::vector<std::pair<int, int>> local =
              local_moves.count(tile) != 0
                  ? local_moves[tile]
                  : std::vector<std::pair<int, int>>{};
          // One straight-line program covering both kinds.
          std::string src = copy_straight_source(remote, true);
          if (!local.empty()) {
            // Strip trailing halt and append the local moves.
            src = src.substr(0, src.rfind("  halt"));
            src += copy_straight_source(local, false);
          }
          TileUpdate update;
          update.program = assemble(src);
          update.reload_program = true;
          update.restart = true;
          hop.tiles[tile] = std::move(update);
          kernel_resident[static_cast<std::size_t>(tile)] = false;
        }
        if (!run_epoch(hop)) return finish();
        ++result.redistribution_subepochs;

        for (Move* mv : advancing) {
          if (mv->in_transit) {
            occupied.erase({mv->cur_tile, mv->dst_slot});
          }
          if (mv->dst_tile != mv->cur_tile) {
            mv->cur_tile = *no_links.neighbor(mv->cur_tile, dir);
          }
          mv->in_transit = true;
          occupied.insert({mv->cur_tile, mv->dst_slot});
          if (mv->cur_tile == mv->dst_tile) mv->delivered = true;
          progress = true;
        }
      }

      // Partial apply: commit delivered values whose X slot is safe.
      {
        std::map<int, std::vector<std::pair<int, int>>> applies;
        std::vector<Move*> applying;
        for (auto& mv : moves) {
          if (!mv.delivered || mv.applied) continue;
          if (x_busy(mv.dst_tile, mv.dst_slot)) continue;
          applies[mv.dst_tile].push_back(
              {lay.p + mv.dst_slot, lay.x + mv.dst_slot});
          applying.push_back(&mv);
        }
        if (!applying.empty()) {
          EpochConfig apply;
          apply.name = "apply-s" + std::to_string(s);
          apply.links = no_links;
          for (const auto& [tile, entries] : applies) {
            TileUpdate update;
            update.program = assemble(copy_straight_source(entries, false));
            update.reload_program = true;
            update.restart = true;
            apply.tiles[tile] = std::move(update);
            kernel_resident[static_cast<std::size_t>(tile)] = false;
          }
          if (!run_epoch(apply)) return finish();
          ++result.redistribution_subepochs;
          for (Move* mv : applying) {
            occupied.erase({mv->dst_tile, mv->dst_slot});
            mv->applied = true;
            progress = true;
          }
        }
      }

      if (!progress) {
        result.status =
            Status::errorf("redistribution stuck after stage %d", s);
        return finish();
      }
    }
  }

  // ---- readback: stage-(S-1) arrangement, then bit-reversal ----
  result.output.assign(static_cast<std::size_t>(g.n), Cplx{});
  const int bits = g.stages;
  const int last_col = stage_col(g.stages - 1);
  for (int e = 0; e < g.n; ++e) {
    const ElementPos pos = element_position(g, g.stages - 1, e);
    const Word w = fab.tile(tidx(pos.row, last_col)).dmem(lay.x + pos.slot);
    result.output[bit_reverse(static_cast<std::size_t>(e), bits)] =
        to_double(unpack_complex(w));
  }
  result.status = Status();
  return finish();
}

std::int64_t measure_bf_cycles(const FftGeometry& g, int stage) {
  const TileLayout lay = make_layout(g.m);
  const int h = g.half_span(stage);
  const std::string src =
      h >= g.m / 2 ? bf_pair_source(lay) : bf_local_source(lay, h);
  fabric::Fabric fab(1, 1);
  fab.tile(0).load_program(must_assemble(src));
  fab.tile(0).restart();
  const auto run = fab.run(10'000'000);
  return run.ok() ? run.cycles : -1;
}

std::int64_t measure_copy_cycles(int m, int words) {
  const TileLayout lay = make_layout(m);
  fabric::Fabric fab(2, 1);
  fab.links().set_output(0, Direction::kSouth);
  fab.tile(0).load_program(
      must_assemble(copy_loop_source(lay, words, lay.x, lay.x, true)));
  fab.tile(0).restart();
  const auto run = fab.run(10'000'000);
  return run.ok() ? run.cycles : -1;
}

}  // namespace cgra::fft

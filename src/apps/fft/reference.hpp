// Host reference FFTs.
//
// Three roles: (1) golden model for validating the fabric FFT, (2) the
// "high end PC" baseline the paper quotes (~1000 1024-point FFTs/s on a
// 2013 PC), measured with google-benchmark, and (3) the twiddle-exponent
// source for the fabric program builders.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace cgra::fft {

using Cplx = std::complex<double>;

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n) noexcept;
/// log2 of a power of two.
int log2_exact(std::size_t n) noexcept;

/// Bit-reverse `i` within `bits` bits.
std::size_t bit_reverse(std::size_t i, int bits) noexcept;

/// In-place iterative radix-2 DIF FFT: natural-order input,
/// bit-reversed-order output (matches the fabric dataflow).
void fft_dif(std::vector<Cplx>& x);

/// Precomputed-twiddle FFT plan: the optimised host baseline ("high end PC"
/// comparison point).  Reusable across transforms of the same size.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  /// In-place DIF transform, bit-reversed output (same contract as
  /// fft_dif, ~an order of magnitude faster for repeated use).
  void transform_dif(std::vector<Cplx>& x) const;

  /// Natural-order out-of-place transform.
  [[nodiscard]] std::vector<Cplx> transform(std::vector<Cplx> x) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_;
  int bits_;
  std::vector<Cplx> twiddles_;  ///< w_N^k for k in [0, N/2).
};

/// Out-of-place natural-order FFT (DIF + bit-reversal reorder).
std::vector<Cplx> fft(std::vector<Cplx> x);

/// Naive O(N^2) DFT, the independent cross-check for the FFTs themselves.
std::vector<Cplx> dft_naive(const std::vector<Cplx>& x);

/// Root-mean-square error between two complex vectors.
double rms_error(const std::vector<Cplx>& a, const std::vector<Cplx>& b);

/// Twiddle w_N^k = exp(-2*pi*i*k/N).
Cplx twiddle(std::size_t n, std::size_t k);

}  // namespace cgra::fft

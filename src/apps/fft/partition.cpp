#include "apps/fft/partition.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "apps/fft/reference.hpp"

namespace cgra::fft {

int max_partition_size(int dmem_words) noexcept {
  const int budget = (dmem_words - 41) / 3;
  int m = 1;
  while (m * 2 <= budget) m *= 2;
  return m;
}

int FftGeometry::cross_stages() const noexcept {
  return log2_exact(static_cast<std::size_t>(n)) -
         log2_exact(static_cast<std::size_t>(m));
}

int FftGeometry::half_span(int stage) const noexcept {
  return n >> (stage + 1);
}

int FftGeometry::twiddles_for_stage(int stage) const noexcept {
  return std::min(m, std::max(1, n >> (stage + 1)));
}

std::vector<int> FftGeometry::twiddle_exponents(int row, int stage) const {
  const int half = m / 2;                 // butterflies per row
  const int distinct = std::max(1, n >> (stage + 1));
  std::set<int> exps;
  for (int k = 0; k < half; ++k) {
    const int t = row * half + k;         // global butterfly index
    exps.insert((t % distinct) << stage);
  }
  return {exps.begin(), exps.end()};
}

FftGeometry make_geometry(int n, int m) {
  if (m == 0) m = std::min(n, max_partition_size());
  if (!is_pow2(static_cast<std::size_t>(n)) ||
      !is_pow2(static_cast<std::size_t>(m)) || m > n || m < 2) {
    throw std::invalid_argument("FFT geometry requires 2 <= M <= N, powers of 2");
  }
  FftGeometry g;
  g.n = n;
  g.m = m;
  g.stages = log2_exact(static_cast<std::size_t>(n));
  g.rows = n / m;
  return g;
}

}  // namespace cgra::fft

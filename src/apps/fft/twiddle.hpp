// Twiddle-factor management (Sec. 3.1, Fig. 8).
//
// Reloading twiddles through the ICAP costs 33.33 ns per word, while one
// instruction runs in 2.5 ns, so the paper classifies each tile's per-stage
// twiddle set and avoids reloads wherever possible:
//
//   Red    — the set a tile holds when a column residency begins
//            (streamed during preprocessing; free at steady state start).
//   Blue   — the needed set is already resident (only the indexing
//            changes): no reload.
//   Green  — the needed set equals the squares of the resident set
//            (w_{2i} = w_i^2): the tile generates it with ALU instructions
//            instead of reloading (33.33 ns -> 2.5 ns per twiddle).
//   Yellow — anything else: the set streams in through the ICAP.
//
// We classify *empirically* from the real exponent sets of the rearranged
// structure (FftGeometry::twiddle_exponents) by simulating each tile's
// block-cyclic stage schedule to steady state.  Tests assert the structural
// consequences the paper claims: a fully spatial design (cols == stages)
// reloads nothing; fewer columns reload more; and the optimised total is
// far below the naive N/2 * log2(N) words per transform.
#pragma once

#include <vector>

#include "apps/fft/partition.hpp"

namespace cgra::fft {

/// Classification of one (row, stage) twiddle set.
enum class TwiddleClass { kRed, kBlue, kGreen, kYellow };

const char* twiddle_class_name(TwiddleClass c) noexcept;

/// Steady-state classification of one tile's one stage-slot.
struct TwiddleSlot {
  int row = 0;
  int col = 0;
  int stage = 0;
  TwiddleClass cls = TwiddleClass::kRed;
  int words = 0;          ///< Size of the needed exponent set.
  int reload_words = 0;   ///< ICAP words paid per block (yellow only).
};

/// Per-design twiddle accounting.
struct TwiddleReport {
  std::vector<TwiddleSlot> slots;
  long long naive_words = 0;      ///< N/2 * log2(N): reload everything.
  long long reload_words = 0;     ///< Steady-state yellow words per block.
  long long generated_words = 0;  ///< Green words produced by ALU per block.

  [[nodiscard]] double reload_ns(const IcapModel& icap) const {
    return icap.data_reload_ns(reload_words);
  }
};

/// Analyse an N-point design executed on `cols` columns (each column owns
/// stages/cols consecutive stages; cols must divide stages).
TwiddleReport analyze_twiddles(const FftGeometry& g, int cols);

/// The paper's headline reduction: instead of reloading N*log2(N) twiddles
/// we reload about (log2(N) - log2(M)) * N/2 — returns that closed-form
/// estimate for comparison with the empirical count.
long long paper_reload_estimate(const FftGeometry& g) noexcept;

/// The paper's per-design reload-event rule (the tau1 case table of
/// Sec. 3.2: {3, 3, 2, 0} events for 1024-point at 1/2/5/10 columns),
/// generalised as ceil(cross * (1 - (cols-1)/(stages-1))): the number of
/// N/2-word yellow reloads a `cols`-column design pays per transform.
int paper_reload_events(const FftGeometry& g, int cols) noexcept;

/// Words reloaded per transform under the paper's rule: events * N/2.
long long paper_reload_words(const FftGeometry& g, int cols) noexcept;

}  // namespace cgra::fft

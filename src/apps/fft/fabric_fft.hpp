// End-to-end N-point FFT executed on the cycle-level fabric.
//
// The orchestrator plays the role of the MicroBlaze runtime management
// system: it prepares epoch configurations (programs, twiddle patches, link
// settings), lets the reconfiguration controller stream them in, and runs
// the fabric between epochs.  The dataflow is the constant-geometry variant
// of the paper's rearranged structure (Fig. 6):
//
//   * Before stage s, tile-row r holds the M elements of its M/2
//     butterflies: 'a' operands in slots [0, M/2), 'b' operands in slots
//     [M/2, M) — so every butterfly is tile-local and the same bf_pair
//     kernel (pinned after the first epoch) serves every stage.
//   * Between stages the elements are redistributed to restore the
//     invariant.  Moves travel over the near-neighbour vertical links as
//     hop sub-epochs (the vcp role, Fig. 9); each in-flight element rides
//     in the transit region P at its destination slot, and a final apply
//     epoch commits P into X.
//   * Twiddle tables are patched per stage through the ICAP (charged at
//     33.33 ns/word); the TwiddleManager quantifies how much of that an
//     optimised schedule avoids.
//
// Output is compared against the double-precision reference in the tests;
// inputs are pre-scaled by 1/N so the Q3.20 samples cannot overflow.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/fft/partition.hpp"
#include "apps/fft/reference.hpp"
#include "common/status.hpp"
#include "common/timing.hpp"
#include "config/reconfig.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"

namespace cgra::fft {

/// Pre-computed per-(stage, row) twiddle patch sets for one geometry.
/// Content depends only on (n, m), so a warm runtime (the job service)
/// builds the table once per geometry and shares it across runs instead of
/// re-deriving every factor per request.
struct TwiddleTable {
  int rows = 0;
  std::vector<std::vector<isa::DataPatch>> patches;  ///< [stage*rows + row].

  [[nodiscard]] const std::vector<isa::DataPatch>& at(int stage,
                                                      int row) const {
    return patches.at(static_cast<std::size_t>(stage * rows + row));
  }
};

/// Build the full twiddle table for `g` (stage-major, Fig. 6/8 layout).
TwiddleTable twiddle_patch_table(const FftGeometry& g);

/// Options for a fabric FFT run.
struct FabricFftOptions {
  Nanoseconds link_cost_ns = 100.0;   ///< Per-link reconfiguration cost L.
  std::int64_t max_cycles_per_epoch = 1'000'000;
  /// Columns of tiles (the paper's design parameter): column c executes
  /// stage slots [c*S/cols, (c+1)*S/cols).  Must divide log2(N).  With
  /// cols > 1 the inter-column transfers exercise the horizontal links and
  /// hcp copies of Sec. 3.1 for real.
  int cols = 1;
  /// ICAP fault-path knobs (docs/FAULTS.md): a tap to corrupt streams in
  /// flight, readback verification, and the retry bound.  Default-off: the
  /// zero-fault run streams exactly as the paper models it.
  config::IcapFaultOptions icap_faults{};

  // --- observability (docs/OBSERVABILITY.md); all default-off ---
  /// Span timeline for epoch / ICAP / stall tracks (not owned).
  obs::SpanTimeline* spans = nullptr;
  /// Metrics registry attached to the fabric hot loop (not owned).
  obs::MetricsRegistry* metrics = nullptr;
  /// Fill FabricFftResult::profile from the executed run.
  bool collect_profile = false;

  // --- warm-runtime hooks (src/service); all default-off.  With none set
  // the run constructs everything fresh, exactly as before. ---
  /// Borrowed fabric to run on instead of constructing one.  Must be a
  /// rows x cols mesh in construction state (fresh or Fabric::reset());
  /// the run leaves it dirty — the caller resets before reuse.
  fabric::Fabric* fabric = nullptr;
  /// Assembler override; defaults to must_assemble.  A content-addressed
  /// cache hook: the same source always assembles to the same program, so
  /// a warm runtime can skip re-assembly of recurring kernels and copy
  /// programs entirely.
  std::function<isa::Program(const std::string&)> assemble;
  /// Pre-computed twiddle patches for this geometry (not owned); must match
  /// (g, m) when set.
  const TwiddleTable* twiddles = nullptr;
};

/// Result of a fabric FFT run.
struct FabricFftResult {
  std::vector<Cplx> output;        ///< Natural order, scaled by 1/N.
  config::Timeline timeline;       ///< Equation-1 accounting.
  Status status = Status::error("fabric FFT did not run");
  std::vector<Fault> faults;

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
  int epochs = 0;                  ///< Epoch configurations applied.
  std::int64_t redistribution_subepochs = 0;
  /// Per-tile / link / ICAP profile (FabricFftOptions::collect_profile);
  /// filled even when the run ends early on a fault.
  obs::ProfileReport profile;
};

/// Where logical element `e` lives under the stage-`s` arrangement.
struct ElementPos {
  int row = 0;
  int slot = 0;
  friend bool operator==(const ElementPos&, const ElementPos&) = default;
};
ElementPos element_position(const FftGeometry& g, int stage, int e);

/// Run the FFT of `input` (size g.n) on a fresh rows x opt.cols fabric.
FabricFftResult run_fabric_fft(const FftGeometry& g,
                               const std::vector<Cplx>& input,
                               const FabricFftOptions& opt = {});

/// Cycle counts of the standalone kernels (Table 1's runtime column):
/// the stage-s butterfly process executed on one tile.
std::int64_t measure_bf_cycles(const FftGeometry& g, int stage);
/// The vcp / hcp copy processes for `words` words.
std::int64_t measure_copy_cycles(int m, int words);

}  // namespace cgra::fft

#include "apps/fft/programs.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/timing.hpp"

namespace cgra::fft {

TileLayout make_layout(int m) {
  if (3 * m + 16 > kDataMemWords) {
    throw std::invalid_argument("partition size exceeds tile data memory");
  }
  TileLayout lay;
  lay.m = m;
  lay.x = 0;
  lay.p = m;
  lay.w = 2 * m;
  lay.ctrl = 3 * m;
  lay.cnt_g = lay.ctrl + 0;
  lay.cnt_j = lay.ctrl + 1;
  lay.pa = lay.ctrl + 2;
  lay.pb = lay.ctrl + 3;
  lay.pw = lay.ctrl + 4;
  lay.ts = lay.ctrl + 5;
  lay.td = lay.ctrl + 6;
  lay.ps = lay.ctrl + 7;
  return lay;
}

namespace {
void emit_equs(std::ostringstream& os, const TileLayout& lay) {
  os << ".equ X, " << lay.x << "\n"
     << ".equ P, " << lay.p << "\n"
     << ".equ W, " << lay.w << "\n"
     << ".equ cnt_g, " << lay.cnt_g << "\n"
     << ".equ cnt_j, " << lay.cnt_j << "\n"
     << ".equ pa, " << lay.pa << "\n"
     << ".equ pb, " << lay.pb << "\n"
     << ".equ pw, " << lay.pw << "\n"
     << ".equ ts, " << lay.ts << "\n"
     << ".equ td, " << lay.td << "\n"
     << ".equ ps, " << lay.ps << "\n";
}
}  // namespace

std::string bf_pair_source(const TileLayout& lay) {
  std::ostringstream os;
  emit_equs(os, lay);
  os << "  movi pa, #X\n"
     << "  movi pb, #X+" << lay.m / 2 << "\n"
     << "  movi pw, #W\n"
     << "  movi cnt_j, #" << lay.m / 2 << "\n"
     << "inner:\n"
     << "  cadd ts, pa*, pb*\n"
     << "  csub td, pa*, pb*\n"
     << "  mov pa*, ts\n"
     << "  cmul pb*, td, pw*\n"
     << "  add pa, pa, #1\n"
     << "  add pb, pb, #1\n"
     << "  add pw, pw, #1\n"
     << "  sub cnt_j, cnt_j, #1\n"
     << "  bnez cnt_j, inner\n"
     << "  halt\n";
  return os.str();
}

std::string bf_local_source(const TileLayout& lay, int h) {
  if (h < 1 || 2 * h > lay.m) {
    throw std::invalid_argument("bf_local requires 1 <= H <= M/2");
  }
  std::ostringstream os;
  emit_equs(os, lay);
  os << "  movi pa, #X\n"
     << "  movi pw, #W\n"
     << "  movi cnt_g, #" << lay.m / (2 * h) << "\n"
     << "grp:\n"
     << "  add pb, pa, #" << h << "\n"
     << "  movi pw, #W\n"
     << "  movi cnt_j, #" << h << "\n"
     << "inner:\n"
     << "  cadd ts, pa*, pb*\n"
     << "  csub td, pa*, pb*\n"
     << "  mov pa*, ts\n"
     << "  cmul pb*, td, pw*\n"
     << "  add pa, pa, #1\n"
     << "  add pb, pb, #1\n"
     << "  add pw, pw, #1\n"
     << "  sub cnt_j, cnt_j, #1\n"
     << "  bnez cnt_j, inner\n"
     << "  add pa, pa, #" << h << "\n"
     << "  sub cnt_g, cnt_g, #1\n"
     << "  bnez cnt_g, grp\n"
     << "  halt\n";
  return os.str();
}

std::string copy_loop_source(const TileLayout& lay, int count, int src_base,
                             int dst_base, bool remote) {
  std::ostringstream os;
  emit_equs(os, lay);
  // ps / pb double as the re-targetable copy variables (Table 2): a later
  // epoch can retarget the copy with two data patches instead of a reload.
  os << "  movi ps, #" << src_base << "\n"
     << "  movi pb, #" << dst_base << "\n"
     << "  movi cnt_j, #" << count << "\n"
     << "loop:\n"
     << "  mov " << (remote ? "!" : "") << "pb*, ps*\n"
     << "  add ps, ps, #1\n"
     << "  add pb, pb, #1\n"
     << "  sub cnt_j, cnt_j, #1\n"
     << "  bnez cnt_j, loop\n"
     << "  halt\n";
  return os.str();
}

std::string copy_straight_source(
    const std::vector<std::pair<int, int>>& moves, bool remote) {
  std::ostringstream os;
  for (const auto& [src, dst] : moves) {
    os << "  mov " << (remote ? "!" : "") << dst << ", " << src << "\n";
  }
  os << "  halt\n";
  return os.str();
}

isa::Program must_assemble(const std::string& source) {
  auto result = isa::assemble(source);
  if (!result.ok()) {
    std::fprintf(stderr, "internal assembly error: %s\nsource:\n%s\n",
                 result.status.message().c_str(), source.c_str());
    std::abort();
  }
  return std::move(result.program);
}

}  // namespace cgra::fft

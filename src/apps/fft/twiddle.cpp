#include "apps/fft/twiddle.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace cgra::fft {

const char* twiddle_class_name(TwiddleClass c) noexcept {
  switch (c) {
    case TwiddleClass::kRed: return "red";
    case TwiddleClass::kBlue: return "blue";
    case TwiddleClass::kGreen: return "green";
    case TwiddleClass::kYellow: return "yellow";
  }
  return "?";
}

namespace {

using ExpSet = std::set<int>;

ExpSet squares(const ExpSet& s, int n) {
  ExpSet out;
  for (int e : s) out.insert((2 * e) % n);
  return out;
}

bool subset(const ExpSet& needle, const ExpSet& hay) {
  return std::includes(hay.begin(), hay.end(), needle.begin(), needle.end());
}

}  // namespace

TwiddleReport analyze_twiddles(const FftGeometry& g, int cols) {
  if (cols < 1 || cols > g.stages || g.stages % cols != 0) {
    throw std::invalid_argument("cols must divide log2(N)");
  }
  const int stages_per_col = g.stages / cols;

  TwiddleReport report;
  report.naive_words =
      static_cast<long long>(g.n) / 2 * g.stages;

  for (int col = 0; col < cols; ++col) {
    const int first_stage = col * stages_per_col;
    for (int row = 0; row < g.rows; ++row) {
      // The tile's block-cyclic schedule: first_stage .. first_stage+spc-1,
      // then wrap to first_stage for the next block.  Simulate two full
      // blocks; steady state is the second.
      ExpSet held;
      {
        const auto v = g.twiddle_exponents(row, first_stage);
        held = ExpSet(v.begin(), v.end());  // Red: preloaded at residency
      }
      for (int block = 0; block < 2; ++block) {
        for (int s = 0; s < stages_per_col; ++s) {
          const int stage = first_stage + s;
          const auto needed_v = g.twiddle_exponents(row, stage);
          const ExpSet needed(needed_v.begin(), needed_v.end());

          TwiddleSlot slot;
          slot.row = row;
          slot.col = col;
          slot.stage = stage;
          slot.words = static_cast<int>(needed.size());

          const bool first_visit = block == 0 && s == 0;
          if (first_visit) {
            slot.cls = TwiddleClass::kRed;  // preprocessing load
          } else if (subset(needed, held)) {
            slot.cls = TwiddleClass::kBlue;
          } else if (subset(needed, squares(held, g.n))) {
            slot.cls = TwiddleClass::kGreen;
            held = needed;
          } else {
            slot.cls = TwiddleClass::kYellow;
            slot.reload_words = slot.words;
            held = needed;
          }

          if (block == 1) {  // steady state accounting
            report.slots.push_back(slot);
            report.reload_words += slot.reload_words;
            if (slot.cls == TwiddleClass::kGreen) {
              report.generated_words += slot.words;
            }
          }
        }
      }
    }
  }
  return report;
}

long long paper_reload_estimate(const FftGeometry& g) noexcept {
  const long long yellow_stages = g.cross_stages();
  return yellow_stages * (static_cast<long long>(g.n) / 2);
}

int paper_reload_events(const FftGeometry& g, int cols) noexcept {
  if (cols >= g.stages) return 0;
  const double frac =
      1.0 - static_cast<double>(cols - 1) / static_cast<double>(g.stages - 1);
  const double events = static_cast<double>(g.cross_stages()) * frac;
  const auto whole = static_cast<int>(events);
  return (static_cast<double>(whole) < events) ? whole + 1 : whole;
}

long long paper_reload_words(const FftGeometry& g, int cols) noexcept {
  return static_cast<long long>(paper_reload_events(g, cols)) * (g.n / 2);
}

}  // namespace cgra::fft

// 8x8 forward / inverse DCT.
//
// Two forward implementations share a test-asserted contract:
//   * fdct_float — the exact type-II DCT with JPEG normalisation (the
//     golden model and the decoder's inverse counterpart), and
//   * fdct_fixed — the Q12 fixed-point matrix-multiply form whose
//     arithmetic matches the fabric DCT kernel bit for bit, so the fabric
//     can be verified against the host without tolerance fudging.
#pragma once

#include <array>
#include <cstdint>

namespace cgra::jpeg {

using Block = std::array<double, 64>;       ///< Row-major 8x8.
using IntBlock = std::array<int, 64>;

/// Fraction bits of the fixed-point DCT basis.
inline constexpr int kDctFracBits = 12;

/// The Q12 DCT basis matrix C[k][x] = round(2^12 * c(k)/2 * cos((2x+1)k pi/16)).
const std::array<std::int32_t, 64>& dct_basis_q12();

/// Exact forward DCT of level-shifted samples (values around [-128, 127]).
Block fdct_float(const IntBlock& spatial);

/// Exact inverse DCT; output unclamped, caller adds the +128 level shift.
Block idct_float(const Block& freq);

/// Fixed-point forward DCT: Y = (C * X * C^T) with Q12 basis and
/// round-to-nearest right shifts after each pass — the fabric kernel's
/// arithmetic exactly.
IntBlock fdct_fixed(const IntBlock& spatial);

}  // namespace cgra::jpeg

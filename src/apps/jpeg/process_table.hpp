// The JPEG encoder's annotated process network (paper Table 3) and the
// manual mappings of Table 4.
//
// Two pipelines exist: the main one (p0..p9, DCT whole) and the dct-split
// one where p1 is replaced by the 4-sub-block process p10 invoked four
// times per 8x8 block (Fig. 15) — the paper's Impl4/Impl5 and all 16+ tile
// automated mappings rely on the split form's replication headroom.
//
// The annotations are the paper's published numbers so the Table-4/5 and
// Figure-16/17 benches regenerate the paper's experiment; the fabric-
// measured variant (measured_pipeline) cross-checks the methodology against
// our own kernels.
#pragma once

#include <string>
#include <vector>

#include "apps/jpeg/fabric_jpeg.hpp"
#include "mapping/binding.hpp"
#include "procnet/network.hpp"

namespace cgra::jpeg {

/// All Table-3 processes, p0..p13 (copy processes in their time-optimised
/// form; the memory-optimised variants are exposed separately for Table 2
/// style comparisons).
std::vector<procnet::Process> paper_table3_processes();

/// Main pipeline p0..p9 (shift, DCT, alpha, quantize, zigzag, hman1..5).
procnet::ProcessNetwork jpeg_main_pipeline();

/// dct-split pipeline: p0, p10(4 invocations/block), p2..p9.
procnet::ProcessNetwork jpeg_split_pipeline();

/// Pipeline annotated from our fabric kernel measurements instead of the
/// paper's numbers (Huffman keeps the paper's annotations — substitution).
procnet::ProcessNetwork measured_pipeline(const JpegKernelCycles& cycles);

/// 8x8 blocks in the paper's 200x200-pixel test image.
inline constexpr int kPaperImageBlocks = 625;

/// One manual implementation of Table 4.
struct ManualMapping {
  std::string name;                 ///< "Impl1" .. "Impl5".
  int tiles = 0;                    ///< Paper's tile count.
  procnet::ProcessNetwork network;  ///< Main or split pipeline.
  mapping::Binding binding;
};

/// The five manual mappings of Table 4 (1, 2, 10, 13 and 5 tiles).
std::vector<ManualMapping> table4_manual_mappings();

}  // namespace cgra::jpeg

// Baseline JPEG constants: quantisation table, zigzag order, and the
// standard (Annex K) Huffman tables for luminance DC/AC coefficients.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace cgra::jpeg {

/// Standard luminance quantisation table (Annex K, quality 50), in natural
/// (row-major) order.
const std::array<int, 64>& luminance_quant();

/// Standard chrominance quantisation table (Annex K), natural order.
const std::array<int, 64>& chrominance_quant();

/// Quality-scaled quantisation table (IJG scaling, quality in [1, 100]).
std::array<int, 64> scaled_quant(int quality);

/// Quality-scaled chrominance table.
std::array<int, 64> scaled_chroma_quant(int quality);

/// Zigzag scan: zigzag_order()[i] = natural index of the i-th zigzag entry.
const std::array<int, 64>& zigzag_order();
/// Inverse map: natural index -> zigzag position.
const std::array<int, 64>& zigzag_inverse();

/// A canonical Huffman table in JPEG DHT form.
struct HuffSpec {
  std::array<std::uint8_t, 16> counts;  ///< # codes of length 1..16.
  std::vector<std::uint8_t> symbols;    ///< Symbols in code order.
};

/// Annex K luminance DC / AC specs.
const HuffSpec& dc_luminance_spec();
const HuffSpec& ac_luminance_spec();

/// Annex K chrominance DC / AC specs.
const HuffSpec& dc_chrominance_spec();
const HuffSpec& ac_chrominance_spec();

/// Derived encode table: per symbol, its code and length.
struct HuffEncoder {
  std::array<std::uint16_t, 256> code{};
  std::array<std::uint8_t, 256> length{};  ///< 0 = symbol absent.
};
HuffEncoder build_encoder(const HuffSpec& spec);

}  // namespace cgra::jpeg

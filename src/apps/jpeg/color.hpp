// Color JPEG: RGB <-> YCbCr conversion and a baseline 4:4:4 encoder.
//
// An extension beyond the paper's grayscale pipeline: three interleaved
// components (Y with the luminance tables, Cb/Cr with the chrominance
// tables), 1x1 sampling, one block per component per MCU.  The bundled
// decoder (decoder.hpp) handles both grayscale and this layout.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/jpeg/encoder.hpp"

namespace cgra::jpeg {

/// An 8-bit RGB image (interleaved, row-major).
struct RgbImage {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> rgb;  ///< size = width * height * 3.

  [[nodiscard]] const std::uint8_t* pixel(int x, int y) const {
    return rgb.data() + (static_cast<std::size_t>(y) *
                             static_cast<std::size_t>(width) +
                         static_cast<std::size_t>(x)) *
                            3;
  }
};

/// Deterministic synthetic color image.
RgbImage synthetic_rgb_image(int width, int height, std::uint64_t seed);

/// BT.601 full-range conversions (the JFIF convention), rounded and
/// clamped to [0, 255].
void rgb_to_ycbcr(std::uint8_t r, std::uint8_t g, std::uint8_t b,
                  std::uint8_t* y, std::uint8_t* cb, std::uint8_t* cr);
void ycbcr_to_rgb(std::uint8_t y, std::uint8_t cb, std::uint8_t cr,
                  std::uint8_t* r, std::uint8_t* g, std::uint8_t* b);

/// Split into three full-resolution planes (4:4:4).
void split_planes(const RgbImage& img, Image* y, Image* cb, Image* cr);
/// Recombine three planes into RGB.
RgbImage merge_planes(const Image& y, const Image& cb, const Image& cr);

/// Encode an RGB image as a baseline 4:4:4 color JFIF stream.
std::vector<std::uint8_t> encode_color_image(const RgbImage& img,
                                             int quality = 50);

/// PSNR over the three RGB channels.
double psnr_rgb(const RgbImage& a, const RgbImage& b);

}  // namespace cgra::jpeg

// Baseline grayscale JPEG decoder.
//
// An independent implementation path (Huffman decode, dequantise, float
// IDCT) used by the integration tests to round-trip the encoder's output:
// parse -> decode -> PSNR against the original must exceed a quality-
// dependent bound.  Parses the subset of JFIF the encoder emits plus the
// usual marker skipping, so it also documents the stream layout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/jpeg/bitio.hpp"
#include "apps/jpeg/color.hpp"
#include "apps/jpeg/encoder.hpp"
#include "common/status.hpp"

namespace cgra::jpeg {

/// Decode outcome.  Grayscale streams fill `image`; three-component 4:4:4
/// streams fill `rgb` as well (with `image` holding the Y plane).
struct DecodeResult {
  Image image;
  RgbImage rgb;
  bool is_color = false;
  Status status = Status::error("decode did not run");

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
  /// The failure description ("ok" on success) — parse errors name the
  /// offending marker.
  [[nodiscard]] const std::string& error() const noexcept {
    return status.message();
  }
};

/// Decode a baseline JFIF stream: grayscale or 4:4:4 color (1x1 sampling).
DecodeResult decode_image(const std::vector<std::uint8_t>& data);

/// Peak signal-to-noise ratio between two same-size images (dB).
double psnr(const Image& a, const Image& b);

/// Canonical-Huffman decoder built from a DHT spec (exposed for tests).
class HuffDecoder {
 public:
  explicit HuffDecoder(const HuffSpec& spec);

  /// Decode one symbol from the reader; -1 on error/end.
  int decode(BitReader& br) const;

 private:
  // Per code length: first code value, first symbol index.
  std::array<std::int32_t, 17> min_code_{};
  std::array<std::int32_t, 17> max_code_{};  ///< -1 when no codes of length.
  std::array<int, 17> val_ptr_{};
  std::vector<std::uint8_t> symbols_;
};

/// Inverse of the encoder's amplitude encoding.
int extend_amplitude(int bits_value, int category) noexcept;

}  // namespace cgra::jpeg

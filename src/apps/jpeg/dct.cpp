#include "apps/jpeg/dct.hpp"

#include <cmath>
#include <numbers>

namespace cgra::jpeg {

namespace {
double basis(int k, int x) {
  const double ck = k == 0 ? std::sqrt(0.5) : 1.0;
  return 0.5 * ck *
         std::cos((2.0 * x + 1.0) * k * std::numbers::pi / 16.0);
}
}  // namespace

const std::array<std::int32_t, 64>& dct_basis_q12() {
  static const std::array<std::int32_t, 64> kBasis = [] {
    std::array<std::int32_t, 64> b{};
    for (int k = 0; k < 8; ++k) {
      for (int x = 0; x < 8; ++x) {
        b[static_cast<std::size_t>(k * 8 + x)] = static_cast<std::int32_t>(
            std::lround(basis(k, x) * (1 << kDctFracBits)));
      }
    }
    return b;
  }();
  return kBasis;
}

Block fdct_float(const IntBlock& spatial) {
  Block out{};
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          acc += spatial[static_cast<std::size_t>(y * 8 + x)] * basis(u, y) *
                 basis(v, x);
        }
      }
      out[static_cast<std::size_t>(u * 8 + v)] = acc;
    }
  }
  return out;
}

Block idct_float(const Block& freq) {
  Block out{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
          acc += freq[static_cast<std::size_t>(u * 8 + v)] * basis(u, y) *
                 basis(v, x);
        }
      }
      out[static_cast<std::size_t>(y * 8 + x)] = acc;
    }
  }
  return out;
}

namespace {
std::int64_t round_shift(std::int64_t v, int bits) {
  return (v + (std::int64_t{1} << (bits - 1))) >> bits;
}
}  // namespace

IntBlock fdct_fixed(const IntBlock& spatial) {
  const auto& c = dct_basis_q12();
  // Pass 1: T = C * X   (rows of C against columns of X).
  std::array<std::int64_t, 64> t{};
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      std::int64_t acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += static_cast<std::int64_t>(c[static_cast<std::size_t>(u * 8 + y)]) *
               spatial[static_cast<std::size_t>(y * 8 + x)];
      }
      t[static_cast<std::size_t>(u * 8 + x)] = round_shift(acc, kDctFracBits);
    }
  }
  // Pass 2: Y = T * C^T.
  IntBlock out{};
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      std::int64_t acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += t[static_cast<std::size_t>(u * 8 + x)] *
               static_cast<std::int64_t>(c[static_cast<std::size_t>(v * 8 + x)]);
      }
      out[static_cast<std::size_t>(u * 8 + v)] =
          static_cast<int>(round_shift(acc, kDctFracBits));
    }
  }
  return out;
}

}  // namespace cgra::jpeg

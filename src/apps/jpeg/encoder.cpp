#include "apps/jpeg/encoder.hpp"

#include <algorithm>
#include <cmath>

#include "apps/jpeg/bitio.hpp"
#include "common/prng.hpp"

namespace cgra::jpeg {

Image synthetic_image(int width, int height, std::uint64_t seed) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(static_cast<std::size_t>(width) *
                    static_cast<std::size_t>(height));
  SplitMix64 rng(seed);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      // Smooth gradient + coarse checker + mild noise: exercises DC deltas,
      // AC runs and the occasional dense block.
      const int gradient = (x * 255) / std::max(1, width - 1);
      const int checker = (((x / 16) + (y / 16)) % 2 == 0) ? 48 : 0;
      const int noise = static_cast<int>(rng.next_below(17)) - 8;
      const int v = std::clamp(gradient / 2 + checker + 64 + noise, 0, 255);
      img.pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(v);
    }
  }
  return img;
}

int block_count(int width, int height) noexcept {
  return ((width + 7) / 8) * ((height + 7) / 8);
}

IntBlock extract_block(const Image& img, int bx, int by) {
  IntBlock out{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const int px = std::min(bx * 8 + x, img.width - 1);
      const int py = std::min(by * 8 + y, img.height - 1);
      out[static_cast<std::size_t>(y * 8 + x)] = img.at(px, py);
    }
  }
  return out;
}

IntBlock level_shift(const IntBlock& block) {
  IntBlock out{};
  for (std::size_t i = 0; i < 64; ++i) out[i] = block[i] - 128;
  return out;
}

std::int32_t quant_reciprocal(int q) noexcept {
  return static_cast<std::int32_t>((65536 + q / 2) / q);
}

IntBlock quantize(const IntBlock& coeffs, const std::array<int, 64>& quant) {
  IntBlock out{};
  for (std::size_t i = 0; i < 64; ++i) {
    const std::int64_t prod =
        static_cast<std::int64_t>(coeffs[i]) * quant_reciprocal(quant[i]);
    out[i] = static_cast<int>((prod + 32768) >> 16);
  }
  return out;
}

IntBlock zigzag_scan(const IntBlock& block) {
  IntBlock out{};
  for (std::size_t i = 0; i < 64; ++i) {
    out[i] = block[static_cast<std::size_t>(zigzag_order()[i])];
  }
  return out;
}

int bit_category(int value) noexcept {
  int mag = value < 0 ? -value : value;
  int bits = 0;
  while (mag != 0) {
    ++bits;
    mag >>= 1;
  }
  return bits;
}

namespace {
/// JPEG encodes negative values as the one's complement of |v| in `bits`.
std::uint32_t amplitude_bits(int value, int bits) noexcept {
  return value >= 0 ? static_cast<std::uint32_t>(value)
                    : static_cast<std::uint32_t>(value + (1 << bits) - 1);
}
}  // namespace

int huffman_encode_block(const IntBlock& zz, int prev_dc, BitWriter& bw,
                         const HuffEncoder& dc, const HuffEncoder& ac) {
  // DC: category + amplitude of the prediction delta.
  const int diff = zz[0] - prev_dc;
  const int dc_cat = bit_category(diff);
  bw.put(dc.code[static_cast<std::size_t>(dc_cat)],
         dc.length[static_cast<std::size_t>(dc_cat)]);
  if (dc_cat > 0) bw.put(amplitude_bits(diff, dc_cat), dc_cat);

  // AC: (run, size) symbols with ZRL (0xF0) and EOB (0x00).
  int run = 0;
  for (std::size_t i = 1; i < 64; ++i) {
    const int v = zz[i];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      bw.put(ac.code[0xF0], ac.length[0xF0]);
      run -= 16;
    }
    const int cat = bit_category(v);
    const auto sym = static_cast<std::size_t>((run << 4) | cat);
    bw.put(ac.code[sym], ac.length[sym]);
    bw.put(amplitude_bits(v, cat), cat);
    run = 0;
  }
  if (run > 0) bw.put(ac.code[0x00], ac.length[0x00]);  // EOB
  return zz[0];
}

IntBlock encode_block_stages(const IntBlock& raw,
                             const std::array<int, 64>& quant) {
  return zigzag_scan(quantize(fdct_fixed(level_shift(raw)), quant));
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_marker(std::vector<std::uint8_t>& out, std::uint8_t code) {
  out.push_back(0xFF);
  out.push_back(code);
}

void put_dht(std::vector<std::uint8_t>& out, int clazz, int id,
             const HuffSpec& spec) {
  put_marker(out, 0xC4);
  put_u16(out, static_cast<std::uint16_t>(2 + 1 + 16 + spec.symbols.size()));
  out.push_back(static_cast<std::uint8_t>((clazz << 4) | id));
  for (const auto c : spec.counts) out.push_back(c);
  out.insert(out.end(), spec.symbols.begin(), spec.symbols.end());
}

}  // namespace

std::vector<std::uint8_t> encode_image_from_zigzag(
    const Image& img, int quality, const std::vector<IntBlock>& blocks) {
  const std::array<int, 64> quant = scaled_quant(quality);
  const HuffEncoder dc = build_encoder(dc_luminance_spec());
  const HuffEncoder ac = build_encoder(ac_luminance_spec());

  std::vector<std::uint8_t> out;
  put_marker(out, 0xD8);  // SOI

  // APP0 / JFIF
  put_marker(out, 0xE0);
  put_u16(out, 16);
  for (const char c : {'J', 'F', 'I', 'F', '\0'}) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  out.push_back(1);
  out.push_back(1);
  out.push_back(0);   // aspect-ratio units
  put_u16(out, 1);    // x density
  put_u16(out, 1);    // y density
  out.push_back(0);   // no thumbnail
  out.push_back(0);

  // DQT (table 0, zigzag order).
  put_marker(out, 0xDB);
  put_u16(out, 2 + 1 + 64);
  out.push_back(0x00);
  for (std::size_t i = 0; i < 64; ++i) {
    out.push_back(static_cast<std::uint8_t>(
        quant[static_cast<std::size_t>(zigzag_order()[i])]));
  }

  // SOF0: baseline, 8-bit, one component.
  put_marker(out, 0xC0);
  put_u16(out, 2 + 6 + 3);
  out.push_back(8);
  put_u16(out, static_cast<std::uint16_t>(img.height));
  put_u16(out, static_cast<std::uint16_t>(img.width));
  out.push_back(1);     // components
  out.push_back(1);     // component id
  out.push_back(0x11);  // 1x1 sampling
  out.push_back(0);     // quant table 0

  put_dht(out, 0, 0, dc_luminance_spec());
  put_dht(out, 1, 0, ac_luminance_spec());

  // SOS
  put_marker(out, 0xDA);
  put_u16(out, 2 + 1 + 2 + 3);
  out.push_back(1);
  out.push_back(1);
  out.push_back(0x00);  // DC table 0, AC table 0
  out.push_back(0);     // spectral start
  out.push_back(63);    // spectral end
  out.push_back(0);     // approximation

  BitWriter bw;
  int prev_dc = 0;
  for (const IntBlock& zz : blocks) {
    prev_dc = huffman_encode_block(zz, prev_dc, bw, dc, ac);
  }
  const auto ecs = bw.finish();
  out.insert(out.end(), ecs.begin(), ecs.end());

  put_marker(out, 0xD9);  // EOI
  return out;
}

std::vector<std::uint8_t> encode_image(const Image& img, int quality) {
  const std::array<int, 64> quant = scaled_quant(quality);
  std::vector<IntBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(block_count(img.width, img.height)));
  const int bw_blocks = (img.width + 7) / 8;
  const int bh_blocks = (img.height + 7) / 8;
  for (int by = 0; by < bh_blocks; ++by) {
    for (int bx = 0; bx < bw_blocks; ++bx) {
      blocks.push_back(encode_block_stages(extract_block(img, bx, by), quant));
    }
  }
  return encode_image_from_zigzag(img, quality, blocks);
}

}  // namespace cgra::jpeg

#include "apps/jpeg/color.hpp"

#include <algorithm>
#include <cmath>

#include "apps/jpeg/bitio.hpp"
#include "common/prng.hpp"

namespace cgra::jpeg {

RgbImage synthetic_rgb_image(int width, int height, std::uint64_t seed) {
  RgbImage img;
  img.width = width;
  img.height = height;
  img.rgb.resize(static_cast<std::size_t>(width) *
                 static_cast<std::size_t>(height) * 3);
  SplitMix64 rng(seed);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const std::size_t i = (static_cast<std::size_t>(y) *
                                 static_cast<std::size_t>(width) +
                             static_cast<std::size_t>(x)) *
                            3;
      const int noise = static_cast<int>(rng.next_below(13)) - 6;
      img.rgb[i + 0] = static_cast<std::uint8_t>(
          std::clamp((x * 255) / std::max(1, width - 1) + noise, 0, 255));
      img.rgb[i + 1] = static_cast<std::uint8_t>(
          std::clamp((y * 255) / std::max(1, height - 1) + noise, 0, 255));
      img.rgb[i + 2] = static_cast<std::uint8_t>(
          std::clamp(((x + y) % 32) * 8 + 64 + noise, 0, 255));
    }
  }
  return img;
}

namespace {
std::uint8_t clamp_u8(double v) {
  return static_cast<std::uint8_t>(
      std::clamp(static_cast<int>(std::lround(v)), 0, 255));
}
}  // namespace

void rgb_to_ycbcr(std::uint8_t r, std::uint8_t g, std::uint8_t b,
                  std::uint8_t* y, std::uint8_t* cb, std::uint8_t* cr) {
  *y = clamp_u8(0.299 * r + 0.587 * g + 0.114 * b);
  *cb = clamp_u8(128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b);
  *cr = clamp_u8(128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b);
}

void ycbcr_to_rgb(std::uint8_t y, std::uint8_t cb, std::uint8_t cr,
                  std::uint8_t* r, std::uint8_t* g, std::uint8_t* b) {
  const double yd = y;
  const double cbd = cb - 128.0;
  const double crd = cr - 128.0;
  *r = clamp_u8(yd + 1.402 * crd);
  *g = clamp_u8(yd - 0.344136 * cbd - 0.714136 * crd);
  *b = clamp_u8(yd + 1.772 * cbd);
}

void split_planes(const RgbImage& img, Image* y, Image* cb, Image* cr) {
  for (Image* plane : {y, cb, cr}) {
    plane->width = img.width;
    plane->height = img.height;
    plane->pixels.resize(static_cast<std::size_t>(img.width) *
                         static_cast<std::size_t>(img.height));
  }
  for (int py = 0; py < img.height; ++py) {
    for (int px = 0; px < img.width; ++px) {
      const std::uint8_t* p = img.pixel(px, py);
      const std::size_t i = static_cast<std::size_t>(py) *
                                static_cast<std::size_t>(img.width) +
                            static_cast<std::size_t>(px);
      rgb_to_ycbcr(p[0], p[1], p[2], &y->pixels[i], &cb->pixels[i],
                   &cr->pixels[i]);
    }
  }
}

RgbImage merge_planes(const Image& y, const Image& cb, const Image& cr) {
  RgbImage out;
  out.width = y.width;
  out.height = y.height;
  out.rgb.resize(static_cast<std::size_t>(y.width) *
                 static_cast<std::size_t>(y.height) * 3);
  for (std::size_t i = 0; i < y.pixels.size(); ++i) {
    ycbcr_to_rgb(y.pixels[i], cb.pixels[i], cr.pixels[i], &out.rgb[i * 3],
                 &out.rgb[i * 3 + 1], &out.rgb[i * 3 + 2]);
  }
  return out;
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}
void put_marker(std::vector<std::uint8_t>& out, std::uint8_t code) {
  out.push_back(0xFF);
  out.push_back(code);
}
void put_dqt(std::vector<std::uint8_t>& out, int id,
             const std::array<int, 64>& quant) {
  put_marker(out, 0xDB);
  put_u16(out, 2 + 1 + 64);
  out.push_back(static_cast<std::uint8_t>(id));
  for (std::size_t i = 0; i < 64; ++i) {
    out.push_back(static_cast<std::uint8_t>(
        quant[static_cast<std::size_t>(zigzag_order()[i])]));
  }
}
void put_dht(std::vector<std::uint8_t>& out, int clazz, int id,
             const HuffSpec& spec) {
  put_marker(out, 0xC4);
  put_u16(out, static_cast<std::uint16_t>(2 + 1 + 16 + spec.symbols.size()));
  out.push_back(static_cast<std::uint8_t>((clazz << 4) | id));
  for (const auto c : spec.counts) out.push_back(c);
  out.insert(out.end(), spec.symbols.begin(), spec.symbols.end());
}

}  // namespace

std::vector<std::uint8_t> encode_color_image(const RgbImage& img,
                                             int quality) {
  Image planes[3];
  split_planes(img, &planes[0], &planes[1], &planes[2]);
  const std::array<int, 64> quants[2] = {scaled_quant(quality),
                                         scaled_chroma_quant(quality)};
  const HuffEncoder dc_enc[2] = {build_encoder(dc_luminance_spec()),
                                 build_encoder(dc_chrominance_spec())};
  const HuffEncoder ac_enc[2] = {build_encoder(ac_luminance_spec()),
                                 build_encoder(ac_chrominance_spec())};

  std::vector<std::uint8_t> out;
  put_marker(out, 0xD8);  // SOI
  put_dqt(out, 0, quants[0]);
  put_dqt(out, 1, quants[1]);

  // SOF0: three components, 1x1 sampling each (4:4:4).
  put_marker(out, 0xC0);
  put_u16(out, 2 + 6 + 3 * 3);
  out.push_back(8);
  put_u16(out, static_cast<std::uint16_t>(img.height));
  put_u16(out, static_cast<std::uint16_t>(img.width));
  out.push_back(3);
  for (int c = 0; c < 3; ++c) {
    out.push_back(static_cast<std::uint8_t>(c + 1));  // component id
    out.push_back(0x11);                              // 1x1 sampling
    out.push_back(c == 0 ? 0 : 1);                    // quant table
  }

  put_dht(out, 0, 0, dc_luminance_spec());
  put_dht(out, 1, 0, ac_luminance_spec());
  put_dht(out, 0, 1, dc_chrominance_spec());
  put_dht(out, 1, 1, ac_chrominance_spec());

  // SOS
  put_marker(out, 0xDA);
  put_u16(out, 2 + 1 + 2 * 3 + 3);
  out.push_back(3);
  for (int c = 0; c < 3; ++c) {
    out.push_back(static_cast<std::uint8_t>(c + 1));
    out.push_back(c == 0 ? 0x00 : 0x11);  // DC/AC table selectors
  }
  out.push_back(0);
  out.push_back(63);
  out.push_back(0);

  BitWriter bw;
  int pred[3] = {0, 0, 0};
  const int bw_blocks = (img.width + 7) / 8;
  const int bh_blocks = (img.height + 7) / 8;
  for (int by = 0; by < bh_blocks; ++by) {
    for (int bx = 0; bx < bw_blocks; ++bx) {
      for (int c = 0; c < 3; ++c) {
        const int t = c == 0 ? 0 : 1;
        const IntBlock zz = encode_block_stages(
            extract_block(planes[c], bx, by), quants[t]);
        pred[c] =
            huffman_encode_block(zz, pred[c], bw, dc_enc[t], ac_enc[t]);
      }
    }
  }
  const auto ecs = bw.finish();
  out.insert(out.end(), ecs.begin(), ecs.end());
  put_marker(out, 0xD9);  // EOI
  return out;
}

double psnr_rgb(const RgbImage& a, const RgbImage& b) {
  if (a.width != b.width || a.height != b.height || a.rgb.empty()) return 0.0;
  double mse = 0.0;
  for (std::size_t i = 0; i < a.rgb.size(); ++i) {
    const double d = static_cast<double>(a.rgb[i]) - b.rgb[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.rgb.size());
  if (mse <= 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace cgra::jpeg

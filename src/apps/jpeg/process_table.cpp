#include "apps/jpeg/process_table.hpp"

namespace cgra::jpeg {

using procnet::Process;
using procnet::ProcessNetwork;

std::vector<Process> paper_table3_processes() {
  // name, insts, data1, data2, data3, runtime(cycles)  — paper Table 3.
  std::vector<Process> p;
  p.push_back({"shift", 11, 0, 2, 9, 720, 1, true});
  p.push_back({"DCT", 62, 64, 14, 13, 133324, 1, true});
  p.push_back({"Alpha", 12, 64, 2, 7, 720, 1, true});
  p.push_back({"Quantize", 35, 64, 7, 7, 1576, 1, true});
  p.push_back({"Zigzag", 65, 0, 0, 0, 65, 1, true});
  p.push_back({"Hman1", 71, 0, 10, 9, 7934, 1, true});
  p.push_back({"Hman2", 56, 0, 10, 6, 1587, 1, true});
  p.push_back({"Hman3", 151, 0, 43, 12, 1651, 1, true});
  p.push_back({"Hman4", 180, 0, 17, 12, 2300, 1, true});
  p.push_back({"Hman5", 109, 21, 14, 17, 6823, 1, true});
  // Auxiliary: the quarter-block DCT, four invocations per 8x8 block.
  p.push_back({"dct", 62, 64, 14, 13, 33372, 4, true});
  // Copy processes (time-optimised variants of Table 3).
  p.push_back({"CP16", 17, 0, 0, 0, 17, 1, true});
  p.push_back({"CP32", 33, 0, 0, 0, 33, 1, true});
  p.push_back({"CP64", 65, 0, 0, 0, 65, 1, true});
  return p;
}

namespace {
ProcessNetwork pipeline_from(const std::vector<int>& ids) {
  const auto all = paper_table3_processes();
  std::vector<Process> procs;
  procs.reserve(ids.size());
  for (int id : ids) procs.push_back(all[static_cast<std::size_t>(id)]);
  return ProcessNetwork::pipeline(std::move(procs), /*words_per_edge=*/64);
}
}  // namespace

ProcessNetwork jpeg_main_pipeline() {
  return pipeline_from({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
}

ProcessNetwork jpeg_split_pipeline() {
  return pipeline_from({0, 10, 2, 3, 4, 5, 6, 7, 8, 9});
}

ProcessNetwork measured_pipeline(const JpegKernelCycles& cycles) {
  auto procs = paper_table3_processes();
  procs[0].runtime_cycles = cycles.shift;
  procs[1].runtime_cycles = cycles.dct;
  procs[3].runtime_cycles = cycles.quantize;
  procs[4].runtime_cycles = cycles.zigzag;
  // Alpha is folded into our DCT basis; keep it as a (cheap) placeholder
  // with the paper's annotation.  Huffman annotations stay the paper's.
  std::vector<Process> main(procs.begin(), procs.begin() + 10);
  return ProcessNetwork::pipeline(std::move(main), 64);
}

namespace {
mapping::Binding binding_of(std::vector<mapping::TileGroup> groups) {
  mapping::Binding b;
  b.groups = std::move(groups);
  return b;
}
}  // namespace

std::vector<ManualMapping> table4_manual_mappings() {
  std::vector<ManualMapping> out;

  // Impl1: everything on one tile.
  {
    ManualMapping m;
    m.name = "Impl1";
    m.tiles = 1;
    m.network = jpeg_main_pipeline();
    m.binding = mapping::all_on_one_tile(m.network);
    out.push_back(std::move(m));
  }
  // Impl2: DCT alone on one tile, the other nine processes on the second.
  {
    ManualMapping m;
    m.name = "Impl2";
    m.tiles = 2;
    m.network = jpeg_main_pipeline();
    // The paper puts shift on the same tile as the post-DCT processes
    // (Table 4: T0 hosts p0 and p2..p9, T1 hosts the DCT).
    m.binding = binding_of({{{1}, 1}, {{0, 2, 3, 4, 5, 6, 7, 8, 9}, 1}});
    out.push_back(std::move(m));
  }
  // Impl3: one-to-one mapping, ten tiles, everything pinned.
  {
    ManualMapping m;
    m.name = "Impl3";
    m.tiles = 10;
    m.network = jpeg_main_pipeline();
    std::vector<mapping::TileGroup> groups;
    for (int i = 0; i < 10; ++i) groups.push_back({{i}, 1});
    m.binding = binding_of(std::move(groups));
    out.push_back(std::move(m));
  }
  // Impl4: one-to-one with DCT split onto four dct tiles (13 tiles).
  {
    ManualMapping m;
    m.name = "Impl4";
    m.tiles = 13;
    m.network = jpeg_split_pipeline();
    std::vector<mapping::TileGroup> groups;
    groups.push_back({{0}, 1});
    groups.push_back({{1}, 4});  // dct x4
    for (int i = 2; i < 10; ++i) groups.push_back({{i}, 1});
    m.binding = binding_of(std::move(groups));
    out.push_back(std::move(m));
  }
  // Impl5: four dct tiles plus one tile for everything else (5 tiles).
  {
    ManualMapping m;
    m.name = "Impl5";
    m.tiles = 5;
    m.network = jpeg_split_pipeline();
    m.binding = binding_of({{{1}, 4}, {{0, 2, 3, 4, 5, 6, 7, 8, 9}, 1}});
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace cgra::jpeg

#include "apps/jpeg/bitio.hpp"

namespace cgra::jpeg {

void BitWriter::flush_byte() {
  while (acc_bits_ >= 8) {
    const auto byte = static_cast<std::uint8_t>((acc_ >> (acc_bits_ - 8)) & 0xFF);
    bytes_.push_back(byte);
    if (byte == 0xFF) bytes_.push_back(0x00);  // stuffing
    acc_bits_ -= 8;
    acc_ &= (1u << acc_bits_) - 1;
  }
}

void BitWriter::put(std::uint32_t value, int bits) {
  if (bits <= 0) return;
  acc_ = (acc_ << bits) | (value & ((bits >= 32 ? 0xFFFFFFFFu : (1u << bits) - 1)));
  acc_bits_ += bits;
  bit_count_ += static_cast<std::size_t>(bits);
  flush_byte();
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    const int pad = 8 - acc_bits_;
    put((1u << pad) - 1, pad);  // pad with 1-bits per the standard
  }
  return std::move(bytes_);
}

std::int32_t BitReader::get_bit() {
  if (pos_ >= size_) return -1;
  const std::uint8_t byte = data_[pos_];
  const std::int32_t bit = (byte >> (7 - bit_)) & 1;
  if (++bit_ == 8) {
    bit_ = 0;
    ++pos_;
    // Skip the stuffed 0x00 after a 0xFF data byte.
    if (byte == 0xFF && pos_ < size_ && data_[pos_] == 0x00) ++pos_;
  }
  return bit;
}

std::int32_t BitReader::get(int bits) {
  std::int32_t out = 0;
  for (int i = 0; i < bits; ++i) {
    const std::int32_t b = get_bit();
    if (b < 0) return -1;
    out = (out << 1) | b;
  }
  return out;
}

}  // namespace cgra::jpeg

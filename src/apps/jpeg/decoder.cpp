#include "apps/jpeg/decoder.hpp"

#include <algorithm>
#include <cmath>

#include "apps/jpeg/bitio.hpp"

namespace cgra::jpeg {

HuffDecoder::HuffDecoder(const HuffSpec& spec)
    : symbols_(spec.symbols) {
  std::int32_t code = 0;
  int k = 0;
  for (int len = 1; len <= 16; ++len) {
    const int count = spec.counts[static_cast<std::size_t>(len - 1)];
    if (count == 0) {
      min_code_[static_cast<std::size_t>(len)] = 0;
      max_code_[static_cast<std::size_t>(len)] = -1;
    } else {
      val_ptr_[static_cast<std::size_t>(len)] = k;
      min_code_[static_cast<std::size_t>(len)] = code;
      code += count;
      k += count;
      max_code_[static_cast<std::size_t>(len)] = code - 1;
    }
    code <<= 1;
  }
}

int HuffDecoder::decode(BitReader& br) const {
  std::int32_t code = 0;
  for (int len = 1; len <= 16; ++len) {
    const std::int32_t bit = br.get_bit();
    if (bit < 0) return -1;
    code = (code << 1) | bit;
    if (max_code_[static_cast<std::size_t>(len)] >= 0 &&
        code <= max_code_[static_cast<std::size_t>(len)]) {
      const int idx = val_ptr_[static_cast<std::size_t>(len)] +
                      (code - min_code_[static_cast<std::size_t>(len)]);
      if (idx < 0 || idx >= static_cast<int>(symbols_.size())) return -1;
      return symbols_[static_cast<std::size_t>(idx)];
    }
  }
  return -1;
}

int extend_amplitude(int bits_value, int category) noexcept {
  if (category == 0) return 0;
  // If the leading bit is 0 the value is negative (one's-complement form).
  if (bits_value < (1 << (category - 1))) {
    return bits_value - (1 << category) + 1;
  }
  return bits_value;
}

namespace {

struct Parser {
  const std::vector<std::uint8_t>& data;
  std::size_t pos = 0;

  bool eof() const { return pos >= data.size(); }
  int u8() { return eof() ? -1 : data[pos++]; }
  int u16() {
    const int hi = u8();
    const int lo = u8();
    return hi < 0 || lo < 0 ? -1 : (hi << 8) | lo;
  }
};

}  // namespace

DecodeResult decode_image(const std::vector<std::uint8_t>& data) {
  DecodeResult result;
  Parser p{data};

  auto fail = [&](const std::string& why) {
    result.status = Status::error(why);
    return result;
  };

  if (p.u8() != 0xFF || p.u8() != 0xD8) return fail("missing SOI");

  std::array<std::array<int, 64>, 4> quants{};  // natural order, by table id
  std::array<bool, 4> have_quant{};
  std::array<std::optional<HuffDecoder>, 4> dc_decs;
  std::array<std::optional<HuffDecoder>, 4> ac_decs;
  int width = 0;
  int height = 0;
  struct Component {
    int quant_id = 0;
    int dc_id = 0;
    int ac_id = 0;
  };
  std::vector<Component> comps;

  while (!p.eof()) {
    if (p.u8() != 0xFF) return fail("marker expected");
    int marker = p.u8();
    while (marker == 0xFF) marker = p.u8();  // fill bytes
    if (marker == 0xD9) return fail("EOI before scan");

    const int length = p.u16();
    if (length < 2) return fail("bad segment length");
    const std::size_t seg_end = p.pos + static_cast<std::size_t>(length - 2);
    if (seg_end > p.data.size()) return fail("segment overruns stream");

    switch (marker) {
      case 0xDB: {  // DQT (possibly several tables per segment)
        while (p.pos < seg_end) {
          const int pq_tq = p.u8();
          if ((pq_tq >> 4) != 0) return fail("16-bit quant unsupported");
          const int id = pq_tq & 0x0F;
          if (id >= 4) return fail("bad quant table id");
          for (int i = 0; i < 64; ++i) {
            quants[static_cast<std::size_t>(id)][static_cast<std::size_t>(
                zigzag_order()[static_cast<std::size_t>(i)])] = p.u8();
          }
          have_quant[static_cast<std::size_t>(id)] = true;
        }
        break;
      }
      case 0xC0: {  // SOF0
        p.u8();  // precision
        height = p.u16();
        width = p.u16();
        const int ncomp = p.u8();
        if (ncomp != 1 && ncomp != 3) {
          return fail("only 1- or 3-component frames supported");
        }
        comps.assign(static_cast<std::size_t>(ncomp), Component{});
        for (auto& comp : comps) {
          p.u8();  // component id (assumed in scan order)
          const int sampling = p.u8();
          if (sampling != 0x11) return fail("subsampling unsupported");
          comp.quant_id = p.u8();
          if (comp.quant_id < 0 || comp.quant_id >= 4) {
            return fail("bad quant selector");
          }
        }
        break;
      }
      case 0xC4: {  // DHT (possibly several tables per segment)
        while (p.pos < seg_end) {
          const int tc_th = p.u8();
          HuffSpec spec;
          int total = 0;
          for (int i = 0; i < 16; ++i) {
            const int c = p.u8();
            spec.counts[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(c);
            total += c;
          }
          spec.symbols.resize(static_cast<std::size_t>(total));
          for (int i = 0; i < total; ++i) {
            spec.symbols[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(p.u8());
          }
          const int id = tc_th & 0x0F;
          if (id >= 4) return fail("bad huffman table id");
          if ((tc_th >> 4) == 0) {
            dc_decs[static_cast<std::size_t>(id)].emplace(spec);
          } else {
            ac_decs[static_cast<std::size_t>(id)].emplace(spec);
          }
        }
        break;
      }
      case 0xDA: {  // SOS: header then entropy-coded segment
        if (comps.empty() || width <= 0 || height <= 0) {
          return fail("scan before frame header");
        }
        const int ns = p.u8();
        if (ns != static_cast<int>(comps.size())) {
          return fail("scan component count mismatch");
        }
        for (auto& comp : comps) {
          p.u8();  // component id (assumed frame order)
          const int tables = p.u8();
          comp.dc_id = tables >> 4;
          comp.ac_id = tables & 0x0F;
          if (comp.dc_id >= 4 || comp.ac_id >= 4) {
            return fail("bad huffman selector");
          }
        }
        p.pos = seg_end;  // skip spectral selection bytes
        for (const auto& comp : comps) {
          if (!have_quant[static_cast<std::size_t>(comp.quant_id)] ||
              !dc_decs[static_cast<std::size_t>(comp.dc_id)] ||
              !ac_decs[static_cast<std::size_t>(comp.ac_id)]) {
            return fail("scan references missing tables");
          }
        }
        if (static_cast<long long>(width) * height > 64LL * 1024 * 1024) {
          return fail("image larger than the decoder's 64-megapixel limit");
        }
        // Entropy data runs until the EOI marker (0xFF not followed by 0x00).
        std::size_t ecs_end = p.pos;
        while (ecs_end + 1 < p.data.size() &&
               !(p.data[ecs_end] == 0xFF && p.data[ecs_end + 1] != 0x00)) {
          ++ecs_end;
        }
        BitReader br(p.data.data() + p.pos, ecs_end - p.pos);

        std::vector<Image> planes(comps.size());
        for (auto& plane : planes) {
          plane.width = width;
          plane.height = height;
          plane.pixels.assign(static_cast<std::size_t>(width) *
                                  static_cast<std::size_t>(height),
                              0);
        }
        const int bw_blocks = (width + 7) / 8;
        const int bh_blocks = (height + 7) / 8;
        std::vector<int> prev_dc(comps.size(), 0);
        for (int by = 0; by < bh_blocks; ++by) {
          for (int bx = 0; bx < bw_blocks; ++bx) {
            for (std::size_t c = 0; c < comps.size(); ++c) {
              const auto& comp = comps[c];
              const auto& dc_dec =
                  *dc_decs[static_cast<std::size_t>(comp.dc_id)];
              const auto& ac_dec =
                  *ac_decs[static_cast<std::size_t>(comp.ac_id)];
              const auto& quant =
                  quants[static_cast<std::size_t>(comp.quant_id)];
              // --- Huffman decode one block in zigzag order ---
              IntBlock zz{};
              const int dc_cat = dc_dec.decode(br);
              if (dc_cat < 0) return fail("DC decode error");
              const int dc_bits = dc_cat == 0 ? 0 : br.get(dc_cat);
              if (dc_bits < 0) return fail("DC amplitude error");
              prev_dc[c] += extend_amplitude(dc_bits, dc_cat);
              zz[0] = prev_dc[c];
              int k = 1;
              while (k < 64) {
                const int sym = ac_dec.decode(br);
                if (sym < 0) return fail("AC decode error");
                if (sym == 0x00) break;  // EOB
                if (sym == 0xF0) {       // ZRL: sixteen zeros
                  k += 16;
                  continue;
                }
                const int run = sym >> 4;
                const int cat = sym & 0x0F;
                k += run;
                if (k >= 64) return fail("AC run overflow");
                const int amp = br.get(cat);
                if (amp < 0) return fail("AC amplitude error");
                zz[static_cast<std::size_t>(k++)] =
                    extend_amplitude(amp, cat);
              }
              // --- dequantise + IDCT + level shift ---
              Block freq{};
              for (std::size_t i = 0; i < 64; ++i) {
                freq[static_cast<std::size_t>(zigzag_order()[i])] =
                    static_cast<double>(zz[i]) *
                    quant[static_cast<std::size_t>(zigzag_order()[i])];
              }
              const Block spatial = idct_float(freq);
              for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                  const int px = bx * 8 + x;
                  const int py = by * 8 + y;
                  if (px >= width || py >= height) continue;
                  const int v = static_cast<int>(std::lround(
                      spatial[static_cast<std::size_t>(y * 8 + x)] + 128.0));
                  planes[c].pixels[static_cast<std::size_t>(py) *
                                       static_cast<std::size_t>(width) +
                                   static_cast<std::size_t>(px)] =
                      static_cast<std::uint8_t>(std::clamp(v, 0, 255));
                }
              }
            }
          }
        }
        result.image = std::move(planes[0]);
        if (comps.size() == 3) {
          result.is_color = true;
          result.rgb = merge_planes(result.image, planes[1], planes[2]);
        }
        result.status = Status();
        return result;
      }
      default:
        p.pos = seg_end;  // skip APPn / COM / unknown
        break;
    }
    p.pos = seg_end;
  }
  return fail("no scan found");
}

double psnr(const Image& a, const Image& b) {
  if (a.width != b.width || a.height != b.height || a.pixels.empty()) {
    return 0.0;
  }
  double mse = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    const double d =
        static_cast<double>(a.pixels[i]) - static_cast<double>(b.pixels[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.pixels.size());
  if (mse <= 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace cgra::jpeg

// JPEG stages as fabric assembly kernels.
//
// shift, DCT, quantize and zigzag run as real tile programs; their cycle
// counts are measured on the simulator (our analogue of Table 3's runtime
// column) and their outputs are verified bit-exactly against the host
// reference (level_shift / fdct_fixed / quantize / zigzag_scan share the
// arithmetic).  Huffman stays a host process — its annotations come from
// the paper's Table 3 — a substitution documented in DESIGN.md: the mapping
// algorithms only consume annotations, never the code.
//
// Tile data-memory layout (one 8x8 block per tile):
//   X  = [0, 64)     block (in place through the pipeline)
//   T  = [64, 128)   intermediate / output buffer
//   C  = [128, 192)  Q12 DCT basis
//   R  = [192, 256)  Q16 quantiser reciprocals (natural order)
//   CTRL = [448, 464) counters / pointers
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/jpeg/encoder.hpp"
#include "common/status.hpp"
#include "common/timing.hpp"
#include "config/reconfig.hpp"
#include "fabric/fabric.hpp"
#include "faults/recovery.hpp"
#include "mapping/schedule_compiler.hpp"
#include "procnet/network.hpp"

namespace cgra::jpeg {

/// Layout constants (fixed: a JPEG block always fits one tile).
struct JpegLayout {
  int x = 0;      ///< Working block.
  int t = 64;     ///< Intermediate / output buffer.
  int c = 128;    ///< Q12 DCT basis.
  int r = 192;    ///< Q16 quantiser reciprocals.
  int p = 256;    ///< Inbox (double buffer) for the streaming pipeline.
  int ctrl = 448; ///< Counters / pointers.
};

/// Kernel sources.
std::string shift_source(const JpegLayout& lay);
std::string dct_source(const JpegLayout& lay);       ///< Two-pass Q12 matmul.
std::string quantize_source(const JpegLayout& lay);  ///< Reciprocal multiply.
std::string zigzag_source(const JpegLayout& lay);    ///< 64 straight moves.
/// Append to any kernel: stream a 64-word block from `src_base` to
/// `dst_base` in the linked neighbour (default: its working block X).
std::string send_block_source(const JpegLayout& lay, int src_base,
                              int dst_base = 0);

/// Measured cycle counts of the fabric kernels (Table-3 analogue).
struct JpegKernelCycles {
  std::int64_t shift = 0;
  std::int64_t dct = 0;
  std::int64_t quantize = 0;
  std::int64_t zigzag = 0;
};
JpegKernelCycles measure_jpeg_kernels();

/// Data-memory layout of the Huffman (hman) tile.  The code tables pack
/// (length << 16) | code into one word each; output is emitted as 24-bit
/// chunks (MSB first) with the partial-word tail left in acc/nbits.
struct HmanLayout {
  int zz = 0;         ///< [0, 64)    zigzagged coefficients (input).
  int out = 64;       ///< [64, 152)  24-bit output chunks (88 words).
  int ac_tab = 152;   ///< [152, 408) AC (run,size) -> packed code table.
  int dc_tab = 408;   ///< [408, 420) DC category -> packed code table.
  int mask24 = 430;   ///< Constant 0xFFFFFF.
  int prev_dc = 431;  ///< DC predictor in, block DC out (for chaining).
  int acc_out = 432;  ///< Residual bit accumulator after the run.
  int nbits_out = 433;///< Residual bit count.
  int out_count = 434;///< 24-bit words emitted.
  int ctrl = 440;     ///< Scratch registers.
};

/// The Huffman entropy-coding tile program: encodes one zigzagged block
/// (DC delta + run-length AC with ZRL/EOB, canonical Huffman, amplitude
/// bits) into the OUT region.  The paper split this across hman1..hman5;
/// our leaner ISA tables fit one tile.
std::string hman_source(const HmanLayout& lay);

/// Constant patches for the hman tile (code tables, masks, predictor).
std::vector<isa::DataPatch> hman_patches(const HmanLayout& lay, int prev_dc);

/// Result of entropy-coding one block on the fabric.
struct FabricEntropyResult {
  std::vector<std::uint8_t> bits;  ///< The exact bit string, MSB first.
  std::int64_t cycles = 0;
  Status status = Status::error("entropy encode did not run");

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// Run the hman program on one tile for `zz` and return the bit string
/// (matches the host Huffman encoder bit for bit, pre-stuffing).
FabricEntropyResult encode_entropy_on_fabric(const IntBlock& zz, int prev_dc);

/// Result of running one block through the fabric pipeline.
struct FabricBlockResult {
  IntBlock zigzagged{};   ///< Output of the zigzag tile.
  Status status = Status::error("block encode did not run");
  std::vector<Fault> faults;
  std::int64_t total_cycles = 0;
  Nanoseconds reconfig_ns = 0.0;

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// The content the 1x4 transform pipeline streams through the ICAP: the
/// four assembled stage programs (compute + block send) plus the constant
/// tables.  Pure function of the quantiser, so a warm runtime caches one
/// per quant table and shares it across every block job.
struct JpegPipelineArtifacts {
  std::array<isa::Program, 4> stage_programs;
  std::vector<isa::DataPatch> basis;   ///< Q12 DCT basis for the DCT tile.
  std::vector<isa::DataPatch> recips;  ///< Q16 reciprocals for quantize.
};
JpegPipelineArtifacts make_pipeline_artifacts(const std::array<int, 64>& quant);

/// The 1x4 transform pipeline kept configured on a borrowed fabric: the
/// setup epoch (programs + tables, one ICAP stream) is paid once in the
/// constructor, then encode() runs blocks back to back with no further
/// reconfiguration — the reset-and-reuse hot path of the job service.
/// Each encode() is bit-identical (output and cycle count) to a fresh
/// encode_block_on_fabric() call, which delegates here.
class BlockPipeline {
 public:
  /// `fab` must be a 1x4 mesh in construction state (fresh or reset());
  /// not owned.  Check setup_status() before encoding.
  BlockPipeline(fabric::Fabric& fab, const JpegPipelineArtifacts& art);

  [[nodiscard]] const Status& setup_status() const noexcept { return setup_; }
  /// ICAP + link cost of the setup epoch.
  [[nodiscard]] Nanoseconds setup_reconfig_ns() const noexcept {
    return setup_ns_;
  }

  /// Run shift -> DCT -> quantize -> zigzag for one raw block.  The
  /// result's reconfig_ns is 0: configuration was paid at construction.
  FabricBlockResult encode(const IntBlock& raw);

 private:
  fabric::Fabric& fab_;
  Status setup_;
  Nanoseconds setup_ns_ = 0.0;
};

/// Run shift -> DCT -> quantize -> zigzag for one raw block on a 1x4 tile
/// pipeline (cp64-style block transfers over east links).  Output matches
/// encode_block_stages() bit for bit.
FabricBlockResult encode_block_on_fabric(const IntBlock& raw,
                                         const std::array<int, 64>& quant);

/// Result of streaming many blocks through the pipelined fabric.
struct FabricStreamResult {
  std::vector<IntBlock> zigzagged;     ///< One output per input block.
  std::vector<std::int64_t> beat_cycles;  ///< Cycles of each pipeline beat.
  std::int64_t steady_ii_cycles = 0;   ///< Median beat once the pipe is full.
  Status status = Status::error("stream encode did not run");
  std::vector<Fault> faults;

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// Program library for the schedule compiler: implementations of the four
/// fabric-resident transform processes, keyed by their ids in
/// `jpeg_transform_pipeline()` (0 shift, 1 DCT, 2 quantize, 3 zigzag).
mapping::ProgramLibrary jpeg_program_library(const std::array<int, 64>& quant);

/// The fabric-resident subset of the JPEG pipeline (shift, DCT, quantize,
/// zigzag) annotated with measured cycle counts — the network the schedule
/// compiler can realise end to end.
procnet::ProcessNetwork jpeg_transform_pipeline();

/// Result of a resilient single-block run (docs/FAULTS.md).
struct ResilientBlockResult {
  IntBlock zigzagged{};            ///< Valid only when report.ok.
  faults::RecoveryReport report;   ///< Recovery accounting and diagnostics.
};

/// Everything the resilient path derives from (quant, rows, cols) before
/// the first cycle runs: the measured process network (four kernel
/// simulations), the program library, the one-process-per-tile binding and
/// its snake placement.  Expensive to build, pure, and reused verbatim by
/// the job service's artifact cache.
struct ResilientJpegArtifacts {
  procnet::ProcessNetwork net;
  mapping::ProgramLibrary library;
  mapping::Binding binding;
  mapping::Placement placement;
};
ResilientJpegArtifacts make_resilient_artifacts(
    const std::array<int, 64>& quant, int rows = 2, int cols = 7);

/// Run shift -> DCT -> quantize -> zigzag for one raw block under the
/// RecoveryManager: each process on its own tile of a `rows x cols` mesh
/// (snake placement), faults injected per `plan`, detected and recovered
/// per `policy`.  With an empty plan the output matches
/// encode_block_stages() and no recovery cost is paid; with tile-death or
/// ICAP-corruption plans the output is still bit-identical as long as
/// recovery succeeds (report.ok).  The default mesh is 2x7: the paper's
/// 13-tile JPEG deployment rounded up to a rectangle, so routes can detour
/// around an evacuated tile (a single-row mesh has no detours).
ResilientBlockResult encode_block_resilient(
    const IntBlock& raw, const std::array<int, 64>& quant,
    const faults::FaultPlan& plan, const faults::RecoveryPolicy& policy = {},
    int rows = 2, int cols = 7);

/// The warm-runtime form: runs on a borrowed fabric (construction state;
/// its shape is the mesh) with pre-built artifacts.  The three-argument
/// overload above delegates here with a local fabric.
ResilientBlockResult encode_block_resilient_on(
    fabric::Fabric& fab, const ResilientJpegArtifacts& art,
    const IntBlock& raw, const faults::FaultPlan& plan,
    const faults::RecoveryPolicy& policy = {});

/// Stream `blocks` through the 1x4 pipeline with true overlap: in each
/// "beat" all four tiles run concurrently on consecutive blocks (double-
/// buffered through the P inbox), so the steady-state beat time is the
/// executed initiation interval — directly comparable with the mapping
/// cost model's II prediction.  Outputs match encode_block_stages().
FabricStreamResult encode_blocks_on_fabric_stream(
    const std::vector<IntBlock>& blocks, const std::array<int, 64>& quant);

}  // namespace cgra::jpeg

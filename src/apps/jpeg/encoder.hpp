// Baseline grayscale JPEG encoder (the paper's second kernel).
//
// The pipeline follows the paper's process decomposition exactly —
// { Blocking/shift, DCT, Quantization, ZigZag, Huffman } — with each stage
// exposed as a standalone function so the fabric kernels can be verified
// stage by stage.  encode_image() produces a well-formed JFIF byte stream
// that the companion decoder (decoder.hpp) round-trips in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/jpeg/bitio.hpp"
#include "apps/jpeg/dct.hpp"
#include "apps/jpeg/tables.hpp"

namespace cgra::jpeg {

/// An 8-bit grayscale image.
struct Image {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;  ///< Row-major, size = width*height.

  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }
};

/// Deterministic synthetic test images (gradient / checker / noise mix).
Image synthetic_image(int width, int height, std::uint64_t seed);

/// Number of 8x8 blocks an encode of (w, h) processes (edge-padded).
int block_count(int width, int height) noexcept;

/// Extract (with edge replication) the 8x8 block at block coords (bx, by).
IntBlock extract_block(const Image& img, int bx, int by);

/// Stage 1 — level shift: subtract 128 from each sample.
IntBlock level_shift(const IntBlock& block);

/// Stage 3 — quantisation by reciprocal multiplication (the division-free
/// form both the host and the fabric kernel use):
///   y = round_to_nearest(x * recip(q) / 2^16),  recip(q) = round(2^16 / q).
IntBlock quantize(const IntBlock& coeffs, const std::array<int, 64>& quant);
/// Q16 reciprocal of one quantiser entry.
std::int32_t quant_reciprocal(int q) noexcept;

/// Stage 4 — zigzag scan (natural order -> zigzag order).
IntBlock zigzag_scan(const IntBlock& block);

/// Stage 5 — Huffman-encode one zigzagged block into `bw`.
/// `prev_dc` carries the DC predictor; returns the new predictor.
int huffman_encode_block(const IntBlock& zz, int prev_dc, BitWriter& bw,
                         const HuffEncoder& dc, const HuffEncoder& ac);

/// JPEG magnitude category (number of bits) of a coefficient value.
int bit_category(int value) noexcept;

/// Full pipeline for one block: shift -> fixed DCT -> quantize -> zigzag.
IntBlock encode_block_stages(const IntBlock& raw,
                             const std::array<int, 64>& quant);

/// Encode a whole image to a JFIF byte stream (baseline, grayscale).
std::vector<std::uint8_t> encode_image(const Image& img, int quality = 50);

/// Assemble the JFIF byte stream from already-transformed blocks: `blocks`
/// must be the zigzagged outputs of encode_block_stages() for every 8x8
/// block of `img` in row-major block order.  encode_image() delegates here;
/// a warm runtime that ran the transforms on the fabric produces a
/// byte-identical stream through this entry point.
std::vector<std::uint8_t> encode_image_from_zigzag(
    const Image& img, int quality, const std::vector<IntBlock>& blocks);

}  // namespace cgra::jpeg

#include "apps/jpeg/fabric_jpeg.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "apps/fft/programs.hpp"  // must_assemble
#include "config/reconfig.hpp"
#include "fabric/fabric.hpp"
#include "interconnect/link.hpp"

namespace cgra::jpeg {

using fft::must_assemble;
using interconnect::Direction;

namespace {
void emit_equs(std::ostringstream& os, const JpegLayout& lay) {
  os << ".equ X, " << lay.x << "\n"
     << ".equ T, " << lay.t << "\n"
     << ".equ C, " << lay.c << "\n"
     << ".equ R, " << lay.r << "\n"
     << ".equ acc, " << lay.ctrl + 0 << "\n"
     << ".equ pa, " << lay.ctrl + 1 << "\n"
     << ".equ pb, " << lay.ctrl + 2 << "\n"
     << ".equ po, " << lay.ctrl + 3 << "\n"
     << ".equ cnt_i, " << lay.ctrl + 4 << "\n"
     << ".equ cnt_j, " << lay.ctrl + 5 << "\n"
     << ".equ cnt_k, " << lay.ctrl + 6 << "\n"
     << ".equ tmp, " << lay.ctrl + 7 << "\n"
     << ".equ pa_row, " << lay.ctrl + 8 << "\n"
     << ".equ pb_col, " << lay.ctrl + 9 << "\n";
}

/// One DCT pass as an 8x8x8 multiply-accumulate on the DSP accumulator:
///   out[i*8+j] = round_shift(sum_k A[a_row + k] * B[b_base + k*bk], 12)
/// where a_row = a_base + 8*i and b_base = b_start + bj*j.  The first
/// product is peeled into a `macz` (clearing the accumulator), the
/// remaining seven ride the 5-instruction `mac` loop.
void emit_matmul_pass(std::ostringstream& os, const char* label, int a_base,
                      int b_start, int bj, int bk, int out_base) {
  os << "  movi pa_row, #" << a_base << "\n"
     << "  movi po, #" << out_base << "\n"
     << "  movi cnt_i, #8\n"
     << label << "_iloop:\n"
     << "  movi pb_col, #" << b_start << "\n"
     << "  movi cnt_j, #8\n"
     << label << "_jloop:\n"
     << "  mov pa, pa_row\n"
     << "  mov pb, pb_col\n"
     << "  macz pa*, pb*\n"
     << "  add pa, pa, #1\n"
     << "  add pb, pb, #" << bk << "\n"
     << "  movi cnt_k, #7\n"
     << label << "_kloop:\n"
     << "  mac pa*, pb*\n"
     << "  add pa, pa, #1\n"
     << "  add pb, pb, #" << bk << "\n"
     << "  sub cnt_k, cnt_k, #1\n"
     << "  bnez cnt_k, " << label << "_kloop\n"
     << "  macr acc\n"
     << "  add acc, acc, #2048\n"
     << "  sra acc, acc, #12\n"
     << "  mov po*, acc\n"
     << "  add po, po, #1\n"
     << "  add pb_col, pb_col, #" << bj << "\n"
     << "  sub cnt_j, cnt_j, #1\n"
     << "  bnez cnt_j, " << label << "_jloop\n"
     << "  add pa_row, pa_row, #8\n"
     << "  sub cnt_i, cnt_i, #1\n"
     << "  bnez cnt_i, " << label << "_iloop\n";
}
}  // namespace

std::string shift_source(const JpegLayout& lay) {
  std::ostringstream os;
  emit_equs(os, lay);
  os << "  movi pa, #X\n"
     << "  movi cnt_k, #64\n"
     << "loop:\n"
     << "  sub pa*, pa*, #128\n"
     << "  add pa, pa, #1\n"
     << "  sub cnt_k, cnt_k, #1\n"
     << "  bnez cnt_k, loop\n"
     << "  halt\n";
  return os.str();
}

std::string dct_source(const JpegLayout& lay) {
  std::ostringstream os;
  emit_equs(os, lay);
  // Pass 1: T[u*8+x] = rs(sum_y C[u*8+y] * X[y*8+x]):   A=C, B walks X
  // columns (step 8), next column per j (step 1).
  emit_matmul_pass(os, "p1", lay.c, lay.x, /*bj=*/1, /*bk=*/8, lay.t);
  // Pass 2: X[u*8+v] = rs(sum_x T[u*8+x] * C[v*8+x]):   A=T, B walks C rows
  // (step 1), next row per j (step 8).  Output overwrites X.
  emit_matmul_pass(os, "p2", lay.t, lay.c, /*bj=*/8, /*bk=*/1, lay.x);
  os << "  halt\n";
  return os.str();
}

std::string quantize_source(const JpegLayout& lay) {
  std::ostringstream os;
  emit_equs(os, lay);
  os << "  movi pa, #X\n"
     << "  movi pb, #R\n"
     << "  movi cnt_k, #64\n"
     << "loop:\n"
     << "  mul tmp, pa*, pb*\n"
     << "  add tmp, tmp, #32768\n"
     << "  sra tmp, tmp, #16\n"
     << "  mov pa*, tmp\n"
     << "  add pa, pa, #1\n"
     << "  add pb, pb, #1\n"
     << "  sub cnt_k, cnt_k, #1\n"
     << "  bnez cnt_k, loop\n"
     << "  halt\n";
  return os.str();
}

std::string zigzag_source(const JpegLayout& lay) {
  std::ostringstream os;
  // Straight-line gather: T[i] = X[zigzag(i)].  64 instructions + halt —
  // the same 65-word footprint Table 3 reports for the zigzag process.
  for (int i = 0; i < 64; ++i) {
    os << "  mov " << lay.t + i << ", "
       << lay.x + zigzag_order()[static_cast<std::size_t>(i)] << "\n";
  }
  os << "  halt\n";
  return os.str();
}

std::string send_block_source(const JpegLayout& lay, int src_base,
                               int dst_base) {
  std::ostringstream os;
  emit_equs(os, lay);
  os << "  movi pa, #" << src_base << "\n"
     << "  movi po, #" << dst_base << "\n"
     << "  movi cnt_k, #64\n"
     << "sloop:\n"
     << "  mov !po*, pa*\n"
     << "  add pa, pa, #1\n"
     << "  add po, po, #1\n"
     << "  sub cnt_k, cnt_k, #1\n"
     << "  bnez cnt_k, sloop\n"
     << "  halt\n";
  return os.str();
}

namespace {
std::string strip_halt(std::string src) {
  const auto pos = src.rfind("  halt");
  if (pos != std::string::npos) src.resize(pos);
  return src;
}

std::vector<isa::DataPatch> basis_patches(const JpegLayout& lay) {
  std::vector<isa::DataPatch> out;
  const auto& c = dct_basis_q12();
  out.reserve(64);
  for (int i = 0; i < 64; ++i) {
    out.push_back(isa::DataPatch{
        lay.c + i, from_signed(c[static_cast<std::size_t>(i)])});
  }
  return out;
}

std::vector<isa::DataPatch> recip_patches(const JpegLayout& lay,
                                          const std::array<int, 64>& quant) {
  std::vector<isa::DataPatch> out;
  out.reserve(64);
  for (int i = 0; i < 64; ++i) {
    out.push_back(isa::DataPatch{
        lay.r + i,
        from_signed(quant_reciprocal(quant[static_cast<std::size_t>(i)]))});
  }
  return out;
}
}  // namespace

JpegKernelCycles measure_jpeg_kernels() {
  const JpegLayout lay;
  JpegKernelCycles cycles;
  auto run_one = [&](const std::string& src) -> std::int64_t {
    fabric::Fabric fab(1, 1);
    fab.tile(0).load_program(must_assemble(src));
    fab.tile(0).restart();
    const auto run = fab.run(10'000'000);
    return run.ok() ? run.cycles : -1;
  };
  cycles.shift = run_one(shift_source(lay));
  cycles.dct = run_one(dct_source(lay));
  cycles.quantize = run_one(quantize_source(lay));
  cycles.zigzag = run_one(zigzag_source(lay));
  return cycles;
}

JpegPipelineArtifacts make_pipeline_artifacts(
    const std::array<int, 64>& quant) {
  const JpegLayout lay;
  JpegPipelineArtifacts art;
  // Stage programs: each computes in place, then streams X (or T for the
  // zigzag gather) to the next tile.
  const std::string srcs[4] = {
      strip_halt(shift_source(lay)) + send_block_source(lay, lay.x),
      strip_halt(dct_source(lay)) + send_block_source(lay, lay.x),
      strip_halt(quantize_source(lay)) + send_block_source(lay, lay.x),
      zigzag_source(lay),
  };
  for (int t = 0; t < 4; ++t) {
    art.stage_programs[static_cast<std::size_t>(t)] =
        must_assemble(srcs[static_cast<std::size_t>(t)]);
  }
  art.basis = basis_patches(lay);
  art.recips = recip_patches(lay, quant);
  return art;
}

BlockPipeline::BlockPipeline(fabric::Fabric& fab,
                             const JpegPipelineArtifacts& art)
    : fab_(fab) {
  if (fab.rows() != 1 || fab.cols() != 4) {
    setup_ = Status::errorf("pipeline needs a 1x4 fabric, got %dx%d",
                            fab.rows(), fab.cols());
    return;
  }
  config::ReconfigController ctrl(IcapModel{}, interconnect::LinkCostModel{});
  interconnect::LinkConfig links(1, 4);
  for (int t = 0; t < 3; ++t) links.set_output(t, Direction::kEast);

  // One-time configuration epoch: programs + constant tables.
  config::EpochConfig setup;
  setup.name = "jpeg-setup";
  setup.links = links;
  for (int t = 0; t < 4; ++t) {
    config::TileUpdate update;
    update.program = art.stage_programs[static_cast<std::size_t>(t)];
    update.reload_program = true;
    update.restart = false;  // started per stage in encode()
    if (t == 1) update.patches = art.basis;
    if (t == 2) update.patches = art.recips;
    setup.tiles[t] = std::move(update);
  }
  setup_ns_ = ctrl.apply(fab_, setup).total_ns();
}

FabricBlockResult BlockPipeline::encode(const IntBlock& raw) {
  FabricBlockResult result;
  if (!setup_.ok()) {
    result.status = setup_;
    return result;
  }
  const JpegLayout lay;
  for (int i = 0; i < 64; ++i) {
    fab_.tile(0).set_dmem(lay.x + i,
                          from_signed(raw[static_cast<std::size_t>(i)]));
  }
  // Drive the pipeline stage by stage (one block; steady-state overlap is
  // the mapping model's job, correctness is this function's).  Every stage
  // fully overwrites its successor's working block, so back-to-back blocks
  // on the warm pipeline behave exactly like the first.
  for (int t = 0; t < 4; ++t) {
    fab_.tile(t).restart();
    const auto run = fab_.run(1'000'000);
    result.total_cycles += run.cycles;
    if (!run.ok()) {
      result.faults = run.faults;
      result.status = Status::errorf(
          "stage %d %s", t,
          run.faults.empty() ? "exceeded the cycle budget"
                             : run.faults.front().describe().c_str());
      return result;
    }
  }
  for (int i = 0; i < 64; ++i) {
    result.zigzagged[static_cast<std::size_t>(i)] =
        static_cast<int>(to_signed(fab_.tile(3).dmem(lay.t + i)));
  }
  result.status = Status();
  return result;
}

FabricBlockResult encode_block_on_fabric(const IntBlock& raw,
                                         const std::array<int, 64>& quant) {
  fabric::Fabric fab(1, 4);
  BlockPipeline pipeline(fab, make_pipeline_artifacts(quant));
  FabricBlockResult result = pipeline.encode(raw);
  result.reconfig_ns += pipeline.setup_reconfig_ns();
  return result;
}

namespace {

/// Emit the inlined "append `code_reg` of `len_reg` bits, flush 24-bit
/// words" sequence.  `tag` keeps the labels unique per expansion.
void emit_append(std::ostringstream& os, const char* tag) {
  os << "  shl acc, acc, len\n"
     << "  orr acc, acc, code\n"
     << "  add nbits, nbits, len\n"
     << "fl_" << tag << ":\n"
     << "  sub t0, nbits, #24\n"
     << "  bltz t0, fd_" << tag << "\n"
     << "  shr t1, acc, t0\n"
     << "  and t1, t1, MASK24\n"
     << "  mov optr*, t1\n"
     << "  add optr, optr, #1\n"
     << "  mov nbits, t0\n"
     << "  movi t1, #1\n"
     << "  shl t1, t1, nbits\n"
     << "  sub t1, t1, #1\n"
     << "  and acc, acc, t1\n"
     << "  jmp fl_" << tag << "\n"
     << "fd_" << tag << ":\n";
}

/// Emit "cat = bit_category(v)" with |v| via t0.
void emit_category(std::ostringstream& os, const char* tag) {
  os << "  mov mag, v\n"
     << "  bltz mag, neg_" << tag << "\n"
     << "  jmp cs_" << tag << "\n"
     << "neg_" << tag << ":\n"
     << "  movi t0, #0\n"
     << "  sub mag, t0, mag\n"
     << "cs_" << tag << ":\n"
     << "  movi cat, #0\n"
     << "cl_" << tag << ":\n"
     << "  beqz mag, cd_" << tag << "\n"
     << "  shr mag, mag, #1\n"
     << "  add cat, cat, #1\n"
     << "  jmp cl_" << tag << "\n"
     << "cd_" << tag << ":\n";
}

/// Emit "code/len <- packed table entry at `base` + `index_reg`".
void emit_lookup(std::ostringstream& os, int base, const char* index_reg) {
  os << "  movi t0, #" << base << "\n"
     << "  add t0, t0, " << index_reg << "\n"
     << "  mov t1, t0*\n"
     << "  shr len, t1, #16\n"
     << "  and code, t1, #65535\n";
}

/// Emit "code/len <- amplitude bits of v in cat bits" (one's-complement
/// form for negatives), then append.
void emit_amplitude(std::ostringstream& os, const char* tag) {
  os << "  beqz cat, aa_done_" << tag << "\n"
     << "  mov code, v\n"
     << "  bltz code, an_" << tag << "\n"
     << "  jmp ap_" << tag << "\n"
     << "an_" << tag << ":\n"
     << "  movi t0, #1\n"
     << "  shl t0, t0, cat\n"
     << "  sub t0, t0, #1\n"
     << "  add code, code, t0\n"
     << "ap_" << tag << ":\n"
     << "  mov len, cat\n";
  emit_append(os, tag);
  os << "aa_done_" << tag << ":\n";
}

}  // namespace

std::string hman_source(const HmanLayout& lay) {
  std::ostringstream os;
  const int c = lay.ctrl;
  os << ".equ ZZ, " << lay.zz << "\n"
     << ".equ OUT, " << lay.out << "\n"
     << ".equ ACTAB, " << lay.ac_tab << "\n"
     << ".equ DCTAB, " << lay.dc_tab << "\n"
     << ".equ MASK24, " << lay.mask24 << "\n"
     << ".equ PREVDC, " << lay.prev_dc << "\n"
     << ".equ ACCOUT, " << lay.acc_out << "\n"
     << ".equ NBITSOUT, " << lay.nbits_out << "\n"
     << ".equ OUTCOUNT, " << lay.out_count << "\n"
     << ".equ pz, " << c + 0 << "\n"
     << ".equ k, " << c + 1 << "\n"
     << ".equ run, " << c + 2 << "\n"
     << ".equ v, " << c + 3 << "\n"
     << ".equ mag, " << c + 4 << "\n"
     << ".equ cat, " << c + 5 << "\n"
     << ".equ code, " << c + 6 << "\n"
     << ".equ len, " << c + 7 << "\n"
     << ".equ acc, " << c + 8 << "\n"
     << ".equ nbits, " << c + 9 << "\n"
     << ".equ optr, " << c + 10 << "\n"
     << ".equ t0, " << c + 11 << "\n"
     << ".equ t1, " << c + 12 << "\n"
     << ".equ sym, " << c + 13 << "\n";

  // --- init ---
  os << "  movi acc, #0\n"
     << "  movi nbits, #0\n"
     << "  movi optr, #OUT\n"
     << "  movi run, #0\n";

  // --- DC: v = zz[0] - prev_dc ---
  os << "  mov v, ZZ\n"
     << "  sub v, v, PREVDC\n";
  emit_category(os, "dc");
  emit_lookup(os, lay.dc_tab, "cat");
  emit_append(os, "dcc");
  emit_amplitude(os, "dca");
  os << "  mov PREVDC, ZZ\n";  // new predictor = this block's DC

  // --- AC loop: k = 1..63 ---
  os << "  movi pz, #ZZ+1\n"
     << "  movi k, #63\n"
     << "acloop:\n"
     << "  mov v, pz*\n"
     << "  bnez v, nonzero\n"
     << "  add run, run, #1\n"
     << "  jmp acnext\n"
     << "nonzero:\n"
     // while run >= 16: emit ZRL (symbol 0xF0), run -= 16
     << "zrl:\n"
     << "  sub t0, run, #16\n"
     << "  bltz t0, zrldone\n"
     << "  mov run, t0\n"
     << "  movi sym, #240\n";
  emit_lookup(os, lay.ac_tab, "sym");
  emit_append(os, "zrl");
  os << "  jmp zrl\n"
     << "zrldone:\n";
  emit_category(os, "ac");
  // sym = (run << 4) | cat
  os << "  shl sym, run, #4\n"
     << "  orr sym, sym, cat\n";
  emit_lookup(os, lay.ac_tab, "sym");
  emit_append(os, "acc");
  emit_amplitude(os, "aca");
  os << "  movi run, #0\n"
     << "acnext:\n"
     << "  add pz, pz, #1\n"
     << "  sub k, k, #1\n"
     << "  bnez k, acloop\n";

  // --- trailing EOB (symbol 0x00) if zeros remain ---
  os << "  beqz run, finish\n"
     << "  movi sym, #0\n";
  emit_lookup(os, lay.ac_tab, "sym");
  emit_append(os, "eob");

  // --- store the residual accumulator and word count ---
  os << "finish:\n"
     << "  mov ACCOUT, acc\n"
     << "  mov NBITSOUT, nbits\n"
     << "  movi t0, #OUT\n"
     << "  sub t0, optr, t0\n"
     << "  mov OUTCOUNT, t0\n"
     << "  halt\n";
  return os.str();
}

std::vector<isa::DataPatch> hman_patches(const HmanLayout& lay, int prev_dc) {
  std::vector<isa::DataPatch> out;
  const HuffEncoder dc = build_encoder(dc_luminance_spec());
  const HuffEncoder ac = build_encoder(ac_luminance_spec());
  for (int cat = 0; cat < 12; ++cat) {
    out.push_back(isa::DataPatch{
        lay.dc_tab + cat,
        static_cast<Word>(
            (static_cast<std::uint32_t>(dc.length[static_cast<std::size_t>(cat)])
             << 16) |
            dc.code[static_cast<std::size_t>(cat)])});
  }
  for (int sym = 0; sym < 256; ++sym) {
    out.push_back(isa::DataPatch{
        lay.ac_tab + sym,
        static_cast<Word>(
            (static_cast<std::uint32_t>(ac.length[static_cast<std::size_t>(sym)])
             << 16) |
            ac.code[static_cast<std::size_t>(sym)])});
  }
  out.push_back(isa::DataPatch{lay.mask24, 0xFFFFFF});
  out.push_back(isa::DataPatch{lay.prev_dc, from_signed(prev_dc)});
  return out;
}

FabricEntropyResult encode_entropy_on_fabric(const IntBlock& zz,
                                             int prev_dc) {
  FabricEntropyResult result;
  const HmanLayout lay;
  fabric::Fabric fab(1, 1);
  auto& tile = fab.tile(0);
  if (!tile.load_program(must_assemble(hman_source(lay)))) {
    result.status = Status::error("hman program exceeds the tile memories");
    return result;
  }
  if (!tile.patch_data(hman_patches(lay, prev_dc))) {
    result.status = Status::error("hman table patches out of range");
    return result;
  }
  for (int i = 0; i < 64; ++i) {
    tile.set_dmem(lay.zz + i, from_signed(zz[static_cast<std::size_t>(i)]));
  }
  tile.restart();
  const auto run = fab.run(10'000'000);
  if (!run.ok()) {
    result.status = Status::errorf(
        "hman run failed: %s",
        run.faults.empty() ? "cycle budget exceeded"
                           : run.faults.front().describe().c_str());
    return result;
  }
  result.cycles = run.cycles;

  // Unpack the 24-bit chunks plus the residual tail into a bit string.
  const auto words = static_cast<int>(to_signed(tile.dmem(lay.out_count)));
  for (int w = 0; w < words; ++w) {
    const Word chunk = tile.dmem(lay.out + w);
    for (int b = 23; b >= 0; --b) {
      result.bits.push_back(static_cast<std::uint8_t>((chunk >> b) & 1));
    }
  }
  const auto tail = tile.dmem(lay.acc_out);
  const auto tail_bits = static_cast<int>(to_signed(tile.dmem(lay.nbits_out)));
  for (int b = tail_bits - 1; b >= 0; --b) {
    result.bits.push_back(static_cast<std::uint8_t>((tail >> b) & 1));
  }
  result.status = Status();
  return result;
}

mapping::ProgramLibrary jpeg_program_library(const std::array<int, 64>& quant) {
  const JpegLayout lay;
  mapping::ProgramLibrary lib;
  {
    mapping::CompiledProcess shift;
    shift.program = must_assemble(shift_source(lay));
    shift.in_base = lay.x;
    shift.out_base = lay.x;
    lib[0] = std::move(shift);
  }
  {
    mapping::CompiledProcess dct;
    dct.program = must_assemble(dct_source(lay));
    dct.constants = basis_patches(lay);
    dct.in_base = lay.x;
    dct.out_base = lay.x;
    lib[1] = std::move(dct);
  }
  {
    mapping::CompiledProcess quantize;
    quantize.program = must_assemble(quantize_source(lay));
    quantize.constants = recip_patches(lay, quant);
    quantize.in_base = lay.x;
    quantize.out_base = lay.x;
    lib[2] = std::move(quantize);
  }
  {
    mapping::CompiledProcess zigzag;
    zigzag.program = must_assemble(zigzag_source(lay));
    zigzag.in_base = lay.x;
    zigzag.out_base = lay.t;
    lib[3] = std::move(zigzag);
  }
  return lib;
}

procnet::ProcessNetwork jpeg_transform_pipeline() {
  const auto cycles = measure_jpeg_kernels();
  std::vector<procnet::Process> procs;
  procs.push_back({"shift", 4 + 1, 0, 0, 0, cycles.shift, 1, true});
  procs.push_back({"DCT", 50, 64, 10, 0, cycles.dct, 1, true});
  procs.push_back({"Quantize", 9, 64, 1, 0, cycles.quantize, 1, true});
  procs.push_back({"Zigzag", 65, 0, 0, 0, cycles.zigzag, 1, true});
  return procnet::ProcessNetwork::pipeline(std::move(procs), 64);
}

FabricStreamResult encode_blocks_on_fabric_stream(
    const std::vector<IntBlock>& blocks, const std::array<int, 64>& quant) {
  FabricStreamResult result;
  const JpegLayout lay;
  constexpr int kStages = 4;

  // Inbox prologue: copy the double-buffered P inbox into X.
  std::vector<std::pair<int, int>> inbox_moves;
  inbox_moves.reserve(64);
  for (int i = 0; i < 64; ++i) inbox_moves.emplace_back(lay.p + i, lay.x + i);
  const std::string prologue =
      strip_halt(fft::copy_straight_source(inbox_moves, /*remote=*/false));

  const std::string srcs[kStages] = {
      prologue + strip_halt(shift_source(lay)) +
          send_block_source(lay, lay.x, lay.p),
      prologue + strip_halt(dct_source(lay)) +
          send_block_source(lay, lay.x, lay.p),
      prologue + strip_halt(quantize_source(lay)) +
          send_block_source(lay, lay.x, lay.p),
      prologue + zigzag_source(lay),
  };

  fabric::Fabric fab(1, kStages);
  for (int t = 0; t + 1 < kStages; ++t) {
    fab.links().set_output(t, Direction::kEast);
  }
  for (int t = 0; t < kStages; ++t) {
    if (!fab.tile(t).load_program(must_assemble(srcs[static_cast<std::size_t>(t)]))) {
      // Cannot happen (program sizes are asserted in tests).
      result.status = Status::errorf("stage %d program too large", t);
      return result;
    }
  }
  fab.tile(1).patch_data(basis_patches(lay));
  fab.tile(2).patch_data(recip_patches(lay, quant));

  // Beats: in beat b tile t works on block b - t.  The pipe drains after
  // blocks.size() + kStages - 1 beats.
  const int n_blocks = static_cast<int>(blocks.size());
  const int n_beats = n_blocks + kStages - 1;
  result.zigzagged.reserve(static_cast<std::size_t>(n_blocks));
  for (int beat = 0; beat < n_beats; ++beat) {
    // Feed the next raw block into tile 0's inbox.
    if (beat < n_blocks) {
      auto& t0 = fab.tile(0);
      for (int i = 0; i < 64; ++i) {
        t0.set_dmem(lay.p + i,
                    from_signed(blocks[static_cast<std::size_t>(beat)]
                                      [static_cast<std::size_t>(i)]));
      }
    }
    // Restart exactly the stages that hold a live block this beat.
    for (int t = 0; t < kStages; ++t) {
      const int block = beat - t;
      if (block >= 0 && block < n_blocks) fab.tile(t).restart();
    }
    const auto run = fab.run(10'000'000);
    result.beat_cycles.push_back(run.cycles);
    if (!run.ok()) {
      result.faults = run.faults;
      result.status = Status::errorf(
          "beat %d failed: %s", beat,
          run.faults.empty() ? "cycle budget exceeded"
                             : run.faults.front().describe().c_str());
      return result;
    }
    // Collect the drained block from the zigzag tile.
    const int done = beat - (kStages - 1);
    if (done >= 0 && done < n_blocks) {
      IntBlock out{};
      for (int i = 0; i < 64; ++i) {
        out[static_cast<std::size_t>(i)] =
            static_cast<int>(to_signed(fab.tile(kStages - 1).dmem(lay.t + i)));
      }
      result.zigzagged.push_back(out);
    }
  }

  // Steady-state beat: median of the fully-overlapped beats.
  if (n_beats >= 2 * kStages) {
    std::vector<std::int64_t> steady(
        result.beat_cycles.begin() + (kStages - 1),
        result.beat_cycles.end() - (kStages - 1));
    std::sort(steady.begin(), steady.end());
    result.steady_ii_cycles = steady[steady.size() / 2];
  } else if (!result.beat_cycles.empty()) {
    result.steady_ii_cycles =
        *std::max_element(result.beat_cycles.begin(), result.beat_cycles.end());
  }
  result.status = Status();
  return result;
}

ResilientJpegArtifacts make_resilient_artifacts(
    const std::array<int, 64>& quant, int rows, int cols) {
  ResilientJpegArtifacts art;
  art.net = jpeg_transform_pipeline();
  art.library = jpeg_program_library(quant);
  art.binding.groups = {{{0}, 1}, {{1}, 1}, {{2}, 1}, {{3}, 1}};
  art.placement = mapping::place(art.binding, rows, cols,
                                 mapping::PlacementStrategy::kSnake);
  return art;
}

ResilientBlockResult encode_block_resilient_on(
    fabric::Fabric& fab, const ResilientJpegArtifacts& art,
    const IntBlock& raw, const faults::FaultPlan& plan,
    const faults::RecoveryPolicy& policy) {
  ResilientBlockResult result;
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{50.0});
  faults::FaultInjector injector(plan);
  faults::RecoveryManager manager(fab, ctrl,
                                  plan.empty() ? nullptr : &injector, policy);

  std::vector<Word> input;
  input.reserve(raw.size());
  for (const int v : raw) input.push_back(from_signed(v));
  result.report = manager.run_item(art.net, art.binding, art.placement,
                                   art.library, input);
  if (result.report.ok) {
    for (std::size_t i = 0; i < result.zigzagged.size(); ++i) {
      result.zigzagged[i] = static_cast<int>(to_signed(result.report.output[i]));
    }
  }
  return result;
}

ResilientBlockResult encode_block_resilient(const IntBlock& raw,
                                            const std::array<int, 64>& quant,
                                            const faults::FaultPlan& plan,
                                            const faults::RecoveryPolicy& policy,
                                            int rows, int cols) {
  const auto art = make_resilient_artifacts(quant, rows, cols);
  fabric::Fabric fab(rows, cols);
  return encode_block_resilient_on(fab, art, raw, plan, policy);
}

}  // namespace cgra::jpeg

// JPEG entropy-coded-segment bit I/O with 0xFF byte stuffing.
#pragma once

#include <cstdint>
#include <vector>

namespace cgra::jpeg {

/// MSB-first bit writer; emits 0x00 after every 0xFF data byte.
class BitWriter {
 public:
  /// Append the low `bits` bits of `value` (MSB first), bits in [0, 24].
  void put(std::uint32_t value, int bits);

  /// Pad the final partial byte with 1-bits and return the stream.
  std::vector<std::uint8_t> finish();

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }

 private:
  void flush_byte();
  std::vector<std::uint8_t> bytes_;
  std::uint32_t acc_ = 0;
  int acc_bits_ = 0;
  std::size_t bit_count_ = 0;
};

/// MSB-first bit reader that undoes 0xFF00 stuffing.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  /// Read `bits` bits; returns -1 past the end of the segment.
  std::int32_t get(int bits);
  /// Read one bit (-1 at end).
  std::int32_t get_bit();

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  int bit_ = 0;  ///< Next bit within data_[pos_], 0 = MSB.
};

}  // namespace cgra::jpeg

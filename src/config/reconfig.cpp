#include "config/reconfig.hpp"

namespace cgra::config {

TransitionReport ReconfigController::apply(fabric::Fabric& fabric,
                                           const EpochConfig& next) {
  TransitionReport report;
  report.start_cycle = fabric.now();

  // --- link rewiring ---
  report.links_changed =
      interconnect::LinkConfig::changed_links(fabric.links(), next.links);
  report.link_ns = link_cost_.links_ns(report.links_changed);
  fabric.links() = next.links;

  // --- serial ICAP streaming, tile by tile ---
  // The link rewiring occupies the ICAP first (it is itself a partial
  // bitstream), then each tile's payload streams in ascending tile order.
  Nanoseconds icap_free_ns = cycles_to_ns(fabric.now()) + report.link_ns;
  for (const auto& [tile_index, update] : next.tiles) {
    const Nanoseconds inst_ns = icap_.inst_reload_ns(update.inst_words());
    const Nanoseconds data_ns = icap_.data_reload_ns(update.data_words());
    report.inst_reload_ns += inst_ns;
    report.data_reload_ns += data_ns;

    const Nanoseconds done_ns = icap_free_ns + inst_ns + data_ns;
    icap_free_ns = done_ns;

    auto& tile = fabric.tile(tile_index);
    if (update.reload_program) {
      tile.load_program(update.program);
    }
    if (!update.patches.empty()) {
      tile.patch_data(update.patches);
    }
    if (update.restart) {
      tile.restart();
    }
    tile.stall_until(ns_to_cycles_ceil(done_ns));
  }

  report.complete_cycle = ns_to_cycles_ceil(icap_free_ns);
  report.icap_busy_cycles = report.complete_cycle - report.start_cycle;

  if (!partial_) {
    // Single-context baseline: the whole array stalls until the last byte
    // of the transition has streamed in.
    for (int t = 0; t < fabric.tile_count(); ++t) {
      fabric.tile(t).stall_until(report.complete_cycle);
    }
  }
  return report;
}

ScheduleResult run_schedule(fabric::Fabric& fabric, ReconfigController& ctrl,
                            const std::vector<EpochConfig>& epochs,
                            std::int64_t max_cycles_per_epoch) {
  ScheduleResult result;
  for (const auto& epoch : epochs) {
    const TransitionReport report = ctrl.apply(fabric, epoch);
    result.timeline.reconfig_ns += report.total_ns();
    result.timeline.transitions.push_back(report);

    const fabric::RunResult run = fabric.run(max_cycles_per_epoch);
    result.timeline.epoch_compute_ns += run.elapsed_ns();
    if (!run.faults.empty()) {
      result.faults.insert(result.faults.end(), run.faults.begin(),
                           run.faults.end());
      result.ok = false;
      break;
    }
    if (!run.all_halted) {
      result.ok = false;
      break;
    }
  }
  return result;
}

}  // namespace cgra::config

#include "config/reconfig.hpp"

#include <cmath>
#include <string>

namespace cgra::config {

namespace {

/// True when the tile's memories hold exactly what `update` intended.
bool readback_matches(const fabric::Tile& tile, const TileUpdate& update) {
  if (update.reload_program) {
    if (tile.code_size() != static_cast<int>(update.program.code.size())) {
      return false;
    }
    for (int i = 0; i < tile.code_size(); ++i) {
      const isa::Instruction* got = tile.instruction_at(i);
      if (got == nullptr ||
          !(*got == update.program.code[static_cast<std::size_t>(i)])) {
        return false;
      }
    }
    for (const auto& patch : update.program.data) {
      if (tile.dmem(patch.addr) != truncate_word(patch.value)) return false;
    }
  }
  for (const auto& patch : update.patches) {
    if (tile.dmem(patch.addr) != truncate_word(patch.value)) return false;
  }
  return true;
}

void record_recovery(fabric::Fabric& fabric, obs::SpanTimeline* spans,
                     int tile, fabric::RecoveryAction action, int attempt) {
  if (spans != nullptr) {
    spans->instant(
        std::string("recovery:") + fabric::recovery_action_name(action),
        "recovery", obs::tile_track(tile), cycles_to_ns(fabric.now()),
        {{"tile", std::to_string(tile), true},
         {"attempt", std::to_string(attempt), true}});
  }
  if (fabric.tracer() == nullptr) return;
  fabric::TraceEvent ev;
  ev.cycle = fabric.now();
  ev.kind = fabric::TraceEventKind::kRecovery;
  ev.tile = tile;
  ev.action = action;
  ev.attempt = attempt;
  fabric.tracer()->record(ev);
}

}  // namespace

Nanoseconds ReconfigController::stream_tile(fabric::Fabric& fabric,
                                            int tile_index,
                                            const TileUpdate& update,
                                            TransitionReport& report) {
  const Nanoseconds inst_ns = icap_.inst_reload_ns(update.inst_words());
  const Nanoseconds data_ns = icap_.data_reload_ns(update.data_words());
  const Nanoseconds payload_ns = inst_ns + data_ns;
  report.inst_reload_ns += inst_ns;
  report.data_reload_ns += data_ns;

  auto& tile = fabric.tile(tile_index);
  const IcapFaultOptions& opts = fault_options_;

  // Zero-fault fast path: no payload copies, no verification.
  if (opts.tap == nullptr && !opts.verify_readback) {
    if (update.reload_program) tile.load_program(update.program);
    if (!update.patches.empty()) tile.patch_data(update.patches);
    return payload_ns;
  }

  const Nanoseconds verify_ns =
      opts.verify_readback ? payload_ns * opts.verify_cost_factor : 0.0;
  Nanoseconds occupied = 0.0;
  for (int attempt = 0;; ++attempt) {
    // The tap sees (and may corrupt) a copy of the words in flight; the
    // pristine `update` stays available for verification and re-streaming.
    isa::Program streamed = update.program;
    std::vector<isa::DataPatch> patches = update.patches;
    if (opts.tap != nullptr) {
      opts.tap->on_stream(tile_index, attempt, streamed, patches);
    }
    if (update.reload_program) tile.load_program(streamed);
    if (!patches.empty()) tile.patch_data(patches);

    if (attempt == 0) {
      occupied += payload_ns + verify_ns;
      report.verify_ns += verify_ns;
    } else {
      const Nanoseconds backoff =
          opts.retry_backoff_ns *
          std::pow(opts.backoff_factor, static_cast<double>(attempt - 1));
      occupied += backoff + payload_ns + verify_ns;
      report.retry_ns += backoff + payload_ns + verify_ns;
      report.icap_retries += 1;
    }

    if (!opts.verify_readback || readback_matches(tile, update)) break;
    if (attempt >= opts.max_retries) {
      // Retry budget exhausted: latch the corruption on the tile so the
      // schedule runner (and the recovery layer above it) can see it.
      tile.inject_fault(FaultKind::kIcapCorruption, tile_index, fabric.now());
      Fault f;
      f.kind = FaultKind::kIcapCorruption;
      f.tile = tile_index;
      f.cycle = fabric.now();
      report.detected.push_back(f);
      record_recovery(fabric, spans_, tile_index,
                      fabric::RecoveryAction::kGiveUp, attempt);
      break;
    }
    record_recovery(fabric, spans_, tile_index,
                    fabric::RecoveryAction::kIcapRetry, attempt + 1);
  }
  return occupied;
}

TransitionReport ReconfigController::apply(fabric::Fabric& fabric,
                                           const EpochConfig& next) {
  TransitionReport report;
  report.name = next.name;
  report.start_cycle = fabric.now();
  const Nanoseconds start_ns = cycles_to_ns(report.start_cycle);

  // The enclosing transition span is opened with begin() so it precedes the
  // per-tile stream spans in recording order — Chrome/Perfetto nest
  // same-timestamp events by insertion order.
  obs::SpanTimeline::SpanId transition_span = 0;
  if (spans_ != nullptr) {
    transition_span = spans_->begin("reconfig:" + next.name, "reconfig",
                                    obs::kTrackIcap, start_ns);
  }

  // --- link rewiring ---
  report.links_changed =
      interconnect::LinkConfig::changed_links(fabric.links(), next.links);
  report.link_ns = link_cost_.links_ns(report.links_changed);
  fabric.links() = next.links;
  if (spans_ != nullptr && report.links_changed > 0) {
    spans_->complete(
        "rewire:" + next.name, "links", obs::kTrackLinks, start_ns,
        report.link_ns,
        {{"links_changed", std::to_string(report.links_changed), true}});
  }

  // --- serial ICAP streaming, tile by tile ---
  // The link rewiring occupies the ICAP first (it is itself a partial
  // bitstream), then each tile's payload streams in ascending tile order.
  Nanoseconds icap_free_ns = cycles_to_ns(fabric.now()) + report.link_ns;
  for (const auto& [tile_index, update] : next.tiles) {
    const Nanoseconds stream_start_ns = icap_free_ns;
    const Nanoseconds occupied =
        stream_tile(fabric, tile_index, update, report);
    icap_free_ns += occupied;
    if (spans_ != nullptr && occupied > 0.0) {
      spans_->complete(
          "stream:t" + std::to_string(tile_index), "icap", obs::kTrackIcap,
          stream_start_ns, occupied,
          {{"tile", std::to_string(tile_index), true},
           {"inst_words", std::to_string(update.inst_words()), true},
           {"data_words", std::to_string(update.data_words()), true}});
    }

    auto& tile = fabric.tile(tile_index);
    // A tile whose payload failed verification is NOT restarted into the
    // corrupted configuration: restart() would clear the latched fault and
    // run garbage.  It stays faulted for the recovery layer to handle.
    if (update.restart && !tile.faulted()) {
      tile.restart();
    }
    tile.stall_until(ns_to_cycles_ceil(icap_free_ns));
    if (spans_ != nullptr) {
      const Nanoseconds stall_end_ns =
          cycles_to_ns(ns_to_cycles_ceil(icap_free_ns));
      if (stall_end_ns > start_ns) {
        spans_->complete("stall:t" + std::to_string(tile_index), "stall",
                         obs::tile_track(tile_index), start_ns,
                         stall_end_ns - start_ns);
      }
    }
  }

  report.complete_cycle = ns_to_cycles_ceil(icap_free_ns);
  report.icap_busy_cycles = report.complete_cycle - report.start_cycle;
  if (spans_ != nullptr) {
    spans_->end(transition_span, cycles_to_ns(report.complete_cycle));
  }

  if (!partial_) {
    // Single-context baseline: the whole array stalls until the last byte
    // of the transition has streamed in.
    for (int t = 0; t < fabric.tile_count(); ++t) {
      fabric.tile(t).stall_until(report.complete_cycle);
    }
  }
  return report;
}

TransitionReport ReconfigController::scrub_tile(fabric::Fabric& fabric,
                                                const EpochConfig& epoch,
                                                int tile) {
  TransitionReport report;
  report.name = "scrub:" + epoch.name;
  report.start_cycle = fabric.now();
  const auto it = epoch.tiles.find(tile);
  if (it == epoch.tiles.end()) {
    report.complete_cycle = report.start_cycle;
    return report;
  }
  const Nanoseconds occupied =
      stream_tile(fabric, tile, it->second, report);
  const Nanoseconds done_ns = cycles_to_ns(fabric.now()) + occupied;
  auto& t = fabric.tile(tile);
  if (it->second.restart && !t.faulted()) t.restart();
  t.stall_until(ns_to_cycles_ceil(done_ns));
  report.complete_cycle = ns_to_cycles_ceil(done_ns);
  report.icap_busy_cycles = report.complete_cycle - report.start_cycle;
  if (spans_ != nullptr && occupied > 0.0) {
    spans_->complete("scrub:t" + std::to_string(tile), "icap", obs::kTrackIcap,
                     cycles_to_ns(report.start_cycle), occupied,
                     {{"tile", std::to_string(tile), true}});
  }
  return report;
}

ScheduleResult run_schedule(fabric::Fabric& fabric, ReconfigController& ctrl,
                            const std::vector<EpochConfig>& epochs,
                            std::int64_t max_cycles_per_epoch) {
  ScheduleResult result;
  obs::SpanTimeline* spans = ctrl.timeline();
  for (const auto& epoch : epochs) {
    const TransitionReport report = ctrl.apply(fabric, epoch);
    result.timeline.reconfig_ns += report.total_ns();
    result.timeline.transitions.push_back(report);

    const Nanoseconds epoch_start_ns = cycles_to_ns(fabric.now());
    const fabric::RunResult run = fabric.run(max_cycles_per_epoch);
    result.timeline.epoch_compute_ns += run.elapsed_ns();
    result.timeline.epoch_cycles.push_back(run.cycles);
    if (spans != nullptr) {
      spans->complete(epoch.name, "epoch", obs::kTrackEpochs, epoch_start_ns,
                      run.elapsed_ns(),
                      {{"cycles", std::to_string(run.cycles), true}});
    }
    if (!run.faults.empty()) {
      result.faults.insert(result.faults.end(), run.faults.begin(),
                           run.faults.end());
      result.ok = false;
      break;
    }
    if (!run.all_halted) {
      result.ok = false;
      break;
    }
  }
  return result;
}

}  // namespace cgra::config

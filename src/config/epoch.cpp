#include "config/epoch.hpp"

// EpochConfig is a plain aggregate; this TU anchors the library archive.
namespace cgra::config {}

// Builds an obs::ProfileReport from an executed Fabric + Timeline pair.
//
// Lives in the config layer (not obs) because it reads both sides of the
// dependency edge: fabric TileStats / link state on one hand and the
// Equation-1 Timeline of the reconfiguration controller on the other.
// obs stays a leaf library.
#pragma once

#include "config/reconfig.hpp"
#include "fabric/fabric.hpp"
#include "obs/profile.hpp"

namespace cgra::config {

/// Assemble the full profile of a completed run.
///
/// `total_cycles` comes from the fabric's cycle counter and `total_ns` from
/// `timeline.total_ns()`; on a fabric that was fresh when the schedule
/// started the two agree exactly (the reconciliation invariant checked by
/// ProfileReport::reconcile()).  Per-tile rows come from TileStats — whose
/// own invariant guarantees retired + stalled + idle == total_cycles — and
/// the ICAP section aggregates the timeline's TransitionReports.
obs::ProfileReport build_profile(const fabric::Fabric& fabric,
                                 const Timeline& timeline);

}  // namespace cgra::config

#include "config/profiler.hpp"

namespace cgra::config {

obs::ProfileReport build_profile(const fabric::Fabric& fabric,
                                 const Timeline& timeline) {
  obs::ProfileReport report;
  report.total_cycles = fabric.now();
  report.total_ns = timeline.total_ns();
  report.reconfig_ns = timeline.reconfig_ns;

  const double total_cycles = static_cast<double>(report.total_cycles);
  for (int i = 0; i < fabric.tile_count(); ++i) {
    const auto& stats = fabric.tile(i).stats();
    obs::TileProfile tp;
    tp.tile = i;
    tp.retired = stats.instructions;
    tp.stalled = stats.cycles_stalled;
    tp.idle = stats.cycles_halted;
    tp.remote_writes = stats.remote_writes;
    tp.faulted = fabric.tile(i).faulted();
    report.tiles.push_back(tp);

    const auto dst = fabric.links().target(i);
    if (stats.remote_writes > 0 || dst.has_value()) {
      obs::LinkProfile lp;
      lp.src_tile = i;
      lp.dst_tile = dst.value_or(-1);
      lp.words = stats.remote_writes;
      lp.occupancy = report.total_cycles > 0
                         ? static_cast<double>(lp.words) / total_cycles
                         : 0.0;
      // Sustained bandwidth of 48-bit words over the simulated wall time:
      // bytes / ns == GB/s, so * 1000 for MB/s.
      lp.bandwidth_mb_s =
          report.total_ns > 0.0
              ? static_cast<double>(lp.words) * (kWordBits / 8.0) /
                    report.total_ns * 1000.0
              : 0.0;
      report.links.push_back(lp);
    }
  }

  report.icap.transitions = static_cast<int>(timeline.transitions.size());
  for (const auto& t : timeline.transitions) {
    report.icap.busy_cycles += t.icap_busy_cycles;
    report.icap.link_ns += t.link_ns;
    report.icap.inst_reload_ns += t.inst_reload_ns;
    report.icap.data_reload_ns += t.data_reload_ns;
    report.icap.verify_ns += t.verify_ns;
    report.icap.retry_ns += t.retry_ns;
    report.icap.retries += t.icap_retries;
  }
  report.icap.busy_fraction =
      report.total_cycles > 0
          ? static_cast<double>(report.icap.busy_cycles) / total_cycles
          : 0.0;
  return report;
}

}  // namespace cgra::config

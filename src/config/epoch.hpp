// Epoch configurations.
//
// An application's lifetime is a sequence of epochs; each epoch is defined
// by a configuration C_i: the active links between tiles and the programs /
// data contents of the tiles (Sec. 2 of the paper).  A transition C_i -> C_j
// reloads only what differs: changed links (cost L each) and the
// instruction/data words of reprogrammed tiles (ICAP at 180 MB/s).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "interconnect/link.hpp"
#include "isa/program.hpp"

namespace cgra::config {

/// What one tile receives at an epoch boundary.
struct TileUpdate {
  /// Full reprogram (replaces instruction memory, applies its data patches).
  /// Empty code + empty data means "no instruction reload".
  isa::Program program;
  bool reload_program = false;

  /// Additional data-only patches (e.g. new twiddle factors, new copy
  /// source/destination variables).
  std::vector<isa::DataPatch> patches;

  /// Restart the tile's PC even if nothing was reloaded (reusing resident
  /// instructions for the next epoch — the "pinned" case).
  bool restart = true;

  /// Reconfiguration payload in ICAP words.
  [[nodiscard]] int inst_words() const noexcept {
    return reload_program ? program.inst_words() : 0;
  }
  [[nodiscard]] int data_words() const noexcept {
    return (reload_program ? program.data_words() : 0) +
           static_cast<int>(patches.size());
  }
};

/// One epoch: link configuration plus per-tile updates.
struct EpochConfig {
  std::string name;
  interconnect::LinkConfig links;
  std::map<int, TileUpdate> tiles;  ///< Keyed by linear tile index.
};

}  // namespace cgra::config

// Partial-reconfiguration controller.
//
// Models the MicroBlaze + ICAP runtime management system: the ICAP is a
// single serial channel (180 MB/s); reconfiguring tile set S stalls only S,
// so computation in tiles outside S overlaps with reconfiguration — the
// paper's central mechanism for hiding context-switch overhead.
//
// The controller both *performs* the reconfiguration on a Fabric (loading
// programs, patching data, rewiring links, stalling the affected tiles for
// the modelled number of cycles) and *reports* the cost breakdown so the
// analytic models can be validated against the executed timeline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/timing.hpp"
#include "config/epoch.hpp"
#include "fabric/fabric.hpp"

namespace cgra::config {

/// Cost breakdown of one epoch transition.
struct TransitionReport {
  int links_changed = 0;
  Nanoseconds link_ns = 0.0;        ///< links_changed * L.
  Nanoseconds inst_reload_ns = 0.0; ///< Instruction words through the ICAP.
  Nanoseconds data_reload_ns = 0.0; ///< Data words through the ICAP.
  std::int64_t icap_busy_cycles = 0;  ///< Serial ICAP occupancy in cycles.
  std::int64_t start_cycle = 0;     ///< Fabric cycle the transition began.
  std::int64_t complete_cycle = 0;  ///< Cycle all affected tiles may resume.

  [[nodiscard]] Nanoseconds total_ns() const noexcept {
    return link_ns + inst_reload_ns + data_reload_ns;
  }
};

/// Aggregated Equation-1 accounting over a run.
///
/// `epoch_compute_ns` is the *executed* wall time of the epochs, measured on
/// the fabric clock.  Because affected tiles are stalled while their payload
/// streams through the ICAP, any reconfiguration that could NOT be hidden
/// behind other tiles' computation is already included in it.  The analytic
/// reconfiguration cost (term B of Eq. 1, what a non-overlapped design would
/// pay) is reported separately in `reconfig_ns` so the hidden fraction can
/// be quantified: hidden = reconfig_ns - (epoch_compute_ns - pure compute).
struct Timeline {
  Nanoseconds epoch_compute_ns = 0.0;  ///< Executed time incl. visible stalls.
  Nanoseconds reconfig_ns = 0.0;       ///< Analytic term B (links + ICAP).
  std::vector<TransitionReport> transitions;

  /// Executed wall time of the whole schedule.
  [[nodiscard]] Nanoseconds total_ns() const noexcept {
    return epoch_compute_ns;
  }
};

/// Applies epoch transitions to a fabric.
class ReconfigController {
 public:
  ReconfigController(IcapModel icap, interconnect::LinkCostModel link_cost,
                     bool partial_reconfiguration = true)
      : icap_(icap),
        link_cost_(link_cost),
        partial_(partial_reconfiguration) {}

  /// Apply `next` to `fabric` at the fabric's current cycle.
  ///
  /// * Link changes are counted against the previous configuration.
  /// * Each updated tile is reloaded through the serial ICAP in tile order;
  ///   the tile is stalled until its own payload (plus its share of the
  ///   link rewiring) has streamed through.
  /// * Tiles not mentioned in `next` keep running — partial
  ///   reconfiguration.  With `partial_reconfiguration = false` the
  ///   controller instead stalls the whole array for the duration of the
  ///   transition (the single-context baseline the paper argues against);
  ///   the ablation bench quantifies the difference.
  TransitionReport apply(fabric::Fabric& fabric, const EpochConfig& next);

  [[nodiscard]] bool partial() const noexcept { return partial_; }

  [[nodiscard]] const IcapModel& icap() const noexcept { return icap_; }
  [[nodiscard]] const interconnect::LinkCostModel& link_cost() const noexcept {
    return link_cost_;
  }

 private:
  IcapModel icap_;
  interconnect::LinkCostModel link_cost_;
  bool partial_ = true;
};

/// Convenience driver: run a sequence of epochs to completion on a fabric,
/// applying transitions between them and accumulating the Equation-1 terms.
///
/// Each epoch runs until all tiles halt (or `max_cycles_per_epoch` elapses,
/// which is reported as a fault-free but incomplete run via `ok=false`).
struct ScheduleResult {
  Timeline timeline;
  bool ok = true;
  std::vector<Fault> faults;
};

ScheduleResult run_schedule(fabric::Fabric& fabric, ReconfigController& ctrl,
                            const std::vector<EpochConfig>& epochs,
                            std::int64_t max_cycles_per_epoch);

}  // namespace cgra::config

// Partial-reconfiguration controller.
//
// Models the MicroBlaze + ICAP runtime management system: the ICAP is a
// single serial channel (180 MB/s); reconfiguring tile set S stalls only S,
// so computation in tiles outside S overlaps with reconfiguration — the
// paper's central mechanism for hiding context-switch overhead.
//
// The controller both *performs* the reconfiguration on a Fabric (loading
// programs, patching data, rewiring links, stalling the affected tiles for
// the modelled number of cycles) and *reports* the cost breakdown so the
// analytic models can be validated against the executed timeline.
//
// Fault handling (docs/FAULTS.md): an IcapTap lets the fault-injection
// layer corrupt words in flight; with readback-verify enabled the
// controller compares each tile's memories against the intended payload
// after streaming and re-streams (scrub + retry with backoff) up to a
// bounded number of times, accounting every retry into the transition cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "config/epoch.hpp"
#include "fabric/fabric.hpp"
#include "obs/span.hpp"

namespace cgra::config {

/// Observer/mutator of ICAP payloads in flight.  The fault-injection layer
/// implements this to model corrupted transfers; the controller calls it
/// once per stream attempt of each tile payload.
class IcapTap {
 public:
  virtual ~IcapTap() = default;
  /// May mutate the words streamed for `tile`.  `attempt` is 0 for the
  /// first stream and increments on every retry of the same payload.
  virtual void on_stream(int tile, int attempt, isa::Program& program,
                         std::vector<isa::DataPatch>& patches) = 0;
};

/// Fault-path knobs of the controller.  All off by default: the zero-fault
/// configuration streams exactly as the paper models it.
struct IcapFaultOptions {
  IcapTap* tap = nullptr;        ///< In-flight corruption hook (not owned).
  bool verify_readback = false;  ///< Compare memories against intent.
  /// Extra ICAP occupancy of the readback pass, as a fraction of the
  /// payload stream time (1.0 = full readback at ICAP bandwidth).
  double verify_cost_factor = 1.0;
  int max_retries = 0;           ///< Re-streams allowed after a bad verify.
  /// Idle scrub/settle time before retry r is backoff_ns * factor^(r-1).
  Nanoseconds retry_backoff_ns = 0.0;
  double backoff_factor = 2.0;
};

/// Cost breakdown of one epoch transition.
struct TransitionReport {
  std::string name;  ///< Destination epoch (EpochConfig::name).
  int links_changed = 0;
  Nanoseconds link_ns = 0.0;        ///< links_changed * L.
  Nanoseconds inst_reload_ns = 0.0; ///< Instruction words through the ICAP.
  Nanoseconds data_reload_ns = 0.0; ///< Data words through the ICAP.
  Nanoseconds verify_ns = 0.0;      ///< Readback-verify ICAP occupancy.
  Nanoseconds retry_ns = 0.0;       ///< Re-streams + backoff after bad
                                    ///< verifies (includes their verify).
  int icap_retries = 0;             ///< Payload re-streams performed.
  std::vector<Fault> detected;      ///< kIcapCorruption faults latched.
  std::int64_t icap_busy_cycles = 0;  ///< Serial ICAP occupancy in cycles.
  std::int64_t start_cycle = 0;     ///< Fabric cycle the transition began.
  std::int64_t complete_cycle = 0;  ///< Cycle all affected tiles may resume.

  [[nodiscard]] Nanoseconds total_ns() const noexcept {
    return link_ns + inst_reload_ns + data_reload_ns + verify_ns + retry_ns;
  }
};

/// Aggregated Equation-1 accounting over a run.
///
/// `epoch_compute_ns` is the *executed* wall time of the epochs, measured on
/// the fabric clock.  Because affected tiles are stalled while their payload
/// streams through the ICAP, any reconfiguration that could NOT be hidden
/// behind other tiles' computation is already included in it.  The analytic
/// reconfiguration cost (term B of Eq. 1, what a non-overlapped design would
/// pay) is reported separately in `reconfig_ns` so the hidden fraction can
/// be quantified: hidden = reconfig_ns - (epoch_compute_ns - pure compute).
/// Fault recovery (retries, rollbacks, re-streams) also lands in
/// `reconfig_ns` — degraded-mode cost is quantified, never hidden.
struct Timeline {
  Nanoseconds epoch_compute_ns = 0.0;  ///< Executed time incl. visible stalls.
  Nanoseconds reconfig_ns = 0.0;       ///< Analytic term B (links + ICAP).
  std::vector<TransitionReport> transitions;
  /// Executed cycles of each epoch, parallel to `transitions` (filled by
  /// run_schedule and the epoch-pipeline app drivers; the profiler uses it
  /// for per-epoch drift bucketing).
  std::vector<std::int64_t> epoch_cycles;

  /// Executed wall time of the whole schedule.
  [[nodiscard]] Nanoseconds total_ns() const noexcept {
    return epoch_compute_ns;
  }
};

/// Applies epoch transitions to a fabric.
class ReconfigController {
 public:
  ReconfigController(IcapModel icap, interconnect::LinkCostModel link_cost,
                     bool partial_reconfiguration = true)
      : icap_(icap),
        link_cost_(link_cost),
        partial_(partial_reconfiguration) {}

  /// Apply `next` to `fabric` at the fabric's current cycle.
  ///
  /// * Link changes are counted against the previous configuration.
  /// * Each updated tile is reloaded through the serial ICAP in tile order;
  ///   the tile is stalled until its own payload (plus its share of the
  ///   link rewiring) has streamed through.
  /// * Tiles not mentioned in `next` keep running — partial
  ///   reconfiguration.  With `partial_reconfiguration = false` the
  ///   controller instead stalls the whole array for the duration of the
  ///   transition (the single-context baseline the paper argues against);
  ///   the ablation bench quantifies the difference.
  /// * With fault options armed, each payload may be corrupted in flight,
  ///   verified by readback, and re-streamed up to the retry bound; an
  ///   exhausted bound latches kIcapCorruption on the tile.
  TransitionReport apply(fabric::Fabric& fabric, const EpochConfig& next);

  /// Re-stream the payload of a single tile of `epoch` (scrub).  Used by
  /// the recovery layer to repair suspected SEU corruption; pays the same
  /// ICAP costs as the original stream and returns the report.
  TransitionReport scrub_tile(fabric::Fabric& fabric, const EpochConfig& epoch,
                              int tile);

  [[nodiscard]] bool partial() const noexcept { return partial_; }

  [[nodiscard]] const IcapModel& icap() const noexcept { return icap_; }
  [[nodiscard]] const interconnect::LinkCostModel& link_cost() const noexcept {
    return link_cost_;
  }

  /// Arm (or disarm) the fault path.  Cheap to call; the zero-fault
  /// configuration pays nothing beyond a null check per updated tile.
  void set_fault_options(const IcapFaultOptions& options) noexcept {
    fault_options_ = options;
  }
  [[nodiscard]] const IcapFaultOptions& fault_options() const noexcept {
    return fault_options_;
  }

  /// Attach (or detach with nullptr) a span timeline; the controller does
  /// not own it.  With one attached, every apply()/scrub records spans on
  /// the ICAP / links / per-tile tracks (see obs/span.hpp).
  void attach_timeline(obs::SpanTimeline* spans) noexcept { spans_ = spans; }
  [[nodiscard]] obs::SpanTimeline* timeline() const noexcept { return spans_; }

 private:
  /// Stream one tile update (with tamper/verify/retry); returns the ns the
  /// payload occupied the ICAP and updates `report`.
  Nanoseconds stream_tile(fabric::Fabric& fabric, int tile_index,
                          const TileUpdate& update, TransitionReport& report);

  IcapModel icap_;
  interconnect::LinkCostModel link_cost_;
  bool partial_ = true;
  IcapFaultOptions fault_options_;
  obs::SpanTimeline* spans_ = nullptr;
};

/// Convenience driver: run a sequence of epochs to completion on a fabric,
/// applying transitions between them and accumulating the Equation-1 terms.
///
/// Each epoch runs until all tiles halt (or `max_cycles_per_epoch` elapses,
/// which is reported as a fault-free but incomplete run via `ok=false`).
struct ScheduleResult {
  Timeline timeline;
  bool ok = true;
  std::vector<Fault> faults;
};

ScheduleResult run_schedule(fabric::Fabric& fabric, ReconfigController& ctrl,
                            const std::vector<EpochConfig>& epochs,
                            std::int64_t max_cycles_per_epoch);

}  // namespace cgra::config

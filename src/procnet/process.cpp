#include "procnet/process.hpp"

// Process is a plain aggregate; this TU anchors the library archive.
namespace cgra::procnet {}

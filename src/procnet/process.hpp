// Annotated sequential processes.
//
// The mapping flow (Sec. 3.5) consumes a process network "annotated with
// some parameters for each process, viz., data memory and instruction memory
// usage and runtime".  Table 3 of the paper is exactly one of these
// annotation sets; our FFT and JPEG builders produce others by measuring
// their kernels on the cycle simulator.
#pragma once

#include <cstdint>
#include <string>

namespace cgra::procnet {

/// One sequential process with the paper's Table-3 annotation scheme.
struct Process {
  std::string name;

  /// Instruction-memory words the process occupies.
  int insts = 0;
  /// Fixed data loaded once per residency (Table 3 "data1").
  int data1 = 0;
  /// Temporaries needing no (re)initialisation (Table 3 "data2").
  int data2 = 0;
  /// Words reinitialised each activation (Table 3 "data3") — the per-context-
  /// switch ICAP payload when the process shares a tile.
  int data3 = 0;

  /// Execution time of one invocation, in fabric cycles.
  std::int64_t runtime_cycles = 0;

  /// Invocations per pipeline item (e.g. the JPEG sub-block DCT `dct` runs
  /// 4x per 8x8 block).  Default 1.
  int invocations_per_item = 1;

  /// Whether multiple tiles may be instantiated for this process to pipeline
  /// consecutive invocations (the paper replicates DCT this way).
  bool replicable = true;

  /// Total data-memory words the process needs resident.
  [[nodiscard]] int data_words() const noexcept {
    return data1 + data2 + data3;
  }
  /// Work per pipeline item in cycles.
  [[nodiscard]] std::int64_t work_cycles_per_item() const noexcept {
    return runtime_cycles * invocations_per_item;
  }
};

}  // namespace cgra::procnet

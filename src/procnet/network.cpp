#include "procnet/network.hpp"

namespace cgra::procnet {

int ProcessNetwork::add_process(Process p) {
  procs_.push_back(std::move(p));
  return static_cast<int>(procs_.size()) - 1;
}

bool ProcessNetwork::add_edge(int from, int to, int words) {
  if (from < 0 || from >= size() || to < 0 || to >= size() || from == to) {
    return false;
  }
  edges_.push_back(Edge{from, to, words});
  return true;
}

int ProcessNetwork::find(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (procs_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return -1;
}

std::int64_t ProcessNetwork::total_work_cycles() const {
  std::int64_t total = 0;
  for (const auto& p : procs_) total += p.work_cycles_per_item();
  return total;
}

Status ProcessNetwork::validate() const {
  if (procs_.empty()) return Status::error("network has no processes");
  for (const auto& e : edges_) {
    if (e.from < 0 || e.from >= size() || e.to < 0 || e.to >= size()) {
      return Status::error("edge references unknown process");
    }
    if (e.from == e.to) return Status::error("self-loop edge");
    if (e.words < 0) return Status::error("negative edge volume");
  }
  for (const auto& p : procs_) {
    if (p.runtime_cycles < 0) return Status::error("negative runtime");
    if (p.insts < 0 || p.data1 < 0 || p.data2 < 0 || p.data3 < 0) {
      return Status::error("negative memory annotation");
    }
    if (p.invocations_per_item <= 0) {
      return Status::error("invocations_per_item must be positive");
    }
  }
  return Status{};
}

std::vector<int> topological_order(const ProcessNetwork& net) {
  const int n = net.size();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const auto& e : net.edges()) ++indeg[static_cast<std::size_t>(e.to)];
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> done(static_cast<std::size_t>(n), false);
  for (;;) {
    int pick = -1;
    for (int i = 0; i < n; ++i) {
      if (!done[static_cast<std::size_t>(i)] &&
          indeg[static_cast<std::size_t>(i)] == 0) {
        pick = i;
        break;
      }
    }
    if (pick < 0) break;
    done[static_cast<std::size_t>(pick)] = true;
    order.push_back(pick);
    for (const auto& e : net.edges()) {
      if (e.from == pick) --indeg[static_cast<std::size_t>(e.to)];
    }
  }
  for (int i = 0; i < n; ++i) {  // cycle remainder, id order
    if (!done[static_cast<std::size_t>(i)]) order.push_back(i);
  }
  return order;
}

ProcessNetwork ProcessNetwork::pipeline(std::vector<Process> procs,
                                        int words_per_edge) {
  ProcessNetwork net;
  for (auto& p : procs) net.add_process(std::move(p));
  for (int i = 0; i + 1 < net.size(); ++i) {
    net.add_edge(i, i + 1, words_per_edge);
  }
  return net;
}

}  // namespace cgra::procnet

// Process networks: pipelines of communicating sequential processes.
//
// We model the application as a set of interacting sequential processes
// whose communication pattern defines the epochs (Sec. 2).  For the two
// paper kernels the network is a linear pipeline with known per-edge data
// volumes; the general graph form also carries non-pipeline edges so copy
// costs (term C of Eq. 1) can be charged when producer and consumer are not
// neighbours.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "procnet/process.hpp"

namespace cgra::procnet {

/// A directed communication edge: `words` 48-bit words per pipeline item.
struct Edge {
  int from = 0;
  int to = 0;
  int words = 0;
};

/// A process network.  Process ids are dense indices in insertion order,
/// which for pipelines is also the pipeline order.
class ProcessNetwork {
 public:
  /// Add a process; returns its id.
  int add_process(Process p);

  /// Add a communication edge; returns false for invalid ids.
  bool add_edge(int from, int to, int words);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(procs_.size());
  }
  [[nodiscard]] const Process& process(int id) const {
    return procs_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] Process& process(int id) {
    return procs_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] const std::vector<Process>& processes() const noexcept {
    return procs_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  /// Id of a process by name, or -1.
  [[nodiscard]] int find(const std::string& name) const;

  /// Total work per pipeline item across all processes (cycles).
  [[nodiscard]] std::int64_t total_work_cycles() const;

  /// Structural checks: nonempty, edge ids valid, no self-loops.
  [[nodiscard]] Status validate() const;

  /// Build a linear pipeline from a process list, adding edges with the
  /// given per-item word volume between consecutive processes.
  static ProcessNetwork pipeline(std::vector<Process> procs,
                                 int words_per_edge);

 private:
  std::vector<Process> procs_;
  std::vector<Edge> edges_;
};

/// Deterministic topological order of the network's processes (Kahn,
/// lowest id first).  Processes on cycles — the model does not forbid
/// them — are appended in id order; consumers that need a DAG must check
/// producer-before-consumer themselves.
std::vector<int> topological_order(const ProcessNetwork& net);

}  // namespace cgra::procnet

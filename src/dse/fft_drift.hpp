// Model-vs-executed drift for the FFT tau equations.
//
// Buckets an executed Timeline (the named TransitionReports and
// epoch_cycles that run_fabric_fft records) against the analytic
// FftCostBreakdown of the same design, producing an obs::DriftReport: one
// row per tau term that the cycle-level run can observe, flagged rows for
// the terms it cannot (host-side I/O in tau0/tau7, the identically-zero
// tau6).  The drift column quantifies how faithful Sec. 3.2's equations
// are to the executed schedule — the paper validates them only at the
// curve-shape level.
#pragma once

#include "config/reconfig.hpp"
#include "dse/fft_perf_model.hpp"
#include "obs/profile.hpp"

namespace cgra::dse {

/// Build the drift report for one executed FFT run.
///
/// `model` must be the breakdown of the same (geometry, cols, link cost)
/// design the timeline was executed with.  Measured buckets:
///   tau1 <- data-reload ns of the "bf-*" transitions (twiddle patches),
///   tau2 <- executed cycles of the "bf-*" epochs,
///   tau3 <- instruction + data reload ns of the "redistribute-*" /
///           "apply-*" transitions (the simulator re-streams whole copy
///           programs where the model charges only retargeted variables,
///           so positive drift here measures that gap),
///   tau4 <- executed cycles of the "redistribute-*" / "apply-*" epochs,
///   tau5 <- link-rewiring ns summed over every transition.
obs::DriftReport build_fft_drift(const FftCostBreakdown& model,
                                 const config::Timeline& executed);

}  // namespace cgra::dse

#include "dse/fft_drift.hpp"

#include <string_view>

namespace cgra::dse {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace

obs::DriftReport build_fft_drift(const FftCostBreakdown& model,
                                 const config::Timeline& executed) {
  Nanoseconds bf_reload_ns = 0.0;
  Nanoseconds bf_compute_ns = 0.0;
  Nanoseconds copy_reload_ns = 0.0;
  Nanoseconds copy_compute_ns = 0.0;
  Nanoseconds link_ns = 0.0;

  for (std::size_t i = 0; i < executed.transitions.size(); ++i) {
    const config::TransitionReport& t = executed.transitions[i];
    link_ns += t.link_ns;
    const Nanoseconds compute_ns =
        i < executed.epoch_cycles.size()
            ? cycles_to_ns(executed.epoch_cycles[i])
            : 0.0;
    if (starts_with(t.name, "bf-")) {
      bf_reload_ns += t.data_reload_ns + t.inst_reload_ns;
      bf_compute_ns += compute_ns;
    } else if (starts_with(t.name, "redistribute-") ||
               starts_with(t.name, "apply-")) {
      copy_reload_ns += t.data_reload_ns + t.inst_reload_ns;
      copy_compute_ns += compute_ns;
    }
  }

  obs::DriftReport drift;
  drift.model = "fft-tau";
  drift.add_unmeasured("tau0 input hcp", model.tau[0],
                       "host-side input transfer is outside the run");
  drift.add("tau1 twiddle reload", model.tau[1], bf_reload_ns,
            "ICAP reload of bf-* epochs (twiddles + kernel faults-in)");
  drift.add("tau2 butterfly compute", model.tau[2], bf_compute_ns,
            "executed cycles of bf-* epochs");
  drift.add("tau3 copy-var reload", model.tau[3], copy_reload_ns,
            "run re-streams whole copy programs; model charges variables");
  drift.add("tau4 copy compute", model.tau[4], copy_compute_ns,
            "executed cycles of redistribute-*/apply-* epochs");
  drift.add("tau5 link config", model.tau[5], link_ns,
            "link rewiring over all transitions");
  drift.add_unmeasured("tau6 hcp dmem reload", model.tau[6],
                       "identically zero (Eq. 13)");
  drift.add_unmeasured("tau7 output hcp", model.tau[7],
                       "host-side output transfer is outside the run");
  return drift;
}

}  // namespace cgra::dse

// The empirical FFT performance equation (Sec. 3.2, Eqs. 2-14).
//
// Total per-transform time T = tau0 + ... + tau7 for an N-point design on
// `cols` columns of N/M tiles, with per-link reconfiguration cost L:
//
//   tau0  receive input from the preprocessing column     = t_hcp
//   tau1  reload yellow twiddle factors through the ICAP  (TwiddleManager)
//   tau2  the butterfly pipeline itself: the cols columns run stage-slots
//         in lockstep, so per slot the time is the max over columns of the
//         owned stage's BF time, overlapped with the vertical link
//         reconfiguration of slots that need vertical exchange (Fig. 9)
//   tau3  reload of vcp source/destination variables (zero when the
//         Table-2 in-place update optimisation is enabled)
//   tau4  execution of the vertical copy processes
//   tau5  horizontal link configuration, one link per tile per column
//   tau6  hcp data-memory reconfiguration = 0 (Eq. 13)
//   tau7  send results onward                            = t_hcp
//
// Vertical exchange is needed only for the first log2(N)-log2(M) stage
// slots (the paper's S_i indicator, Eq. 3).  Link reconfigurations charge
// one 48-wire link per tile involved, i.e. `rows` links per column slot.
//
// Process times (t_bf[s], t_vcp, t_hcp) are *measured* on the cycle
// simulator (Table 1's runtime column), so the model's absolute numbers are
// self-consistent with the implementation rather than copied from the
// paper; the reproduced quantities are the curve shapes and crossovers of
// Figures 10-12.
#pragma once

#include <vector>

#include "apps/fft/partition.hpp"
#include "apps/fft/twiddle.hpp"
#include "common/timing.hpp"

namespace cgra::dse {

/// Measured process times feeding the model.
struct FftProcessTimes {
  std::vector<Nanoseconds> bf;  ///< Per-stage butterfly time (size = stages).
  Nanoseconds vcp = 0.0;        ///< Vertical copy (M/2 words).
  Nanoseconds hcp = 0.0;        ///< Horizontal copy (M words).
  int reg_cp = 2;               ///< Copy variables reloaded per retarget.
};

/// Measure the process times by running the kernels on the simulator.
FftProcessTimes measure_process_times(const fft::FftGeometry& g);

/// How tau1 (twiddle reload) is costed.
enum class TwiddleCosting {
  kPaperRule,  ///< The Sec. 3.2 case table ({3,3,2,0} events), generalised.
  kEmpirical,  ///< TwiddleManager's set-arithmetic classification.
  kNaive,      ///< No optimisation: N/2 * log2(N) words per transform.
};

/// Model configuration.
struct FftModelOptions {
  bool optimized_copy_vars = false;  ///< Table-2 in-place vcp retargeting.
  TwiddleCosting twiddles = TwiddleCosting::kPaperRule;
  IcapModel icap;
};

/// Per-design cost breakdown.
struct FftCostBreakdown {
  Nanoseconds tau[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  [[nodiscard]] Nanoseconds total_ns() const noexcept {
    Nanoseconds t = 0;
    for (const Nanoseconds v : tau) t += v;
    return t;
  }
  /// Transforms per second (the paper's "#1024-point R2FFTs per second").
  [[nodiscard]] double throughput_per_sec() const noexcept {
    const Nanoseconds t = total_ns();
    return t > 0 ? 1e9 / t : 0.0;
  }
};

/// Evaluate the model for `cols` columns and per-link cost `link_ns`.
/// `cols` must divide log2(N).
FftCostBreakdown evaluate_fft_design(const fft::FftGeometry& g,
                                     const FftProcessTimes& times, int cols,
                                     Nanoseconds link_ns,
                                     const FftModelOptions& opt = {});

/// Divisor column counts of log2(N) (the paper sweeps 1, 2, 5, 10).
std::vector<int> usable_column_counts(const fft::FftGeometry& g);

}  // namespace cgra::dse

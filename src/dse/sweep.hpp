// Parallel sweep driver for design-space exploration.
//
// DSE sweeps (tile-budget rebalancing, per-stage kernel timing, link-cost
// grids) evaluate many independent candidates; each evaluation is a pure
// function of its inputs.  dse::Sweep runs such candidate sets on a small
// fixed-size thread pool with the calling thread as one of the lanes, and
// runs fabric populations under a configurable execution engine — the one
// engine::EngineOptions knob shared with the CLI flag and ServiceOptions.
//
// Determinism rules (docs/ARCHITECTURE.md, "Execution engines"):
//   * Candidates must not share mutable state — each builds its own Fabric
//     or binding.  Everything the simulator touches satisfies this (no
//     mutable globals; function-local const statics are init-once).
//   * Results are written to slot `i` of a pre-sized vector, so the output
//     order is the candidate order no matter how lanes interleave.  A
//     sweep therefore produces bit-identical results with 1 or N workers —
//     and, for run_fabrics, with any engine kind (the engines' bit-identity
//     contract, tests/test_engine.cpp).
//   * Work is claimed from a shared atomic counter (dynamic load balance);
//     no candidate is evaluated twice, none is skipped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "dse/fft_perf_model.hpp"
#include "engine/engine.hpp"
#include "mapper/mapper.hpp"
#include "mapping/rebalance.hpp"

namespace cgra::dse {

/// One automatic-mapper sweep candidate: a tile budget and its mapping.
struct MapperSweepPoint {
  int tiles = 0;  ///< Tile budget handed to the mapper.
  mapper::MappedNetwork mapped;
};

/// The one sweep driver: a fixed-size pool of evaluation lanes plus an
/// execution-engine choice for fabric runs.
///
/// `options.threads` = concurrent evaluation lanes, including the calling
/// thread (so `threads - 1` workers are spawned); `<= 0` picks a small
/// default from the hardware, `1` runs every job inline on the caller — the
/// reference against which parallel runs must be identical.
/// `options.kind` / `options.batch_width` select how run_fabrics executes.
class Sweep {
 public:
  explicit Sweep(engine::EngineOptions options = {});
  ~Sweep();

  Sweep(const Sweep&) = delete;
  Sweep& operator=(const Sweep&) = delete;

  [[nodiscard]] const engine::EngineOptions& options() const noexcept {
    return options_;
  }

  /// Total evaluation lanes (spawned threads + the caller).
  [[nodiscard]] int lanes() const noexcept {
    return static_cast<int>(threads_.size()) + 1;
  }

  /// Run fn(0..n-1), each index exactly once, across the lanes; returns
  /// when all have completed.  The first exception thrown by `fn` is
  /// rethrown here (remaining candidates still run).  Not reentrant.
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// Evaluate fn(i) for i in [0, n) and return the results in index order.
  template <typename R, typename Fn>
  std::vector<R> map(int n, Fn&& fn) {
    std::vector<R> out(static_cast<std::size_t>(n));
    parallel_for(n, [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); });
    return out;
  }

  /// Run every fabric for up to `max_cycles` under the sweep's engine;
  /// results are positionally matched to `fabrics`.  kBatch chunks the
  /// population into batch_width lockstep groups (BatchEngine::run_batch),
  /// groups spread across the lanes; other kinds run each fabric on its own
  /// lane with the chosen engine attached.  Results are bit-identical
  /// across engine kinds and lane counts.  Any engine previously attached
  /// to a fabric is replaced.
  std::vector<fabric::RunResult> run_fabrics(
      std::span<fabric::Fabric* const> fabrics, std::int64_t max_cycles);

  /// mapping::sweep with the per-budget rebalance+evaluate candidates
  /// spread over the lanes.  Output is identical to the serial
  /// mapping::sweep for any lane count (each budget is recomputed from
  /// scratch in both).
  std::vector<mapping::SweepPoint> rebalance_sweep(
      const procnet::ProcessNetwork& net, int max_tiles,
      mapping::RebalanceAlgorithm algo, const mapping::CostParams& params);

  /// measure_process_times with the per-stage butterfly simulations (and
  /// the two copy-kernel simulations) spread over the lanes.  Identical
  /// output to the serial version: every measurement runs on its own
  /// private Fabric.
  FftProcessTimes measure_process_times(const fft::FftGeometry& g);

  /// Run the automatic mapper once per tile budget, budgets spread over the
  /// lanes — mapper-driven placements as sweep candidates next to the
  /// rebalance heuristics.  Each budget maps independently (the mapper is a
  /// pure function of its inputs), so results are positionally deterministic
  /// for any lane count.
  std::vector<MapperSweepPoint> mapper_sweep(
      const procnet::ProcessNetwork& net, int mesh_rows, int mesh_cols,
      std::span<const int> budgets, const mapper::MapperOptions& options = {});

 private:
  void worker_loop();
  void drain(const std::function<void(int)>* job, int n);

  engine::EngineOptions options_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Wakes workers on a new job / stop.
  std::condition_variable done_cv_;  ///< Wakes the caller on completion.
  const std::function<void(int)>* job_ = nullptr;
  int job_n_ = 0;
  std::atomic<int> next_{0};  ///< Next unclaimed candidate index.
  int done_ = 0;              ///< Completed candidates of the current job.
  std::uint64_t epoch_ = 0;   ///< Job generation counter.
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace cgra::dse

// Parallel sweep driver for design-space exploration.
//
// DSE sweeps (tile-budget rebalancing, per-stage kernel timing, link-cost
// grids) evaluate many independent candidates; each evaluation is a pure
// function of its inputs.  SweepPool runs such candidate sets on a small
// fixed-size thread pool with the calling thread as one of the lanes.
//
// Determinism rules (docs/ARCHITECTURE.md, "Execution engine"):
//   * Candidates must not share mutable state — each builds its own Fabric
//     or binding.  Everything the simulator touches satisfies this (no
//     mutable globals; function-local const statics are init-once).
//   * Results are written to slot `i` of a pre-sized vector, so the output
//     order is the candidate order no matter how lanes interleave.  A
//     sweep therefore produces bit-identical results with 1 or N workers.
//   * Work is claimed from a shared atomic counter (dynamic load balance);
//     no candidate is evaluated twice, none is skipped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "dse/fft_perf_model.hpp"
#include "mapping/rebalance.hpp"

namespace cgra::dse {

/// Fixed-size pool of worker threads for independent candidate evaluation.
class SweepPool {
 public:
  /// `lanes` = number of concurrent evaluation lanes, including the calling
  /// thread (so `lanes - 1` threads are spawned).  `lanes <= 1` runs every
  /// job inline on the caller — the reference against which parallel runs
  /// must be identical.  0 picks a small default from the hardware.
  explicit SweepPool(int lanes = 0);
  ~SweepPool();

  SweepPool(const SweepPool&) = delete;
  SweepPool& operator=(const SweepPool&) = delete;

  /// Total evaluation lanes (spawned threads + the caller).
  [[nodiscard]] int lanes() const noexcept {
    return static_cast<int>(threads_.size()) + 1;
  }

  /// Run fn(0..n-1), each index exactly once, across the lanes; returns
  /// when all have completed.  The first exception thrown by `fn` is
  /// rethrown here (remaining candidates still run).  Not reentrant.
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// Evaluate fn(i) for i in [0, n) and return the results in index order.
  template <typename R, typename Fn>
  std::vector<R> map(int n, Fn&& fn) {
    std::vector<R> out(static_cast<std::size_t>(n));
    parallel_for(n, [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); });
    return out;
  }

 private:
  void worker_loop();
  void drain(const std::function<void(int)>* job, int n);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Wakes workers on a new job / stop.
  std::condition_variable done_cv_;  ///< Wakes the caller on completion.
  const std::function<void(int)>* job_ = nullptr;
  int job_n_ = 0;
  std::atomic<int> next_{0};  ///< Next unclaimed candidate index.
  int done_ = 0;              ///< Completed candidates of the current job.
  std::uint64_t epoch_ = 0;   ///< Job generation counter.
  bool stop_ = false;
  std::exception_ptr error_;
};

/// mapping::sweep with the per-budget rebalance+evaluate candidates spread
/// over the pool.  Output is identical to the serial mapping::sweep for any
/// lane count (each budget is recomputed from scratch in both).
std::vector<mapping::SweepPoint> parallel_sweep(
    const procnet::ProcessNetwork& net, int max_tiles,
    mapping::RebalanceAlgorithm algo, const mapping::CostParams& params,
    SweepPool& pool);

/// measure_process_times with the per-stage butterfly simulations (and the
/// two copy-kernel simulations) spread over the pool.  Identical output to
/// the serial version: every measurement runs on its own private Fabric.
FftProcessTimes parallel_measure_process_times(const fft::FftGeometry& g,
                                               SweepPool& pool);

}  // namespace cgra::dse

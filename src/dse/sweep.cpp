#include "dse/sweep.hpp"

#include <algorithm>

#include "apps/fft/fabric_fft.hpp"

namespace cgra::dse {

namespace {
int default_lanes() {
  const unsigned hw = std::thread::hardware_concurrency();
  // A small pool: sweeps are coarse-grained, more lanes than candidates
  // (or than cores) only add wake-up latency.
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}
}  // namespace

Sweep::Sweep(engine::EngineOptions options) : options_(options) {
  int lanes = options.threads;
  if (lanes <= 0) lanes = default_lanes();
  threads_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 1; i < lanes; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Sweep::~Sweep() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Sweep::drain(const std::function<void(int)>* job, int n) {
  for (;;) {
    const int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      (*job)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
    // Every claimed index reports exactly one completion (also on throw),
    // so done_ == n means every candidate has finished.
    std::lock_guard<std::mutex> lk(mu_);
    if (++done_ == n) done_cv_.notify_all();
  }
}

void Sweep::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    int n = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ || (epoch_ != seen && job_ != nullptr);
      });
      if (stop_) return;
      seen = epoch_;
      job = job_;
      n = job_n_;
    }
    drain(job, n);
  }
}

void Sweep::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (threads_.empty()) {
    // Single lane: the serial reference path, no synchronisation at all.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_ = 0;
    error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();
  drain(&fn, n);  // the caller is a lane too
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return done_ == job_n_; });
    job_ = nullptr;  // workers waking late see no job and keep waiting
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

std::vector<fabric::RunResult> Sweep::run_fabrics(
    std::span<fabric::Fabric* const> fabrics, std::int64_t max_cycles) {
  const int n = static_cast<int>(fabrics.size());
  std::vector<fabric::RunResult> results(static_cast<std::size_t>(n));
  if (n == 0) return results;

  if (options_.kind == engine::EngineKind::kBatch) {
    // Chunk the population into batch_width lockstep groups; each group is
    // one candidate for the lane pool.  BatchEngine::run_batch itself falls
    // back to sequential interpreter runs for a group it cannot lockstep
    // (shape mismatch, duplicates), so results stay positional and
    // bit-identical regardless.
    const int width = options_.batch_width > 0 ? options_.batch_width : 1;
    const int groups = (n + width - 1) / width;
    parallel_for(groups, [&](int gi) {
      const int lo = gi * width;
      const int hi = std::min(lo + width, n);
      engine::BatchEngine batch(hi - lo);
      const auto group = batch.run_batch(
          fabrics.subspan(static_cast<std::size_t>(lo),
                          static_cast<std::size_t>(hi - lo)),
          max_cycles);
      std::copy(group.begin(), group.end(),
                results.begin() + lo);
    });
    return results;
  }

  parallel_for(n, [&](int i) {
    fabric::Fabric& f = *fabrics[static_cast<std::size_t>(i)];
    if (options_.kind == engine::EngineKind::kInterp) {
      f.attach_engine(nullptr);  // pin the interpreter
    } else {
      f.adopt_engine(engine::make_engine(options_));
    }
    results[static_cast<std::size_t>(i)] = f.run(max_cycles);
  });
  return results;
}

std::vector<mapping::SweepPoint> Sweep::rebalance_sweep(
    const procnet::ProcessNetwork& net, int max_tiles,
    mapping::RebalanceAlgorithm algo, const mapping::CostParams& params) {
  return map<mapping::SweepPoint>(max_tiles, [&](int i) {
    const int n = i + 1;  // budgets are 1..max_tiles, same as mapping::sweep
    mapping::SweepPoint pt;
    pt.tiles = n;
    pt.binding = mapping::rebalance(net, n, algo, params);
    pt.eval = mapping::evaluate(net, pt.binding, params);
    return pt;
  });
}

FftProcessTimes Sweep::measure_process_times(const fft::FftGeometry& g) {
  FftProcessTimes times;
  // Candidates 0..stages-1: per-stage butterfly kernels; stages and
  // stages+1: the vertical and horizontal copy kernels.  Each runs on its
  // own private Fabric, so the measurements are trivially independent.
  const auto measured =
      map<Nanoseconds>(g.stages + 2, [&](int i) -> Nanoseconds {
        if (i < g.stages) return cycles_to_ns(fft::measure_bf_cycles(g, i));
        if (i == g.stages) {
          return cycles_to_ns(fft::measure_copy_cycles(g.m, g.m / 2));
        }
        return cycles_to_ns(fft::measure_copy_cycles(g.m, g.m));
      });
  times.bf.assign(measured.begin(), measured.begin() + g.stages);
  times.vcp = measured[static_cast<std::size_t>(g.stages)];
  times.hcp = measured[static_cast<std::size_t>(g.stages) + 1];
  return times;
}

std::vector<MapperSweepPoint> Sweep::mapper_sweep(
    const procnet::ProcessNetwork& net, int mesh_rows, int mesh_cols,
    std::span<const int> budgets, const mapper::MapperOptions& options) {
  return map<MapperSweepPoint>(
      static_cast<int>(budgets.size()), [&](int i) {
        MapperSweepPoint pt;
        pt.tiles = budgets[static_cast<std::size_t>(i)];
        mapper::MapperOptions opt = options;
        opt.max_tiles = pt.tiles;
        pt.mapped = mapper::map_network(net, mesh_rows, mesh_cols, opt);
        return pt;
      });
}

}  // namespace cgra::dse

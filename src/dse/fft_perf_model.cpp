#include "dse/fft_perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "apps/fft/fabric_fft.hpp"

namespace cgra::dse {

using fft::FftGeometry;

FftProcessTimes measure_process_times(const FftGeometry& g) {
  FftProcessTimes times;
  times.bf.reserve(static_cast<std::size_t>(g.stages));
  for (int s = 0; s < g.stages; ++s) {
    times.bf.push_back(cycles_to_ns(fft::measure_bf_cycles(g, s)));
  }
  times.vcp = cycles_to_ns(fft::measure_copy_cycles(g.m, g.m / 2));
  times.hcp = cycles_to_ns(fft::measure_copy_cycles(g.m, g.m));
  return times;
}

std::vector<int> usable_column_counts(const FftGeometry& g) {
  std::vector<int> out;
  for (int c = 1; c <= g.stages; ++c) {
    if (g.stages % c == 0) out.push_back(c);
  }
  return out;
}

FftCostBreakdown evaluate_fft_design(const FftGeometry& g,
                                     const FftProcessTimes& times, int cols,
                                     Nanoseconds link_ns,
                                     const FftModelOptions& opt) {
  if (cols < 1 || g.stages % cols != 0) {
    throw std::invalid_argument("cols must divide log2(N)");
  }
  if (static_cast<int>(times.bf.size()) != g.stages) {
    throw std::invalid_argument("need one BF time per stage");
  }
  const int spc = g.stages / cols;       // stage slots per column
  const int cross = g.cross_stages();    // slots needing vertical exchange
  const Nanoseconds t_link_col =
      static_cast<double>(g.rows) * link_ns;  // one link per tile, per slot

  FftCostBreakdown out;

  // tau0 / tau7: receive from the input column, send results on.
  out.tau[0] = times.hcp;
  out.tau[7] = times.hcp;

  // tau1: yellow twiddle reloads per transform (serial ICAP).
  switch (opt.twiddles) {
    case TwiddleCosting::kPaperRule:
      out.tau[1] = opt.icap.data_reload_ns(fft::paper_reload_words(g, cols));
      break;
    case TwiddleCosting::kEmpirical:
      out.tau[1] =
          opt.icap.data_reload_ns(fft::analyze_twiddles(g, cols).reload_words);
      break;
    case TwiddleCosting::kNaive:
      out.tau[1] =
          opt.icap.data_reload_ns(static_cast<long long>(g.n) / 2 * g.stages);
      break;
  }

  // tau2: lockstep stage slots; vertical link rewiring overlaps the BF of
  // slots that exchange vertically (the first `cross` global stages).
  for (int k = 0; k < spc; ++k) {
    Nanoseconds bf_max = 0.0;
    bool any_vertical = false;
    for (int c = 0; c < cols; ++c) {
      const int stage = c * spc + k;
      bf_max = std::max(bf_max,
                        times.bf[static_cast<std::size_t>(stage)]);
      if (stage < cross) any_vertical = true;
    }
    out.tau[2] += std::max(bf_max, any_vertical ? t_link_col : 0.0);
  }

  // Vertical-exchange slots that remain visible per transform: the cross
  // stages spread over the columns; each column absorbs its first one into
  // the initial configuration, so roughly cross * (1 - (cols-1)/stages)
  // executions and one fewer retarget survive (fitted to the paper's case
  // tables {3,3,2,1} and {2,2,1,0} for N=1024, M=128, cols in {1,2,5,10}).
  const double frac =
      1.0 - static_cast<double>(cols - 1) / static_cast<double>(g.stages);
  const int vcp_execs = std::max(
      cols >= g.stages ? 1 : 0,
      static_cast<int>(
          std::ceil(static_cast<double>(cross) * frac)));
  const int vcp_retargets = std::max(0, vcp_execs - 1);

  // tau3: retargeting the vcp source/destination variables.
  if (opt.optimized_copy_vars) {
    out.tau[3] = 0.0;  // updated in place by the vcp code itself (Table 2)
  } else {
    out.tau[3] = opt.icap.data_reload_ns(
        static_cast<long long>(times.reg_cp) * g.rows) *
        vcp_retargets;
  }

  // tau4: executing the vertical copies.
  out.tau[4] = times.vcp * vcp_execs;

  // tau5: horizontal links, one per tile per column.
  out.tau[5] = t_link_col * cols;

  // tau6: hcp data-memory reconfiguration (Eq. 13).
  out.tau[6] = 0.0;

  return out;
}

}  // namespace cgra::dse

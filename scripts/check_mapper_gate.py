#!/usr/bin/env python3
"""Gate the automatic mapper's quality and solve-time budgets.

Usage: check_mapper_gate.py CURRENT.json [BASELINE.json]
           [--budget-exact=2500] [--budget-anneal=700] [--slack=2.0]

CURRENT.json is a fresh BENCH_mapper.json.  Three acceptance criteria,
all measured in the SAME run so they are independent of how fast the
host happens to be (same style as check_batch_gate.py):

  * quality vs the paper: worst_mapped_vs_manual <= 1.0 — on every
    Table-4 budget the exact mapper re-derives or beats the paper's
    hand mapping.  This is the headline claim, not a trend.
  * solver agreement: worst_anneal_vs_exact <= 1.05 — wherever the
    exact proof completes, annealing lands within 5%.
  * solve time: {exact,anneal}_solve_ms_total divided by the run's own
    calibration_ms (a fixed count of cost-model evaluations) must stay
    under its budget.  The ratio cancels machine speed: a slow CI box
    scales numerator and denominator alike.

When a committed BASELINE.json is given, the current solve ratios must
also stay within `slack` x the baseline's ratios, pinning the gate to
the repo's committed reference point.  A miss exits 1: these are
acceptance criteria, not trends to eyeball (perf_compare.py handles
those).
"""

import json
import sys

QUALITY = [
    ("worst_mapped_vs_manual", 1.0 + 1e-9),
    ("worst_anneal_vs_exact", 1.05),
]
SOLVE = [("exact_solve_ms_total", "budget-exact"),
         ("anneal_solve_ms_total", "budget-anneal")]
CALIBRATION = "calibration_ms"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_mapper_gate: cannot read {path}: {err}")
    return {m["name"]: m["value"] for m in doc.get("metrics", [])}


def metric(metrics, name, path):
    if name not in metrics or metrics[name] <= 0:
        sys.exit(f"check_mapper_gate: {path} has no usable '{name}' "
                 "(did the bench crash before writing it?)")
    return metrics[name]


def main():
    budgets = {"budget-exact": 2500.0, "budget-anneal": 700.0}
    slack = 2.0
    paths = []
    for arg in sys.argv[1:]:
        if arg.startswith("--budget-exact="):
            budgets["budget-exact"] = float(arg.split("=", 1)[1])
        elif arg.startswith("--budget-anneal="):
            budgets["budget-anneal"] = float(arg.split("=", 1)[1])
        elif arg.startswith("--slack="):
            slack = float(arg.split("=", 1)[1])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            paths.append(arg)
    if not paths or len(paths) > 2:
        print(__doc__)
        return 1

    cur = load(paths[0])
    base = load(paths[1]) if len(paths) == 2 else None
    ok = True

    for name, bar in QUALITY:
        # worst_* may legitimately be 0.0 when no case contributed (e.g. no
        # completed proof), so read it directly rather than via metric().
        if name not in cur:
            sys.exit(f"check_mapper_gate: {paths[0]} has no '{name}'")
        value = cur[name]
        verdict = "ok" if value <= bar else "FAIL"
        print(f"  {name}: {value:.4f} (<= {bar:.4g})  [{verdict}]")
        ok &= value <= bar

    cal = metric(cur, CALIBRATION, paths[0])
    base_cal = metric(base, CALIBRATION, paths[1]) if base else None
    for name, budget_key in SOLVE:
        ratio = metric(cur, name, paths[0]) / cal
        budget = budgets[budget_key]
        verdict = "ok" if ratio <= budget else "FAIL"
        print(f"  {name}/{CALIBRATION}: {ratio:.1f} (<= {budget:.1f})  "
              f"[{verdict}]")
        ok &= ratio <= budget
        if base is not None:
            base_ratio = metric(base, name, paths[1]) / base_cal
            bar = slack * base_ratio
            verdict = "ok" if ratio <= bar else "FAIL"
            print(f"    vs committed baseline: {base_ratio:.1f} x "
                  f"{slack:.1f} = {bar:.1f}  [{verdict}]")
            ok &= ratio <= bar

    if not ok:
        print("\nmapper gate FAILED: the mapper no longer clears its "
              "quality or solve-time acceptance criteria; re-measure "
              "locally before suspecting the machine (docs/EXPERIMENTS.md).")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate the batch engine's dense-mesh speedup.

Usage: check_batch_gate.py CURRENT.json [BASELINE.json] [--factor=5.0]

CURRENT.json is a fresh BENCH_simulator_micro.json.  The gate passes iff
the lockstep batch engine's steady-state dense-mesh throughput
(BM_FabricBatchDenseLoop64Tiles/width:16.tile_cycles/s) clears
`factor` x the sequential interpreter's dense-mesh throughput
(BM_FabricStepRate64Tiles.tile_cycles/s) — measured in the SAME run, so
the ratio is independent of how fast the host happens to be.  When a
committed BASELINE.json is also given, the batch number must clear
`factor` x the baseline's interpreter throughput too, pinning the gate
to the repo's committed reference point.

Unlike perf_compare.py (informational), a miss here exits 1: the >5x
batch speedup is an acceptance criterion, not a trend to eyeball.  The
run must be interpreter-engined (the reference scenario follows
--engine; the batch scenario pins BatchEngine regardless).
"""

import json
import sys

BATCH = "BM_FabricBatchDenseLoop64Tiles/width:16.tile_cycles/s"
REF = "BM_FabricStepRate64Tiles.tile_cycles/s"
INFO = "BM_FabricDenseLoop64Tiles.tile_cycles/s"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_batch_gate: cannot read {path}: {err}")
    return doc.get("engine", "interp"), {
        m["name"]: m["value"] for m in doc.get("metrics", [])
    }


def metric(metrics, name, path):
    if name not in metrics or metrics[name] <= 0:
        sys.exit(f"check_batch_gate: {path} has no usable '{name}' "
                 "(did the bench run with a filter that skipped it?)")
    return metrics[name]


def main():
    factor = 5.0
    paths = []
    for arg in sys.argv[1:]:
        if arg.startswith("--factor="):
            factor = float(arg.split("=", 1)[1])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            paths.append(arg)
    if not paths or len(paths) > 2:
        print(__doc__)
        return 1

    engine, cur = load(paths[0])
    if engine != "interp":
        sys.exit(f"check_batch_gate: {paths[0]} was measured with "
                 f"--engine={engine}; the interpreter reference scenario "
                 "is only meaningful on the default interp run.")
    batch = metric(cur, BATCH, paths[0])

    checks = [("same-run interp dense mesh", metric(cur, REF, paths[0]))]
    if len(paths) == 2:
        base_engine, base = load(paths[1])
        if base_engine != "interp":
            sys.exit(f"check_batch_gate: baseline {paths[1]} was measured "
                     f"with --engine={base_engine}, not interp.")
        checks.append(("committed interp dense mesh", metric(base, REF,
                                                             paths[1])))

    print(f"batch dense loop: {batch / 1e6:.1f}M tile_cycles/s "
          f"(need >{factor:.1f}x each reference)")
    if INFO in cur and cur[INFO] > 0:
        print(f"  [info] vs same-run interp dense loop: "
              f"{batch / cur[INFO]:.2f}x")
    ok = True
    for label, ref in checks:
        ratio = batch / ref
        verdict = "ok" if ratio > factor else "FAIL"
        print(f"  {label}: {ref / 1e6:.1f}M -> {ratio:.2f}x  [{verdict}]")
        ok &= ratio > factor
    if not ok:
        print("\nbatch gate FAILED: the SoA lockstep engine no longer "
              "clears its dense-mesh speedup target; re-measure locally "
              "before suspecting the machine (docs/EXPERIMENTS.md).")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Format every C++ file under the formatted directories in place, or
# verify them with --check (what CI's format job runs).
#
#   ./scripts/format.sh           # rewrite files
#   ./scripts/format.sh --check   # exit non-zero on any violation
#
# Override the binary with CLANG_FORMAT=clang-format-18 etc.
set -euo pipefail
cd "$(dirname "$0")/.."

fmt="${CLANG_FORMAT:-clang-format}"
if ! command -v "$fmt" >/dev/null; then
  echo "error: $fmt not found (set CLANG_FORMAT to your binary)" >&2
  exit 1
fi

args=(-i)
if [[ "${1:-}" == "--check" ]]; then
  args=(--dry-run --Werror)
fi

find src tests bench examples \
  \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
  xargs -0 "$fmt" "${args[@]}"

#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Usage: perf_compare.py BASELINE.json CURRENT.json

Prints a delta table for every metric the two files share.  Rate metrics
(unit ends in "/s", e.g. the simulator's sim_cycles/s and tile_cycles/s
counters) improve upward; time metrics (ns) improve downward.

Purely informational: always exits 0.  CI runners have wildly variable
machines, so deltas here flag *suspicious* regressions for a human to
re-measure locally (see docs/EXPERIMENTS.md), they do not gate merges.
"""

import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {m["name"]: m for m in doc.get("metrics", [])}


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 0
    base = load_metrics(sys.argv[1])
    cur = load_metrics(sys.argv[2])
    shared = [n for n in base if n in cur]
    if not shared:
        print("no shared metrics between baseline and current run")
        return 0

    width = max(len(n) for n in shared)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  delta")
    worst = None
    for name in shared:
        b, c = base[name]["value"], cur[name]["value"]
        unit = base[name].get("unit", "")
        if b == 0:
            continue
        higher_is_better = unit.endswith("/s")
        ratio = c / b if higher_is_better else b / c
        sign = "+" if ratio >= 1 else ""
        pct = (ratio - 1) * 100
        print(f"{name:<{width}}  {b:>14.4g}  {c:>14.4g}  "
              f"{sign}{pct:.1f}% {'faster' if pct >= 0 else 'slower'}")
        if worst is None or ratio < worst[1]:
            worst = (name, ratio)
    if worst and worst[1] < 0.8:
        print(f"\nNOTE: {worst[0]} is {(1 - worst[1]) * 100:.0f}% slower than "
              "the committed baseline. CI timing is noisy — re-measure "
              "locally before concluding anything (docs/EXPERIMENTS.md).")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)

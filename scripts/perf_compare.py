#!/usr/bin/env python3
"""Compare fresh BENCH_*.json runs against committed baselines.

Usage: perf_compare.py BASELINE.json CURRENT.json [BASELINE.json CURRENT.json ...]

Takes one or more baseline/current pairs and prints a single merged
delta table covering every metric each pair shares.  When more than one
pair is given, metric names are prefixed with the bench name so rows
from different benches stay distinguishable.  Rate metrics (unit ends in
"/s", e.g. the simulator's sim_cycles/s and the net layer's req/s)
improve upward; time metrics (ns, ms) improve downward.

Deltas are informational: CI runners have wildly variable machines, so
they flag *suspicious* regressions for a human to re-measure locally
(see docs/EXPERIMENTS.md), they do not gate merges.  A MISSING or
unreadable file is a hard error (exit 1), though — a bench that crashed
before writing its JSON, or a baseline someone forgot to commit, must
not silently pass as "no shared metrics".

Comparing numbers produced by different execution engines is apples to
oranges (batch mode is >5x the interpreter by design), so a pair whose
"engine" fields disagree is also a hard error.  Reports predating the
field count as "interp".
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"perf_compare: cannot read {path}: {err}")
    return (doc.get("bench", path), doc.get("engine", "interp"),
            {m["name"]: m for m in doc.get("metrics", [])})


def main():
    argv = sys.argv[1:]
    if not argv or len(argv) % 2 != 0:
        print(__doc__)
        return 0 if not argv else 1
    pairs = [(argv[i], argv[i + 1]) for i in range(0, len(argv), 2)]

    # Collect rows across all pairs first so one table, one width.
    rows = []  # (display name, baseline value, current value, unit)
    for base_path, cur_path in pairs:
        bench, base_engine, base = load(base_path)
        _, cur_engine, cur = load(cur_path)
        if base_engine != cur_engine:
            sys.exit(f"perf_compare: engine mismatch for {bench}: "
                     f"{base_path} was measured on '{base_engine}' but "
                     f"{cur_path} on '{cur_engine}' — rerun the bench with "
                     f"--engine={base_engine} (or refresh the baseline).")
        shared = [n for n in base if n in cur]
        if not shared:
            print(f"no shared metrics between {base_path} and {cur_path}")
            continue
        for name in shared:
            display = f"{bench}.{name}" if len(pairs) > 1 else name
            rows.append((display, base[name]["value"], cur[name]["value"],
                         base[name].get("unit", "")))
    if not rows:
        print("no shared metrics in any baseline/current pair")
        return 0

    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  delta")
    worst = None
    for name, b, c, unit in rows:
        if b == 0 or c == 0:
            continue
        higher_is_better = unit.endswith("/s")
        ratio = c / b if higher_is_better else b / c
        sign = "+" if ratio >= 1 else ""
        pct = (ratio - 1) * 100
        print(f"{name:<{width}}  {b:>14.4g}  {c:>14.4g}  "
              f"{sign}{pct:.1f}% {'faster' if pct >= 0 else 'slower'}")
        if worst is None or ratio < worst[1]:
            worst = (name, ratio)
    if worst and worst[1] < 0.8:
        print(f"\nNOTE: {worst[0]} is {(1 - worst[1]) * 100:.0f}% slower than "
              "the committed baseline. CI timing is noisy — re-measure "
              "locally before concluding anything (docs/EXPERIMENTS.md).")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)

file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_executed_vs_model.dir/bench_validation_executed_vs_model.cpp.o"
  "CMakeFiles/bench_validation_executed_vs_model.dir/bench_validation_executed_vs_model.cpp.o.d"
  "bench_validation_executed_vs_model"
  "bench_validation_executed_vs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_executed_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_validation_executed_vs_model.
# This may be replaced when dependencies are built.

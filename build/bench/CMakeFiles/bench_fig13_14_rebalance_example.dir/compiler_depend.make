# Empty compiler generated dependencies file for bench_fig13_14_rebalance_example.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_rebalance_example.dir/bench_fig13_14_rebalance_example.cpp.o"
  "CMakeFiles/bench_fig13_14_rebalance_example.dir/bench_fig13_14_rebalance_example.cpp.o.d"
  "bench_fig13_14_rebalance_example"
  "bench_fig13_14_rebalance_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_rebalance_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fft_processes.dir/bench_table1_fft_processes.cpp.o"
  "CMakeFiles/bench_table1_fft_processes.dir/bench_table1_fft_processes.cpp.o.d"
  "bench_table1_fft_processes"
  "bench_table1_fft_processes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fft_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

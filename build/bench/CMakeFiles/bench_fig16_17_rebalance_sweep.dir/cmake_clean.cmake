file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_17_rebalance_sweep.dir/bench_fig16_17_rebalance_sweep.cpp.o"
  "CMakeFiles/bench_fig16_17_rebalance_sweep.dir/bench_fig16_17_rebalance_sweep.cpp.o.d"
  "bench_fig16_17_rebalance_sweep"
  "bench_fig16_17_rebalance_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_17_rebalance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

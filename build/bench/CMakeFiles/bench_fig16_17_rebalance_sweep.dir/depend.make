# Empty dependencies file for bench_fig16_17_rebalance_sweep.
# This may be replaced when dependencies are built.

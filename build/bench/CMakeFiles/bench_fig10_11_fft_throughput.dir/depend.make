# Empty dependencies file for bench_fig10_11_fft_throughput.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_simulator_micro.dir/bench_simulator_micro.cpp.o"
  "CMakeFiles/bench_simulator_micro.dir/bench_simulator_micro.cpp.o.d"
  "bench_simulator_micro"
  "bench_simulator_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table2_copy_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_twiddles.dir/bench_fig8_twiddles.cpp.o"
  "CMakeFiles/bench_fig8_twiddles.dir/bench_fig8_twiddles.cpp.o.d"
  "bench_fig8_twiddles"
  "bench_fig8_twiddles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_twiddles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_twiddles.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_jpeg_manual.dir/bench_table4_jpeg_manual.cpp.o"
  "CMakeFiles/bench_table4_jpeg_manual.dir/bench_table4_jpeg_manual.cpp.o.d"
  "bench_table4_jpeg_manual"
  "bench_table4_jpeg_manual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_jpeg_manual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

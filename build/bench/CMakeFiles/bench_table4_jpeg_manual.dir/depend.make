# Empty dependencies file for bench_table4_jpeg_manual.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_jpeg_processes.dir/bench_table3_jpeg_processes.cpp.o"
  "CMakeFiles/bench_table3_jpeg_processes.dir/bench_table3_jpeg_processes.cpp.o.d"
  "bench_table3_jpeg_processes"
  "bench_table3_jpeg_processes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_jpeg_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table3_jpeg_processes.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table5_rebalance24.
# This may be replaced when dependencies are built.

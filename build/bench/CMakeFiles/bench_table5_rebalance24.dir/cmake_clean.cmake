file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_rebalance24.dir/bench_table5_rebalance24.cpp.o"
  "CMakeFiles/bench_table5_rebalance24.dir/bench_table5_rebalance24.cpp.o.d"
  "bench_table5_rebalance24"
  "bench_table5_rebalance24.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_rebalance24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

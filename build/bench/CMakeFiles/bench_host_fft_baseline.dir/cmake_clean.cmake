file(REMOVE_RECURSE
  "CMakeFiles/bench_host_fft_baseline.dir/bench_host_fft_baseline.cpp.o"
  "CMakeFiles/bench_host_fft_baseline.dir/bench_host_fft_baseline.cpp.o.d"
  "bench_host_fft_baseline"
  "bench_host_fft_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_fft_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_host_fft_baseline.
# This may be replaced when dependencies are built.

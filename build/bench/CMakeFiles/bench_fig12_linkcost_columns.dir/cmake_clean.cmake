file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_linkcost_columns.dir/bench_fig12_linkcost_columns.cpp.o"
  "CMakeFiles/bench_fig12_linkcost_columns.dir/bench_fig12_linkcost_columns.cpp.o.d"
  "bench_fig12_linkcost_columns"
  "bench_fig12_linkcost_columns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_linkcost_columns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig12_linkcost_columns.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for jpeg_encode.
# This may be replaced when dependencies are built.

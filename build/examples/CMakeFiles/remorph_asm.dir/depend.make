# Empty dependencies file for remorph_asm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/remorph_asm.dir/remorph_asm.cpp.o"
  "CMakeFiles/remorph_asm.dir/remorph_asm.cpp.o.d"
  "remorph_asm"
  "remorph_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remorph_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

  movi 0, #41
  add 0, 0, #1
  halt

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft_pipeline "/root/repo/build/examples/fft_pipeline" "64" "8" "2")
set_tests_properties(example_fft_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jpeg_encode "/root/repo/build/examples/jpeg_encode" "32" "24" "75" "/root/repo/build/examples/smoke.jpg")
set_tests_properties(example_jpeg_encode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dse_explorer "/root/repo/build/examples/dse_explorer" "64" "8" "1000")
set_tests_properties(example_dse_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remorph_asm "/root/repo/build/examples/remorph_asm" "run" "/root/repo/build/examples/smoke.s" "--dump" "0" "1")
set_tests_properties(example_remorph_asm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/test_jpeg_fabric.dir/test_jpeg_fabric.cpp.o"
  "CMakeFiles/test_jpeg_fabric.dir/test_jpeg_fabric.cpp.o.d"
  "test_jpeg_fabric"
  "test_jpeg_fabric.pdb"
  "test_jpeg_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jpeg_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

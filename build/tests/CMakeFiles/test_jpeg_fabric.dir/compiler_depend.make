# Empty compiler generated dependencies file for test_jpeg_fabric.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_jpeg_dct.dir/test_jpeg_dct.cpp.o"
  "CMakeFiles/test_jpeg_dct.dir/test_jpeg_dct.cpp.o.d"
  "test_jpeg_dct"
  "test_jpeg_dct.pdb"
  "test_jpeg_dct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jpeg_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_jpeg_dct.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_fft_twiddle.dir/test_fft_twiddle.cpp.o"
  "CMakeFiles/test_fft_twiddle.dir/test_fft_twiddle.cpp.o.d"
  "test_fft_twiddle"
  "test_fft_twiddle.pdb"
  "test_fft_twiddle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_twiddle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

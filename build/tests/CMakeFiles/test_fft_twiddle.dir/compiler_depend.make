# Empty compiler generated dependencies file for test_fft_twiddle.
# This may be replaced when dependencies are built.

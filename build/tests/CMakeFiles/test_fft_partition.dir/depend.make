# Empty dependencies file for test_fft_partition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_fft_partition.dir/test_fft_partition.cpp.o"
  "CMakeFiles/test_fft_partition.dir/test_fft_partition.cpp.o.d"
  "test_fft_partition"
  "test_fft_partition.pdb"
  "test_fft_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

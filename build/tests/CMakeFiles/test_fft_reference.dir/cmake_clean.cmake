file(REMOVE_RECURSE
  "CMakeFiles/test_fft_reference.dir/test_fft_reference.cpp.o"
  "CMakeFiles/test_fft_reference.dir/test_fft_reference.cpp.o.d"
  "test_fft_reference"
  "test_fft_reference.pdb"
  "test_fft_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

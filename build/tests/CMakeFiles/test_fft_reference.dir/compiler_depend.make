# Empty compiler generated dependencies file for test_fft_reference.
# This may be replaced when dependencies are built.

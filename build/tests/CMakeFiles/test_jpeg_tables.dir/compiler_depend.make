# Empty compiler generated dependencies file for test_jpeg_tables.
# This may be replaced when dependencies are built.

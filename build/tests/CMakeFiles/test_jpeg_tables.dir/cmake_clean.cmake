file(REMOVE_RECURSE
  "CMakeFiles/test_jpeg_tables.dir/test_jpeg_tables.cpp.o"
  "CMakeFiles/test_jpeg_tables.dir/test_jpeg_tables.cpp.o.d"
  "test_jpeg_tables"
  "test_jpeg_tables.pdb"
  "test_jpeg_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jpeg_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_jpeg_color.dir/test_jpeg_color.cpp.o"
  "CMakeFiles/test_jpeg_color.dir/test_jpeg_color.cpp.o.d"
  "test_jpeg_color"
  "test_jpeg_color.pdb"
  "test_jpeg_color[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jpeg_color.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_jpeg_color.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_jpeg_mapping.dir/test_jpeg_mapping.cpp.o"
  "CMakeFiles/test_jpeg_mapping.dir/test_jpeg_mapping.cpp.o.d"
  "test_jpeg_mapping"
  "test_jpeg_mapping.pdb"
  "test_jpeg_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jpeg_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

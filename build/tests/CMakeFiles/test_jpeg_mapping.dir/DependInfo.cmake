
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_jpeg_mapping.cpp" "tests/CMakeFiles/test_jpeg_mapping.dir/test_jpeg_mapping.cpp.o" "gcc" "tests/CMakeFiles/test_jpeg_mapping.dir/test_jpeg_mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cgra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cgra_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/cgra_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/cgra_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/cgra_config.dir/DependInfo.cmake"
  "/root/repo/build/src/procnet/CMakeFiles/cgra_procnet.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/cgra_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/cgra_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/fft/CMakeFiles/cgra_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for test_jpeg_mapping.
# This may be replaced when dependencies are built.

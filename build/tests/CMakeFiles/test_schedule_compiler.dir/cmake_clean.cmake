file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_compiler.dir/test_schedule_compiler.cpp.o"
  "CMakeFiles/test_schedule_compiler.dir/test_schedule_compiler.cpp.o.d"
  "test_schedule_compiler"
  "test_schedule_compiler.pdb"
  "test_schedule_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

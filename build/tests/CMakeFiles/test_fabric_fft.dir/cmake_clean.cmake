file(REMOVE_RECURSE
  "CMakeFiles/test_fabric_fft.dir/test_fabric_fft.cpp.o"
  "CMakeFiles/test_fabric_fft.dir/test_fabric_fft.cpp.o.d"
  "test_fabric_fft"
  "test_fabric_fft.pdb"
  "test_fabric_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fabric_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

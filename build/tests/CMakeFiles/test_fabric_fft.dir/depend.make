# Empty dependencies file for test_fabric_fft.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_fft_programs.dir/test_fft_programs.cpp.o"
  "CMakeFiles/test_fft_programs.dir/test_fft_programs.cpp.o.d"
  "test_fft_programs"
  "test_fft_programs.pdb"
  "test_fft_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

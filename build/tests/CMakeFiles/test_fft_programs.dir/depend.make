# Empty dependencies file for test_fft_programs.
# This may be replaced when dependencies are built.

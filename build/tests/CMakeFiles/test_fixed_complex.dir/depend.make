# Empty dependencies file for test_fixed_complex.
# This may be replaced when dependencies are built.

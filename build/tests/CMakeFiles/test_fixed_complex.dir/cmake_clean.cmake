file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_complex.dir/test_fixed_complex.cpp.o"
  "CMakeFiles/test_fixed_complex.dir/test_fixed_complex.cpp.o.d"
  "test_fixed_complex"
  "test_fixed_complex.pdb"
  "test_fixed_complex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_procnet.
# This may be replaced when dependencies are built.

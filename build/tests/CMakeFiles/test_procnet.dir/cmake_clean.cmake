file(REMOVE_RECURSE
  "CMakeFiles/test_procnet.dir/test_procnet.cpp.o"
  "CMakeFiles/test_procnet.dir/test_procnet.cpp.o.d"
  "test_procnet"
  "test_procnet.pdb"
  "test_procnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

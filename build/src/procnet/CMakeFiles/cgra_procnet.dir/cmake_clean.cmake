file(REMOVE_RECURSE
  "CMakeFiles/cgra_procnet.dir/network.cpp.o"
  "CMakeFiles/cgra_procnet.dir/network.cpp.o.d"
  "CMakeFiles/cgra_procnet.dir/process.cpp.o"
  "CMakeFiles/cgra_procnet.dir/process.cpp.o.d"
  "libcgra_procnet.a"
  "libcgra_procnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_procnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

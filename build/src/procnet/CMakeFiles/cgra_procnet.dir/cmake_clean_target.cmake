file(REMOVE_RECURSE
  "libcgra_procnet.a"
)

# Empty dependencies file for cgra_procnet.
# This may be replaced when dependencies are built.

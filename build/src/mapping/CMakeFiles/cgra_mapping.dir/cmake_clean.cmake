file(REMOVE_RECURSE
  "CMakeFiles/cgra_mapping.dir/binding.cpp.o"
  "CMakeFiles/cgra_mapping.dir/binding.cpp.o.d"
  "CMakeFiles/cgra_mapping.dir/placement.cpp.o"
  "CMakeFiles/cgra_mapping.dir/placement.cpp.o.d"
  "CMakeFiles/cgra_mapping.dir/rebalance.cpp.o"
  "CMakeFiles/cgra_mapping.dir/rebalance.cpp.o.d"
  "CMakeFiles/cgra_mapping.dir/schedule_compiler.cpp.o"
  "CMakeFiles/cgra_mapping.dir/schedule_compiler.cpp.o.d"
  "libcgra_mapping.a"
  "libcgra_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

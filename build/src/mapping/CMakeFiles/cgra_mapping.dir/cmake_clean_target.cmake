file(REMOVE_RECURSE
  "libcgra_mapping.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/binding.cpp" "src/mapping/CMakeFiles/cgra_mapping.dir/binding.cpp.o" "gcc" "src/mapping/CMakeFiles/cgra_mapping.dir/binding.cpp.o.d"
  "/root/repo/src/mapping/placement.cpp" "src/mapping/CMakeFiles/cgra_mapping.dir/placement.cpp.o" "gcc" "src/mapping/CMakeFiles/cgra_mapping.dir/placement.cpp.o.d"
  "/root/repo/src/mapping/rebalance.cpp" "src/mapping/CMakeFiles/cgra_mapping.dir/rebalance.cpp.o" "gcc" "src/mapping/CMakeFiles/cgra_mapping.dir/rebalance.cpp.o.d"
  "/root/repo/src/mapping/schedule_compiler.cpp" "src/mapping/CMakeFiles/cgra_mapping.dir/schedule_compiler.cpp.o" "gcc" "src/mapping/CMakeFiles/cgra_mapping.dir/schedule_compiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cgra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/procnet/CMakeFiles/cgra_procnet.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/cgra_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/cgra_config.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/cgra_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cgra_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for cgra_isa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cgra_isa.dir/assembler.cpp.o"
  "CMakeFiles/cgra_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/cgra_isa.dir/disassembler.cpp.o"
  "CMakeFiles/cgra_isa.dir/disassembler.cpp.o.d"
  "CMakeFiles/cgra_isa.dir/instruction.cpp.o"
  "CMakeFiles/cgra_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/cgra_isa.dir/program.cpp.o"
  "CMakeFiles/cgra_isa.dir/program.cpp.o.d"
  "libcgra_isa.a"
  "libcgra_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

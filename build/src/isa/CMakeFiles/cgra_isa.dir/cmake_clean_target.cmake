file(REMOVE_RECURSE
  "libcgra_isa.a"
)

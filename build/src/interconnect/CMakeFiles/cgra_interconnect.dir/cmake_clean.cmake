file(REMOVE_RECURSE
  "CMakeFiles/cgra_interconnect.dir/link.cpp.o"
  "CMakeFiles/cgra_interconnect.dir/link.cpp.o.d"
  "CMakeFiles/cgra_interconnect.dir/routing.cpp.o"
  "CMakeFiles/cgra_interconnect.dir/routing.cpp.o.d"
  "libcgra_interconnect.a"
  "libcgra_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

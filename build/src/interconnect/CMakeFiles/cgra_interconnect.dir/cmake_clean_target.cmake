file(REMOVE_RECURSE
  "libcgra_interconnect.a"
)

# Empty compiler generated dependencies file for cgra_interconnect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cgra_jpeg.dir/bitio.cpp.o"
  "CMakeFiles/cgra_jpeg.dir/bitio.cpp.o.d"
  "CMakeFiles/cgra_jpeg.dir/color.cpp.o"
  "CMakeFiles/cgra_jpeg.dir/color.cpp.o.d"
  "CMakeFiles/cgra_jpeg.dir/dct.cpp.o"
  "CMakeFiles/cgra_jpeg.dir/dct.cpp.o.d"
  "CMakeFiles/cgra_jpeg.dir/decoder.cpp.o"
  "CMakeFiles/cgra_jpeg.dir/decoder.cpp.o.d"
  "CMakeFiles/cgra_jpeg.dir/encoder.cpp.o"
  "CMakeFiles/cgra_jpeg.dir/encoder.cpp.o.d"
  "CMakeFiles/cgra_jpeg.dir/fabric_jpeg.cpp.o"
  "CMakeFiles/cgra_jpeg.dir/fabric_jpeg.cpp.o.d"
  "CMakeFiles/cgra_jpeg.dir/process_table.cpp.o"
  "CMakeFiles/cgra_jpeg.dir/process_table.cpp.o.d"
  "CMakeFiles/cgra_jpeg.dir/tables.cpp.o"
  "CMakeFiles/cgra_jpeg.dir/tables.cpp.o.d"
  "libcgra_jpeg.a"
  "libcgra_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

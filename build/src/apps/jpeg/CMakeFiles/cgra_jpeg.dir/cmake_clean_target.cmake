file(REMOVE_RECURSE
  "libcgra_jpeg.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/jpeg/bitio.cpp" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/bitio.cpp.o" "gcc" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/bitio.cpp.o.d"
  "/root/repo/src/apps/jpeg/color.cpp" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/color.cpp.o" "gcc" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/color.cpp.o.d"
  "/root/repo/src/apps/jpeg/dct.cpp" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/dct.cpp.o" "gcc" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/dct.cpp.o.d"
  "/root/repo/src/apps/jpeg/decoder.cpp" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/decoder.cpp.o" "gcc" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/decoder.cpp.o.d"
  "/root/repo/src/apps/jpeg/encoder.cpp" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/encoder.cpp.o" "gcc" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/encoder.cpp.o.d"
  "/root/repo/src/apps/jpeg/fabric_jpeg.cpp" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/fabric_jpeg.cpp.o" "gcc" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/fabric_jpeg.cpp.o.d"
  "/root/repo/src/apps/jpeg/process_table.cpp" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/process_table.cpp.o" "gcc" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/process_table.cpp.o.d"
  "/root/repo/src/apps/jpeg/tables.cpp" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/tables.cpp.o" "gcc" "src/apps/jpeg/CMakeFiles/cgra_jpeg.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cgra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cgra_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/cgra_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/cgra_config.dir/DependInfo.cmake"
  "/root/repo/build/src/procnet/CMakeFiles/cgra_procnet.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/cgra_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/fft/CMakeFiles/cgra_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/cgra_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

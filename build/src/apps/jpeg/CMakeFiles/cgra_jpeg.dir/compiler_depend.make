# Empty compiler generated dependencies file for cgra_jpeg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cgra_fft.dir/fabric_fft.cpp.o"
  "CMakeFiles/cgra_fft.dir/fabric_fft.cpp.o.d"
  "CMakeFiles/cgra_fft.dir/partition.cpp.o"
  "CMakeFiles/cgra_fft.dir/partition.cpp.o.d"
  "CMakeFiles/cgra_fft.dir/programs.cpp.o"
  "CMakeFiles/cgra_fft.dir/programs.cpp.o.d"
  "CMakeFiles/cgra_fft.dir/reference.cpp.o"
  "CMakeFiles/cgra_fft.dir/reference.cpp.o.d"
  "CMakeFiles/cgra_fft.dir/twiddle.cpp.o"
  "CMakeFiles/cgra_fft.dir/twiddle.cpp.o.d"
  "libcgra_fft.a"
  "libcgra_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

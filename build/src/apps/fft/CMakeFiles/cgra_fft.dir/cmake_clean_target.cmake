file(REMOVE_RECURSE
  "libcgra_fft.a"
)

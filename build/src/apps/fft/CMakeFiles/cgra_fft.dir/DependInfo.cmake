
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fft/fabric_fft.cpp" "src/apps/fft/CMakeFiles/cgra_fft.dir/fabric_fft.cpp.o" "gcc" "src/apps/fft/CMakeFiles/cgra_fft.dir/fabric_fft.cpp.o.d"
  "/root/repo/src/apps/fft/partition.cpp" "src/apps/fft/CMakeFiles/cgra_fft.dir/partition.cpp.o" "gcc" "src/apps/fft/CMakeFiles/cgra_fft.dir/partition.cpp.o.d"
  "/root/repo/src/apps/fft/programs.cpp" "src/apps/fft/CMakeFiles/cgra_fft.dir/programs.cpp.o" "gcc" "src/apps/fft/CMakeFiles/cgra_fft.dir/programs.cpp.o.d"
  "/root/repo/src/apps/fft/reference.cpp" "src/apps/fft/CMakeFiles/cgra_fft.dir/reference.cpp.o" "gcc" "src/apps/fft/CMakeFiles/cgra_fft.dir/reference.cpp.o.d"
  "/root/repo/src/apps/fft/twiddle.cpp" "src/apps/fft/CMakeFiles/cgra_fft.dir/twiddle.cpp.o" "gcc" "src/apps/fft/CMakeFiles/cgra_fft.dir/twiddle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cgra_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cgra_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/cgra_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/cgra_config.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/cgra_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for cgra_fft.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("fabric")
subdirs("interconnect")
subdirs("config")
subdirs("procnet")
subdirs("mapping")
subdirs("dse")
subdirs("apps/fft")
subdirs("apps/jpeg")

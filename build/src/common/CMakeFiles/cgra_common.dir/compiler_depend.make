# Empty compiler generated dependencies file for cgra_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cgra_common.dir/fixed_complex.cpp.o"
  "CMakeFiles/cgra_common.dir/fixed_complex.cpp.o.d"
  "CMakeFiles/cgra_common.dir/prng.cpp.o"
  "CMakeFiles/cgra_common.dir/prng.cpp.o.d"
  "CMakeFiles/cgra_common.dir/status.cpp.o"
  "CMakeFiles/cgra_common.dir/status.cpp.o.d"
  "CMakeFiles/cgra_common.dir/table.cpp.o"
  "CMakeFiles/cgra_common.dir/table.cpp.o.d"
  "CMakeFiles/cgra_common.dir/timing.cpp.o"
  "CMakeFiles/cgra_common.dir/timing.cpp.o.d"
  "CMakeFiles/cgra_common.dir/word.cpp.o"
  "CMakeFiles/cgra_common.dir/word.cpp.o.d"
  "libcgra_common.a"
  "libcgra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

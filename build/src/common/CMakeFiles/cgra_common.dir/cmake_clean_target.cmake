file(REMOVE_RECURSE
  "libcgra_common.a"
)

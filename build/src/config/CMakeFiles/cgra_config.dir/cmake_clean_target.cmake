file(REMOVE_RECURSE
  "libcgra_config.a"
)

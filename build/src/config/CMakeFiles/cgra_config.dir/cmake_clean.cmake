file(REMOVE_RECURSE
  "CMakeFiles/cgra_config.dir/epoch.cpp.o"
  "CMakeFiles/cgra_config.dir/epoch.cpp.o.d"
  "CMakeFiles/cgra_config.dir/reconfig.cpp.o"
  "CMakeFiles/cgra_config.dir/reconfig.cpp.o.d"
  "libcgra_config.a"
  "libcgra_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

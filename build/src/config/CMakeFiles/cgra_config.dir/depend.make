# Empty dependencies file for cgra_config.
# This may be replaced when dependencies are built.

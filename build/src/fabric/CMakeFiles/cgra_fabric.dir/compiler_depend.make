# Empty compiler generated dependencies file for cgra_fabric.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cgra_fabric.dir/fabric.cpp.o"
  "CMakeFiles/cgra_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/cgra_fabric.dir/tile.cpp.o"
  "CMakeFiles/cgra_fabric.dir/tile.cpp.o.d"
  "CMakeFiles/cgra_fabric.dir/trace.cpp.o"
  "CMakeFiles/cgra_fabric.dir/trace.cpp.o.d"
  "libcgra_fabric.a"
  "libcgra_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

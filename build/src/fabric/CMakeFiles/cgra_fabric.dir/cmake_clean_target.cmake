file(REMOVE_RECURSE
  "libcgra_fabric.a"
)

file(REMOVE_RECURSE
  "libcgra_dse.a"
)

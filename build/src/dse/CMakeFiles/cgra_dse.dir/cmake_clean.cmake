file(REMOVE_RECURSE
  "CMakeFiles/cgra_dse.dir/fft_perf_model.cpp.o"
  "CMakeFiles/cgra_dse.dir/fft_perf_model.cpp.o.d"
  "libcgra_dse.a"
  "libcgra_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgra_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cgra_dse.
# This may be replaced when dependencies are built.

// Sweep driver tests: deterministic result ordering, identical output for
// 1 vs N lanes and for every execution engine, exception propagation,
// reuse across jobs, and the one-PR deprecated SweepPool shims.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "apps/jpeg/process_table.hpp"
#include "dse/sweep.hpp"
#include "isa/assembler.hpp"

namespace cgra::dse {
namespace {

engine::EngineOptions lanes_only(int lanes) {
  engine::EngineOptions o;
  o.threads = lanes;
  return o;
}

TEST(Sweep, MapReturnsResultsInCandidateOrder) {
  Sweep pool(lanes_only(4));
  EXPECT_EQ(pool.lanes(), 4);
  const auto out = pool.map<int>(100, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(Sweep, EveryCandidateRunsExactlyOnce) {
  Sweep pool(lanes_only(3));
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, SingleLaneRunsInline) {
  Sweep pool(lanes_only(1));
  EXPECT_EQ(pool.lanes(), 1);
  const auto out = pool.map<int>(5, [](int i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Sweep, ExceptionPropagatesAfterAllCandidatesFinish) {
  Sweep pool(lanes_only(4));
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(20,
                                 [&](int i) {
                                   ran.fetch_add(1);
                                   if (i == 3) {
                                     throw std::runtime_error("candidate 3");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 20);  // the failure does not skip other candidates
}

TEST(Sweep, PoolIsReusableAcrossJobs) {
  Sweep pool(lanes_only(2));
  for (int round = 0; round < 50; ++round) {
    const auto out = pool.map<int>(8, [&](int i) { return i + round; });
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)], i + round);
    }
  }
}

TEST(SweepDeterminism, RebalanceSweepIdenticalForOneAndManyLanes) {
  const auto net = jpeg::jpeg_main_pipeline();
  const mapping::CostParams params{};
  constexpr int kMaxTiles = 12;

  const auto serial =
      mapping::sweep(net, kMaxTiles, mapping::RebalanceAlgorithm::kTwo,
                     params);
  Sweep one(lanes_only(1));
  Sweep many(lanes_only(4));
  const auto p1 = one.rebalance_sweep(net, kMaxTiles,
                                      mapping::RebalanceAlgorithm::kTwo,
                                      params);
  const auto pn = many.rebalance_sweep(net, kMaxTiles,
                                       mapping::RebalanceAlgorithm::kTwo,
                                       params);

  ASSERT_EQ(p1.size(), serial.size());
  ASSERT_EQ(pn.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (const auto* p : {&p1[i], &pn[i]}) {
      EXPECT_EQ(p->tiles, serial[i].tiles);
      // Bit-identical evaluation: same candidate, same pure computation.
      EXPECT_EQ(p->eval.items_per_sec, serial[i].eval.items_per_sec);
      EXPECT_EQ(p->eval.avg_utilization, serial[i].eval.avg_utilization);
      ASSERT_EQ(p->binding.groups.size(), serial[i].binding.groups.size());
      for (std::size_t gi = 0; gi < serial[i].binding.groups.size(); ++gi) {
        EXPECT_EQ(p->binding.groups[gi].procs,
                  serial[i].binding.groups[gi].procs);
        EXPECT_EQ(p->binding.groups[gi].replication,
                  serial[i].binding.groups[gi].replication);
      }
    }
  }
  // The ranking consequence: identical best-throughput budget either way.
  const auto best = [](const std::vector<mapping::SweepPoint>& v) {
    std::size_t b = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i].eval.items_per_sec > v[b].eval.items_per_sec) b = i;
    }
    return v[b].tiles;
  };
  EXPECT_EQ(best(p1), best(serial));
  EXPECT_EQ(best(pn), best(serial));
}

TEST(SweepDeterminism, MeasuredProcessTimesIdenticalForOneAndManyLanes) {
  const auto g = fft::make_geometry(64);
  const auto serial = measure_process_times(g);
  Sweep one(lanes_only(1));
  Sweep many(lanes_only(4));
  const auto p1 = one.measure_process_times(g);
  const auto pn = many.measure_process_times(g);
  for (const auto* p : {&p1, &pn}) {
    ASSERT_EQ(p->bf.size(), serial.bf.size());
    for (std::size_t s = 0; s < serial.bf.size(); ++s) {
      EXPECT_EQ(p->bf[s], serial.bf[s]);
    }
    EXPECT_EQ(p->vcp, serial.vcp);
    EXPECT_EQ(p->hcp, serial.hcp);
  }
}

// run_fabrics must produce bit-identical results for every engine kind,
// lane count and batch width — including a population whose instances halt
// at different cycles and one that faults.
TEST(SweepDeterminism, RunFabricsIdenticalAcrossEnginesAndBatchWidths) {
  constexpr int kN = 7;
  const auto setup = [](fabric::Fabric& f, int i) {
    auto r = isa::assemble(
        "  movi 1, #" + std::to_string(10 + 13 * i) +
        "\n  movi 2, #0\n"
        "loop:\n  add 2, 2, 1\n  sub 1, 1, #1\n  bnez 1, loop\n" +
        std::string(i == 5 ? "  mov !0, 2\n" : "") +  // no link: faults
        "  halt\n");
    ASSERT_TRUE(r.ok());
    f.tile(0).load_program(r.program);
    f.tile(0).restart();
  };

  std::vector<fabric::Fabric> ref_storage;
  ref_storage.reserve(kN);
  std::vector<fabric::RunResult> want;
  for (int i = 0; i < kN; ++i) {
    ref_storage.emplace_back(1, 2);
    setup(ref_storage.back(), i);
    want.push_back(ref_storage.back().run_interpreter(10'000));
  }

  const engine::EngineOptions configs[] = {
      {engine::EngineKind::kInterp, 8, 1},
      {engine::EngineKind::kInterp, 8, 4},
      {engine::EngineKind::kThreaded, 8, 3},
      {engine::EngineKind::kBatch, 1, 2},   // degenerate groups of one
      {engine::EngineKind::kBatch, 3, 2},   // uneven tail group
      {engine::EngineKind::kBatch, 16, 1},  // one group holds everything
  };
  for (const auto& cfg : configs) {
    std::vector<fabric::Fabric> storage;
    storage.reserve(kN);  // ptrs point into storage: no reallocation allowed
    std::vector<fabric::Fabric*> ptrs;
    for (int i = 0; i < kN; ++i) {
      storage.emplace_back(1, 2);
      setup(storage.back(), i);
      ptrs.push_back(&storage.back());
    }
    Sweep sweep(cfg);
    const auto got = sweep.run_fabrics(ptrs, 10'000);
    const std::string ctx = engine::engine_spec(cfg) + " lanes " +
                            std::to_string(cfg.threads);
    ASSERT_EQ(got.size(), want.size()) << ctx;
    for (int i = 0; i < kN; ++i) {
      const auto& g = got[static_cast<std::size_t>(i)];
      const auto& w = want[static_cast<std::size_t>(i)];
      const std::string ic = ctx + " instance " + std::to_string(i);
      EXPECT_EQ(g.cycles, w.cycles) << ic;
      EXPECT_EQ(g.all_halted, w.all_halted) << ic;
      ASSERT_EQ(g.faults.size(), w.faults.size()) << ic;
      const auto& f = storage[static_cast<std::size_t>(i)];
      const auto& rf = ref_storage[static_cast<std::size_t>(i)];
      EXPECT_EQ(f.now(), rf.now()) << ic;
      EXPECT_EQ(f.tile(0).dmem(2), rf.tile(0).dmem(2)) << ic;
      EXPECT_EQ(f.tile(0).stats().instructions,
                rf.tile(0).stats().instructions)
          << ic;
    }
  }
}

// Mapper-driven placements as sweep candidates: each budget maps
// independently, so results are positional and lane-count independent.
TEST(Sweep, MapperSweepIsDeterministicAcrossLaneCounts) {
  const auto net = jpeg::jpeg_main_pipeline();
  const std::vector<int> budgets = {1, 2, 4};
  std::vector<MapperSweepPoint> want;
  {
    Sweep serial(engine::EngineOptions{engine::EngineKind::kInterp, 8, 1});
    want = serial.mapper_sweep(net, 4, 4, budgets);
  }
  Sweep pool(engine::EngineOptions{engine::EngineKind::kInterp, 8, 4});
  const auto got = pool.mapper_sweep(net, 4, 4, budgets);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(got[i].mapped.ok()) << got[i].mapped.status.message();
    EXPECT_EQ(got[i].tiles, budgets[i]);
    EXPECT_EQ(got[i].mapped.cost.total_ns(), want[i].mapped.cost.total_ns());
    EXPECT_EQ(got[i].mapped.binding.describe(net),
              want[i].mapped.binding.describe(net));
  }
  // More tiles never hurt: the sweep's totals are monotonically
  // non-increasing in the budget.
  EXPECT_LE(got[1].mapped.cost.total_ns(), got[0].mapped.cost.total_ns());
  EXPECT_LE(got[2].mapped.cost.total_ns(), got[1].mapped.cost.total_ns());
}

}  // namespace
}  // namespace cgra::dse

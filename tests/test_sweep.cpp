// Parallel sweep driver tests: deterministic result ordering, identical
// output for 1 vs N lanes, exception propagation, pool reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "apps/jpeg/process_table.hpp"
#include "dse/sweep.hpp"

namespace cgra::dse {
namespace {

TEST(SweepPool, MapReturnsResultsInCandidateOrder) {
  SweepPool pool(4);
  EXPECT_EQ(pool.lanes(), 4);
  const auto out = pool.map<int>(100, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(SweepPool, EveryCandidateRunsExactlyOnce) {
  SweepPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepPool, SingleLaneRunsInline) {
  SweepPool pool(1);
  EXPECT_EQ(pool.lanes(), 1);
  const auto out = pool.map<int>(5, [](int i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SweepPool, ExceptionPropagatesAfterAllCandidatesFinish) {
  SweepPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(20,
                                 [&](int i) {
                                   ran.fetch_add(1);
                                   if (i == 3) {
                                     throw std::runtime_error("candidate 3");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 20);  // the failure does not skip other candidates
}

TEST(SweepPool, PoolIsReusableAcrossJobs) {
  SweepPool pool(2);
  for (int round = 0; round < 50; ++round) {
    const auto out = pool.map<int>(8, [&](int i) { return i + round; });
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)], i + round);
    }
  }
}

TEST(SweepDeterminism, RebalanceSweepIdenticalForOneAndManyLanes) {
  const auto net = jpeg::jpeg_main_pipeline();
  const mapping::CostParams params{};
  constexpr int kMaxTiles = 12;

  const auto serial =
      mapping::sweep(net, kMaxTiles, mapping::RebalanceAlgorithm::kTwo,
                     params);
  SweepPool one(1);
  SweepPool many(4);
  const auto p1 = parallel_sweep(net, kMaxTiles,
                                 mapping::RebalanceAlgorithm::kTwo, params,
                                 one);
  const auto pn = parallel_sweep(net, kMaxTiles,
                                 mapping::RebalanceAlgorithm::kTwo, params,
                                 many);

  ASSERT_EQ(p1.size(), serial.size());
  ASSERT_EQ(pn.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (const auto* p : {&p1[i], &pn[i]}) {
      EXPECT_EQ(p->tiles, serial[i].tiles);
      // Bit-identical evaluation: same candidate, same pure computation.
      EXPECT_EQ(p->eval.items_per_sec, serial[i].eval.items_per_sec);
      EXPECT_EQ(p->eval.avg_utilization, serial[i].eval.avg_utilization);
      ASSERT_EQ(p->binding.groups.size(), serial[i].binding.groups.size());
      for (std::size_t gi = 0; gi < serial[i].binding.groups.size(); ++gi) {
        EXPECT_EQ(p->binding.groups[gi].procs,
                  serial[i].binding.groups[gi].procs);
        EXPECT_EQ(p->binding.groups[gi].replication,
                  serial[i].binding.groups[gi].replication);
      }
    }
  }
  // The ranking consequence: identical best-throughput budget either way.
  const auto best = [](const std::vector<mapping::SweepPoint>& v) {
    std::size_t b = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i].eval.items_per_sec > v[b].eval.items_per_sec) b = i;
    }
    return v[b].tiles;
  };
  EXPECT_EQ(best(p1), best(serial));
  EXPECT_EQ(best(pn), best(serial));
}

TEST(SweepDeterminism, MeasuredProcessTimesIdenticalForOneAndManyLanes) {
  const auto g = fft::make_geometry(64);
  const auto serial = measure_process_times(g);
  SweepPool one(1);
  SweepPool many(4);
  const auto p1 = parallel_measure_process_times(g, one);
  const auto pn = parallel_measure_process_times(g, many);
  for (const auto* p : {&p1, &pn}) {
    ASSERT_EQ(p->bf.size(), serial.bf.size());
    for (std::size_t s = 0; s < serial.bf.size(); ++s) {
      EXPECT_EQ(p->bf[s], serial.bf[s]);
    }
    EXPECT_EQ(p->vcp, serial.vcp);
    EXPECT_EQ(p->hcp, serial.hcp);
  }
}

}  // namespace
}  // namespace cgra::dse

// Observability layer tests: metrics registry semantics (hot path,
// histogram bucket edges, the CGRA_OBS_OFF escape hatch), span timeline
// nesting and Chrome-trace round-trips, profile reconciliation, and the
// BENCH_*.json schema.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fabric/fabric.hpp"
#include "isa/assembler.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"

namespace cgra::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterFindOrCreateAndHotPath) {
  MetricsRegistry reg;
  const auto a = reg.counter("fabric.cycles");
  const auto b = reg.counter("fabric.cycles");
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.index, b.index);  // find-or-create: one slot per name
  EXPECT_EQ(reg.metric_count(), 1u);

  reg.add(a);
  reg.add(a, 41);
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(reg.counter_value(a), 0);
  EXPECT_EQ(reg.counter_value("fabric.cycles"), 0);
#else
  EXPECT_EQ(reg.counter_value(a), 42);
  EXPECT_EQ(reg.counter_value("fabric.cycles"), 42);
#endif
  EXPECT_EQ(reg.counter_value("no.such.metric"), 0);
}

TEST(Metrics, GaugeSetOverwrites) {
  MetricsRegistry reg;
  const auto g = reg.gauge("icap.occupancy");
  reg.set(g, 0.25);
  reg.set(g, 0.75);
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(reg.gauge_value(g), 0.0);
#else
  EXPECT_EQ(reg.gauge_value(g), 0.75);
  EXPECT_EQ(reg.gauge_value("icap.occupancy"), 0.75);
#endif
}

TEST(Metrics, HistogramBucketEdges) {
  MetricsRegistry reg;
  const auto h = reg.histogram("stall.cycles", {10.0, 20.0});
  ASSERT_TRUE(h.valid());
  reg.observe(h, 5.0);    // bucket 0
  reg.observe(h, 10.0);   // exactly on the bound: v <= bound -> bucket 0
  reg.observe(h, 10.5);   // bucket 1
  reg.observe(h, 20.0);   // bucket 1
  reg.observe(h, 20.001); // overflow bucket
  const auto snap = reg.histogram_snapshot(h);
  ASSERT_EQ(snap.bounds.size(), 2u);
  ASSERT_EQ(snap.counts.size(), 3u);  // two buckets + overflow
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(snap.total, 0);
#else
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 2);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.total, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 5.0 + 10.0 + 10.5 + 20.0 + 20.001);
#endif
}

TEST(Metrics, HistogramReregistrationKeepsFirstBounds) {
  MetricsRegistry reg;
  const auto a = reg.histogram("h", {1.0, 2.0});
  const auto b = reg.histogram("h", {100.0});
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(reg.histogram_snapshot(b).bounds.size(), 2u);
}

TEST(Metrics, ResetValuesKeepsDefinitionsAndHandles) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  reg.add(c, 7);
  reg.reset_values();
  EXPECT_EQ(reg.counter_value(c), 0);
  EXPECT_EQ(reg.metric_count(), 1u);
  reg.add(c, 3);
#ifndef CGRA_OBS_OFF
  EXPECT_EQ(reg.counter_value(c), 3);  // handle survives the reset
#endif
}

TEST(Metrics, ExportersAreWellFormed) {
  MetricsRegistry reg;
  reg.add(reg.counter("a.count"), 3);
  reg.set(reg.gauge("b.gauge"), 1.5);
  reg.observe(reg.histogram("c.hist", {1.0}), 0.5);

  JsonValue parsed;
  ASSERT_TRUE(parse_json(reg.to_json(), &parsed).ok());
  ASSERT_TRUE(parsed.is_object());
  ASSERT_NE(parsed.find("counters"), nullptr);
  ASSERT_NE(parsed.find("gauges"), nullptr);
  ASSERT_NE(parsed.find("histograms"), nullptr);
#ifndef CGRA_OBS_OFF
  const auto* counters = parsed.find("counters");
  ASSERT_NE(counters->find("a.count"), nullptr);
  EXPECT_EQ(counters->find("a.count")->number, 3.0);
#endif

  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("counter,a.count"), std::string::npos);
  EXPECT_NE(reg.to_table().find("a.count"), std::string::npos);
}

// Integration: the fabric's attached counters agree with TileStats.
TEST(Metrics, FabricCountersMatchTileStats) {
  fabric::Fabric fab(1, 1);
  MetricsRegistry reg;
  fab.attach_metrics(&reg);
  auto r = isa::assemble("  movi 0, #5\nl:\n  sub 0, 0, #1\n  bnez 0, l\n"
                         "  halt\n");
  ASSERT_TRUE(r.ok());
  fab.tile(0).load_program(r.program);
  fab.tile(0).restart();
  const auto run = fab.run(100);
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(reg.counter_value("fabric.cycles"), 0);
#else
  EXPECT_EQ(reg.counter_value("fabric.cycles"), run.cycles);
  EXPECT_EQ(reg.counter_value("fabric.retired"),
            fab.tile(0).stats().instructions);
  EXPECT_EQ(reg.counter_value("fabric.faults"), 0);
#endif
}

// ------------------------------------------------------------------ spans

TEST(Spans, NestingAndOpenSpanAccounting) {
  SpanTimeline tl;
  const auto outer = tl.begin("epoch", "epoch", kTrackEpochs, 0.0);
  tl.complete("stream:t0", "icap", kTrackIcap, 0.0, 40.0);
  EXPECT_EQ(tl.open_spans(), 1u);
  tl.end(outer, 100.0);
  EXPECT_EQ(tl.open_spans(), 0u);

  const auto dangling = tl.begin("unbalanced", "epoch", kTrackEpochs, 100.0);
  (void)dangling;
  EXPECT_EQ(tl.open_spans(), 1u);

  ASSERT_EQ(tl.spans().size(), 3u);
  EXPECT_EQ(tl.spans()[0].name, "epoch");
  EXPECT_DOUBLE_EQ(tl.spans()[0].dur_ns, 100.0);
  EXPECT_TRUE(tl.spans()[2].open);
}

TEST(Spans, CategoryAndPrefixTotals) {
  SpanTimeline tl;
  tl.complete("reconfig:a", "reconfig", kTrackIcap, 0.0, 100.0);
  tl.complete("reconfig:b", "reconfig", kTrackIcap, 200.0, 50.0);
  tl.complete("bf-stage-0", "epoch", kTrackEpochs, 0.0, 30.0);
  tl.instant("recovery:scrub", "recovery", tile_track(1), 10.0);
  EXPECT_DOUBLE_EQ(tl.total_in_category("reconfig"), 150.0);
  EXPECT_DOUBLE_EQ(tl.total_in_category("recovery"), 0.0);  // instants: 0 dur
  EXPECT_DOUBLE_EQ(tl.total_with_prefix("reconfig:"), 150.0);
  EXPECT_DOUBLE_EQ(tl.total_with_prefix("bf-"), 30.0);
}

TEST(Spans, ChromeTraceRoundTrip) {
  SpanTimeline tl;
  tl.set_track_name(kTrackEpochs, "epochs");
  tl.set_track_name(tile_track(0), "tile 0");
  tl.complete("bf-stage-0", "epoch", kTrackEpochs, 2.5, 250.0,
              {{"cycles", "100", true}, {"kind", "pair", false}});
  tl.instant("recovery:rollback", "recovery", tile_track(0), 125.0,
             {{"attempt", "2", true}});
  const auto open_id = tl.begin("reconfig:s1", "reconfig", kTrackIcap, 252.5);
  tl.end(open_id, 502.5);

  const std::string json = tl.to_chrome_json("test-process");
  ASSERT_TRUE(validate_chrome_trace(json).ok());

  std::vector<Span> back;
  ASSERT_TRUE(parse_chrome_trace(json, &back).ok());
  ASSERT_EQ(back.size(), 3u);  // metadata dropped

  const Span* bf = nullptr;
  const Span* rec = nullptr;
  const Span* cfg = nullptr;
  for (const auto& s : back) {
    if (s.name == "bf-stage-0") bf = &s;
    if (s.name == "recovery:rollback") rec = &s;
    if (s.name == "reconfig:s1") cfg = &s;
  }
  ASSERT_NE(bf, nullptr);
  ASSERT_NE(rec, nullptr);
  ASSERT_NE(cfg, nullptr);
  EXPECT_DOUBLE_EQ(bf->start_ns, 2.5);
  EXPECT_DOUBLE_EQ(bf->dur_ns, 250.0);
  EXPECT_EQ(bf->track, kTrackEpochs);
  ASSERT_EQ(bf->args.size(), 2u);
  EXPECT_TRUE(rec->instant);
  EXPECT_DOUBLE_EQ(rec->start_ns, 125.0);
  EXPECT_DOUBLE_EQ(cfg->dur_ns, 250.0);
}

TEST(Spans, SameTimestampSpansExportInInsertionOrder) {
  // Perfetto nests same-ts events by array order, so the enclosing span
  // recorded first must stay first after the exporter's stable sort.
  SpanTimeline tl;
  tl.complete("outer", "reconfig", kTrackIcap, 100.0, 500.0);
  tl.complete("inner", "icap", kTrackIcap, 100.0, 200.0);
  const std::string json = tl.to_chrome_json();
  EXPECT_LT(json.find("\"outer\""), json.find("\"inner\""));
}

TEST(Spans, ValidatorRejectsMalformedTraces) {
  EXPECT_FALSE(validate_chrome_trace("not json").ok());
  EXPECT_FALSE(validate_chrome_trace("{}").ok());  // no traceEvents
  EXPECT_FALSE(
      validate_chrome_trace("{\"traceEvents\": 5}").ok());  // not an array
  // An "X" event without dur violates the schema.
  EXPECT_FALSE(validate_chrome_trace(
                   "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\","
                   "\"ts\":0,\"pid\":1,\"tid\":0}]}")
                   .ok());
  // Minimal conforming trace.
  EXPECT_TRUE(validate_chrome_trace(
                  "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\","
                  "\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":0}]}")
                  .ok());
}

TEST(Spans, ClearResetsEverything) {
  SpanTimeline tl;
  tl.begin("open", "epoch", kTrackEpochs, 0.0);
  tl.clear();
  EXPECT_TRUE(tl.spans().empty());
  EXPECT_EQ(tl.open_spans(), 0u);
}

// ---------------------------------------------------------------- profile

ProfileReport small_report() {
  ProfileReport p;
  p.total_cycles = 100;
  p.total_ns = cycles_to_ns(100);
  p.tiles.push_back({0, 60, 30, 10, 5, false});
  p.tiles.push_back({1, 100, 0, 0, 0, false});
  return p;
}

TEST(Profile, ReconcilePassesWhenCyclesSum) {
  const auto p = small_report();
  EXPECT_TRUE(p.reconcile().ok());
  EXPECT_DOUBLE_EQ(p.tiles[0].utilization(), 0.6);
  EXPECT_DOUBLE_EQ(p.fabric_utilization(), (60.0 + 100.0) / 200.0);
}

TEST(Profile, ReconcileFailsOnMissingCycles) {
  auto p = small_report();
  p.tiles[0].stalled -= 1;  // break the invariant by one cycle
  const auto st = p.reconcile();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("tile 0"), std::string::npos);
}

TEST(Profile, ReconcileFailsOnClockMismatch) {
  auto p = small_report();
  p.total_ns += 1.0;
  EXPECT_FALSE(p.reconcile().ok());
}

TEST(Profile, RenderAndExportersMentionEveryTile) {
  const auto p = small_report();
  const std::string text = p.render();
  EXPECT_NE(text.find("tile"), std::string::npos);
  JsonValue parsed;
  ASSERT_TRUE(parse_json(p.to_json(), &parsed).ok());
  const auto* tiles = parsed.find("tiles");
  ASSERT_NE(tiles, nullptr);
  ASSERT_TRUE(tiles->is_array());
  EXPECT_EQ(tiles->array.size(), 2u);
  const std::string csv = p.to_csv();
  EXPECT_NE(csv.find("tile,retired"), std::string::npos);
}

TEST(Profile, DriftRowsComputeSignedPercentages) {
  DriftReport d;
  d.model = "fft-tau";
  d.add("tau1", 100.0, 150.0);
  d.add("tau2", 100.0, 75.0);
  d.add_unmeasured("tau0", 40.0, "host-side");
  EXPECT_DOUBLE_EQ(d.rows[0].drift_pct(), 50.0);
  EXPECT_DOUBLE_EQ(d.rows[1].drift_pct(), -25.0);
  EXPECT_FALSE(d.rows[2].has_measured);
  JsonValue parsed;
  ASSERT_TRUE(parse_json(d.to_json(), &parsed).ok());
  EXPECT_NE(d.render().find("tau1"), std::string::npos);
}

// ------------------------------------------------------------ bench report

TEST(BenchReport, JsonSchemaRoundTrips) {
  BenchReport report("unit_test");
  report.add("throughput", 1234.5, "FFT/s", {{"cols", "2"}});
  report.add("plain", 1.0, "x");
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  report.add_table("t", table);

  JsonValue parsed;
  ASSERT_TRUE(parse_json(report.to_json(), &parsed).ok());
  ASSERT_NE(parsed.find("bench"), nullptr);
  EXPECT_EQ(parsed.find("bench")->str, "unit_test");
  const auto* metrics = parsed.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->array.size(), 2u);
  const auto& m0 = metrics->array[0];
  EXPECT_EQ(m0.find("name")->str, "throughput");
  EXPECT_EQ(m0.find("value")->number, 1234.5);
  EXPECT_EQ(m0.find("unit")->str, "FFT/s");
  ASSERT_NE(m0.find("params"), nullptr);
  EXPECT_EQ(m0.find("params")->find("cols")->str, "2");
  const auto* tables = parsed.find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->array.size(), 1u);
  EXPECT_EQ(tables->array[0].find("header")->array.size(), 2u);
  ASSERT_EQ(tables->array[0].find("rows")->array.size(), 1u);
}

TEST(BenchReport, WriteProducesParseableFile) {
  BenchReport report("write_smoke");
  report.add("m", 1.0, "");
  ASSERT_TRUE(report.write("."));
  std::FILE* f = std::fopen("BENCH_write_smoke.json", "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  std::remove("BENCH_write_smoke.json");
  JsonValue parsed;
  EXPECT_TRUE(parse_json(content, &parsed).ok());
}

// ------------------------------------------------------------------ tracer

TEST(FlightRing, RecordsInOrderAndRoundsCapacity) {
  FlightRing ring(10);  // rounds up to the next power of two
  EXPECT_EQ(ring.capacity(), 16u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    ring.record(7, FlightEventKind::kEnqueue, static_cast<std::uint16_t>(i),
                2 * i, 100.0 * i);
  }
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
#else
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].trace_id, 7u);
    EXPECT_EQ(events[i].kind, FlightEventKind::kEnqueue);
    EXPECT_EQ(events[i].code, i);
    EXPECT_EQ(events[i].arg, 2 * i);
  }
#endif
}

#ifndef CGRA_OBS_OFF
TEST(FlightRing, WrapKeepsNewestAndCountsDropped) {
  FlightRing ring(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    ring.record(1, FlightEventKind::kRetry, 0, i, static_cast<double>(i));
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().arg, 12u);  // oldest surviving event
  EXPECT_EQ(events.back().arg, 19u);
}
#endif

TEST(Tracer, MakeContextDeterministicAndNonzero) {
  TracerOptions opt;
  opt.seed = 42;
  Tracer a(opt);
  Tracer b(opt);
  const auto c1 = a.make_context();
  const auto c2 = b.make_context();
  EXPECT_TRUE(c1.valid());
  EXPECT_EQ(c1.trace_id, c2.trace_id);  // same seed, same id stream
  EXPECT_EQ(c1.parent_span_id, c2.parent_span_id);
  EXPECT_NE(a.make_context().trace_id, c1.trace_id);
  EXPECT_EQ(Tracer::trace_hex(0x1a2b), "0000000000001a2b");
}

TEST(Tracer, SpanCarriesTraceArgsAndMergesAcrossTracers) {
  Tracer tracer;
  const auto ctx = tracer.make_context();
  tracer.span(kTraceTrackClient, "call", ctx, 10.0, 100.0,
              {{"status", "ok", false}});
  tracer.instant(kTraceTrackQueue, "mark", ctx, 20.0);
  tracer.span(kTraceTrackFabric, "dropped", TraceContext{}, 0.0, 1.0);
  EXPECT_EQ(tracer.span_count(), 2u);  // the invalid context records nothing
  const std::string json = tracer.to_chrome_json("test");
  EXPECT_TRUE(validate_chrome_trace(json).ok());
  EXPECT_NE(json.find(Tracer::trace_hex(ctx.trace_id)), std::string::npos);

  // The client-side merge path: parse one tracer's export, graft it
  // into another, and the result still validates.
  std::vector<Span> spans;
  ASSERT_TRUE(parse_chrome_trace(json, &spans).ok());
  Tracer other;
  other.merge_spans(spans);
  EXPECT_EQ(other.span_count(), 2u);
  EXPECT_TRUE(validate_chrome_trace(other.to_chrome_json()).ok());
}

#ifndef CGRA_OBS_OFF
TEST(Tracer, AnomalyDumpKeepsOwnTraceAndChaosFires) {
  Tracer tracer;
  const auto mine = tracer.make_context();
  const auto other = tracer.make_context();
  tracer.event(mine, FlightEventKind::kEnqueue, 0, 1);
  tracer.event(other, FlightEventKind::kEnqueue, 0, 2);
  tracer.event(TraceContext{}, FlightEventKind::kChaosFire, 3, 4);
  tracer.note_anomaly(mine, AnomalyReason::kDeadlineExceeded, "late");
  const auto anomalies = tracer.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].trace_id, mine.trace_id);
  EXPECT_EQ(anomalies[0].reason, AnomalyReason::kDeadlineExceeded);
  EXPECT_EQ(anomalies[0].detail, "late");
  // Own enqueue + the chaos fire + the kAnomaly marker itself; the other
  // trace's enqueue is filtered out.
  ASSERT_EQ(anomalies[0].events.size(), 3u);
  EXPECT_EQ(anomalies[0].events[0].kind, FlightEventKind::kEnqueue);
  EXPECT_EQ(anomalies[0].events[1].kind, FlightEventKind::kChaosFire);
  EXPECT_EQ(anomalies[0].events[2].kind, FlightEventKind::kAnomaly);
  // The dump annotates the flight-recorder track in the export.
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(validate_chrome_trace(json).ok());
  EXPECT_NE(json.find("anomaly: deadline-exceeded"), std::string::npos);
}
#endif

TEST(Tracer, AnomaliesAreFifoBounded) {
  TracerOptions opt;
  opt.max_anomalies = 4;
  Tracer tracer(opt);
  for (int i = 0; i < 10; ++i) {
    TraceContext ctx{static_cast<std::uint64_t>(i + 1), 0};
    tracer.note_anomaly(ctx, AnomalyReason::kError, std::to_string(i));
  }
  const auto anomalies = tracer.anomalies();
  ASSERT_EQ(anomalies.size(), 4u);
  EXPECT_EQ(anomalies.front().detail, "6");
  EXPECT_EQ(anomalies.back().detail, "9");
}

TEST(Tracer, SlowTailReservoirFlagsOnlyStragglers) {
  Tracer tracer;
  const auto ctx = tracer.make_context();
  // Uniform completions: strictly-greater-than-p99 never fires.
  for (int i = 0; i < 100; ++i) tracer.note_complete(ctx, 1e6);
  EXPECT_TRUE(tracer.anomalies().empty());
  tracer.note_complete(ctx, 5e8);  // a 500 ms straggler
  const auto anomalies = tracer.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].reason, AnomalyReason::kSlowTail);
}

TEST(Metrics, HistogramQuantileInterpolates) {
  HistogramSnapshot snap;
  snap.name = "h";
  snap.bounds = {1.0, 2.0, 4.0};
  snap.counts = {10, 10, 0, 0};
  snap.total = 20;
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.75), 1.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 1.0), 2.0);
  // Overflow bucket clamps to the last finite bound.
  HistogramSnapshot over;
  over.bounds = {1.0, 2.0, 4.0};
  over.counts = {0, 0, 0, 5};
  over.total = 5;
  EXPECT_DOUBLE_EQ(histogram_quantile(over, 0.9), 4.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(HistogramSnapshot{}, 0.5), 0.0);
}

// -------------------------------------------------------------- json utils

TEST(Json, EscapeAndNumberFormatting) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(2.5), "2.5");
  JsonValue v;
  ASSERT_TRUE(parse_json("{\"k\": [1, true, \"s\", null]}", &v).ok());
  ASSERT_NE(v.find("k"), nullptr);
  ASSERT_EQ(v.find("k")->array.size(), 4u);
  EXPECT_FALSE(parse_json("{\"k\": }", &v).ok());
  EXPECT_FALSE(parse_json("[1, 2", &v).ok());
}

}  // namespace
}  // namespace cgra::obs

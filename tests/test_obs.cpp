// Observability layer tests: metrics registry semantics (hot path,
// histogram bucket edges, the CGRA_OBS_OFF escape hatch), span timeline
// nesting and Chrome-trace round-trips, profile reconciliation, and the
// BENCH_*.json schema.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fabric/fabric.hpp"
#include "isa/assembler.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"

namespace cgra::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterFindOrCreateAndHotPath) {
  MetricsRegistry reg;
  const auto a = reg.counter("fabric.cycles");
  const auto b = reg.counter("fabric.cycles");
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.index, b.index);  // find-or-create: one slot per name
  EXPECT_EQ(reg.metric_count(), 1u);

  reg.add(a);
  reg.add(a, 41);
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(reg.counter_value(a), 0);
  EXPECT_EQ(reg.counter_value("fabric.cycles"), 0);
#else
  EXPECT_EQ(reg.counter_value(a), 42);
  EXPECT_EQ(reg.counter_value("fabric.cycles"), 42);
#endif
  EXPECT_EQ(reg.counter_value("no.such.metric"), 0);
}

TEST(Metrics, GaugeSetOverwrites) {
  MetricsRegistry reg;
  const auto g = reg.gauge("icap.occupancy");
  reg.set(g, 0.25);
  reg.set(g, 0.75);
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(reg.gauge_value(g), 0.0);
#else
  EXPECT_EQ(reg.gauge_value(g), 0.75);
  EXPECT_EQ(reg.gauge_value("icap.occupancy"), 0.75);
#endif
}

TEST(Metrics, HistogramBucketEdges) {
  MetricsRegistry reg;
  const auto h = reg.histogram("stall.cycles", {10.0, 20.0});
  ASSERT_TRUE(h.valid());
  reg.observe(h, 5.0);    // bucket 0
  reg.observe(h, 10.0);   // exactly on the bound: v <= bound -> bucket 0
  reg.observe(h, 10.5);   // bucket 1
  reg.observe(h, 20.0);   // bucket 1
  reg.observe(h, 20.001); // overflow bucket
  const auto snap = reg.histogram_snapshot(h);
  ASSERT_EQ(snap.bounds.size(), 2u);
  ASSERT_EQ(snap.counts.size(), 3u);  // two buckets + overflow
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(snap.total, 0);
#else
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 2);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.total, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 5.0 + 10.0 + 10.5 + 20.0 + 20.001);
#endif
}

TEST(Metrics, HistogramReregistrationKeepsFirstBounds) {
  MetricsRegistry reg;
  const auto a = reg.histogram("h", {1.0, 2.0});
  const auto b = reg.histogram("h", {100.0});
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(reg.histogram_snapshot(b).bounds.size(), 2u);
}

TEST(Metrics, ResetValuesKeepsDefinitionsAndHandles) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  reg.add(c, 7);
  reg.reset_values();
  EXPECT_EQ(reg.counter_value(c), 0);
  EXPECT_EQ(reg.metric_count(), 1u);
  reg.add(c, 3);
#ifndef CGRA_OBS_OFF
  EXPECT_EQ(reg.counter_value(c), 3);  // handle survives the reset
#endif
}

TEST(Metrics, ExportersAreWellFormed) {
  MetricsRegistry reg;
  reg.add(reg.counter("a.count"), 3);
  reg.set(reg.gauge("b.gauge"), 1.5);
  reg.observe(reg.histogram("c.hist", {1.0}), 0.5);

  JsonValue parsed;
  ASSERT_TRUE(parse_json(reg.to_json(), &parsed).ok());
  ASSERT_TRUE(parsed.is_object());
  ASSERT_NE(parsed.find("counters"), nullptr);
  ASSERT_NE(parsed.find("gauges"), nullptr);
  ASSERT_NE(parsed.find("histograms"), nullptr);
#ifndef CGRA_OBS_OFF
  const auto* counters = parsed.find("counters");
  ASSERT_NE(counters->find("a.count"), nullptr);
  EXPECT_EQ(counters->find("a.count")->number, 3.0);
#endif

  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("counter,a.count"), std::string::npos);
  EXPECT_NE(reg.to_table().find("a.count"), std::string::npos);
}

// Integration: the fabric's attached counters agree with TileStats.
TEST(Metrics, FabricCountersMatchTileStats) {
  fabric::Fabric fab(1, 1);
  MetricsRegistry reg;
  fab.attach_metrics(&reg);
  auto r = isa::assemble("  movi 0, #5\nl:\n  sub 0, 0, #1\n  bnez 0, l\n"
                         "  halt\n");
  ASSERT_TRUE(r.ok());
  fab.tile(0).load_program(r.program);
  fab.tile(0).restart();
  const auto run = fab.run(100);
#ifdef CGRA_OBS_OFF
  EXPECT_EQ(reg.counter_value("fabric.cycles"), 0);
#else
  EXPECT_EQ(reg.counter_value("fabric.cycles"), run.cycles);
  EXPECT_EQ(reg.counter_value("fabric.retired"),
            fab.tile(0).stats().instructions);
  EXPECT_EQ(reg.counter_value("fabric.faults"), 0);
#endif
}

// ------------------------------------------------------------------ spans

TEST(Spans, NestingAndOpenSpanAccounting) {
  SpanTimeline tl;
  const auto outer = tl.begin("epoch", "epoch", kTrackEpochs, 0.0);
  tl.complete("stream:t0", "icap", kTrackIcap, 0.0, 40.0);
  EXPECT_EQ(tl.open_spans(), 1u);
  tl.end(outer, 100.0);
  EXPECT_EQ(tl.open_spans(), 0u);

  const auto dangling = tl.begin("unbalanced", "epoch", kTrackEpochs, 100.0);
  (void)dangling;
  EXPECT_EQ(tl.open_spans(), 1u);

  ASSERT_EQ(tl.spans().size(), 3u);
  EXPECT_EQ(tl.spans()[0].name, "epoch");
  EXPECT_DOUBLE_EQ(tl.spans()[0].dur_ns, 100.0);
  EXPECT_TRUE(tl.spans()[2].open);
}

TEST(Spans, CategoryAndPrefixTotals) {
  SpanTimeline tl;
  tl.complete("reconfig:a", "reconfig", kTrackIcap, 0.0, 100.0);
  tl.complete("reconfig:b", "reconfig", kTrackIcap, 200.0, 50.0);
  tl.complete("bf-stage-0", "epoch", kTrackEpochs, 0.0, 30.0);
  tl.instant("recovery:scrub", "recovery", tile_track(1), 10.0);
  EXPECT_DOUBLE_EQ(tl.total_in_category("reconfig"), 150.0);
  EXPECT_DOUBLE_EQ(tl.total_in_category("recovery"), 0.0);  // instants: 0 dur
  EXPECT_DOUBLE_EQ(tl.total_with_prefix("reconfig:"), 150.0);
  EXPECT_DOUBLE_EQ(tl.total_with_prefix("bf-"), 30.0);
}

TEST(Spans, ChromeTraceRoundTrip) {
  SpanTimeline tl;
  tl.set_track_name(kTrackEpochs, "epochs");
  tl.set_track_name(tile_track(0), "tile 0");
  tl.complete("bf-stage-0", "epoch", kTrackEpochs, 2.5, 250.0,
              {{"cycles", "100", true}, {"kind", "pair", false}});
  tl.instant("recovery:rollback", "recovery", tile_track(0), 125.0,
             {{"attempt", "2", true}});
  const auto open_id = tl.begin("reconfig:s1", "reconfig", kTrackIcap, 252.5);
  tl.end(open_id, 502.5);

  const std::string json = tl.to_chrome_json("test-process");
  ASSERT_TRUE(validate_chrome_trace(json).ok());

  std::vector<Span> back;
  ASSERT_TRUE(parse_chrome_trace(json, &back).ok());
  ASSERT_EQ(back.size(), 3u);  // metadata dropped

  const Span* bf = nullptr;
  const Span* rec = nullptr;
  const Span* cfg = nullptr;
  for (const auto& s : back) {
    if (s.name == "bf-stage-0") bf = &s;
    if (s.name == "recovery:rollback") rec = &s;
    if (s.name == "reconfig:s1") cfg = &s;
  }
  ASSERT_NE(bf, nullptr);
  ASSERT_NE(rec, nullptr);
  ASSERT_NE(cfg, nullptr);
  EXPECT_DOUBLE_EQ(bf->start_ns, 2.5);
  EXPECT_DOUBLE_EQ(bf->dur_ns, 250.0);
  EXPECT_EQ(bf->track, kTrackEpochs);
  ASSERT_EQ(bf->args.size(), 2u);
  EXPECT_TRUE(rec->instant);
  EXPECT_DOUBLE_EQ(rec->start_ns, 125.0);
  EXPECT_DOUBLE_EQ(cfg->dur_ns, 250.0);
}

TEST(Spans, SameTimestampSpansExportInInsertionOrder) {
  // Perfetto nests same-ts events by array order, so the enclosing span
  // recorded first must stay first after the exporter's stable sort.
  SpanTimeline tl;
  tl.complete("outer", "reconfig", kTrackIcap, 100.0, 500.0);
  tl.complete("inner", "icap", kTrackIcap, 100.0, 200.0);
  const std::string json = tl.to_chrome_json();
  EXPECT_LT(json.find("\"outer\""), json.find("\"inner\""));
}

TEST(Spans, ValidatorRejectsMalformedTraces) {
  EXPECT_FALSE(validate_chrome_trace("not json").ok());
  EXPECT_FALSE(validate_chrome_trace("{}").ok());  // no traceEvents
  EXPECT_FALSE(
      validate_chrome_trace("{\"traceEvents\": 5}").ok());  // not an array
  // An "X" event without dur violates the schema.
  EXPECT_FALSE(validate_chrome_trace(
                   "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\","
                   "\"ts\":0,\"pid\":1,\"tid\":0}]}")
                   .ok());
  // Minimal conforming trace.
  EXPECT_TRUE(validate_chrome_trace(
                  "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\","
                  "\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":0}]}")
                  .ok());
}

TEST(Spans, ClearResetsEverything) {
  SpanTimeline tl;
  tl.begin("open", "epoch", kTrackEpochs, 0.0);
  tl.clear();
  EXPECT_TRUE(tl.spans().empty());
  EXPECT_EQ(tl.open_spans(), 0u);
}

// ---------------------------------------------------------------- profile

ProfileReport small_report() {
  ProfileReport p;
  p.total_cycles = 100;
  p.total_ns = cycles_to_ns(100);
  p.tiles.push_back({0, 60, 30, 10, 5, false});
  p.tiles.push_back({1, 100, 0, 0, 0, false});
  return p;
}

TEST(Profile, ReconcilePassesWhenCyclesSum) {
  const auto p = small_report();
  EXPECT_TRUE(p.reconcile().ok());
  EXPECT_DOUBLE_EQ(p.tiles[0].utilization(), 0.6);
  EXPECT_DOUBLE_EQ(p.fabric_utilization(), (60.0 + 100.0) / 200.0);
}

TEST(Profile, ReconcileFailsOnMissingCycles) {
  auto p = small_report();
  p.tiles[0].stalled -= 1;  // break the invariant by one cycle
  const auto st = p.reconcile();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("tile 0"), std::string::npos);
}

TEST(Profile, ReconcileFailsOnClockMismatch) {
  auto p = small_report();
  p.total_ns += 1.0;
  EXPECT_FALSE(p.reconcile().ok());
}

TEST(Profile, RenderAndExportersMentionEveryTile) {
  const auto p = small_report();
  const std::string text = p.render();
  EXPECT_NE(text.find("tile"), std::string::npos);
  JsonValue parsed;
  ASSERT_TRUE(parse_json(p.to_json(), &parsed).ok());
  const auto* tiles = parsed.find("tiles");
  ASSERT_NE(tiles, nullptr);
  ASSERT_TRUE(tiles->is_array());
  EXPECT_EQ(tiles->array.size(), 2u);
  const std::string csv = p.to_csv();
  EXPECT_NE(csv.find("tile,retired"), std::string::npos);
}

TEST(Profile, DriftRowsComputeSignedPercentages) {
  DriftReport d;
  d.model = "fft-tau";
  d.add("tau1", 100.0, 150.0);
  d.add("tau2", 100.0, 75.0);
  d.add_unmeasured("tau0", 40.0, "host-side");
  EXPECT_DOUBLE_EQ(d.rows[0].drift_pct(), 50.0);
  EXPECT_DOUBLE_EQ(d.rows[1].drift_pct(), -25.0);
  EXPECT_FALSE(d.rows[2].has_measured);
  JsonValue parsed;
  ASSERT_TRUE(parse_json(d.to_json(), &parsed).ok());
  EXPECT_NE(d.render().find("tau1"), std::string::npos);
}

// ------------------------------------------------------------ bench report

TEST(BenchReport, JsonSchemaRoundTrips) {
  BenchReport report("unit_test");
  report.add("throughput", 1234.5, "FFT/s", {{"cols", "2"}});
  report.add("plain", 1.0, "x");
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  report.add_table("t", table);

  JsonValue parsed;
  ASSERT_TRUE(parse_json(report.to_json(), &parsed).ok());
  ASSERT_NE(parsed.find("bench"), nullptr);
  EXPECT_EQ(parsed.find("bench")->str, "unit_test");
  const auto* metrics = parsed.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->array.size(), 2u);
  const auto& m0 = metrics->array[0];
  EXPECT_EQ(m0.find("name")->str, "throughput");
  EXPECT_EQ(m0.find("value")->number, 1234.5);
  EXPECT_EQ(m0.find("unit")->str, "FFT/s");
  ASSERT_NE(m0.find("params"), nullptr);
  EXPECT_EQ(m0.find("params")->find("cols")->str, "2");
  const auto* tables = parsed.find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->array.size(), 1u);
  EXPECT_EQ(tables->array[0].find("header")->array.size(), 2u);
  ASSERT_EQ(tables->array[0].find("rows")->array.size(), 1u);
}

TEST(BenchReport, WriteProducesParseableFile) {
  BenchReport report("write_smoke");
  report.add("m", 1.0, "");
  ASSERT_TRUE(report.write("."));
  std::FILE* f = std::fopen("BENCH_write_smoke.json", "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  std::remove("BENCH_write_smoke.json");
  JsonValue parsed;
  EXPECT_TRUE(parse_json(content, &parsed).ok());
}

// -------------------------------------------------------------- json utils

TEST(Json, EscapeAndNumberFormatting) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(2.5), "2.5");
  JsonValue v;
  ASSERT_TRUE(parse_json("{\"k\": [1, true, \"s\", null]}", &v).ok());
  ASSERT_NE(v.find("k"), nullptr);
  ASSERT_EQ(v.find("k")->array.size(), 4u);
  EXPECT_FALSE(parse_json("{\"k\": }", &v).ok());
  EXPECT_FALSE(parse_json("[1, 2", &v).ok());
}

}  // namespace
}  // namespace cgra::obs
